//! Golden-trace regression: the engine's products, per-phase tallies,
//! and f64 energy **bits** are pinned to values recorded from the
//! op-by-op engine that predates the plan-cache/scratch-arena hot path.
//!
//! These constants are the acceptance gate for the zero-allocation
//! rewrite: the fused row-centric loops and plan replay must be
//! indistinguishable from the original gather → vector-op → scatter
//! execution in everything but wall-clock time. Regenerate with
//! `cargo run --release --example golden_dump` — but a diff here means
//! the accounting (or the arithmetic) changed, which is a contract
//! break, not a refresh.

use cryptopim::engine::Engine;
use cryptopim::mapping::NttMapping;
use modmath::params::ParamSet;
use pim::par::Threads;
use pim::reduce::ReductionStyle;
use pim::stats::Tally;

/// `(cycles, compute_cycles, reduce_cycles, transfer_cycles, energy bits)`.
type PhaseGold = (u64, u64, u64, u64, u64);

/// Per paper case: degree, modulus, FNV-1a-64 hash of the product
/// coefficients, and the six phase tallies in trace order.
const GOLDEN: [(usize, u64, u64, [PhaseGold; 6]); 3] = [
    (
        256,
        7681,
        0xf188f5f54e1e1f8e,
        [
            (4332, 2966, 1366, 0, 0x411037c9eecbfb16),
            (42432, 27088, 15344, 0, 0x4133db5a858793df),
            (2166, 1483, 683, 0, 0x410037c9eecbfb16),
            (21216, 13544, 7672, 0, 0x4123db5a858793df),
            (2166, 1483, 683, 0, 0x410037c9eecbfb16),
            (1152, 0, 0, 1152, 0x40e41cac083126e8),
        ],
    ),
    (
        1024,
        12289,
        0x0a8f9b0bb8bfd03b,
        [
            (3888, 2966, 922, 0, 0x412d1c84b5dcc63f),
            (47860, 33860, 14000, 0, 0x415665a0c49ba5e5),
            (1944, 1483, 461, 0, 0x411d1c84b5dcc63f),
            (23930, 16930, 7000, 0, 0x414665a0c49ba5e3),
            (1944, 1483, 461, 0, 0x411d1c84b5dcc63f),
            (1440, 0, 0, 1440, 0x410923d70a3d70a4),
        ],
    ),
    (
        4096,
        786433,
        0x7c8a6c9374982b12,
        [
            (14748, 12582, 2166, 0, 0x416b9b3dd97f62b7),
            (197304, 161016, 36288, 0, 0x419715413a92a308),
            (7374, 6291, 1083, 0, 0x415b9b3dd97f62b6),
            (98652, 80508, 18144, 0, 0x418715413a92a305),
            (7374, 6291, 1083, 0, 0x415b9b3dd97f62b6),
            (3456, 0, 0, 3456, 0x413e2b020c49ba60),
        ],
    ),
];

/// Pinned totals: `(total cycles, total energy bits)` per case.
const GOLDEN_TOTALS: [(u64, u64); 3] = [
    (73464, 0x414342e90ff97248),
    (81006, 0x4164d45886594af6),
    (328908, 0x41a4ffaeab367a11),
];

fn rand_vec(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect()
}

fn fnv1a(values: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &v in values {
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn check_phase(name: &str, n: usize, workers: usize, tally: &Tally, gold: PhaseGold) {
    assert_eq!(
        (
            tally.cycles,
            tally.compute_cycles,
            tally.reduce_cycles,
            tally.transfer_cycles,
        ),
        (gold.0, gold.1, gold.2, gold.3),
        "{name} cycles: n = {n}, workers = {workers}"
    );
    assert_eq!(
        tally.energy_pj.to_bits(),
        gold.4,
        "{name} energy bits: n = {n}, workers = {workers}"
    );
}

#[test]
fn engine_trace_matches_pre_plan_golden_data() {
    for (case, &(n, q, product_hash, phases)) in GOLDEN.iter().enumerate() {
        let params = ParamSet::for_degree(n).expect("paper degree");
        assert_eq!(params.q, q, "paper modulus for n = {n}");
        let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).expect("mapping");
        let a = rand_vec(n, q, 0xC0FFEE ^ n as u64);
        let b = rand_vec(n, q, 0xBEEF ^ n as u64);

        for workers in [1usize, 2, 4] {
            let (c, tr) = Engine::new(&mapping)
                .with_threads(Threads::Fixed(workers))
                .multiply(&a, &b)
                .expect("multiply");
            assert_eq!(
                fnv1a(&c),
                product_hash,
                "product hash: n = {n}, workers = {workers}"
            );
            for (i, (name, t)) in [
                ("premul", &tr.premul),
                ("forward", &tr.forward),
                ("pointwise", &tr.pointwise),
                ("inverse", &tr.inverse),
                ("postmul", &tr.postmul),
                ("transfers", &tr.transfers),
            ]
            .into_iter()
            .enumerate()
            {
                check_phase(name, n, workers, t, phases[i]);
            }
            let total = tr.total();
            let (gold_cycles, gold_energy) = GOLDEN_TOTALS[case];
            assert_eq!(total.cycles, gold_cycles, "total cycles: n = {n}");
            assert_eq!(
                total.energy_pj.to_bits(),
                gold_energy,
                "total energy bits: n = {n}, workers = {workers}"
            );
        }
    }
}

#[test]
fn transfer_fold_keeps_total_cycles_unchanged() {
    // Satellite regression for folding the per-stage transfer tally into
    // the plan: totals must still equal the closed form
    // 3·log2(n)·switch_transfer_cycles(w) and the pinned golden totals.
    for (case, &(n, _q, _h, _p)) in GOLDEN.iter().enumerate() {
        let params = ParamSet::for_degree(n).expect("paper degree");
        let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).expect("mapping");
        let a = rand_vec(n, params.q, 0xC0FFEE ^ n as u64);
        let b = rand_vec(n, params.q, 0xBEEF ^ n as u64);
        let (_, tr) = Engine::new(&mapping)
            .with_threads(Threads::Fixed(1))
            .multiply(&a, &b)
            .expect("multiply");
        let log_n = params.log2_n() as u64;
        let per_stage = pim::cost::switch_transfer_cycles(params.bitwidth);
        assert_eq!(tr.transfers.cycles, 3 * log_n * per_stage, "n = {n}");
        assert_eq!(tr.total().cycles, GOLDEN_TOTALS[case].0, "n = {n}");
    }
}

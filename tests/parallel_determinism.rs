//! Determinism regression: the parallel lane engine must be
//! **bit-identical** to the sequential engine — same products, same
//! [`EngineTrace`], and energy tallies equal to the last f64 bit — for
//! every paper modulus and any worker count.
//!
//! This is the contract that makes `--threads N` safe to default on:
//! block charges are data-oblivious (cycles depend only on datapath
//! width, energy on cycles × active rows), so the parallel engine
//! replays the sequential charge sequence while only the data path fans
//! out (see `pim::par` and DESIGN.md).

use cryptopim::accelerator::CryptoPim;
use cryptopim::batch::multiply_batch;
use cryptopim::engine::Engine;
use cryptopim::mapping::NttMapping;
use modmath::params::ParamSet;
use ntt::poly::Polynomial;
use pim::par::Threads;
use pim::reduce::ReductionStyle;

/// The paper's (degree, modulus) pairs: 7681 (Table I row 1), 12289,
/// and 786433.
const PAPER_CASES: [(usize, u64); 3] = [(256, 7681), (1024, 12289), (4096, 786433)];

fn rand_vec(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect()
}

#[test]
fn parallel_engine_trace_is_bit_identical_for_paper_moduli() {
    for (n, q) in PAPER_CASES {
        let params = ParamSet::for_degree(n).expect("paper degree");
        assert_eq!(params.q, q, "paper modulus for n = {n}");
        let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).expect("mapping");
        let a = rand_vec(n, q, 0xC0FFEE ^ n as u64);
        let b = rand_vec(n, q, 0xBEEF ^ n as u64);

        let (c_seq, t_seq) = Engine::new(&mapping)
            .with_threads(Threads::Fixed(1))
            .multiply(&a, &b)
            .expect("sequential multiply");

        for workers in [2usize, 4, 8] {
            let (c_par, t_par) = Engine::new(&mapping)
                .with_threads(Threads::Fixed(workers))
                .multiply(&a, &b)
                .expect("parallel multiply");
            assert_eq!(c_par, c_seq, "products: n = {n}, workers = {workers}");
            assert_eq!(t_par, t_seq, "trace: n = {n}, workers = {workers}");
            // PartialEq on f64 is bit-blind to -0.0/0.0 and would accept
            // equal-but-differently-rounded sums; pin the exact bits.
            for (phase, seq, par) in [
                ("premul", &t_seq.premul, &t_par.premul),
                ("forward", &t_seq.forward, &t_par.forward),
                ("pointwise", &t_seq.pointwise, &t_par.pointwise),
                ("inverse", &t_seq.inverse, &t_par.inverse),
                ("postmul", &t_seq.postmul, &t_par.postmul),
                ("transfers", &t_seq.transfers, &t_par.transfers),
            ] {
                assert_eq!(
                    seq.energy_pj.to_bits(),
                    par.energy_pj.to_bits(),
                    "{phase} energy bits: n = {n}, workers = {workers}"
                );
            }
            assert_eq!(
                t_seq.total().energy_pj.to_bits(),
                t_par.total().energy_pj.to_bits(),
                "total energy bits: n = {n}, workers = {workers}"
            );
        }
    }
}

#[test]
fn auto_threads_match_pinned_sequential() {
    // Whatever Auto resolves to on this machine (including the
    // CRYPTOPIM_THREADS env override), results must not change.
    let (n, q) = PAPER_CASES[2];
    let params = ParamSet::for_degree(n).expect("paper degree");
    let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).expect("mapping");
    let a = rand_vec(n, q, 7);
    let b = rand_vec(n, q, 8);
    let (c_seq, t_seq) = Engine::new(&mapping)
        .with_threads(Threads::Fixed(1))
        .multiply(&a, &b)
        .expect("sequential multiply");
    let (c_auto, t_auto) = Engine::new(&mapping)
        .with_threads(Threads::Auto)
        .multiply(&a, &b)
        .expect("auto multiply");
    assert_eq!(c_auto, c_seq);
    assert_eq!(t_auto, t_seq);
}

#[test]
fn persistent_pool_stays_deterministic_over_many_multiplies() {
    // 100 back-to-back multiplies per worker count, all through the
    // persistent pool: every one must be bit-identical to the sequential
    // engine, and the pool must not grow (regions reuse parked workers
    // instead of spawning).
    let (n, q) = PAPER_CASES[0];
    let params = ParamSet::for_degree(n).expect("paper degree");
    let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).expect("mapping");
    let seq = Engine::new(&mapping).with_threads(Threads::Fixed(1));

    for workers in [2usize, 4, 8] {
        let par = Engine::new(&mapping).with_threads(Threads::Fixed(workers));
        // Prime the pool to its high-water mark for this worker count.
        let warm_a = rand_vec(n, q, 0xA5);
        par.multiply(&warm_a, &warm_a).expect("pool warm-up");
        let pool_before = pim::par::pool_threads();
        let mut out_seq = Vec::new();
        let mut out_par = Vec::new();
        for round in 0..100u64 {
            let a = rand_vec(n, q, 0x5EED_0000 + round);
            let b = rand_vec(n, q, 0xFACE_0000 + round);
            let t_seq = seq.multiply_into(&a, &b, &mut out_seq).expect("sequential");
            let t_par = par.multiply_into(&a, &b, &mut out_par).expect("parallel");
            assert_eq!(
                out_par, out_seq,
                "products: workers = {workers}, round = {round}"
            );
            assert_eq!(t_par, t_seq, "trace: workers = {workers}, round = {round}");
            assert_eq!(
                t_par.total().energy_pj.to_bits(),
                t_seq.total().energy_pj.to_bits(),
                "energy bits: workers = {workers}, round = {round}"
            );
        }
        assert_eq!(
            pim::par::pool_threads(),
            pool_before,
            "pool must reuse its workers, not spawn per multiply (workers = {workers})"
        );
    }
}

#[test]
fn parallel_batch_report_is_identical() {
    let (n, q) = PAPER_CASES[0];
    let params = ParamSet::for_degree(n).expect("paper degree");
    let pairs: Vec<(Polynomial, Polynomial)> = (0..12u64)
        .map(|k| {
            (
                Polynomial::from_coeffs(rand_vec(n, q, 100 + k), q).expect("valid"),
                Polynomial::from_coeffs(rand_vec(n, q, 200 + k), q).expect("valid"),
            )
        })
        .collect();
    let seq = multiply_batch(
        &CryptoPim::new(&params)
            .expect("paper parameters")
            .with_threads(Threads::Fixed(1)),
        &pairs,
    )
    .expect("sequential batch");
    for workers in [2usize, 4, 8] {
        let par = multiply_batch(
            &CryptoPim::new(&params)
                .expect("paper parameters")
                .with_threads(Threads::Fixed(workers)),
            &pairs,
        )
        .expect("parallel batch");
        assert_eq!(par, seq, "workers = {workers}");
    }
}

//! Cross-crate integration: the accelerator as a drop-in backend for
//! lattice cryptography, verified end-to-end against the software stack.

use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use ntt::schoolbook;
use rlwe::keyexchange::{encapsulate, Initiator};
use rlwe::pke::KeyPair;
use rlwe::she;

fn rand_poly(n: usize, q: u64, seed: u64) -> Polynomial {
    let mut state = seed;
    let coeffs: Vec<u64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect();
    Polynomial::from_coeffs(coeffs, q).expect("valid degree")
}

#[test]
fn accelerator_software_schoolbook_agree() {
    for n in [64usize, 256, 512] {
        let p = ParamSet::for_degree(n).expect("valid degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let sw = NttMultiplier::new(&p).expect("paper parameters");
        let a = rand_poly(n, p.q, 1);
        let b = rand_poly(n, p.q, 2);
        let via_pim = acc.multiply(&a, &b).expect("pim multiply");
        let via_sw = sw.multiply(&a, &b).expect("sw multiply");
        let via_school = schoolbook::multiply(&a, &b).expect("schoolbook");
        assert_eq!(via_pim, via_sw, "n = {n}");
        assert_eq!(via_sw, via_school, "n = {n}");
    }
}

#[test]
fn accelerator_handles_all_paper_degrees() {
    for n in modmath::params::PAPER_DEGREES {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let sw = NttMultiplier::new(&p).expect("paper parameters");
        let a = rand_poly(n, p.q, 3);
        let b = rand_poly(n, p.q, 4);
        assert_eq!(
            acc.multiply(&a, &b).expect("pim"),
            sw.multiply(&a, &b).expect("sw"),
            "n = {n}"
        );
    }
}

#[test]
fn pke_roundtrip_on_pim_backend() {
    let p = ParamSet::for_degree(512).expect("valid degree");
    let pim = CryptoPim::new(&p).expect("paper parameters");
    let keys = KeyPair::generate(&p, &pim, 42).expect("keygen");
    let msg: Vec<u8> = (0..512).map(|i| (i % 3 == 0) as u8).collect();
    let ct = keys.public().encrypt_bits(&msg, &pim, 43).expect("encrypt");
    let pt = keys.secret().decrypt_bits(&ct, &pim).expect("decrypt");
    assert_eq!(pt, msg);
}

#[test]
fn mixed_backends_interoperate() {
    // Encrypt with the software backend, decrypt with the PIM backend:
    // the ciphertext format is backend-independent.
    let p = ParamSet::for_degree(256).expect("valid degree");
    let sw = NttMultiplier::new(&p).expect("software backend");
    let pim = CryptoPim::new(&p).expect("pim backend");
    let keys = KeyPair::generate(&p, &sw, 7).expect("keygen");
    let msg: Vec<u8> = (0..256).map(|i| (i % 5 == 1) as u8).collect();
    let ct = keys.public().encrypt_bits(&msg, &sw, 8).expect("encrypt");
    let pt = keys.secret().decrypt_bits(&ct, &pim).expect("decrypt");
    assert_eq!(pt, msg);
}

#[test]
fn key_exchange_on_pim_backend() {
    let p = ParamSet::for_degree(1024).expect("valid degree");
    let pim = CryptoPim::new(&p).expect("paper parameters");
    let alice = Initiator::new(&p, &pim, 11).expect("initiator");
    let bob = encapsulate(alice.public_key(), &pim, 12).expect("encapsulate");
    let alice_secret = alice.finish(&bob.ciphertext, &pim).expect("finish");
    assert_eq!(alice_secret, bob.shared_secret);
}

#[test]
fn homomorphic_tally_on_pim_backend_at_he_degree() {
    let p = ParamSet::for_degree(2048).expect("valid degree");
    let pim = CryptoPim::new(&p).expect("paper parameters");
    let keys = KeyPair::generate(&p, &pim, 77).expect("keygen");
    let votes = [1u8, 1, 0, 1];
    let mut acc: Option<she::HomCiphertext> = None;
    for (i, &v) in votes.iter().enumerate() {
        let mut bits = vec![0u8; 2048];
        bits[0] = v;
        let ct = she::encrypt(&keys, &bits, &pim, 100 + i as u64).expect("encrypt");
        acc = Some(match acc {
            None => ct,
            Some(prev) => prev.add(&ct).expect("hom add"),
        });
    }
    let opened = she::decrypt(keys.secret(), &acc.expect("ciphertext"), &pim).expect("decrypt");
    assert_eq!(opened[0], votes.iter().fold(0, |a, &b| a ^ b));
}

#[test]
fn dyn_backend_selection() {
    // Schemes accept either backend through the trait object.
    let p = ParamSet::for_degree(256).expect("valid degree");
    let backends: Vec<Box<dyn PolyMultiplier>> = vec![
        Box::new(NttMultiplier::new(&p).expect("software")),
        Box::new(CryptoPim::new(&p).expect("pim")),
    ];
    let a = rand_poly(256, p.q, 5);
    let b = rand_poly(256, p.q, 6);
    let results: Vec<Polynomial> = backends
        .iter()
        .map(|m| m.multiply(&a, &b).expect("multiply"))
        .collect();
    assert_eq!(results[0], results[1]);
}

//! Integration tests for the TCP front end: products served over a
//! real loopback socket must be bit-identical to the software NTT,
//! tenant quotas must refuse with typed frames (never hang, never
//! corrupt), and hostile bytes on the wire must never take the server
//! down.

use modmath::params::ParamSet;
use net::client::{Client, NetError};
use net::loadgen::{self, TcpLoadConfig};
use net::server::{Server, ServerConfig, TenantConfig};
use net::wire::{self, ErrorCode, Frame, JobState};
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use service::loadgen::generate_jobs;
use service::{ServiceConfig, ServiceStats};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start_server(tenants: Vec<TenantConfig>, service: ServiceConfig) -> Server {
    Server::start(
        "127.0.0.1:0",
        ServerConfig {
            tenants,
            service,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn one_tenant(quota: usize) -> Vec<TenantConfig> {
    vec![TenantConfig::new("alpha", "alpha-token", quota)]
}

/// Jobs submitted over TCP come back bit-identical to the software
/// NTT, and `Status` tracks the job's lifecycle.
#[test]
fn served_over_tcp_matches_software_ntt() {
    let server = start_server(one_tenant(64), ServiceConfig::default());
    let addr = server.local_addr();
    let (mut client, tenant, quota) = Client::connect(addr, "alpha-token").expect("hello");
    assert_eq!(tenant, "alpha");
    assert!(quota >= 1);

    let jobs = generate_jobs(11, 12, &[64, 128, 256]);
    let mult_256 = NttMultiplier::for_degree_modulus(256, jobs[0].0.modulus()).ok();
    let _ = mult_256; // multipliers are built per-job below
    for (id, (a, b)) in jobs.into_iter().enumerate() {
        let id = id as u64 + 1;
        let expected = NttMultiplier::for_degree_modulus(a.degree_bound(), a.modulus())
            .expect("params")
            .multiply(&a, &b)
            .expect("software NTT");
        assert_eq!(client.status(id).expect("status"), JobState::Unknown);
        client
            .submit(id, a.modulus(), a.into_coeffs(), b.into_coeffs())
            .expect("submit");
        let state = client.status(id).expect("status");
        assert!(matches!(state, JobState::Pending | JobState::Done));
        let done = client.wait(id, 30_000).expect("wait");
        assert_eq!(done.q, expected.modulus());
        assert_eq!(done.product, expected.clone().into_coeffs());
        // Collected jobs are forgotten: waiting again is UnknownJob.
        let again = client.wait(id, 1_000).unwrap_err();
        assert_eq!(again.code(), Some(ErrorCode::UnknownJob));
    }
    server.shutdown();
}

/// Quota exhaustion is a typed `QuotaExceeded` frame; collecting a
/// result frees the slot and the connection keeps working.
#[test]
fn quota_exhaustion_is_typed_and_recoverable() {
    let server = start_server(one_tenant(2), ServiceConfig::default());
    let (mut client, _, quota) = Client::connect(server.local_addr(), "alpha-token").unwrap();
    assert_eq!(quota, 2);

    let jobs = generate_jobs(3, 3, &[64]);
    for (i, (a, b)) in jobs.iter().take(2).enumerate() {
        client
            .submit(
                i as u64,
                a.modulus(),
                a.coeffs().to_vec(),
                b.coeffs().to_vec(),
            )
            .expect("within quota");
    }
    // Third submit exceeds the outstanding quota (results not yet
    // collected even if the jobs already ran).
    let (a, b) = &jobs[2];
    let refused = client
        .submit(2, a.modulus(), a.coeffs().to_vec(), b.coeffs().to_vec())
        .unwrap_err();
    assert_eq!(refused.code(), Some(ErrorCode::QuotaExceeded));

    // Collect one; the freed slot admits the refused job.
    client.wait(0, 30_000).expect("collect");
    client
        .submit(2, a.modulus(), a.coeffs().to_vec(), b.coeffs().to_vec())
        .expect("slot freed");
    client.wait(1, 30_000).expect("collect");
    client.wait(2, 30_000).expect("collect");
    server.shutdown();
}

/// A tenant that saturates its quota cannot starve another tenant:
/// quotas cap each tenant's share of the admission queue.
#[test]
fn greedy_tenant_cannot_starve_light_tenant() {
    let tenants = vec![
        TenantConfig::new("greedy", "greedy-token", 4),
        TenantConfig::new("light", "light-token", 4),
    ];
    let server = start_server(
        tenants,
        ServiceConfig {
            queue_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    let addr = server.local_addr();
    let (mut greedy, _, _) = Client::connect(addr, "greedy-token").unwrap();
    let jobs = generate_jobs(5, 6, &[64]);
    // Greedy fills its whole quota and is then refused.
    for (i, (a, b)) in jobs.iter().take(4).enumerate() {
        greedy
            .submit(
                i as u64,
                a.modulus(),
                a.coeffs().to_vec(),
                b.coeffs().to_vec(),
            )
            .expect("greedy within quota");
    }
    let (a, b) = &jobs[4];
    let refused = greedy
        .submit(9, a.modulus(), a.coeffs().to_vec(), b.coeffs().to_vec())
        .unwrap_err();
    assert_eq!(refused.code(), Some(ErrorCode::QuotaExceeded));
    // The light tenant still gets through.
    let (mut light, _, _) = Client::connect(addr, "light-token").unwrap();
    let (a, b) = &jobs[5];
    light
        .submit(1, a.modulus(), a.coeffs().to_vec(), b.coeffs().to_vec())
        .expect("light tenant admitted despite greedy saturation");
    light.wait(1, 30_000).expect("light result");
    server.shutdown();
}

/// Wrong tokens and pre-auth verbs get typed refusals and a closed
/// connection, not service.
#[test]
fn bad_token_and_preauth_verbs_are_refused() {
    let server = start_server(one_tenant(4), ServiceConfig::default());
    let addr = server.local_addr();

    let err = Client::connect(addr, "wrong-token").unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadToken));

    // A Submit before Hello is AuthRequired and the connection drops.
    let mut raw = TcpStream::connect(addr).unwrap();
    wire::write_frame(
        &mut raw,
        &Frame::Submit {
            job_id: 1,
            q: 7681,
            a: vec![1, 2],
            b: vec![3, 4],
        },
    )
    .unwrap();
    let reply = wire::read_frame(&mut raw).unwrap();
    match reply {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::AuthRequired),
        other => panic!("expected Error frame, got {}", other.name()),
    }
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "server should close after refusal");
    server.shutdown();
}

/// Garbage on the socket — bad magic, bad version, oversized length
/// prefixes, mid-frame disconnects, a zero modulus — never takes the
/// server down; a well-behaved client still gets served afterwards.
#[test]
fn hostile_bytes_do_not_kill_the_server() {
    let server = start_server(one_tenant(4), ServiceConfig::default());
    let addr = server.local_addr();

    // Bad magic.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"HTTP/1.1 GET /\r\n\r\n").unwrap();
    let _ = s.read(&mut [0u8; 64]);
    drop(s);

    // Right magic, wrong version.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"CPIM\x63\x01\x00\x00\x00\x00").unwrap();
    let _ = s.read(&mut [0u8; 64]);
    drop(s);

    // Oversized length prefix (1 GiB claimed payload).
    let mut s = TcpStream::connect(addr).unwrap();
    let mut evil = Vec::from(wire::MAGIC);
    evil.push(wire::VERSION);
    evil.push(1); // Hello tag
    evil.extend_from_slice(&(1u32 << 30).to_le_bytes());
    s.write_all(&evil).unwrap();
    let _ = s.read(&mut [0u8; 64]);
    drop(s);

    // Mid-frame disconnect: a valid header, then hang up.
    let mut s = TcpStream::connect(addr).unwrap();
    let good = wire::encode_frame(&Frame::Hello {
        token: "alpha-token".into(),
    });
    s.write_all(&good[..good.len() / 2]).unwrap();
    drop(s);

    // Authenticated but hostile submit: modulus zero must be a typed
    // refusal, not a panicked handler.
    let (mut hostile, _, _) = Client::connect(addr, "alpha-token").unwrap();
    let err = hostile.submit(1, 0, vec![1, 2], vec![3, 4]).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Unsupported));
    // Non-power-of-two degree is refused the same way.
    let err = hostile
        .submit(1, 7681, vec![1, 2, 3], vec![4, 5, 6])
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Unsupported));

    // After all of that, an honest client gets a bit-exact product.
    let (mut client, _, _) = Client::connect(addr, "alpha-token").unwrap();
    let (a, b) = generate_jobs(21, 1, &[128]).pop().unwrap();
    let expected = NttMultiplier::for_degree_modulus(128, a.modulus())
        .unwrap()
        .multiply(&a, &b)
        .unwrap();
    client
        .submit(7, a.modulus(), a.into_coeffs(), b.into_coeffs())
        .expect("submit after hostile traffic");
    let done = client
        .wait(7, 30_000)
        .expect("served after hostile traffic");
    assert_eq!(done.product, expected.into_coeffs());
    server.shutdown();
}

/// A `Wait` that times out returns a typed `WaitTimeout` frame and the
/// job stays claimable by a later `Wait`.
#[test]
fn wait_timeout_over_tcp_keeps_job_claimable() {
    let server = start_server(
        one_tenant(8),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let (mut client, _, _) = Client::connect(server.local_addr(), "alpha-token").unwrap();

    // Occupy the single worker with large segmented multiplies so the
    // probe job sits in the queue long enough to observe a timeout.
    let q = ParamSet::for_degree(32768).expect("segmented params").q;
    let blocker = |k: u64| {
        let coeffs: Vec<u64> = (0..32768u64).map(|i| (i * 37 + k) % q).collect();
        Polynomial::from_coeffs(coeffs, q).expect("blocker operand")
    };
    for id in 0..2u64 {
        client
            .submit(
                100 + id,
                q,
                blocker(id).into_coeffs(),
                blocker(id + 9).into_coeffs(),
            )
            .expect("blocker admitted");
    }
    let (a, b) = generate_jobs(31, 1, &[64]).pop().unwrap();
    let expected = NttMultiplier::for_degree_modulus(64, a.modulus())
        .unwrap()
        .multiply(&a, &b)
        .unwrap();
    client
        .submit(7, a.modulus(), a.into_coeffs(), b.into_coeffs())
        .expect("probe admitted");

    let err = client.wait(7, 1).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::WaitTimeout));
    // Still claimable — and correct — once the workers get to it.
    let done = client.wait(7, 120_000).expect("probe completes");
    assert_eq!(done.product, expected.into_coeffs());
    server.shutdown();
}

/// The `Stats` verb returns JSON whose embedded `"service"` object
/// round-trips through `ServiceStats::from_json`.
#[test]
fn stats_verb_json_is_parseable() {
    let server = start_server(one_tenant(16), ServiceConfig::default());
    let (mut client, _, _) = Client::connect(server.local_addr(), "alpha-token").unwrap();
    for (i, (a, b)) in generate_jobs(41, 4, &[64]).into_iter().enumerate() {
        client
            .submit(i as u64, a.modulus(), a.into_coeffs(), b.into_coeffs())
            .unwrap();
        client.wait(i as u64, 30_000).unwrap();
    }
    let doc = client.stats_json().expect("stats");
    let service_obj = loadgen::extract_object(&doc, "service").expect("service object");
    let stats = ServiceStats::from_json(service_obj).expect("parseable service stats");
    assert!(stats.completed >= 4, "completed={}", stats.completed);
    // The net layer's own counters are present too.
    for key in [
        "connections_accepted",
        "frames_in",
        "tenant_outstanding",
        "tenant_completed",
    ] {
        assert!(doc.contains(key), "missing {key} in {doc}");
    }
    server.shutdown();
}

/// `Shutdown` is capability-gated: ordinary tenants get `NotPermitted`,
/// an operator tenant stops the server.
#[test]
fn shutdown_is_capability_gated() {
    let tenants = vec![
        TenantConfig::new("user", "user-token", 4),
        TenantConfig {
            name: "operator".into(),
            token: "op-token".into(),
            quota: 4,
            may_shutdown: true,
        },
    ];
    let server = start_server(tenants, ServiceConfig::default());
    let addr = server.local_addr();

    let (mut user, _, _) = Client::connect(addr, "user-token").unwrap();
    let err = user.shutdown_server().unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::NotPermitted));
    assert!(!server.is_stopping());

    let (mut op, _, _) = Client::connect(addr, "op-token").unwrap();
    op.shutdown_server().expect("operator may stop the server");
    // wait() observes the stop flag, drains, and returns final stats.
    let stats = server.wait();
    assert_eq!(stats.in_flight, 0);
}

/// The bounded acceptor refuses connections past the limit with a
/// typed frame instead of spawning without bound.
#[test]
fn acceptor_is_bounded() {
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            tenants: one_tenant(4),
            max_connections: 1,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let (_held, _, _) = Client::connect(addr, "alpha-token").expect("first connection");
    // The refusal may race the live-count update; poll briefly.
    let mut refused = None;
    for _ in 0..50 {
        match Client::connect(addr, "alpha-token") {
            Err(e) if e.code() == Some(ErrorCode::TooManyConnections) => {
                refused = Some(e);
                break;
            }
            Ok(extra) => drop(extra),
            Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        refused.and_then(|e| e.code()),
        Some(ErrorCode::TooManyConnections)
    );
    server.shutdown();
}

/// Reusing an outstanding job id on one connection is a typed
/// `DuplicateJob` refusal.
#[test]
fn duplicate_job_id_is_refused() {
    let server = start_server(one_tenant(8), ServiceConfig::default());
    let (mut client, _, _) = Client::connect(server.local_addr(), "alpha-token").unwrap();
    let (a, b) = generate_jobs(51, 1, &[64]).pop().unwrap();
    client
        .submit(3, a.modulus(), a.coeffs().to_vec(), b.coeffs().to_vec())
        .unwrap();
    let err = client
        .submit(3, a.modulus(), a.coeffs().to_vec(), b.coeffs().to_vec())
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::DuplicateJob));
    client.wait(3, 30_000).unwrap();
    server.shutdown();
}

/// The TCP load generator on loopback: every product bit-verified,
/// zero mismatches, and the post-run stats document parses.
#[test]
fn tcp_loadgen_verifies_everything() {
    let server = start_server(one_tenant(32), ServiceConfig::default());
    let report = loadgen::run_against(
        server.local_addr(),
        "alpha-token",
        &TcpLoadConfig {
            seed: 17,
            clients: 4,
            jobs_per_client: 8,
            degrees: vec![64, 128],
            window: 4,
            wait_timeout_ms: 30_000,
        },
    );
    assert!(
        report.is_clean(),
        "mismatches={} failed={} verified={}/{}",
        report.mismatches,
        report.failed,
        report.verified,
        report.jobs
    );
    assert_eq!(report.jobs, 32);
    assert!(report.p99_us >= report.p50_us);
    let service_obj =
        loadgen::extract_object(&report.stats_json, "service").expect("service object");
    assert!(ServiceStats::from_json(service_obj).is_some());
    server.shutdown();
}

/// The `NetError` display surface names the code and detail.
#[test]
fn refusals_render_usefully() {
    let e = NetError::Server {
        code: ErrorCode::QuotaExceeded,
        job_id: 9,
        detail: "outstanding quota 2 exhausted".into(),
    };
    let msg = e.to_string();
    assert!(msg.contains("quota"), "{msg}");
    assert!(msg.contains('9'), "{msg}");
}

/// Protocol ops over TCP (wire v2): `SubmitProtocol` serves a scripted
/// scenario through the graph layer, and the returned digest matches a
/// local direct execution of the same `(kind, n, seed)` — a remote
/// bit-identity check without shipping the output.
#[test]
fn protocol_ops_over_tcp_match_direct_digests() {
    use service::{ProtocolJob, ProtocolKind};
    let server = start_server(one_tenant(16), ServiceConfig::default());
    let addr = server.local_addr();
    let (mut client, _, _) = Client::connect(addr, "alpha-token").expect("hello");
    for (i, kind) in [
        ProtocolKind::KeyGen,
        ProtocolKind::Encaps,
        ProtocolKind::Decaps,
        ProtocolKind::Sign,
        ProtocolKind::SheMul,
    ]
    .into_iter()
    .enumerate()
    {
        let id = 100 + i as u64;
        let seed = 4000 + i as u64;
        client
            .submit_protocol(id, kind, 256, seed)
            .expect("protocol submit");
        let done = client.wait_protocol(id, 30_000).expect("protocol done");
        assert_eq!(done.kind, kind);
        let want = ProtocolJob::scripted(kind, 256, seed)
            .expect("scripted")
            .run_direct()
            .expect("direct")
            .digest();
        assert_eq!(done.digest, want, "digest mismatch for {kind}");
        assert!(done.nodes >= 1);
    }
    // Protocol jobs share the id space: a duplicate is refused.
    client
        .submit_protocol(200, service::ProtocolKind::KeyGen, 256, 1)
        .expect("submit");
    let err = client
        .submit_protocol(200, service::ProtocolKind::Sign, 256, 2)
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::DuplicateJob));
    let _ = client.wait_protocol(200, 30_000).expect("collect");
    // A hostile degree is a typed refusal, not a server-side panic.
    let err = client
        .submit_protocol(201, service::ProtocolKind::Encaps, 64, 3)
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Unsupported));
    server.shutdown();
}

/// A peer speaking wire v1 gets one typed `UnsupportedVersion` error —
/// encoded in the v1 envelope so the old client can decode it — instead
/// of a silent close.
#[test]
fn legacy_version_peer_gets_typed_refusal_in_its_own_envelope() {
    let server = start_server(one_tenant(4), ServiceConfig::default());
    let addr = server.local_addr();
    let mut raw = TcpStream::connect(addr).unwrap();
    // Speak v1: a Hello frame with the legacy version byte.
    let hello = wire::encode_frame_versioned(
        &Frame::Hello {
            token: "alpha-token".into(),
        },
        wire::LEGACY_VERSION,
    );
    raw.write_all(&hello).unwrap();
    // The reply envelope must carry the peer's version byte...
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    assert!(
        reply.len() > wire::HEADER_LEN,
        "typed reply, not a bare close"
    );
    assert_eq!(&reply[..4], &wire::MAGIC);
    assert_eq!(
        reply[4],
        wire::LEGACY_VERSION,
        "reply speaks the peer's version"
    );
    // ...and decode (after re-stamping to the current version, which is
    // exactly the strict-envelope check a v1 reader would have passed)
    // as an UnsupportedVersion error.
    reply[4] = wire::VERSION;
    match wire::read_frame(&mut reply.as_slice()).expect("decodable reply") {
        Frame::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
        other => panic!("expected Error frame, got {}", other.name()),
    }
    server.shutdown();
}

//! Degrees beyond the 32k-provisioned hardware: §III-D's "divides the
//! inputs into segments of 32k and iteratively uses the hardware". The
//! arithmetic is one big negacyclic multiplication (q = 786433 admits
//! transforms up to 128k); the hardware runs it in multiple passes.

use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use service::{Service, ServiceConfig};

fn rand_poly(n: usize, q: u64, seed: u64) -> Polynomial {
    let mut state = seed;
    let coeffs: Vec<u64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect();
    Polynomial::from_coeffs(coeffs, q).expect("valid degree")
}

#[test]
fn degree_65536_multiplies_correctly_in_two_passes() {
    let params = ParamSet::custom(65536, 786433, 32).expect("NTT-friendly");
    let acc = CryptoPim::new(&params).expect("parameters");
    let sw = NttMultiplier::new(&params).expect("parameters");
    let a = rand_poly(65536, params.q, 1);
    let b = rand_poly(65536, params.q, 2);
    assert_eq!(
        acc.multiply(&a, &b).expect("pim"),
        sw.multiply(&a, &b).expect("software")
    );

    let report = acc.report().expect("report");
    assert_eq!(report.arch.passes, 2);
    assert_eq!(
        report.arch.banks_per_softbank, 64,
        "hardware stays 32k-sized"
    );
    // Throughput halves relative to the native 32k row.
    let native = CryptoPim::new(&ParamSet::for_degree(32768).expect("degree"))
        .expect("parameters")
        .report()
        .expect("report");
    let ratio = native.pipelined.throughput / report.pipelined.throughput;
    assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    assert!(report.pipelined.latency_us > native.pipelined.latency_us);
}

#[test]
fn degree_65536_serves_through_the_scheduler() {
    // The scheduler's parameter resolver covers segmented degrees
    // (q = 786433) too, so >32k jobs ride the same submit→batch→wait
    // pipeline as paper-table degrees.
    let params = ParamSet::custom(65536, 786433, 32).expect("NTT-friendly");
    let sw = NttMultiplier::new(&params).expect("parameters");
    let a = rand_poly(65536, params.q, 5);
    let b = rand_poly(65536, params.q, 6);
    let svc = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let done = svc
        .submit(a.clone(), b.clone())
        .expect("admitted")
        .wait()
        .expect("served");
    assert_eq!(done.product, sw.multiply(&a, &b).expect("software"));
    assert_eq!(done.attempts, 1);
    assert_eq!(done.packed_lanes, 1, "a 2-pass degree packs no lane-mates");
    let stats = svc.shutdown();
    assert_eq!(stats.completed, 1);
}

#[test]
fn segmented_latency_scales_with_passes() {
    let l = |n: usize| {
        let p = ParamSet::custom(n, 786433, 32).expect("NTT-friendly");
        CryptoPim::new(&p)
            .expect("parameters")
            .report()
            .expect("report")
            .pipelined
            .latency_us
    };
    let l64 = l(65536);
    let l128 = l(131072);
    // Four passes vs two, with slightly deeper transforms.
    assert!(l128 > 1.9 * l64, "l128 = {l128}, l64 = {l64}");
}

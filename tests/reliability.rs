//! Suite-level reliability integration: seeded [`FaultPlan`]s driving
//! the recover-or-quarantine serving stack end to end — the real
//! injector (not test stubs) through the real scheduler, refereed
//! against the fault-free software path.

use cryptopim::check::CheckPolicy;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use pim::fault::{layout, CellAddr};
use reliability::campaign::{self, CampaignConfig, CampaignKind};
use reliability::plan::{FaultKind, FaultPlan};
use service::{Service, ServiceConfig, ServiceError};
use std::sync::Arc;
use std::time::Duration;

fn rand_poly(n: usize, q: u64, seed: u64) -> Polynomial {
    let mut state = seed;
    let coeffs: Vec<u64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect();
    Polynomial::from_coeffs(coeffs, q).expect("valid degree")
}

/// A fault plan whose single site corrupts *every* operation on bank 0:
/// stuck-at-1 on bit 15 of a premul word — for q = 7681 < 2^13 that bit
/// is never set in a canonical word, so the OR always lands, and a
/// premul (coefficient-domain) error densely perturbs the product.
fn always_corrupting_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_site(
        CellAddr {
            bank: 0,
            block: layout::premul(),
            row: 3,
            bit: 15,
        },
        FaultKind::StuckAt1,
    )
}

#[test]
fn permanent_fault_exhausts_attempts_then_degrades_to_overloaded() {
    let params = ParamSet::for_degree(256).expect("paper degree");
    let a = rand_poly(256, params.q, 1);
    let b = rand_poly(256, params.q, 2);
    let svc = Service::start(ServiceConfig {
        workers: 1,
        linger: Duration::ZERO,
        check: CheckPolicy::Recompute,
        max_attempts: 2,
        // Two faulted batches to quarantine, so the retry still runs
        // (quarantining on the first would fail the requeued job as
        // Overloaded before its second attempt).
        quarantine_after: 2,
        injector: Some(Arc::new(always_corrupting_plan(21))),
        ..ServiceConfig::default()
    });
    // The lone bank is permanently faulted: both attempts are detected
    // as corrupt, the job fails, and the bank quarantines.
    let err = svc
        .submit(a.clone(), b.clone())
        .expect("admitted")
        .wait()
        .expect_err("permanently corrupt bank cannot serve");
    assert!(
        matches!(
            err,
            ServiceError::FaultUnrecovered {
                bank: 0,
                attempts: 2
            }
        ),
        "got {err:?}"
    );
    while svc.stats().active_workers > 0 {
        std::thread::yield_now();
    }
    // Every bank quarantined: graceful refusal, never a wrong answer.
    let refused = svc.submit(a, b).err();
    assert!(
        matches!(refused, Some(ServiceError::Overloaded { .. })),
        "got {refused:?}"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.quarantined_banks, 1);
    assert_eq!(stats.recovered, 0);
    assert!(stats.faults_detected >= 2);
}

#[test]
fn surviving_bank_absorbs_work_bit_exact() {
    let n = 256;
    let params = ParamSet::for_degree(n).expect("paper degree");
    let sw = NttMultiplier::new(&params).expect("paper parameters");
    let svc = Service::start(ServiceConfig {
        workers: 2,
        linger: Duration::ZERO,
        check: CheckPolicy::Recompute,
        max_attempts: 3,
        quarantine_after: 1,
        injector: Some(Arc::new(always_corrupting_plan(22))),
        ..ServiceConfig::default()
    });
    // Only bank 0 is faulted; with quarantine-after-1 its first detected
    // batch removes it, so every job must eventually complete — served
    // by bank 1, bit-identical to the software reference.
    for k in 0..12u64 {
        let a = rand_poly(n, params.q, 100 + 2 * k);
        let b = rand_poly(n, params.q, 101 + 2 * k);
        let done = svc
            .submit(a.clone(), b.clone())
            .expect("admitted")
            .wait()
            .expect("bank 1 absorbs the fleet's work");
        assert_eq!(done.product, sw.multiply(&a, &b).expect("software"));
    }
    let stats = svc.shutdown();
    assert!(stats.quarantined_banks <= 1);
    // Scheduling decides whether bank 0 ever claimed a batch, but the
    // accounting must cohere either way.
    if stats.faults_detected > 0 {
        assert_eq!(stats.quarantined_banks, 1);
        assert!(stats.recovered >= 1, "retried jobs recovered on bank 1");
    }
    assert_eq!(stats.completed, 12);
}

#[test]
fn campaign_smoke_is_sound_and_replays() {
    let cfg = CampaignConfig {
        seed: 5,
        degrees: vec![256],
        kinds: vec![CampaignKind::StuckAt1, CampaignKind::Transient],
        rates: vec![1e-3],
        jobs_per_cell: 8,
        ..CampaignConfig::default()
    };
    let r1 = campaign::run(&cfg);
    let r2 = campaign::run(&cfg);
    assert!(r1.is_sound(), "{r1:?}");
    assert_eq!(r1.wrong, 0);
    assert_eq!(r1.detection_coverage, 1.0);
    assert_eq!(r1.detected, r2.detected, "campaign must replay exactly");
    for (x, y) in r1.cells.iter().zip(&r2.cells) {
        assert_eq!(
            (x.served, x.wrong, x.unrecovered, x.refused),
            (y.served, y.wrong, y.unrecovered, y.refused)
        );
        assert_eq!(
            (x.screen_corrupted, x.screen_detected),
            (y.screen_corrupted, y.screen_detected)
        );
    }
}

//! Integration coverage of the extension features (DESIGN.md §6):
//! RNS multiplication, the CCA-style KEM, lattice signatures, batched
//! execution, and the no-bitrev transform composition — each exercised
//! across crate boundaries, several on the PIM backend.

use cryptopim::accelerator::CryptoPim;
use cryptopim::batch::multiply_batch;
use modmath::params::ParamSet;
use modmath::roots::NttTables;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use ntt::{ct, karatsuba, rns};
use rlwe::kem::{encapsulate, KemKeyPair};
use rlwe::serialize;
use rlwe::signature::SigningKey;

#[test]
fn four_multipliers_agree() {
    // schoolbook-checked elsewhere; here: NTT vs Karatsuba vs no-bitrev
    // composition vs PIM engine, at a paper degree.
    let n = 1024;
    let p = ParamSet::for_degree(n).expect("paper degree");
    let a = Polynomial::from_coeffs((0..n as u64).map(|i| i * 19 % p.q).collect(), p.q)
        .expect("valid degree");
    let b = Polynomial::from_coeffs((0..n as u64).map(|i| (i * 5 + 3) % p.q).collect(), p.q)
        .expect("valid degree");

    let via_ntt = NttMultiplier::new(&p)
        .expect("params")
        .multiply(&a, &b)
        .expect("ntt");
    let via_kara = karatsuba::multiply(&a, &b).expect("karatsuba");
    let tables = NttTables::new(&p).expect("tables");
    let via_nobitrev = ct::multiply_no_bitrev(a.coeffs(), b.coeffs(), &tables).expect("no-bitrev");
    let via_pim = CryptoPim::new(&p)
        .expect("params")
        .multiply(&a, &b)
        .expect("pim");

    assert_eq!(via_ntt, via_kara);
    assert_eq!(via_ntt.coeffs(), via_nobitrev.as_slice());
    assert_eq!(via_ntt, via_pim);
}

#[test]
fn rns_channel_consistency_with_single_prime() {
    // An RNS product reduced into one channel equals that channel's own
    // NTT product.
    let n = 256;
    let mult = rns::RnsMultiplier::new(n, &[7681, 12289]).expect("channels");
    let q = mult.modulus();
    let a: Vec<u128> = (0..n as u128).map(|i| (i * i * 31 + 5) % q).collect();
    let b: Vec<u128> = (0..n as u128).map(|i| (i * 77 + 1) % q).collect();
    let wide = mult.multiply(&a, &b).expect("rns");

    let p = ParamSet::for_degree(n).expect("degree");
    let single = NttMultiplier::new(&p).expect("params");
    let pa = Polynomial::from_coeffs(a.iter().map(|&c| (c % 7681) as u64).collect(), 7681)
        .expect("valid");
    let pb = Polynomial::from_coeffs(b.iter().map(|&c| (c % 7681) as u64).collect(), 7681)
        .expect("valid");
    let narrow = single.multiply(&pa, &pb).expect("ntt");
    for (i, &w) in wide.iter().enumerate() {
        assert_eq!((w % 7681) as u64, narrow.coeff(i), "slot {i}");
    }
}

#[test]
fn kem_over_serialized_transport() {
    // Full flow: encapsulate on the PIM backend, serialize the
    // ciphertext across a "wire", decapsulate on the software backend.
    let p = ParamSet::for_degree(512).expect("degree");
    let pim = CryptoPim::new(&p).expect("params");
    let sw = NttMultiplier::new(&p).expect("params");
    let keys = KemKeyPair::generate(&p, &sw, 42).expect("keygen");

    let enc = encapsulate(keys.public(), &pim, 1001).expect("encapsulate");
    let wire = serialize::ciphertext_to_bytes(&enc.ciphertext);
    assert_eq!(wire.len(), serialize::ciphertext_wire_size(&p));
    let received = serialize::ciphertext_from_bytes(&wire).expect("deserialize");
    let ss = keys.decapsulate(&received, &sw).expect("decapsulate");
    assert_eq!(ss, enc.shared_secret);
}

#[test]
fn signature_lifecycle_mixed_backends() {
    let p = ParamSet::for_degree(512).expect("degree");
    let sw = NttMultiplier::new(&p).expect("params");
    let pim = CryptoPim::new(&p).expect("params");
    // Keys generated and signed on software; verified on PIM.
    let sk = SigningKey::generate(&p, &sw, 3).expect("keygen");
    let (sig, _) = sk.sign(b"cross-backend", &sw, 4).expect("sign");
    assert!(sk
        .verify_key()
        .verify(b"cross-backend", &sig, &pim)
        .expect("verify"));
}

#[test]
fn batch_and_single_agree() {
    let p = ParamSet::for_degree(256).expect("degree");
    let acc = CryptoPim::new(&p).expect("params");
    let mk = |seed: u64| {
        Polynomial::from_coeffs((0..256u64).map(|i| (i * seed + 1) % p.q).collect(), p.q)
            .expect("valid")
    };
    let pairs = vec![(mk(3), mk(5)), (mk(7), mk(11))];
    let report = multiply_batch(&acc, &pairs).expect("batch");
    for (i, (a, b)) in pairs.iter().enumerate() {
        assert_eq!(report.products[i], acc.multiply(a, b).expect("single"));
    }
    assert!(report.makespan_us > 0.0);
    assert!(report.effective_throughput > 0.0);
}

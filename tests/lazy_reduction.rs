//! Property tests for the lazy-reduction (Shoup) NTT hot path: the
//! optimized negacyclic multiplier must agree with the O(n²) schoolbook
//! oracle for every paper modulus at every compatible degree.
//!
//! The moduli are Table I's 7681, 12289, and 786433; a degree `n` is
//! compatible with `q` when `2n | q − 1` (a primitive 2n-th root of
//! unity must exist), which is why 7681 stops at n = 256 and 12289 at
//! n = 2048 — the full {256, 1024, 4096} ladder only fits 786433.

use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use ntt::schoolbook;
use proptest::prelude::*;

fn check_against_schoolbook(n: usize, q: u64, a: Vec<u64>, b: Vec<u64>) {
    let mult = NttMultiplier::for_degree_modulus(n, q).expect("compatible (n, q)");
    let pa = Polynomial::from_coeffs(a, q).expect("valid degree");
    let pb = Polynomial::from_coeffs(b, q).expect("valid degree");
    let fast = mult.multiply(&pa, &pb).expect("ntt multiply");
    let oracle = schoolbook::multiply(&pa, &pb).expect("schoolbook multiply");
    assert_eq!(fast, oracle, "n = {n}, q = {q}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lazy_ntt_matches_schoolbook_q7681_n256(
        a in proptest::collection::vec(0u64..7681, 256),
        b in proptest::collection::vec(0u64..7681, 256),
    ) {
        check_against_schoolbook(256, 7681, a, b);
    }

    #[test]
    fn lazy_ntt_matches_schoolbook_q12289_n256(
        a in proptest::collection::vec(0u64..12289, 256),
        b in proptest::collection::vec(0u64..12289, 256),
    ) {
        check_against_schoolbook(256, 12289, a, b);
    }

    #[test]
    fn lazy_ntt_matches_schoolbook_q786433_n256(
        a in proptest::collection::vec(0u64..786433, 256),
        b in proptest::collection::vec(0u64..786433, 256),
    ) {
        check_against_schoolbook(256, 786433, a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn lazy_ntt_matches_schoolbook_q12289_n1024(
        a in proptest::collection::vec(0u64..12289, 1024),
        b in proptest::collection::vec(0u64..12289, 1024),
    ) {
        check_against_schoolbook(1024, 12289, a, b);
    }

    #[test]
    fn lazy_ntt_matches_schoolbook_q786433_n1024(
        a in proptest::collection::vec(0u64..786433, 1024),
        b in proptest::collection::vec(0u64..786433, 1024),
    ) {
        check_against_schoolbook(1024, 786433, a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn lazy_ntt_matches_schoolbook_q786433_n4096(
        a in proptest::collection::vec(0u64..786433, 4096),
        b in proptest::collection::vec(0u64..786433, 4096),
    ) {
        check_against_schoolbook(4096, 786433, a, b);
    }
}

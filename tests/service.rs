//! Integration tests for the batch-forming job scheduler: correctness
//! of the served products against the direct engine path, determinism
//! across fleet sizes, backpressure behaviour under overload, and the
//! shutdown-drains-all guarantee.

use std::collections::HashMap;
use std::time::Duration;

use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use ntt::negacyclic::PolyMultiplier;
use ntt::poly::Polynomial;
use proptest::prelude::*;
use service::loadgen::generate_jobs;
use service::{Backpressure, Service, ServiceConfig, ServiceError};

/// Multiplies every job pair one at a time on the verified engine,
/// caching one accelerator per degree.
fn direct_products(jobs: &[(Polynomial, Polynomial)]) -> Vec<Polynomial> {
    let mut accs: HashMap<usize, CryptoPim> = HashMap::new();
    jobs.iter()
        .map(|(a, b)| {
            let n = a.degree_bound();
            let acc = accs.entry(n).or_insert_with(|| {
                let p = ParamSet::for_degree(n).expect("valid degree");
                CryptoPim::new(&p).expect("paper parameters")
            });
            acc.multiply(a, b).expect("direct multiply")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any randomized mixed-degree job stream served through the
    /// scheduler yields products bit-identical to the direct
    /// `CryptoPim::multiply` path, regardless of how the batch former
    /// grouped the jobs.
    #[test]
    fn served_products_match_direct_path(
        seed in 0u64..1_000_000,
        jobs in 8usize..40,
    ) {
        let stream = generate_jobs(seed, jobs, &[64, 128, 256]);
        let expected = direct_products(&stream);
        let svc = Service::start(ServiceConfig {
            workers: 2,
            linger: Duration::from_micros(200),
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = stream
            .iter()
            .map(|(a, b)| svc.submit(a.clone(), b.clone()).expect("admitted"))
            .collect();
        for (ticket, want) in tickets.into_iter().zip(expected) {
            let done = ticket.wait().expect("job completes");
            prop_assert_eq!(done.product, want);
        }
        svc.shutdown();
    }
}

/// Fleet size is a throughput knob, not a correctness knob: the same
/// stream served by 1, 2, or 4 superbank workers produces identical
/// products, and every admitted job completes.
#[test]
fn products_identical_across_fleet_sizes() {
    let stream = generate_jobs(11, 48, &[64, 128, 256]);
    let expected = direct_products(&stream);
    for workers in [1, 2, 4] {
        let svc = Service::start(ServiceConfig {
            workers,
            linger: Duration::from_micros(200),
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = stream
            .iter()
            .map(|(a, b)| svc.submit(a.clone(), b.clone()).expect("admitted"))
            .collect();
        for (ticket, want) in tickets.into_iter().zip(expected.iter()) {
            let done = ticket.wait().expect("job completes");
            assert_eq!(&done.product, want, "fleet of {workers} diverged");
        }
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 48, "fleet of {workers} lost jobs");
        assert_eq!(stats.rejected, 0);
    }
}

/// With the `Reject` policy a full queue surfaces the typed
/// `Overloaded` error synchronously, and the already-admitted jobs
/// still complete.
#[test]
fn reject_policy_surfaces_typed_overload() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        backpressure: Backpressure::Reject,
        // Hour-long linger + saturated fleet: queued partials cannot
        // flush (eager needs an idle worker), so the overload on the
        // third queued submit is deterministic.
        linger: Duration::from_secs(3600),
        ..ServiceConfig::default()
    });
    let p = ParamSet::for_degree(1024).expect("valid degree");
    let mk = |c: u64| Polynomial::from_coeffs(vec![c % p.q; 1024], p.q).expect("valid poly");
    // Occupy the lone worker so subsequent jobs stay queued. A 32k job
    // forms a full single-lane batch inline (popped immediately, so it
    // never counts against the queue bound) and runs long enough in
    // debug mode to outlast the submits below.
    let q32 = ParamSet::for_degree(32768).expect("valid degree").q;
    let big = |c: u64| Polynomial::from_coeffs(vec![c % q32; 32768], q32).expect("valid poly");
    let blocker = svc.submit(big(9), big(10)).expect("admitted");
    while svc.stats().in_flight == 0 && !blocker.is_done() {
        std::thread::yield_now();
    }
    let t1 = svc.submit(mk(1), mk(2)).expect("first admitted");
    let t2 = svc.submit(mk(3), mk(4)).expect("second admitted");
    let err = match svc.submit(mk(5), mk(6)) {
        Err(e) => e,
        Ok(_) => panic!("third queued submit should hit the full queue"),
    };
    assert!(
        matches!(err, ServiceError::Overloaded { capacity: 2 }),
        "unexpected error: {err:?}"
    );
    let stats = svc.shutdown();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.completed, 3);
    blocker.wait().expect("admitted job completes");
    t1.wait().expect("admitted job completes");
    t2.wait().expect("admitted job completes");
}

/// With the `Block` policy, concurrent submitters pushing far more
/// jobs than the queue holds never lose one: every submit eventually
/// admits, every ticket resolves, and the products stay correct.
#[test]
fn block_policy_never_drops_under_overload() {
    const CLIENTS: usize = 4;
    const JOBS_PER_CLIENT: usize = 40;
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 4,
        backpressure: Backpressure::Block,
        linger: Duration::from_micros(100),
        ..ServiceConfig::default()
    });
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let svc = &svc;
            s.spawn(move || {
                let stream = generate_jobs(client as u64, JOBS_PER_CLIENT, &[64, 128]);
                let expected = direct_products(&stream);
                let tickets: Vec<_> = stream
                    .into_iter()
                    .map(|(a, b)| svc.submit(a, b).expect("Block admits eventually"))
                    .collect();
                for (ticket, want) in tickets.into_iter().zip(expected) {
                    assert_eq!(ticket.wait().expect("job completes").product, want);
                }
            });
        }
    });
    let stats = svc.shutdown();
    assert_eq!(stats.admitted, (CLIENTS * JOBS_PER_CLIENT) as u64);
    assert_eq!(stats.completed, stats.admitted, "Block policy dropped jobs");
    assert_eq!(stats.rejected, 0);
}

/// Shutdown flushes every pending partial batch before the workers
/// exit: no admitted ticket is ever left unresolved, even when the
/// linger deadline would not have fired for a minute.
#[test]
fn shutdown_drains_every_admitted_job() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        queue_capacity: 1024,
        backpressure: Backpressure::Block,
        linger: Duration::from_secs(60),
        ..ServiceConfig::default()
    });
    let stream = generate_jobs(3, 30, &[64, 256]);
    let expected = direct_products(&stream);
    let tickets: Vec<_> = stream
        .iter()
        .map(|(a, b)| svc.submit(a.clone(), b.clone()).expect("admitted"))
        .collect();
    let stats = svc.shutdown();
    assert_eq!(stats.completed, 30);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.in_flight, 0);
    for (ticket, want) in tickets.into_iter().zip(expected) {
        assert!(ticket.is_done(), "shutdown returned before draining");
        assert_eq!(ticket.wait().expect("drained, not dropped").product, want);
    }
}

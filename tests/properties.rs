//! Cross-crate property-based tests: algebraic invariants that must hold
//! for any inputs, exercised through the full stack.

use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use proptest::prelude::*;

const N: usize = 128;
const Q: u64 = 7681;

fn poly(coeffs: Vec<u64>) -> Polynomial {
    Polynomial::from_coeffs(coeffs, Q).expect("valid degree")
}

fn coeff_vec() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..Q, N)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The PIM-accelerated product always equals the software product.
    #[test]
    fn pim_equals_software(a in coeff_vec(), b in coeff_vec()) {
        let p = ParamSet::for_degree(N).expect("valid degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let sw = NttMultiplier::new(&p).expect("paper parameters");
        let pa = poly(a);
        let pb = poly(b);
        prop_assert_eq!(
            acc.multiply(&pa, &pb).expect("pim"),
            sw.multiply(&pa, &pb).expect("sw")
        );
    }

    /// Ring commutativity through the accelerator.
    #[test]
    fn multiplication_commutes(a in coeff_vec(), b in coeff_vec()) {
        let p = ParamSet::for_degree(N).expect("valid degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let pa = poly(a);
        let pb = poly(b);
        prop_assert_eq!(
            acc.multiply(&pa, &pb).expect("ab"),
            acc.multiply(&pb, &pa).expect("ba")
        );
    }

    /// Distributivity: a·(b + c) = a·b + a·c.
    #[test]
    fn multiplication_distributes(
        a in coeff_vec(),
        b in coeff_vec(),
        c in coeff_vec(),
    ) {
        let p = ParamSet::for_degree(N).expect("valid degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let pa = poly(a);
        let pb = poly(b);
        let pc = poly(c);
        let lhs = acc.multiply(&pa, &(pb.clone() + pc.clone())).expect("a(b+c)");
        let rhs = acc.multiply(&pa, &pb).expect("ab") + acc.multiply(&pa, &pc).expect("ac");
        prop_assert_eq!(lhs, rhs);
    }

    /// Multiplying by x^k rotates coefficients with a negacyclic sign.
    #[test]
    fn monomial_shift(a in coeff_vec(), k in 0usize..N) {
        let p = ParamSet::for_degree(N).expect("valid degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let pa = poly(a.clone());
        let mut mono = vec![0u64; N];
        mono[k] = 1;
        let shifted = acc.multiply(&pa, &poly(mono)).expect("shift");
        for i in 0..N {
            let (src, negate) = if i >= k {
                (i - k, false)
            } else {
                (i + N - k, true)
            };
            let expect = if negate {
                (Q - a[src]) % Q
            } else {
                a[src]
            };
            prop_assert_eq!(shifted.coeff(i), expect, "i = {}, k = {}", i, k);
        }
    }

    /// The report is input-independent (data-oblivious hardware): cycles
    /// depend only on the parameter set.
    #[test]
    fn timing_is_data_oblivious(a in coeff_vec(), b in coeff_vec()) {
        let p = ParamSet::for_degree(N).expect("valid degree");
        let acc = CryptoPim::new(&p).expect("paper parameters");
        let pa = poly(a);
        let pb = poly(b);
        let (_, _, t1) = acc.multiply_with_trace(&pa, &pb).expect("first");
        let zero = Polynomial::zero(N, Q).expect("zero");
        let (_, _, t2) = acc.multiply_with_trace(&zero, &zero).expect("second");
        prop_assert_eq!(t1.total().cycles, t2.total().cycles);
    }
}

//! Cross-crate tests for the residue-sharded wide-modulus pipeline:
//! the batch-fused RNS multiply, the sequential residue loop, and the
//! schoolbook oracle must agree bit-for-bit for every channel count,
//! and the fleet-sharded path through the scheduler must be a pure
//! throughput knob — same products for any worker count.

use std::time::Duration;

use modmath::crt::RnsBasis;
use ntt::rns::{self, RnsMultiplier};
use proptest::prelude::*;
use service::{Service, ServiceConfig};

/// Basis discovery floor: primes of at least ~20 bits per lane, so a
/// k-lane basis carries a ~20k-bit wide modulus.
const FLOOR: u64 = 1 << 20;

fn splitmix64(seed: &mut u64) {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

fn next_u64(seed: &mut u64) -> u64 {
    splitmix64(seed);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic wide-operand pair: coefficients drawn uniformly below
/// the wide modulus from a splitmix64 stream (hi/lo composition so
/// every u128 bit is exercised).
fn wide_operands(seed: u64, n: usize, q: u128) -> (Vec<u128>, Vec<u128>) {
    let mut state = seed ^ 0x005E_ED0F_1DE5;
    let draw = |state: &mut u64| {
        let hi = next_u64(state) as u128;
        let lo = next_u64(state) as u128;
        ((hi << 64) | lo) % q
    };
    let a = (0..n).map(|_| draw(&mut state)).collect();
    let b = (0..n).map(|_| draw(&mut state)).collect();
    (a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batch-fused sharded multiply, the sequential residue loop,
    /// and (whenever the wide modulus fits the oracle's u128 headroom)
    /// the schoolbook negacyclic product agree bit-for-bit for every
    /// channel count in the supported 2..=4 range.
    #[test]
    fn sharded_matches_sequential_and_schoolbook(
        seed in 0u64..1_000_000,
        k in 2usize..=4,
        deg_idx in 0usize..3,
    ) {
        let n = [256usize, 512, 1024][deg_idx];
        let mult = RnsMultiplier::with_discovered_basis(n, k, FLOOR)
            .expect("NTT-friendly basis exists at every paper degree");
        let q = mult.modulus();
        let (a, b) = wide_operands(seed, n, q);
        let sequential = mult.multiply(&a, &b).expect("sequential loop");
        let batch = mult
            .multiply_batch(std::slice::from_ref(&(a.clone(), b.clone())))
            .expect("batch-fused path");
        prop_assert_eq!(&batch[0], &sequential);
        if q < 1u128 << 63 {
            prop_assert_eq!(&sequential, &rns::schoolbook_u128(&a, &b, q));
        }
    }

    /// The fleet-sharded path — `submit_wide` decomposing a wide job
    /// into residue-lane sub-jobs through the batch former — recombines
    /// to exactly the sequential residue loop's product (and the
    /// schoolbook oracle's, when the modulus fits).
    #[test]
    fn fleet_sharded_wide_multiply_matches_oracles(
        seed in 0u64..1_000_000,
        k in 2usize..=4,
    ) {
        let n = 256usize;
        let basis = RnsBasis::discover(n, k, FLOOR).expect("basis");
        let mult = RnsMultiplier::with_basis(n, basis.clone()).expect("multiplier");
        let q = basis.modulus();
        let (a, b) = wide_operands(seed, n, q);
        let expected = mult.multiply(&a, &b).expect("sequential loop");
        let svc = Service::start(ServiceConfig {
            workers: 2,
            linger: Duration::from_micros(200),
            ..ServiceConfig::default()
        });
        let done = svc
            .submit_wide(&a, &b, &basis)
            .expect("admitted")
            .wait()
            .expect("recombines");
        prop_assert_eq!(&done.product, &expected);
        prop_assert_eq!(done.lanes.len(), k);
        if q < 1u128 << 63 {
            prop_assert_eq!(&expected, &rns::schoolbook_u128(&a, &b, q));
        }
        svc.shutdown();
    }
}

/// Fleet size is a throughput knob for wide jobs too: the same wide
/// stream served by 1, 2, or 4 superbank workers recombines to
/// identical products, and every wide job completes.
#[test]
fn wide_products_identical_across_fleet_sizes() {
    let n = 256usize;
    let basis = RnsBasis::discover(n, 3, FLOOR).expect("basis");
    let mult = RnsMultiplier::with_basis(n, basis.clone()).expect("multiplier");
    let jobs: Vec<_> = (0..12u64)
        .map(|i| wide_operands(0xFEED ^ i, n, basis.modulus()))
        .collect();
    let expected: Vec<_> = jobs
        .iter()
        .map(|(a, b)| mult.multiply(a, b).expect("sequential loop"))
        .collect();
    for workers in [1usize, 2, 4] {
        let svc = Service::start(ServiceConfig {
            workers,
            linger: Duration::from_micros(200),
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> = jobs
            .iter()
            .map(|(a, b)| svc.submit_wide(a, b, &basis).expect("admitted"))
            .collect();
        for (ticket, want) in tickets.into_iter().zip(expected.iter()) {
            let done = ticket.wait().expect("recombines");
            assert_eq!(&done.product, want, "fleet of {workers} diverged");
        }
        let stats = svc.shutdown();
        assert_eq!(
            stats.wide_completed, 12,
            "fleet of {workers} lost wide jobs"
        );
        assert_eq!(stats.wide_failed, 0);
        // Every residue lane rode the ordinary narrow path.
        assert_eq!(stats.admitted, 12 * 3, "fleet of {workers} lane accounting");
    }
}

/// One deterministic smoke at the paper's largest degree with the
/// 2-channel basis the fleet bench gates on: the recombined product
/// from the scheduler equals the sequential residue loop's.
#[test]
fn paper_degree_wide_smoke() {
    let n = 4096usize;
    let basis = RnsBasis::discover(n, 2, FLOOR).expect("basis");
    let mult = RnsMultiplier::with_basis(n, basis.clone()).expect("multiplier");
    let (a, b) = wide_operands(0xD15C0, n, basis.modulus());
    let expected = mult.multiply(&a, &b).expect("sequential loop");
    let svc = Service::start(ServiceConfig {
        workers: 2,
        linger: Duration::from_micros(200),
        ..ServiceConfig::default()
    });
    let done = svc
        .submit_wide(&a, &b, &basis)
        .expect("admitted")
        .wait()
        .expect("recombines");
    assert_eq!(done.product, expected);
    svc.shutdown();
}

//! Structural fidelity test: a forward negacyclic NTT executed through a
//! *physically assembled* bank — real `MemoryBlock`s chained by real
//! `FixedFunctionSwitch`es with the per-stage hard-wired shifts — must
//! equal the software transform. This closes the gap between the
//! index-arithmetic execution engine and the hardware structure the
//! paper describes in §III-C/D.

use cryptopim::exchange::stage_connections;
use cryptopim::mapping::NttMapping;
use modmath::params::ParamSet;
use modmath::{bitrev, zq};
use ntt::gs;
use pim::bank::Bank;
use pim::block::MultiplierKind;
use pim::reduce::ReductionStyle;
use pim::BLOCK_DIM;

/// Runs the forward half of Algorithm 1 (ψ-scale, bit-reversed write,
/// log n GS stages) for one polynomial through a bank chain.
fn bank_forward_ntt(mapping: &NttMapping, input: &[u64]) -> Vec<u64> {
    let params = mapping.params();
    let n = params.n;
    assert!(n <= BLOCK_DIM, "single-lane test");
    let log_n = params.log2_n();
    let q = params.q;
    let red = mapping.reducer();

    // Chain: premul block, then one block per stage; switch i carries
    // the stage-i exchange with hard-wired shift 2^i.
    let shifts: Vec<usize> = (0..log_n).map(|i| 1usize << i).collect();
    let mut bank =
        Bank::new(params.bitwidth, log_n as usize + 1, &shifts).expect("valid bank shape");

    // ψ pre-multiply in block 0 (REDC against the φ·R constants).
    let mut x = bank
        .block_mut(0)
        .mul_montgomery(input, mapping.phi_a(), MultiplierKind::CryptoPim, red)
        .expect("premul");

    // Bit-reversed write into the first stage block (free).
    bitrev::permute_in_place(&mut x);

    for stage in 0..log_n {
        // Physical exchange through the stage's switch.
        let conns = stage_connections(n, stage);
        let mut partner = bank
            .transfer(stage as usize, &x, &conns)
            .expect("stage exchange");
        // The switch spans the full 512-row block; our vector occupies
        // the first n rows.
        partner.truncate(n);

        // Vector-wide compute in the stage block.
        let blk = bank.block_mut(stage as usize + 1);
        let sums_raw = blk.add(&x, &partner).expect("add");
        let sums = blk.barrett(&sums_raw, red).expect("barrett");
        let diffs = blk.sub_plus_q(&partner, &x, q).expect("sub");
        let w_by_row: Vec<u64> = (0..n)
            .map(|j| mapping.twiddle_fwd()[j >> (stage + 1)])
            .collect();
        let prods = blk
            .mul(&diffs, &w_by_row, MultiplierKind::CryptoPim)
            .expect("mul");
        let mont = blk.montgomery(&prods, red).expect("montgomery");

        // Per-row write-enable: low rows keep the sum, high rows the
        // twiddled difference.
        let dist = 1usize << stage;
        x = (0..n)
            .map(|j| if j & dist == 0 { sums[j] } else { mont[j] })
            .collect();
    }
    x
}

#[test]
fn bank_executed_forward_ntt_matches_software() {
    for n in [64usize, 256, 512] {
        let params = ParamSet::for_degree(n).expect("valid degree");
        let mapping =
            NttMapping::new(&params, ReductionStyle::CryptoPim).expect("paper parameters");
        let input: Vec<u64> = (0..n as u64).map(|i| (i * 31 + 7) % params.q).collect();

        let via_bank = bank_forward_ntt(&mapping, &input);

        // Software reference: NTT(φ ⊙ input).
        let tables = mapping.tables();
        let mut expect: Vec<u64> = input
            .iter()
            .zip(tables.phi_powers())
            .map(|(&c, &p)| zq::mul(c, p, params.q))
            .collect();
        gs::forward(&mut expect, tables);

        assert_eq!(via_bank, expect, "n = {n}");
    }
}

#[test]
fn bank_charges_compute_and_transfers() {
    let params = ParamSet::for_degree(256).expect("valid degree");
    let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).expect("paper parameters");
    let input: Vec<u64> = (0..256u64).collect();
    // Rebuild the bank inside the helper; rerun and inspect via a local
    // copy of the chain to check accounting.
    let shifts: Vec<usize> = (0..8).map(|i| 1usize << i).collect();
    let mut bank = Bank::new(16, 9, &shifts).expect("bank");
    let red = mapping.reducer();
    let x = bank
        .block_mut(0)
        .mul_montgomery(&input, mapping.phi_a(), MultiplierKind::CryptoPim, red)
        .expect("premul");
    let conns = stage_connections(256, 0);
    let _ = bank.transfer(0, &x, &conns).expect("transfer");
    let tally = bank.total_tally();
    assert!(tally.compute_cycles > 0);
    assert!(tally.reduce_cycles > 0);
    assert_eq!(tally.transfer_cycles, 48, "one 16-bit exchange");
}

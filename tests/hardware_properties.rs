//! Property-based tests over the hardware substrate: crossbar storage,
//! switch routing, gate-level arithmetic, and reduction sequences under
//! randomized inputs — the invariants the simulator's correctness rests
//! on, exercised beyond the unit tests' fixed vectors.

use modmath::bitrev;
use pim::alu::gate_multiply;
use pim::crossbar::Crossbar;
use pim::reduce_gate::{gate_barrett, gate_montgomery};
use pim::switch::{Connection, FixedFunctionSwitch};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crossbar store → load is the identity for any in-range values,
    /// any field width, under any permutation row map.
    #[test]
    fn crossbar_store_load_roundtrip(
        width in 1usize..20,
        seed in any::<u64>(),
        rows in 1usize..64,
    ) {
        let mut xb = Crossbar::new(64, 24);
        let field = xb.allocate(width).expect("fits");
        let mask = if width >= 64 { u64::MAX } else { (1 << width) - 1 };
        let mut state = seed;
        let values: Vec<u64> = (0..rows)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state & mask
            })
            .collect();
        xb.store_vector(field, &values, None).expect("store");
        prop_assert_eq!(xb.load_vector(field, rows), values);
    }

    /// Bit-reversed writes followed by bit-reversed reads recover the
    /// original order (the free permutation is an involution in memory).
    #[test]
    fn crossbar_bitrev_write_is_invertible(seed in any::<u64>()) {
        let n = 32usize;
        let mut xb = Crossbar::new(n, 16);
        let field = xb.allocate(8).expect("fits");
        let mut state = seed;
        let values: Vec<u64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                state & 0xFF
            })
            .collect();
        let map = bitrev::permutation_table(n);
        xb.store_vector(field, &values, Some(&map)).expect("store");
        let stored = xb.load_vector(field, n);
        // Reading back through the same permutation restores order.
        let recovered: Vec<u64> = (0..n).map(|i| stored[map[i]]).collect();
        prop_assert_eq!(recovered, values);
    }

    /// Routing a full vector of UpShift/DownShift pairs through a
    /// fixed-function switch is a bijection: every destination row holds
    /// exactly one source value.
    #[test]
    fn switch_butterfly_routing_is_bijective(stage in 0u32..8, seed in any::<u64>()) {
        let n = 256usize;
        let s = 1usize << stage;
        let sw = FixedFunctionSwitch::new(s, n);
        let mut state = seed;
        let data: Vec<u64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 32
            })
            .collect();
        let conns: Vec<Connection> = (0..n)
            .map(|j| if j & s == 0 { Connection::UpShift } else { Connection::DownShift })
            .collect();
        let out = sw.route(&data, &conns, 16).expect("route");
        let mut seen = 0usize;
        for (j, v) in out.values.iter().enumerate() {
            let v = v.expect("every row receives a value");
            prop_assert_eq!(v, data[j ^ s], "row {}", j);
            seen += 1;
        }
        prop_assert_eq!(seen, n);
    }

    /// The gate-level multiplier is exact over random operand pairs at
    /// random widths.
    #[test]
    fn gate_multiplier_exact(width in 2usize..24, seed in any::<u64>()) {
        let mask = (1u64 << width) - 1;
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            state & mask
        };
        let a: Vec<u64> = (0..16).map(|_| next()).collect();
        let b: Vec<u64> = (0..16).map(|_| next()).collect();
        let out = gate_multiply(&a, &b, width);
        for i in 0..16 {
            prop_assert_eq!(out.products[i], a[i] * b[i]);
        }
    }

    /// Gate-level Barrett is a true mod-q over its specified input range.
    #[test]
    fn gate_barrett_is_mod_q(idx in 0usize..3, seed in any::<u64>()) {
        let q = [7681u64, 12289, 786433][idx];
        let mut state = seed;
        let values: Vec<u64> = (0..32)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                state % (2 * q)
            })
            .collect();
        let out = gate_barrett(&values, q).expect("specialized modulus");
        for (i, &a) in values.iter().enumerate() {
            prop_assert_eq!(out.values[i], a % q);
        }
    }

    /// Gate-level REDC agrees with the word-level sequence over random
    /// inputs from the full q·R range.
    #[test]
    fn gate_montgomery_matches_word(idx in 0usize..3, seed in any::<u64>()) {
        let q = [7681u64, 12289, 786433][idx];
        let k = modmath::montgomery::paper_r_exponent(q).expect("specialized");
        let limit = (q as u128) << k;
        let mut state = seed;
        let values: Vec<u64> = (0..24)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(13);
                (state as u128 % limit) as u64
            })
            .collect();
        let out = gate_montgomery(&values, q).expect("specialized modulus");
        for (i, &a) in values.iter().enumerate() {
            prop_assert_eq!(
                out.values[i],
                modmath::montgomery::shift_add_redc(a, q).expect("specialized")
            );
        }
    }
}

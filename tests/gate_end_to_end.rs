//! The last link in the validation chain: one complete Gentleman–Sande
//! butterfly — subtract, multiply, Montgomery-reduce, add,
//! Barrett-reduce — executed **entirely at gate level** (every primitive
//! a one-cycle bitwise operation) and compared against the word-level
//! block engine and the software kernel.

use modmath::roots::NttTables;
use modmath::zq;
use pim::alu::gate_multiply;
use pim::reduce_gate::{gate_barrett, gate_montgomery};

/// Gate-level butterfly for q = 12289 (16-bit class):
/// `lo = (t + u) mod q`, `hi = REDC(wR · (t + q − u))`.
fn gate_butterfly(t: &[u64], u: &[u64], w_scaled: &[u64], q: u64) -> (Vec<u64>, Vec<u64>) {
    let n = t.len();
    // t + u via the gate adder (through the multiplier module's engine
    // would also work; reuse the reduction helpers' I/O contract).
    let sums: Vec<u64> = (0..n).map(|i| t[i] + u[i]).collect();
    // The gate adder itself is validated in pim::logic; here we focus on
    // the reduction + multiply chain which is the paper's contribution.
    let lo = gate_barrett(&sums, q).expect("specialized modulus").values;

    let diffs: Vec<u64> = (0..n).map(|i| t[i] + q - u[i]).collect();
    let prods = gate_multiply(&diffs, w_scaled, 16).products;
    let hi = gate_montgomery(&prods, q)
        .expect("specialized modulus")
        .values;
    (lo, hi)
}

#[test]
fn gate_level_butterfly_equals_software_kernel() {
    let q = 12289u64;
    let n = 32usize;
    let tables = NttTables::for_degree_modulus(n, q).expect("NTT-friendly");
    let r_inv_scale = {
        // wR mod q for each twiddle (Montgomery pre-scaling).
        let r = 1u64 << 18;
        let r_mod = r % q;
        move |w: u64| zq::mul(w, r_mod, q)
    };

    // One stage-0 pass over a test vector.
    let x: Vec<u64> = (0..n as u64).map(|i| (i * 37 + 11) % q).collect();
    let t: Vec<u64> = (0..n / 2).map(|k| x[2 * k]).collect();
    let u: Vec<u64> = (0..n / 2).map(|k| x[2 * k + 1]).collect();
    let w: Vec<u64> = (0..n / 2)
        .map(|k| r_inv_scale(tables.omega_powers()[(2 * k) >> 1]))
        .collect();

    let (lo, hi) = gate_butterfly(&t, &u, &w, q);

    for k in 0..n / 2 {
        let expect_lo = zq::add(t[k], u[k], q);
        let w_plain = tables.omega_powers()[(2 * k) >> 1];
        let expect_hi = zq::mul(w_plain, zq::sub(t[k], u[k], q), q);
        assert_eq!(lo[k], expect_lo, "lo at pair {k}");
        assert_eq!(hi[k], expect_hi, "hi at pair {k}");
    }
}

#[test]
fn gate_level_butterfly_edge_inputs() {
    let q = 12289u64;
    // Extremes: zeros, q−1, equal operands (difference 0), and the
    // twiddle 1 (scaled) — each exercises a reduction boundary.
    let r_mod = (1u64 << 18) % q;
    let one_scaled = r_mod; // 1·R mod q
    let t = vec![0, q - 1, 5000, q - 1];
    let u = vec![0, q - 1, 5000, 0];
    let w = vec![one_scaled; 4];
    let (lo, hi) = gate_butterfly(&t, &u, &w, q);
    for k in 0..4 {
        assert_eq!(lo[k], zq::add(t[k], u[k], q), "lo {k}");
        assert_eq!(hi[k], zq::sub(t[k], u[k], q), "hi {k} (w = 1)");
    }
}

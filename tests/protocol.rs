//! Integration tests for the protocol job-graph layer: every RLWE
//! protocol op served through the batch-forming fleet must be
//! bit-identical to the direct `crates/rlwe` execution of the same
//! inputs, for any fleet size — and an injected fault in one graph node
//! must recover without failing the protocol op.

use cryptopim::check::CheckPolicy;
use modmath::params::ParamSet;
use ntt::negacyclic::NttMultiplier;
use proptest::prelude::*;
use reliability::plan::FaultPlan;
use service::{Backpressure, ProtocolJob, ProtocolKind, ProtocolOutput, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn fleet(workers: usize) -> Service {
    Service::start(ServiceConfig {
        workers,
        linger: Duration::from_micros(200),
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    })
}

/// All protocol kinds, as served scenarios.
const KINDS: [ProtocolKind; 10] = ProtocolKind::ALL;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every protocol kind, served through the graph layer at fleet
    /// sizes 1, 2, and 4, produces output bit-identical to the direct
    /// host execution of the same scripted scenario. This is the
    /// correctness contract of the whole layer: batching, caching, and
    /// pairing change scheduling, never values.
    #[test]
    fn served_protocols_bit_identical_to_direct(seed in 0u64..100_000) {
        for workers in [1usize, 2, 4] {
            let svc = fleet(workers);
            let jobs: Vec<ProtocolJob> = KINDS
                .iter()
                .map(|&k| ProtocolJob::scripted(k, 256, seed).expect("scripted"))
                .collect();
            let expected: Vec<ProtocolOutput> = jobs
                .iter()
                .map(|j| j.run_direct().expect("direct"))
                .collect();
            // Submit everything up front so different ops' inner
            // multiplies interleave in the former.
            let tickets: Vec<_> = jobs
                .into_iter()
                .map(|j| svc.submit_protocol(j).expect("admitted"))
                .collect();
            for ((ticket, want), kind) in tickets.into_iter().zip(&expected).zip(KINDS) {
                let done = ticket.wait().expect("protocol op completes");
                prop_assert_eq!(&done.output, want, "kind {} fleet {}", kind, workers);
                prop_assert!(done.nodes >= 1);
            }
            svc.shutdown();
        }
    }
}

/// Decapsulation through the graph recovers the exact shared secret the
/// encapsulation (also through the graph) produced — the full KEM
/// handshake across two served ops.
#[test]
fn kem_handshake_through_graph_recovers_shared_secret() {
    let svc = fleet(2);
    // Scripted Decaps builds keys + a matching ciphertext from one
    // seed; reproduce the sender side host-side to learn the secret the
    // served decapsulation must recover.
    let decaps = ProtocolJob::scripted(ProtocolKind::Decaps, 256, 77).expect("scripted");
    let sender_secret = match &decaps {
        ProtocolJob::Decaps { keys, .. } => {
            let params = ParamSet::for_degree(256).expect("paper degree");
            let ntt = NttMultiplier::new(&params).expect("paper parameters");
            rlwe::kem::encapsulate(keys.public(), &ntt, 77u64.wrapping_add(3))
                .expect("host encapsulate")
                .shared_secret
        }
        _ => unreachable!(),
    };
    let served = svc
        .submit_protocol(decaps)
        .expect("admitted")
        .wait()
        .expect("served decaps");
    assert_eq!(
        served.output,
        ProtocolOutput::SharedSecret(sender_secret),
        "served decapsulation recovers the sender's shared secret"
    );
    assert_ne!(sender_secret, [0u8; 32], "secret is non-trivial");
    svc.shutdown();
}

/// Sign then Verify through the graph round-trips: a signature produced
/// by a served Sign op verifies under a served Verify op.
#[test]
fn sign_verify_round_trips_through_graph() {
    let svc = fleet(2);
    let sign = ProtocolJob::scripted(ProtocolKind::Sign, 256, 33).expect("scripted");
    let (key, message) = match &sign {
        ProtocolJob::Sign { key, message, .. } => (key.clone(), message.clone()),
        _ => unreachable!(),
    };
    let signed = svc
        .submit_protocol(sign)
        .expect("admitted")
        .wait()
        .expect("served sign");
    let ProtocolOutput::Signature { signature, .. } = signed.output else {
        panic!("sign yields a signature");
    };
    let verified = svc
        .submit_protocol(ProtocolJob::Verify {
            key: key.verify_key(),
            message: message.clone(),
            signature: signature.clone(),
        })
        .expect("admitted")
        .wait()
        .expect("served verify");
    assert_eq!(verified.output, ProtocolOutput::Verdict(true));
    // Tampered message must fail verification (served).
    let mut tampered = message;
    tampered[0] ^= 1;
    let rejected = svc
        .submit_protocol(ProtocolJob::Verify {
            key: key.verify_key(),
            message: tampered,
            signature,
        })
        .expect("admitted")
        .wait()
        .expect("served verify of tampered message");
    assert_eq!(rejected.output, ProtocolOutput::Verdict(false));
    svc.shutdown();
}

/// SHE-Mul through the graph matches the plaintext product: decrypting
/// the served homomorphic product yields the product of the plaintexts.
#[test]
fn she_mul_through_graph_matches_plaintext_product() {
    let job = ProtocolJob::scripted(ProtocolKind::SheMul, 256, 55).expect("scripted");
    let direct = job.run_direct().expect("direct she");
    let svc = fleet(2);
    let served = svc
        .submit_protocol(job)
        .expect("admitted")
        .wait()
        .expect("served she");
    assert_eq!(served.output, direct);
    assert_eq!(served.nodes, 2, "u·p and v·p, paired");
    svc.shutdown();
}

/// Cross-tenant batching: many concurrent protocol ops at one ring pack
/// their inner multiplies into shared batches — realized occupancy on
/// the multiply substrate exceeds one job per batch.
#[test]
fn concurrent_protocol_ops_share_batches() {
    let svc = Service::start(ServiceConfig {
        workers: 2,
        protocol_workers: 4,
        linger: Duration::from_millis(2),
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    });
    let jobs: Vec<ProtocolJob> = (0..12)
        .map(|i| {
            let kind = [
                ProtocolKind::Encaps,
                ProtocolKind::PkeEncrypt,
                ProtocolKind::SheMul,
                ProtocolKind::Verify,
            ][i % 4];
            ProtocolJob::scripted(kind, 256, 900 + i as u64).expect("scripted")
        })
        .collect();
    let expected: Vec<ProtocolOutput> = jobs
        .iter()
        .map(|j| j.run_direct().expect("direct"))
        .collect();
    let tickets: Vec<_> = jobs
        .into_iter()
        .map(|j| svc.submit_protocol(j).expect("admitted"))
        .collect();
    for (ticket, want) in tickets.into_iter().zip(expected) {
        assert_eq!(ticket.wait().expect("completes").output, want);
    }
    let stats = svc.shutdown();
    assert!(
        stats.mean_occupancy > 1.0,
        "inner multiplies of concurrent ops pack together (mean occupancy {})",
        stats.mean_occupancy
    );
}

/// A transiently faulted fleet still serves every protocol op with the
/// exact direct-path output: a detected fault in one graph node retries
/// that node alone, and the op's ticket resolves `Ok` with
/// `attempts > 1` somewhere along the campaign — never a wrong answer.
#[test]
fn injected_node_fault_recovers_without_failing_protocol_op() {
    let svc = Service::start(ServiceConfig {
        workers: 1,
        protocol_workers: 2,
        linger: Duration::ZERO,
        check: CheckPolicy::Recompute,
        max_attempts: 6,
        quarantine_after: u32::MAX,
        injector: Some(Arc::new(FaultPlan::new(4242).with_transient(1e-4, 2))),
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    });
    let mut worst_attempts = 1;
    for i in 0..24u64 {
        let kind = [
            ProtocolKind::Encaps,
            ProtocolKind::Decaps,
            ProtocolKind::Sign,
            ProtocolKind::SheMul,
        ][(i % 4) as usize];
        let job = ProtocolJob::scripted(kind, 256, 3000 + i).expect("scripted");
        let want = job.run_direct().expect("direct");
        let done = svc
            .submit_protocol(job)
            .expect("admitted")
            .wait()
            .expect("transient faults recover; the op never fails");
        assert_eq!(
            done.output, want,
            "op {i} ({kind}) bit-identical under faults"
        );
        worst_attempts = worst_attempts.max(done.attempts);
    }
    let stats = svc.shutdown();
    assert!(
        stats.faults_detected >= 1,
        "campaign injected at least one detected fault"
    );
    assert!(
        worst_attempts > 1,
        "some node recovered via retry (worst attempts {worst_attempts})"
    );
}

//! Batch-fused transform correctness: the fused `B`-polynomial paths
//! (`forward_batch` / `inverse_batch` / `multiply_batch`) walk each
//! twiddle table once for the whole batch, and must be **bit-identical**
//! to running the single-polynomial pipeline `B` times — for every batch
//! width the serving layer forms and every paper modulus.
//!
//! Also pins the lazy-bound contract at its worst case: the half-width
//! Shoup path is taken for every `q < 2^30`, so the largest NTT-friendly
//! modulus under that limit maximizes every `[0, 4q)` intermediate. The
//! kernels' debug asserts (inputs `< 2q`) are live in this binary — a
//! bound excursion aborts the test rather than wrapping silently.

use modmath::roots::NttTables;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use ntt::schoolbook;
use proptest::prelude::*;

/// Splits flat coefficient vectors into B pairs, multiplies them both
/// ways, and requires exact equality.
fn check_batch_matches_sequential(n: usize, q: u64, batch: usize, a: Vec<u64>, b: Vec<u64>) {
    let m = NttMultiplier::for_degree_modulus(n, q).expect("compatible (n, q)");
    let split = |flat: &[u64]| -> Vec<Polynomial> {
        (0..batch)
            .map(|i| Polynomial::from_coeffs(flat[i * n..(i + 1) * n].to_vec(), q).unwrap())
            .collect()
    };
    let (aps, bps) = (split(&a), split(&b));
    let fused = m.multiply_batch(&aps, &bps).expect("batch multiply");
    for i in 0..batch {
        let sequential = m.multiply(&aps[i], &bps[i]).expect("sequential multiply");
        assert_eq!(
            fused[i], sequential,
            "n = {n}, q = {q}, B = {batch}, job {i}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn batch_fused_matches_sequential_q7681_n256(
        batch in 1usize..=8,
        seed in 0u64..u64::MAX,
    ) {
        let (a, b) = seeded_coeffs(256, 7681, 8, seed);
        check_batch_matches_sequential(256, 7681, batch, a, b);
    }

    #[test]
    fn batch_fused_matches_sequential_q12289_n256(
        batch in 1usize..=8,
        seed in 0u64..u64::MAX,
    ) {
        let (a, b) = seeded_coeffs(256, 12289, 8, seed);
        check_batch_matches_sequential(256, 12289, batch, a, b);
    }

    #[test]
    fn batch_fused_matches_sequential_q786433_n256(
        batch in 1usize..=8,
        seed in 0u64..u64::MAX,
    ) {
        let (a, b) = seeded_coeffs(256, 786433, 8, seed);
        check_batch_matches_sequential(256, 786433, batch, a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn batch_fused_matches_sequential_q12289_n1024(
        batch in 1usize..=8,
        seed in 0u64..u64::MAX,
    ) {
        let (a, b) = seeded_coeffs(1024, 12289, 8, seed);
        check_batch_matches_sequential(1024, 12289, batch, a, b);
    }

    #[test]
    fn batch_fused_matches_sequential_q786433_n4096(
        batch in 1usize..=4,
        seed in 0u64..u64::MAX,
    ) {
        let (a, b) = seeded_coeffs(4096, 786433, 4, seed);
        check_batch_matches_sequential(4096, 786433, batch, a, b);
    }
}

/// Deterministic coefficient streams (proptest drives the seed; the
/// expansion avoids generating 8·4096-element vectors through the
/// strategy machinery).
fn seeded_coeffs(n: usize, q: u64, max_batch: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
    let mut state = seed | 1;
    let mut draw = |len: usize| -> Vec<u64> {
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) % q
            })
            .collect()
    };
    let a = draw(max_batch * n);
    let b = draw(max_batch * n);
    (a, b)
}

/// The largest NTT-friendly modulus below the half-width Shoup limit
/// (`2^30`) for degree `n` — the worst case for every `[0, 4q)` lazy
/// intermediate on the vectorized path.
fn worst_case_half_modulus(n: usize) -> u64 {
    let limit = 1u64 << 30;
    let step = 2 * n as u64;
    let mut q = limit - ((limit - 1) % step);
    while q > step {
        if NttTables::for_degree_modulus(n, q).is_ok() {
            return q;
        }
        q -= step;
    }
    panic!("no NTT-friendly modulus under 2^30 for n = {n}");
}

#[test]
fn worst_case_modulus_stays_in_lazy_bounds() {
    // q just under 2^30: products `t·w` and sums `a + 2q − t` sit as
    // close to the u32/u64 cliffs as the half-width path ever gets.
    // Debug asserts in the kernels verify every inter-stage value is
    // `< 2q`; the schoolbook oracle verifies the answers.
    let n = 256usize;
    let q = worst_case_half_modulus(n);
    assert!(q < 1 << 30 && q > (1 << 30) - 4 * n as u64 * 20, "q = {q}");
    let m = NttMultiplier::for_degree_modulus(n, q).expect("friendly modulus");
    // Extremal operands: all coefficients at q − 1.
    let max = Polynomial::from_coeffs(vec![q - 1; n], q).unwrap();
    let prod = m.multiply(&max, &max).expect("worst-case multiply");
    assert_eq!(prod, schoolbook::multiply(&max, &max).unwrap());
    // And a mixed stream, fused across a batch.
    let (a, b) = seeded_coeffs(n, q, 8, 0xDEADBEEF);
    check_batch_matches_sequential(n, q, 8, a, b);
}

#[test]
fn worst_case_modulus_roundtrips_at_larger_degree() {
    let n = 4096usize;
    let q = worst_case_half_modulus(n);
    let m = NttMultiplier::for_degree_modulus(n, q).expect("friendly modulus");
    let (a, _) = seeded_coeffs(n, q, 1, 99);
    let pa = Polynomial::from_coeffs(a, q).unwrap();
    let spec = m.forward(&pa).expect("forward");
    assert_eq!(m.inverse(spec).expect("inverse"), pa);
    // x^{n/2} squared is −1: exercises the negacyclic wrap at the
    // extremal modulus.
    let mut h = vec![0u64; n];
    h[n / 2] = q - 1;
    let h = Polynomial::from_coeffs(h, q).unwrap();
    let sq = m.multiply(&h, &h).unwrap();
    assert_eq!(sq.coeff(0), q - 1);
    assert!(sq.coeffs()[1..].iter().all(|&c| c == 0));
}

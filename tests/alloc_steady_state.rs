//! Zero-allocation steady state: after warm-up, the engine's multiply
//! loop must not touch the heap at all.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! warms the plan cache, the thread-local scratch pool, and the output
//! vector's capacity, then asserts that further multiplies perform zero
//! allocations and zero deallocations. This is its own test binary so
//! the counter sees no interference from other tests (integration tests
//! each link their own globals), and the tests in it serialize on a
//! lock so they never pollute each other's counter windows.

use cryptopim::engine::Engine;
use cryptopim::mapping::NttMapping;
use modmath::params::ParamSet;
use ntt::negacyclic::NttMultiplier;
use pim::par::Threads;
use pim::reduce::ReductionStyle;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The counters are process-global while the harness runs tests on
/// parallel threads — each test takes this lock so no other test's
/// allocations land inside its measurement window.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn rand_vec(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect()
}

#[test]
fn steady_state_multiply_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let n = 1024usize;
    let params = ParamSet::for_degree(n).expect("paper degree");
    let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).expect("mapping");
    let engine = Engine::new(&mapping).with_threads(Threads::Fixed(1));
    let a = rand_vec(n, params.q, 1);
    let b = rand_vec(n, params.q, 2);
    let mut out = Vec::new();

    // Warm-up: builds the cached plan, pools the scratch slab, and gives
    // `out` its capacity. Two rounds so the slab is checked out of the
    // pool (not freshly allocated) at least once before measuring.
    for _ in 0..2 {
        let trace = engine.multiply_into(&a, &b, &mut out).expect("warm-up");
        assert!(trace.total().cycles > 0);
    }
    let reference = out.clone();

    let allocs_before = ALLOCS.load(Ordering::SeqCst);
    let deallocs_before = DEALLOCS.load(Ordering::SeqCst);
    for _ in 0..10 {
        engine
            .multiply_into(&a, &b, &mut out)
            .expect("steady state");
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - allocs_before;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - deallocs_before;

    assert_eq!(out, reference, "products must stay correct");
    assert_eq!(allocs, 0, "steady-state multiply must not allocate");
    assert_eq!(deallocs, 0, "steady-state multiply must not deallocate");
}

#[test]
fn engine_batch_fused_multiply_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The batch-fused *engine* path: one `StagePlan` walk over the
    // pooled `3·B·n` scratch slab per batch. After warm-up (plan cache,
    // slab pool, `out` capacity) a whole fused batch — products plus
    // the merged trace — performs zero heap operations.
    let n = 1024usize;
    let batch = 4usize;
    let params = ParamSet::for_degree(n).expect("paper degree");
    let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).expect("mapping");
    let engine = Engine::new(&mapping).with_threads(Threads::Fixed(1));
    let a: Vec<u64> = (0..batch as u64)
        .flat_map(|j| rand_vec(n, params.q, 10 + j))
        .collect();
    let b: Vec<u64> = (0..batch as u64)
        .flat_map(|j| rand_vec(n, params.q, 20 + j))
        .collect();
    let mut out = Vec::new();

    for _ in 0..2 {
        let trace = engine
            .multiply_batch_into(&a, &b, &mut out)
            .expect("warm-up");
        assert!(trace.total().cycles > 0);
    }
    let reference = out.clone();

    let allocs_before = ALLOCS.load(Ordering::SeqCst);
    let deallocs_before = DEALLOCS.load(Ordering::SeqCst);
    for _ in 0..10 {
        engine
            .multiply_batch_into(&a, &b, &mut out)
            .expect("steady state");
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - allocs_before;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - deallocs_before;

    assert_eq!(out, reference, "products must stay correct");
    assert_eq!(allocs, 0, "batch-fused engine multiply must not allocate");
    assert_eq!(
        deallocs, 0,
        "batch-fused engine multiply must not deallocate"
    );
}

#[test]
fn batch_fused_multiply_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // The batch-fused referee path (`multiply_batch_into`) runs entirely
    // in caller buffers: once the multiplier and the three B·n slabs
    // exist, a whole batch of transforms touches the heap zero times.
    let n = 1024usize;
    let batch = 4usize;
    let params = ParamSet::for_degree(n).expect("paper degree");
    let q = params.q;
    let m = NttMultiplier::new(&params).expect("paper parameters");
    let fill = |buf: &mut [u64], seed: u64| {
        let mut state = seed;
        for c in buf.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *c = (state >> 16) % q;
        }
    };
    let mut a = vec![0u64; batch * n];
    let mut b = vec![0u64; batch * n];
    let mut out = vec![0u64; batch * n];
    fill(&mut a, 3);
    fill(&mut b, 4);
    let (a0, b0) = (a.clone(), b.clone());

    // Warm-up (also produces the reference products).
    m.multiply_batch_into(&mut a, &mut b, &mut out)
        .expect("warm-up");
    let reference = out.clone();

    let allocs_before = ALLOCS.load(Ordering::SeqCst);
    let deallocs_before = DEALLOCS.load(Ordering::SeqCst);
    for _ in 0..10 {
        a.copy_from_slice(&a0);
        b.copy_from_slice(&b0);
        m.multiply_batch_into(&mut a, &mut b, &mut out)
            .expect("steady state");
    }
    let allocs = ALLOCS.load(Ordering::SeqCst) - allocs_before;
    let deallocs = DEALLOCS.load(Ordering::SeqCst) - deallocs_before;

    assert_eq!(out, reference, "products must stay correct");
    assert_eq!(allocs, 0, "batch-fused multiply must not allocate");
    assert_eq!(deallocs, 0, "batch-fused multiply must not deallocate");
}

//! The reproduction contract: every headline number of the paper's
//! evaluation, asserted in one place. If any of these fail, the
//! EXPERIMENTS.md claims no longer hold.

use baselines::bp;
use baselines::{cpu, fpga};
use cryptopim::accelerator::CryptoPim;
use cryptopim::pipeline::{Organization, PipelineModel};
use modmath::params::ParamSet;
use pim::device::DeviceParams;
use pim::variation::{run_monte_carlo, MonteCarloConfig};

fn model(n: usize) -> PipelineModel {
    PipelineModel::for_params(&ParamSet::for_degree(n).expect("paper degree"))
        .expect("paper parameters")
}

fn report(n: usize) -> cryptopim::report::ExecutionReport {
    CryptoPim::new(&ParamSet::for_degree(n).expect("paper degree"))
        .expect("paper parameters")
        .report()
        .expect("report")
}

#[test]
fn table1_reduction_latencies() {
    use pim::reduce::{Reducer, ReductionStyle};
    let r = |q| Reducer::new(q, ReductionStyle::CryptoPim).expect("specialized");
    assert_eq!(r(12289).barrett_cycles(), 239);
    assert_eq!(r(786433).barrett_cycles(), 429);
    assert_eq!(r(7681).montgomery_cycles(), 683);
    assert_eq!(r(12289).montgomery_cycles(), 461);
    assert_eq!(r(786433).montgomery_cycles(), 1083);
}

#[test]
fn fig4_stage_latencies() {
    let m = model(256);
    assert_eq!(m.stage_latency(Organization::AreaEfficient), 2700);
    assert_eq!(m.stage_latency(Organization::Naive), 1756);
    assert_eq!(m.stage_latency(Organization::CryptoPim), 1643);
}

#[test]
fn table2_cryptopim_rows_within_tolerance() {
    let rows = [
        (256usize, 68.67, 2.58, 553311.0),
        (512, 75.90, 5.02, 553311.0),
        (1024, 83.12, 11.04, 553311.0),
        (2048, 363.60, 82.57, 137511.0),
        (4096, 392.69, 178.62, 137511.0),
        (8192, 421.78, 384.17, 137511.0),
        (16384, 450.87, 822.21, 137511.0),
        (32768, 479.95, 1752.15, 137511.0),
    ];
    for (n, lat, energy, thr) in rows {
        let r = report(n).pipelined;
        assert!(
            (r.latency_us - lat).abs() / lat < 1e-3,
            "latency n = {n}: {} vs {lat}",
            r.latency_us
        );
        assert!(
            (r.throughput - thr).abs() / thr < 1e-3,
            "throughput n = {n}: {} vs {thr}",
            r.throughput
        );
        assert!(
            (r.energy_uj - energy).abs() / energy < 0.05,
            "energy n = {n}: {} vs {energy} (5 % model tolerance)",
            r.energy_uj
        );
    }
}

#[test]
fn abstract_headline_fpga_comparison() {
    // "31× throughput improvement with the same energy and only 28 %
    // performance reduction" over n ∈ {256, 512, 1024}.
    let mut gain = 0.0;
    let mut perf = 0.0;
    let mut energy = 0.0;
    for n in [256usize, 512, 1024] {
        let r = report(n).pipelined;
        let c =
            fpga::compare(n, r.latency_us, r.energy_uj, r.throughput).expect("published FPGA row");
        gain += c.throughput_gain / 3.0;
        perf += c.performance_ratio / 3.0;
        energy += c.energy_ratio / 3.0;
    }
    assert!((gain - 31.0).abs() < 3.0, "throughput gain {gain:.1}");
    assert!((perf - 0.72).abs() < 0.05, "performance ratio {perf:.2}");
    assert!((energy - 1.0).abs() < 0.15, "energy ratio {energy:.2}");
}

#[test]
fn cpu_headline_comparison() {
    // "7.6×, 111×, and 226× improvement in performance, throughput, and
    // energy" (performance over all degrees; throughput/energy over the
    // 16-bit rows — the scopes that recover the printed numbers).
    let mut perf = Vec::new();
    let mut thr = Vec::new();
    let mut energy = Vec::new();
    for row in cpu::paper_reference() {
        let r = report(row.n).pipelined;
        perf.push(row.latency_us / r.latency_us);
        if row.n <= 1024 {
            thr.push(r.throughput / row.throughput);
            energy.push(row.energy_uj / r.energy_uj);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        (avg(&perf) - 7.6).abs() < 0.5,
        "performance {:.2}",
        avg(&perf)
    );
    assert!(
        (avg(&thr) - 111.0).abs() < 10.0,
        "throughput {:.1}",
        avg(&thr)
    );
    assert!(
        (avg(&energy) - 226.0).abs() < 25.0,
        "energy {:.1}",
        avg(&energy)
    );
}

#[test]
fn fig5_pipelining_aggregates() {
    let mut small_gain = Vec::new();
    let mut large_gain = Vec::new();
    let mut small_ovh = Vec::new();
    let mut large_ovh = Vec::new();
    let mut e_ovh = Vec::new();
    for n in modmath::params::PAPER_DEGREES {
        let r = report(n);
        if n <= 1024 {
            small_gain.push(r.pipelining_throughput_gain());
            small_ovh.push(r.pipelining_latency_overhead());
        } else {
            large_gain.push(r.pipelining_throughput_gain());
            large_ovh.push(r.pipelining_latency_overhead());
        }
        e_ovh.push(r.pipelining_energy_overhead());
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // Paper: 27.8× / 36.3× gains; 29 % / 59.7 % overheads; ≈ 1.6 % energy.
    assert!(
        (avg(&small_gain) - 27.8).abs() < 8.0,
        "{:.1}",
        avg(&small_gain)
    );
    assert!(
        (avg(&large_gain) - 36.3).abs() < 8.0,
        "{:.1}",
        avg(&large_gain)
    );
    assert!(
        (avg(&small_ovh) - 0.29).abs() < 0.1,
        "{:.3}",
        avg(&small_ovh)
    );
    assert!(
        (avg(&large_ovh) - 0.597).abs() < 0.05,
        "{:.3}",
        avg(&large_ovh)
    );
    assert!((avg(&e_ovh) - 0.016).abs() < 0.01, "{:.4}", avg(&e_ovh));
}

#[test]
fn fig6_baseline_ratios() {
    let s = bp::fig6_summary().expect("paper parameters");
    assert!((s.bp1_over_bp2 - 1.9).abs() < 0.4, "{:.2}", s.bp1_over_bp2);
    assert!((s.bp2_over_bp3 - 5.5).abs() < 2.5, "{:.2}", s.bp2_over_bp3);
    assert!(
        (s.bp3_over_cryptopim - 1.2).abs() < 0.2,
        "{:.2}",
        s.bp3_over_cryptopim
    );
    assert!(
        (s.bp1_over_cryptopim - 12.7).abs() < 5.0,
        "{:.2}",
        s.bp1_over_cryptopim
    );
}

#[test]
fn monte_carlo_robustness() {
    // "A maximum of 25.6 % reduction in resistance noise margin …
    // this did not affect the operations."
    let r = run_monte_carlo(&DeviceParams::nominal(), &MonteCarloConfig::default());
    assert!(
        (r.max_margin_reduction - 0.256).abs() < 0.1,
        "{:.3}",
        r.max_margin_reduction
    );
    assert_eq!(r.failures, 0);
}

#[test]
fn architecture_32k_block_count() {
    let arch = report(32768).arch;
    assert_eq!(arch.blocks_per_bank, 49);
    assert_eq!(arch.banks_per_softbank, 64);
}

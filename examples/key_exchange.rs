//! NewHope-style post-quantum key agreement running on the CryptoPIM
//! backend — the public-key-encryption workload of the paper's
//! introduction (n = 1024, q = 12289).
//!
//! ```text
//! cargo run --example key_exchange
//! ```

use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use rlwe::keyexchange::{encapsulate, Initiator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ParamSet::for_degree(1024)?;
    println!("key agreement over {params}");

    // Both parties run their polynomial arithmetic on the accelerator.
    let pim = CryptoPim::new(&params)?;

    // Alice generates her RLWE key pair and publishes the public key.
    let alice = Initiator::new(&params, &pim, 0xA11CE)?;
    println!("Alice published a public key ({} coefficients)", params.n);

    // Bob encapsulates a fresh 256-bit shared secret against it.
    let bob = encapsulate(alice.public_key(), &pim, 0xB0B)?;
    println!("Bob sent a ciphertext and derived his secret");

    // Alice decapsulates.
    let alice_secret = alice.finish(&bob.ciphertext, &pim)?;

    assert_eq!(alice_secret, bob.shared_secret);
    let hex: String = alice_secret
        .chunks(8)
        .take(4)
        .map(|byte_bits| {
            let byte = byte_bits.iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1));
            format!("{byte:02x}")
        })
        .collect();
    println!("shared secret established ✓ (first bytes: {hex}…)");

    // What did the hardware pay for one of those multiplications?
    let report = pim.report()?;
    println!(
        "\neach polynomial multiplication: {:.2} µs, {:.2} µJ on the pipelined design",
        report.pipelined.latency_us, report.pipelined.energy_uj
    );
    println!(
        "a superbank sustains {:.0} multiplications/s — {} key agreements/s at 5 mults each",
        report.pipelined.throughput,
        (report.pipelined.throughput / 5.0) as u64
    );
    Ok(())
}

//! Homomorphic-encryption workload at SEAL-class degrees — the "data in
//! use" scenario that motivates CryptoPIM's 32-bit, q = 786433
//! configuration: encrypted votes are tallied without decrypting any
//! individual ballot.
//!
//! ```text
//! cargo run --example homomorphic
//! ```

use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use ntt::poly::Polynomial;
use rlwe::pke::KeyPair;
use rlwe::she;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An HE-class ring: n = 4096, q = 786433, 32-bit datapath.
    let params = ParamSet::for_degree(4096)?;
    println!("homomorphic demo over {params}");
    let pim = CryptoPim::new(&params)?;

    // The election authority owns the key pair.
    let authority = KeyPair::generate(&params, &pim, 2024)?;

    // Five voters each encrypt a yes/no ballot in coefficient 0.
    let ballots = [1u8, 0, 1, 1, 0];
    println!("ballots (secret!): {ballots:?}");
    let mut encrypted = Vec::new();
    for (i, &vote) in ballots.iter().enumerate() {
        let mut bits = vec![0u8; params.n];
        bits[0] = vote;
        encrypted.push(she::encrypt(&authority, &bits, &pim, 3000 + i as u64)?);
    }

    // The tally server XOR-accumulates ciphertexts (parity of yes votes)
    // without ever seeing a plaintext.
    let mut tally = encrypted[0].clone();
    for ct in &encrypted[1..] {
        tally = tally.add(ct)?;
    }
    println!(
        "tally server combined {} ciphertexts homomorphically",
        ballots.len()
    );

    // It can also homomorphically shift the result into coefficient 100
    // by multiplying with the public monomial x^100 — a full negacyclic
    // multiplication at HE scale, the exact kernel CryptoPIM targets.
    let mut mono = vec![0u64; params.n];
    mono[100] = 1;
    let shifted = tally.mul_plaintext(&Polynomial::from_coeffs(mono, params.q)?, &pim)?;

    // Only the authority decrypts.
    let opened = she::decrypt(authority.secret(), &shifted, &pim)?;
    let parity = opened[100];
    let expected = ballots.iter().fold(0u8, |a, &b| a ^ b);
    assert_eq!(parity, expected);
    println!("decrypted parity of yes-votes (at the shifted slot): {parity} ✓");

    let report = pim.report()?;
    println!(
        "\nHE-scale multiplication on CryptoPIM: {:.2} µs, {:.2} µJ, {:.0} mult/s",
        report.pipelined.latency_us, report.pipelined.energy_uj, report.pipelined.throughput
    );
    println!(
        "architecture: {} banks/softbank × {} blocks/bank ({} blocks per superbank)",
        report.arch.banks_per_softbank,
        report.arch.blocks_per_bank,
        report.arch.total_blocks()
    );
    Ok(())
}

//! Face-off: the same polynomial multiplication on every platform the
//! paper compares — native host CPU (measured), the paper's gem5/X86
//! (reference data + fitted model), the published FPGA, and simulated
//! CryptoPIM.
//!
//! ```text
//! cargo run --release --example baseline_faceoff
//! ```

use baselines::{cpu, fpga};
use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<8} {:>16} {:>14} {:>14} {:>14}",
        "n", "host CPU (µs)", "gem5 X86 (µs)", "FPGA (µs)", "CryptoPIM (µs)"
    );
    let model = cpu::CpuModel::fitted();
    for n in [256usize, 1024, 4096, 32768] {
        let params = ParamSet::for_degree(n)?;
        // Native timing of our own software NTT on this machine.
        let host = cpu::measure_software_multiply(&params, 10)?;
        // The paper's gem5 measurement (reference) or the fitted model.
        let gem5 = cpu::paper_reference_for(n)
            .map(|r| r.latency_us)
            .unwrap_or_else(|| model.latency_us(&params));
        let fpga_lat = fpga::paper_reference_for(n)
            .map(|r| format!("{:.2}", r.latency_us))
            .unwrap_or_else(|| "-".into());
        let pim = CryptoPim::new(&params)?.report()?.pipelined.latency_us;
        println!(
            "{:<8} {:>16.2} {:>14.2} {:>14} {:>14.2}",
            n, host, gem5, fpga_lat, pim
        );
    }
    println!(
        "\nhost CPU numbers are wall-clock on this machine (unrelated to the 2 GHz\n\
         gem5 model) — the comparison of interest is shape: µs-scale, ≈ n·log n."
    );
    Ok(())
}

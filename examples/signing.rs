//! Post-quantum signing on the accelerator: a GLP-style lattice
//! signature whose inner loop (three polynomial multiplications per
//! attempt, two per verification) runs on simulated CryptoPIM.
//!
//! ```text
//! cargo run --example signing
//! ```

use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use rlwe::signature::SigningKey;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ParamSet::for_degree(512)?;
    println!("lattice signature over {params}");
    let pim = CryptoPim::new(&params)?;

    let signer = SigningKey::generate(&params, &pim, 0x51)?;
    let verifier = signer.verify_key();

    let message = b"CryptoPIM reproduction: signed artifact";
    let (signature, attempts) = signer.sign(message, &pim, 0xF00D)?;
    println!(
        "signed after {attempts} attempt(s) (Fiat-Shamir with aborts: \
         ≈ 50 % acceptance per attempt at these parameters)"
    );

    let ok = verifier.verify(message, &signature, &pim)?;
    println!("verification: {}", if ok { "VALID ✓" } else { "INVALID ✗" });
    assert!(ok);

    let forged = verifier.verify(b"a different message", &signature, &pim)?;
    println!(
        "same signature over a different message: {}",
        if forged {
            "accepted ✗"
        } else {
            "rejected ✓"
        }
    );
    assert!(!forged);

    // What signing costs on the hardware.
    let r = pim.report()?;
    let per_sign = attempts as f64 * 3.0 + 1.0; // 3 mults/attempt + t = a·s₁ at keygen amortized out
    println!(
        "\nhardware cost: {:.2} µs per multiplication → ≈ {:.1} µs per signature ({} attempts)",
        r.pipelined.latency_us,
        r.pipelined.latency_us * per_sign,
        attempts
    );
    Ok(())
}

//! Design-space exploration: sweep the pipeline organizations,
//! multiplier microprograms, and reduction styles across degrees, and
//! print how each choice moves latency — a compact tour of the paper's
//! §III-D and §IV-C trade-offs.
//!
//! ```text
//! cargo run --example design_space
//! ```

use baselines::bp::PimDesign;
use cryptopim::pipeline::{Organization, PipelineModel};
use modmath::params::ParamSet;
use pim::variation::{run_monte_carlo, MonteCarloConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== pipeline organization sweep (pipelined latency, µs) ==");
    println!(
        "{:<8} {:>16} {:>12} {:>12}",
        "n", "area-efficient", "naive", "CryptoPIM"
    );
    for n in [256usize, 1024, 4096, 32768] {
        let p = ParamSet::for_degree(n)?;
        let model = PipelineModel::for_params(&p)?;
        let lat = |org| model.pipelined(org).latency_us;
        println!(
            "{:<8} {:>16.2} {:>12.2} {:>12.2}",
            n,
            lat(Organization::AreaEfficient),
            lat(Organization::Naive),
            lat(Organization::CryptoPim)
        );
    }

    println!("\n== design ladder (non-pipelined latency, µs) ==");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "n", "BP-1", "BP-2", "BP-3", "CryptoPIM", "total gain"
    );
    for n in [256usize, 2048, 32768] {
        let p = ParamSet::for_degree(n)?;
        let lat: Vec<f64> = PimDesign::ALL
            .iter()
            .map(|d| d.latency_us(&p))
            .collect::<Result<_, _>>()?;
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>9.1}×",
            n,
            lat[0],
            lat[1],
            lat[2],
            lat[3],
            lat[0] / lat[3]
        );
    }

    println!("\n== device robustness at increasing process variation ==");
    let nominal = pim::device::DeviceParams::nominal();
    println!(
        "{:>10} {:>18} {:>10}",
        "variation", "margin reduction", "failures"
    );
    for v in [0.05f64, 0.10, 0.20] {
        let r = run_monte_carlo(
            &nominal,
            &MonteCarloConfig {
                variation: v,
                samples: 2000,
                seed: 7,
            },
        );
        println!(
            "{:>9.0}% {:>17.1}% {:>10}",
            v * 100.0,
            r.max_margin_reduction * 100.0,
            r.failures
        );
    }
    Ok(())
}

//! Noise budgeting: watch an RLWE ciphertext's noise grow under
//! homomorphic additions, compare against the predicted √k curve, and
//! find the parameter set's addition capacity — the engineering view of
//! why homomorphic encryption demands the big-`n`, bigger-`q` parameter
//! sets CryptoPIM is provisioned for.
//!
//! ```text
//! cargo run --release --example noise_budget
//! ```

use modmath::params::ParamSet;
use ntt::negacyclic::NttMultiplier;
use rlwe::noise;
use rlwe::pke::{KeyPair, ETA};
use rlwe::she;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ParamSet::for_degree(4096)?;
    println!("noise budget study over {params}\n");
    let mult = NttMultiplier::new(&params)?;
    let keys = KeyPair::generate(&params, &mult, 11)?;
    let zero = vec![0u8; params.n];

    println!(
        "{:>10} {:>12} {:>12} {:>14} {:>12}",
        "additions", "max |noise|", "rms", "predicted rms", "budget bits"
    );
    let mut acc = she::encrypt(&keys, &zero, &mult, 1)?;
    for step in [0u32, 1, 3, 7, 15, 31, 63] {
        while acc.additions < step {
            let fresh = she::encrypt(&keys, &zero, &mult, 100 + u64::from(acc.additions))?;
            acc = acc.add(&fresh)?;
        }
        let report = noise::measure(keys.secret(), acc.inner(), &zero, &mult)?;
        let predicted = noise::predicted_rms_after_additions(params.n, ETA, step);
        println!(
            "{:>10} {:>12} {:>12.1} {:>14.1} {:>12.1}",
            step, report.max_abs, report.rms, predicted, report.budget_bits
        );
        assert!(report.decryptable(), "budget exhausted unexpectedly");
    }

    println!(
        "\naddition capacity at 2^-40 failure odds: ≈ {} ciphertexts",
        noise::addition_capacity(params.n, params.q, ETA)
    );
    println!(
        "failure bound: q/4 = {} (decryption flips a bit when |noise| crosses it)",
        params.q / 4
    );
    Ok(())
}

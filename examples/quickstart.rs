//! Quickstart: multiply two polynomials on the CryptoPIM accelerator
//! and read its performance report.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use cryptopim::accelerator::CryptoPim;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a paper parameter set. Degree 1024 → NewHope's q = 12289,
    //    16-bit datapath.
    let params = ParamSet::for_degree(1024)?;
    println!("parameters: {params}");

    // 2. Build the accelerator and two inputs.
    let accelerator = CryptoPim::new(&params)?;
    let a = Polynomial::from_coeffs((0..1024).map(|i| i * 3 + 1).collect(), params.q)?;
    let b = Polynomial::from_coeffs((0..1024).map(|i| i * 7 + 2).collect(), params.q)?;

    // 3. Multiply through the simulated PIM datapath.
    let (product, report) = accelerator.multiply_with_report(&a, &b)?;
    println!(
        "\nproduct (first 8 coefficients): {:?}",
        &product.coeffs()[..8]
    );
    println!("\n{report}");

    // 4. Cross-check against the software NTT.
    let software = NttMultiplier::new(&params)?;
    assert_eq!(product, software.multiply(&a, &b)?);
    println!("\nverified: accelerator output matches the software NTT ✓");

    // 5. The paper's headline: throughput vs the published FPGA design.
    if let Some(cmp) = baselines::fpga::compare(
        params.n,
        report.pipelined.latency_us,
        report.pipelined.energy_uj,
        report.pipelined.throughput,
    ) {
        println!(
            "vs FPGA [19] at n = {}: {:.1}× throughput, {:.2}× energy",
            cmp.n, cmp.throughput_gain, cmp.energy_ratio
        );
    }
    Ok(())
}

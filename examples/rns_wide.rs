//! Wide-modulus multiplication via RNS: the path real HE libraries take
//! when one machine-word prime is not enough, and the natural
//! multi-softbank extension of CryptoPIM (each residue channel runs in
//! its own softbank, in parallel).
//!
//! ```text
//! cargo run --example rns_wide
//! ```

use ntt::rns::RnsMultiplier;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two NTT-friendly primes for degree 1024, discovered automatically.
    let mult = RnsMultiplier::with_discovered_primes(1024, 1 << 14)?;
    let (q1, q2) = match mult.channel_moduli() {
        [q1, q2] => (*q1, *q2),
        other => unreachable!("two-channel basis, got {} channels", other.len()),
    };
    let q = mult.modulus();
    println!("channels: q1 = {q1}, q2 = {q2}");
    println!(
        "composite modulus Q = q1·q2 = {q} ({} bits)",
        128 - q.leading_zeros()
    );

    // Coefficients larger than either prime alone.
    let mut a = vec![0u128; 1024];
    let mut b = vec![0u128; 1024];
    a[0] = q - 2;
    a[1] = (q1 as u128) + 12345;
    b[0] = 1;
    b[2] = 2;
    let c = mult.multiply(&a, &b)?;

    // (q−2) + ((q1+12345)·x) times (1 + 2x²):
    println!("\nc[0] = {} (= Q − 2 ✓ {})", c[0], c[0] == q - 2);
    println!(
        "c[2] = {} (= 2·(Q−2) mod Q = Q − 4 ✓ {})",
        c[2],
        c[2] == q - 4
    );
    assert_eq!(c[0], q - 2);
    assert_eq!(c[2], q - 4);
    assert_eq!(c[1], q1 as u128 + 12345);
    assert_eq!(c[3], 2 * (q1 as u128 + 12345));

    println!(
        "\nOn CryptoPIM, the two channels are independent 16-bit NTT pipelines —\n\
         two softbanks run them concurrently, so the wide-modulus product costs\n\
         one pipeline pass plus a cheap CRT recombination."
    );
    Ok(())
}

//! Dumps the engine's golden traces for the paper cases in the literal
//! format `tests/engine_golden.rs` pins: product FNV-1a-64 hash plus
//! per-phase `(cycles, compute, reduce, transfer, energy bits)`.
//!
//! The pinned constants were recorded from the op-by-op engine that
//! predates the plan-cache hot path; this tool exists to *inspect* a
//! divergence, not to refresh the goldens — a diff is an accounting
//! contract break (see the test's module docs).

use cryptopim::engine::Engine;
use cryptopim::mapping::NttMapping;
use modmath::params::ParamSet;
use pim::par::Threads;
use pim::reduce::ReductionStyle;

fn rand_vec(n: usize, q: u64, seed: u64) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 16) % q
        })
        .collect()
}

fn fnv(xs: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &x in xs {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn main() {
    for (n, q) in [(256usize, 7681u64), (1024, 12289), (4096, 786433)] {
        let params = ParamSet::for_degree(n).unwrap();
        assert_eq!(params.q, q);
        let mapping = NttMapping::new(&params, ReductionStyle::CryptoPim).unwrap();
        let a = rand_vec(n, q, 0xC0FFEE ^ n as u64);
        let b = rand_vec(n, q, 0xBEEF ^ n as u64);
        let (c, t) = Engine::new(&mapping)
            .with_threads(Threads::Fixed(1))
            .multiply(&a, &b)
            .unwrap();
        println!("({n}, {q}, 0x{:016x}, [", fnv(&c));
        for (name, ph) in [
            ("premul", &t.premul),
            ("forward", &t.forward),
            ("pointwise", &t.pointwise),
            ("inverse", &t.inverse),
            ("postmul", &t.postmul),
            ("transfers", &t.transfers),
        ] {
            println!(
                "    // {name}\n    ({}, {}, {}, {}, 0x{:016x}),",
                ph.cycles,
                ph.compute_cycles,
                ph.reduce_cycles,
                ph.transfer_cycles,
                ph.energy_pj.to_bits()
            );
        }
        println!(
            "]),  // total cycles {} energy 0x{:016x}",
            t.total().cycles,
            t.total().energy_pj.to_bits()
        );
    }
}

//! Comparison baselines for the CryptoPIM evaluation.
//!
//! * [`bp`] — the three PIM baselines of §IV-C / Fig. 6: BP-1 uses the
//!   operations of Haj-Ali et al. \[35\] on CryptoPIM's architecture, BP-2
//!   swaps in CryptoPIM's multiplier, BP-3 additionally converts the
//!   reductions to shift-and-add. All three are real configurations of
//!   the same simulator, so they compute correct products too.
//! * [`cpu`] — the X86 software baseline of Table II: the paper's gem5
//!   measurements as reference data, a fitted analytic cost model, and a
//!   native timing harness for the software NTT.
//! * [`fpga`] — the published FPGA numbers of \[19\] used in Table II
//!   (n ∈ {256, 512, 1024}).

pub mod bp;
pub mod cpu;
pub mod fpga;
pub mod vm;

pub use pim::PimError;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PimError>;

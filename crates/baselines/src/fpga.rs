//! The FPGA baseline of Table II: the fastest published FPGA
//! implementation of an NTT-based multiplier (\[19\], Xilinx Zynq
//! UltraScale+), which the paper compares against for
//! n ∈ {256, 512, 1024}. Only the published numbers are available —
//! the bitstream is not — so this module carries them as reference data
//! plus the derived comparison ratios the abstract quotes (≈ 31×
//! throughput at similar energy, ≈ 28 % latency penalty).

use crate::cpu::ReferenceRow;

/// The published FPGA rows of Table II (\[19\]).
pub fn paper_reference() -> Vec<ReferenceRow> {
    [
        (256usize, 16u32, 21.56, 2.15, 46382.0),
        (512, 16, 47.63, 5.28, 20995.0),
        (1024, 16, 101.84, 12.52, 9819.0),
    ]
    .into_iter()
    .map(
        |(n, bitwidth, latency_us, energy_uj, throughput)| ReferenceRow {
            n,
            bitwidth,
            latency_us,
            energy_uj,
            throughput,
        },
    )
    .collect()
}

/// The FPGA row for one degree, if published (only n ≤ 1024 exist:
/// "2k-32k: —" in Table II).
pub fn paper_reference_for(n: usize) -> Option<ReferenceRow> {
    paper_reference().into_iter().find(|r| r.n == n)
}

/// CryptoPIM-vs-FPGA comparison for one degree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaComparison {
    /// Degree compared.
    pub n: usize,
    /// CryptoPIM throughput / FPGA throughput (paper avg ≈ 31×).
    pub throughput_gain: f64,
    /// Single-multiplication performance ratio, FPGA latency / CryptoPIM
    /// latency. The paper's "28 % performance reduction" is the average
    /// of this ratio over n ∈ {256, 512, 1024} (≈ 0.72).
    pub performance_ratio: f64,
    /// CryptoPIM energy / FPGA energy (paper: "same energy", ≈ 1×).
    pub energy_ratio: f64,
}

/// Compares a CryptoPIM pipelined report against the FPGA row for the
/// same degree. Returns `None` when no FPGA data exists for `n`.
pub fn compare(
    n: usize,
    latency_us: f64,
    energy_uj: f64,
    throughput: f64,
) -> Option<FpgaComparison> {
    let fpga = paper_reference_for(n)?;
    Some(FpgaComparison {
        n,
        throughput_gain: throughput / fpga.throughput,
        performance_ratio: fpga.latency_us / latency_us,
        energy_ratio: energy_uj / fpga.energy_uj,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cryptopim::accelerator::CryptoPim;
    use cryptopim::pipeline::Organization;
    use modmath::params::ParamSet;

    #[test]
    fn only_small_degrees_published() {
        assert_eq!(paper_reference().len(), 3);
        assert!(paper_reference_for(1024).is_some());
        assert!(
            paper_reference_for(2048).is_none(),
            "Table II: 2k-32k is '-'"
        );
    }

    #[test]
    fn abstract_headline_numbers_reproduce() {
        // "31× throughput improvement with the same energy and only 28 %
        // performance reduction" for n ∈ {256, 512, 1024}.
        let mut gains = Vec::new();
        let mut penalties = Vec::new();
        let mut energies = Vec::new();
        for n in [256usize, 512, 1024] {
            let p = ParamSet::for_degree(n).unwrap();
            let acc = CryptoPim::new(&p).unwrap();
            let r = acc.report().unwrap();
            let c = compare(
                n,
                r.pipelined.latency_us,
                r.pipelined.energy_uj,
                r.pipelined.throughput,
            )
            .unwrap();
            gains.push(c.throughput_gain);
            penalties.push(c.performance_ratio);
            energies.push(c.energy_ratio);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let g = avg(&gains);
        let perf = avg(&penalties);
        let e = avg(&energies);
        assert!(
            (25.0..40.0).contains(&g),
            "throughput gain {g:.1} (paper 31×)"
        );
        assert!(
            (0.6..0.85).contains(&perf),
            "performance ratio {perf:.2} (paper 0.72 = 28 % reduction)"
        );
        assert!((0.7..1.4).contains(&e), "energy ratio {e:.2} (paper ≈ 1)");
    }

    #[test]
    fn per_degree_comparison_exists_only_when_published() {
        let p = ParamSet::for_degree(2048).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let r = acc.report().unwrap();
        assert!(compare(
            2048,
            r.pipelined.latency_us,
            r.pipelined.energy_uj,
            r.pipelined.throughput
        )
        .is_none());
    }

    #[test]
    fn organization_constant_is_used() {
        // Silences the import if the organization enum gains variants.
        let _ = Organization::CryptoPim;
    }
}

//! The PIM baselines of §IV-C (Fig. 6).
//!
//! All four designs share CryptoPIM's building blocks and architecture;
//! they differ in two design choices the paper ablates:
//!
//! | design    | multiplier        | reduction                       |
//! |-----------|-------------------|---------------------------------|
//! | BP-1      | Haj-Ali \[35\]      | multiplication-based            |
//! | BP-2      | CryptoPIM         | multiplication-based            |
//! | BP-3      | CryptoPIM         | shift-add (unpruned)            |
//! | CryptoPIM | CryptoPIM         | shift-add, bit-pruned (Table I) |
//!
//! The comparison is non-pipelined (the paper's "fair comparison"), and
//! the paper's headline ratios are BP-1/BP-2 ≈ 1.9×, BP-2/BP-3 ≈ 5.5×,
//! BP-3/CryptoPIM ≈ 1.2×, total ≈ 12.7×.

use cryptopim::accelerator::CryptoPim;
use cryptopim::pipeline::{Organization, PipelineModel};
use modmath::params::ParamSet;
use pim::block::MultiplierKind;
use pim::reduce::ReductionStyle;
use pim::Result;

/// One of the four compared PIM designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimDesign {
    /// Baseline PIM 1: \[35\]'s operations on CryptoPIM's architecture.
    Bp1,
    /// BP-1 with CryptoPIM's N-bit multiplier.
    Bp2,
    /// BP-2 with reductions converted to shift-and-add.
    Bp3,
    /// The full CryptoPIM design.
    CryptoPim,
}

impl PimDesign {
    /// All four designs, slowest first (Fig. 6's x-axis grouping).
    pub const ALL: [PimDesign; 4] = [
        PimDesign::Bp1,
        PimDesign::Bp2,
        PimDesign::Bp3,
        PimDesign::CryptoPim,
    ];

    /// The multiplier microprogram this design uses.
    pub fn multiplier(self) -> MultiplierKind {
        match self {
            PimDesign::Bp1 => MultiplierKind::HajAli,
            _ => MultiplierKind::CryptoPim,
        }
    }

    /// The reduction style this design uses.
    pub fn reduction(self) -> ReductionStyle {
        match self {
            PimDesign::Bp1 => ReductionStyle::MulBased {
                optimized_mul: false,
            },
            PimDesign::Bp2 => ReductionStyle::MulBased {
                optimized_mul: true,
            },
            PimDesign::Bp3 => ReductionStyle::ShiftAdd,
            PimDesign::CryptoPim => ReductionStyle::CryptoPim,
        }
    }

    /// Builds a functional accelerator in this design configuration
    /// (non-pipelined organization; results remain correct — only the
    /// cycle accounting differs).
    ///
    /// # Errors
    ///
    /// Propagates configuration failures (unsupported modulus/degree).
    pub fn build(self, params: &ParamSet) -> Result<CryptoPim> {
        CryptoPim::with_configuration(
            params,
            Organization::AreaEfficient,
            self.multiplier(),
            self.reduction(),
        )
    }

    /// Non-pipelined latency (µs) of one polynomial multiplication of
    /// degree `params.n` in this design — the Fig. 6 metric.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn latency_us(self, params: &ParamSet) -> Result<f64> {
        let mapping = cryptopim::mapping::NttMapping::new(params, self.reduction())?;
        let model = PipelineModel::new(&mapping).with_multiplier(self.multiplier());
        Ok(model.non_pipelined().latency_us)
    }
}

impl std::fmt::Display for PimDesign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            PimDesign::Bp1 => "BP-1",
            PimDesign::Bp2 => "BP-2",
            PimDesign::Bp3 => "BP-3",
            PimDesign::CryptoPim => "CryptoPIM",
        };
        f.write_str(name)
    }
}

/// The Fig. 6 speed-up summary over a degree sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig6Summary {
    /// Geometric-mean BP-1/BP-2 latency ratio (paper ≈ 1.9×).
    pub bp1_over_bp2: f64,
    /// Geometric-mean BP-2/BP-3 ratio (paper ≈ 5.5×).
    pub bp2_over_bp3: f64,
    /// Geometric-mean BP-3/CryptoPIM ratio (paper ≈ 1.2×).
    pub bp3_over_cryptopim: f64,
    /// Geometric-mean BP-1/CryptoPIM ratio (paper ≈ 12.7×).
    pub bp1_over_cryptopim: f64,
}

/// Computes the Fig. 6 ratios over the paper's degree sweep.
///
/// # Errors
///
/// Propagates model-construction failures.
pub fn fig6_summary() -> Result<Fig6Summary> {
    let mut r12 = Vec::new();
    let mut r23 = Vec::new();
    let mut r3c = Vec::new();
    let mut r1c = Vec::new();
    for n in modmath::params::PAPER_DEGREES {
        let p = ParamSet::for_degree(n).expect("paper degree");
        let l1 = PimDesign::Bp1.latency_us(&p)?;
        let l2 = PimDesign::Bp2.latency_us(&p)?;
        let l3 = PimDesign::Bp3.latency_us(&p)?;
        let lc = PimDesign::CryptoPim.latency_us(&p)?;
        r12.push(l1 / l2);
        r23.push(l2 / l3);
        r3c.push(l3 / lc);
        r1c.push(l1 / lc);
    }
    let gmean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    Ok(Fig6Summary {
        bp1_over_bp2: gmean(&r12),
        bp2_over_bp3: gmean(&r23),
        bp3_over_cryptopim: gmean(&r3c),
        bp1_over_cryptopim: gmean(&r1c),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt::negacyclic::PolyMultiplier;
    use ntt::poly::Polynomial;

    #[test]
    fn all_designs_compute_identical_products() {
        let p = ParamSet::for_degree(256).unwrap();
        let a = Polynomial::from_coeffs((0..256u64).map(|i| i * 29 % p.q).collect(), p.q).unwrap();
        let b = Polynomial::from_coeffs((0..256u64).map(|i| i * 31 + 5).collect(), p.q).unwrap();
        let reference = PimDesign::CryptoPim
            .build(&p)
            .unwrap()
            .multiply(&a, &b)
            .unwrap();
        for d in PimDesign::ALL {
            let got = d.build(&p).unwrap().multiply(&a, &b).unwrap();
            assert_eq!(got, reference, "{d} must be functionally identical");
        }
    }

    #[test]
    fn latency_strictly_improves_along_the_ablation() {
        for n in modmath::params::PAPER_DEGREES {
            let p = ParamSet::for_degree(n).unwrap();
            let l: Vec<f64> = PimDesign::ALL
                .iter()
                .map(|d| d.latency_us(&p).unwrap())
                .collect();
            assert!(l[0] > l[1], "BP-1 > BP-2 at n = {n}");
            assert!(l[1] > l[2], "BP-2 > BP-3 at n = {n}");
            assert!(l[2] > l[3], "BP-3 > CryptoPIM at n = {n}");
        }
    }

    #[test]
    fn fig6_ratios_land_near_paper() {
        let s = fig6_summary().unwrap();
        // Paper: 1.9×, 5.5×, 1.2×, 12.7× (averages over the sweep).
        assert!(
            (1.5..2.5).contains(&s.bp1_over_bp2),
            "BP-1/BP-2 = {:.2} (paper 1.9)",
            s.bp1_over_bp2
        );
        assert!(
            (4.0..9.0).contains(&s.bp2_over_bp3),
            "BP-2/BP-3 = {:.2} (paper 5.5)",
            s.bp2_over_bp3
        );
        assert!(
            (1.05..1.4).contains(&s.bp3_over_cryptopim),
            "BP-3/CryptoPIM = {:.2} (paper 1.2)",
            s.bp3_over_cryptopim
        );
        assert!(
            (9.0..20.0).contains(&s.bp1_over_cryptopim),
            "BP-1/CryptoPIM = {:.2} (paper 12.7)",
            s.bp1_over_cryptopim
        );
    }

    #[test]
    fn design_metadata() {
        assert_eq!(PimDesign::Bp1.multiplier(), MultiplierKind::HajAli);
        assert_eq!(PimDesign::Bp2.multiplier(), MultiplierKind::CryptoPim);
        assert_eq!(PimDesign::Bp3.reduction(), ReductionStyle::ShiftAdd);
        assert_eq!(format!("{}", PimDesign::CryptoPim), "CryptoPIM");
    }
}

//! The X86 CPU baseline of Table II.
//!
//! The paper measured an NTT-based multiplier on a gem5-simulated X86 at
//! 2 GHz. gem5 and the authors' binary are outside this reproduction's
//! scope, so this module provides three views (DESIGN.md §2):
//!
//! 1. [`paper_reference`] — the published Table II rows, as data;
//! 2. [`CpuModel`] — an analytic `cycles = c_b·(3n/2)·log2 n + c_p·4n`
//!    model (three transforms plus point-wise/scaling passes) fitted to
//!    those rows;
//! 3. [`measure_software_multiply`] — a native timing of this crate's
//!    own software NTT, for a qualitative sanity check on real silicon.

use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use std::time::Instant;

/// The gem5/X86 clock the paper assumes.
pub const CPU_CLOCK_GHZ: f64 = 2.0;

/// One row of Table II (any design column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceRow {
    /// Polynomial degree.
    pub n: usize,
    /// Datapath bit-width.
    pub bitwidth: u32,
    /// Latency in µs.
    pub latency_us: f64,
    /// Energy in µJ.
    pub energy_uj: f64,
    /// Multiplications per second.
    pub throughput: f64,
}

/// The paper's measured X86 (gem5) rows of Table II.
pub fn paper_reference() -> Vec<ReferenceRow> {
    [
        (256, 16, 84.81, 570.60, 11790.0),
        (512, 16, 168.96, 1179.52, 5918.0),
        (1024, 16, 349.41, 2483.77, 2861.0),
        (2048, 32, 736.92, 5273.07, 1365.0),
        (4096, 32, 1503.31, 10864.64, 665.0),
        (8192, 32, 3066.76, 22385.51, 326.0),
        (16384, 32, 6256.20, 46123.84, 159.0),
        (32768, 32, 12762.65, 95032.33, 78.0),
    ]
    .into_iter()
    .map(
        |(n, bitwidth, latency_us, energy_uj, throughput)| ReferenceRow {
            n,
            bitwidth,
            latency_us,
            energy_uj,
            throughput,
        },
    )
    .collect()
}

/// The paper's X86 row for one degree, if tabulated.
pub fn paper_reference_for(n: usize) -> Option<ReferenceRow> {
    paper_reference().into_iter().find(|r| r.n == n)
}

/// Analytic CPU cost model: `cycles = c_b · (3n/2)·log2 n + c_p · 4n`
/// (three half-butterfly transforms plus four linear passes), with
/// per-bit-width butterfly constants fitted to the published rows by
/// least squares on the two extreme degrees of each width class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    /// Cycles per butterfly, 16-bit data.
    pub c_butterfly_16: f64,
    /// Cycles per butterfly, 32-bit data.
    pub c_butterfly_32: f64,
    /// Cycles per element per linear pass.
    pub c_pass: f64,
    /// Energy per cycle, nJ (fitted from the energy column).
    pub energy_per_cycle_nj: f64,
}

impl CpuModel {
    /// The fitted model (constants derived from Table II; see module
    /// docs and the regression test).
    pub fn fitted() -> Self {
        CpuModel {
            c_butterfly_16: 52.0,
            c_butterfly_32: 33.0,
            c_pass: 20.0,
            energy_per_cycle_nj: 3.36,
        }
    }

    /// Modeled cycles for one degree-`n` multiplication.
    pub fn cycles(&self, params: &ParamSet) -> f64 {
        let n = params.n as f64;
        let butterflies = 1.5 * n * (params.log2_n() as f64);
        let c_b = if params.bitwidth <= 16 {
            self.c_butterfly_16
        } else {
            self.c_butterfly_32
        };
        c_b * butterflies + self.c_pass * 4.0 * n
    }

    /// Modeled latency in µs at the 2 GHz reference clock.
    pub fn latency_us(&self, params: &ParamSet) -> f64 {
        self.cycles(params) / (CPU_CLOCK_GHZ * 1e3)
    }

    /// Modeled energy in µJ.
    pub fn energy_uj(&self, params: &ParamSet) -> f64 {
        self.cycles(params) * self.energy_per_cycle_nj / 1e3
    }

    /// Modeled throughput (multiplications/s).
    pub fn throughput(&self, params: &ParamSet) -> f64 {
        1e6 / self.latency_us(params)
    }
}

/// Natively times `iterations` software NTT multiplications of degree
/// `params.n` on the host CPU, returning the mean latency in µs.
///
/// This is a *qualitative* check (the host is not a 2 GHz gem5 model);
/// the shape — microseconds, growing ≈ n·log n — is what matters.
///
/// # Errors
///
/// Propagates multiplier construction failures.
pub fn measure_software_multiply(params: &ParamSet, iterations: u32) -> ntt::Result<f64> {
    let mult = NttMultiplier::new(params)?;
    let a = Polynomial::from_coeffs(
        (0..params.n as u64).map(|i| i * 17 % params.q).collect(),
        params.q,
    )?;
    let b = Polynomial::from_coeffs(
        (0..params.n as u64)
            .map(|i| (i * 23 + 7) % params.q)
            .collect(),
        params.q,
    )?;
    // Warm-up pass keeps one-time costs out of the measurement.
    let mut sink = mult.multiply(&a, &b)?;
    let start = Instant::now();
    for _ in 0..iterations.max(1) {
        sink = mult.multiply(&a, &sink)?;
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(&sink);
    Ok(elapsed * 1e6 / iterations.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_table_is_complete_and_monotone() {
        let rows = paper_reference();
        assert_eq!(rows.len(), 8);
        assert!(rows.windows(2).all(|w| w[0].n < w[1].n));
        assert!(rows.windows(2).all(|w| w[0].latency_us < w[1].latency_us));
        assert!(rows.windows(2).all(|w| w[0].throughput > w[1].throughput));
        assert!(paper_reference_for(256).is_some());
        assert!(paper_reference_for(100).is_none());
    }

    #[test]
    fn fitted_model_tracks_reference_latency() {
        // Within 35 % of every published row — the published data is not
        // perfectly n·log n itself.
        let model = CpuModel::fitted();
        for row in paper_reference() {
            let p = ParamSet::for_degree(row.n).unwrap();
            let got = model.latency_us(&p);
            let err = (got - row.latency_us).abs() / row.latency_us;
            assert!(
                err < 0.35,
                "n = {}: model {got:.1} µs vs paper {} µs",
                row.n,
                row.latency_us
            );
        }
    }

    #[test]
    fn fitted_model_tracks_reference_energy() {
        let model = CpuModel::fitted();
        for row in paper_reference() {
            let p = ParamSet::for_degree(row.n).unwrap();
            let got = model.energy_uj(&p);
            let err = (got - row.energy_uj).abs() / row.energy_uj;
            assert!(
                err < 0.45,
                "n = {}: model {got:.1} µJ vs paper {} µJ",
                row.n,
                row.energy_uj
            );
        }
    }

    #[test]
    fn model_throughput_is_inverse_latency() {
        let model = CpuModel::fitted();
        let p = ParamSet::for_degree(1024).unwrap();
        let t = model.throughput(&p);
        let l = model.latency_us(&p);
        assert!((t * l / 1e6 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn native_timing_runs_and_scales() {
        let small = measure_software_multiply(&ParamSet::for_degree(256).unwrap(), 5).unwrap();
        let large = measure_software_multiply(&ParamSet::for_degree(4096).unwrap(), 5).unwrap();
        assert!(small > 0.0);
        assert!(large > small, "larger degrees must take longer");
    }
}

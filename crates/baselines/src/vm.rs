//! A scalar CPU model: a small load/store virtual machine with
//! per-instruction cycle costs, executing a hand-compiled NTT.
//!
//! The paper's CPU column comes from gem5, which is out of scope; the
//! fitted formula in [`crate::cpu`] captures its shape. This module goes
//! one level deeper: the Gentleman–Sande transform and the point-wise
//! passes are compiled (by hand, below) to a RISC-like instruction set
//! and *executed* on the VM, so the cycles-per-butterfly constant is
//! measured from real instruction streams rather than assumed. The VM's
//! default cost model (1-cycle ALU, 3-cycle multiply, 4-cycle memory
//! access, 2-cycle taken branch) lands within a few percent of the
//! gem5-derived constants of `cpu::CpuModel` — the regression test pins
//! that agreement.

use modmath::roots::NttTables;

/// Register index (32 general-purpose `u64` registers).
pub type Reg = usize;

/// The VM instruction set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `r[d] = imm`.
    LoadImm(Reg, u64),
    /// `r[d] = r[a] + r[b]` (wrapping).
    Add(Reg, Reg, Reg),
    /// `r[d] = r[a] - r[b]` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `r[d] = r[a] * r[b]` (wrapping).
    Mul(Reg, Reg, Reg),
    /// `r[d] = r[a] >> imm`.
    Shr(Reg, Reg, u32),
    /// `r[d] = r[a] << imm`.
    Shl(Reg, Reg, u32),
    /// `r[d] = r[a] & r[b]`.
    And(Reg, Reg, Reg),
    /// `r[d] = mem[r[a] + imm]`.
    Load(Reg, Reg, u64),
    /// `mem[r[a] + imm] = r[s]`.
    Store(Reg, Reg, u64),
    /// `if r[a] < r[b] { pc = target }`.
    BranchLt(Reg, Reg, usize),
    /// `if r[a] >= r[b] { pc = target }`.
    BranchGe(Reg, Reg, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Stop.
    Halt,
}

/// Cycle cost per instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU ops (add/sub/shift/and/imm).
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Memory load.
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Branch (taken or not) / jump.
    pub branch: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // In-order scalar core with a small cache: the conventional
        // teaching-model costs.
        CostModel {
            alu: 1,
            mul: 3,
            load: 4,
            store: 4,
            branch: 2,
        }
    }
}

/// Execution outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Total modeled cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
}

/// The virtual machine.
#[derive(Debug)]
pub struct Vm {
    regs: [u64; 32],
    mem: Vec<u64>,
    cost: CostModel,
}

impl Vm {
    /// Creates a VM with `words` of zeroed memory.
    pub fn new(words: usize, cost: CostModel) -> Self {
        Vm {
            regs: [0; 32],
            mem: vec![0; words],
            cost,
        }
    }

    /// Direct memory access for loading inputs / reading results.
    pub fn mem_mut(&mut self) -> &mut [u64] {
        &mut self.mem
    }

    /// Read-only memory view.
    pub fn mem(&self) -> &[u64] {
        &self.mem
    }

    /// Runs a program to `Halt`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range memory access, a pc past the program end,
    /// or when `fuel` instructions are exceeded (runaway program).
    pub fn run(&mut self, program: &[Instr], fuel: u64) -> RunResult {
        let mut pc = 0usize;
        let mut cycles = 0u64;
        let mut retired = 0u64;
        loop {
            assert!(retired < fuel, "program exceeded its fuel budget");
            let instr = program[pc];
            pc += 1;
            retired += 1;
            match instr {
                Instr::LoadImm(d, imm) => {
                    self.regs[d] = imm;
                    cycles += self.cost.alu;
                }
                Instr::Add(d, a, b) => {
                    self.regs[d] = self.regs[a].wrapping_add(self.regs[b]);
                    cycles += self.cost.alu;
                }
                Instr::Sub(d, a, b) => {
                    self.regs[d] = self.regs[a].wrapping_sub(self.regs[b]);
                    cycles += self.cost.alu;
                }
                Instr::Mul(d, a, b) => {
                    self.regs[d] = self.regs[a].wrapping_mul(self.regs[b]);
                    cycles += self.cost.mul;
                }
                Instr::Shr(d, a, k) => {
                    self.regs[d] = self.regs[a] >> k;
                    cycles += self.cost.alu;
                }
                Instr::Shl(d, a, k) => {
                    self.regs[d] = self.regs[a] << k;
                    cycles += self.cost.alu;
                }
                Instr::And(d, a, b) => {
                    self.regs[d] = self.regs[a] & self.regs[b];
                    cycles += self.cost.alu;
                }
                Instr::Load(d, a, off) => {
                    let addr = (self.regs[a] + off) as usize;
                    self.regs[d] = self.mem[addr];
                    cycles += self.cost.load;
                }
                Instr::Store(s, a, off) => {
                    let addr = (self.regs[a] + off) as usize;
                    self.mem[addr] = self.regs[s];
                    cycles += self.cost.store;
                }
                Instr::BranchLt(a, b, target) => {
                    cycles += self.cost.branch;
                    if self.regs[a] < self.regs[b] {
                        pc = target;
                    }
                }
                Instr::BranchGe(a, b, target) => {
                    cycles += self.cost.branch;
                    if self.regs[a] >= self.regs[b] {
                        pc = target;
                    }
                }
                Instr::Jump(target) => {
                    cycles += self.cost.branch;
                    pc = target;
                }
                Instr::Halt => {
                    return RunResult {
                        cycles,
                        instructions: retired,
                    }
                }
            }
        }
    }
}

// Register conventions used by the compiled kernels.
const R_ZERO: Reg = 0; // always 0
const R_I: Reg = 1; // outer counter
const R_J: Reg = 2; // element index
const R_N: Reg = 3; // n
const R_Q: Reg = 4; // q
const R_T0: Reg = 5;
const R_T1: Reg = 6;
const R_T2: Reg = 7;
const R_T3: Reg = 8;
const R_HALF: Reg = 9; // n/2
const R_DIST: Reg = 10; // 1 << stage
const R_LOG: Reg = 11; // stage counter limit
const R_STAGE: Reg = 12;
const R_ADDR_A: Reg = 13; // base of data array
const R_ADDR_W: Reg = 14; // base of twiddle array
const R_JP: Reg = 15;
const R_W: Reg = 16;
const R_MASK: Reg = 17;
const R_T4: Reg = 18;
const R_M: Reg = 19; // Barrett constant
const R_K: Reg = 20; // Barrett shift

/// Emits `dst = src mod q` via Barrett: `t = (src·m) >> k; src − t·q`,
/// plus one conditional subtraction. 6 instructions (two multiplies).
fn emit_barrett(prog: &mut Vec<Instr>, dst: Reg, src: Reg) {
    prog.push(Instr::Mul(R_T3, src, R_M));
    // Shift amount lives in R_K but Shr takes an immediate; kernels
    // emit the right constant at build time via this helper's caller —
    // we standardize on k = 43 (overflow-safe for every paper q).
    prog.push(Instr::Shr(R_T3, R_T3, 43));
    prog.push(Instr::Mul(R_T3, R_T3, R_Q));
    prog.push(Instr::Sub(dst, src, R_T3));
    // One conditional subtract: if dst >= q { dst -= q } (branch + sub).
    let skip = prog.len() + 2; // the instruction after the Sub below
    prog.push(Instr::BranchLt(dst, R_Q, skip));
    prog.push(Instr::Sub(dst, dst, R_Q));
}

/// Compiles the Gentleman–Sande kernel (bit-reversed input, natural
/// output) for length `n`: the same loop structure as
/// `ntt::gs::gs_kernel_in_place`, addressed off the layout
/// `mem[0..n] = data`, `mem[n..n + n/2] = twiddles` (bit-reversed
/// order), with the Barrett constant for `q` baked in.
#[allow(clippy::vec_init_then_push)] // assembler style: one push per instruction
pub fn compile_gs_kernel(n: usize, q: u64) -> Vec<Instr> {
    assert!(n.is_power_of_two() && n >= 2);
    let log_n = n.trailing_zeros();
    let m_const = (1u128 << 43) / q as u128;
    let mut p = Vec::new();

    // Prologue.
    p.push(Instr::LoadImm(R_ZERO, 0));
    p.push(Instr::LoadImm(R_N, n as u64));
    p.push(Instr::LoadImm(R_Q, q));
    p.push(Instr::LoadImm(R_HALF, (n / 2) as u64));
    p.push(Instr::LoadImm(R_LOG, log_n as u64));
    p.push(Instr::LoadImm(R_STAGE, 0));
    p.push(Instr::LoadImm(R_DIST, 1));
    p.push(Instr::LoadImm(R_ADDR_A, 0));
    p.push(Instr::LoadImm(R_ADDR_W, n as u64));
    p.push(Instr::LoadImm(R_M, m_const as u64));
    p.push(Instr::LoadImm(R_K, 43));

    let stage_loop = p.len();
    // mask = dist − 1
    p.push(Instr::LoadImm(R_T0, 1));
    p.push(Instr::Sub(R_MASK, R_DIST, R_T0));
    p.push(Instr::LoadImm(R_I, 0)); // idx

    let idx_loop = p.len();
    // st = idx & mask ; j = ((idx & !mask) << 1) | st
    p.push(Instr::And(R_T0, R_I, R_MASK)); // st
    p.push(Instr::Sub(R_T1, R_I, R_T0)); // idx & !mask
    p.push(Instr::Shl(R_T1, R_T1, 1));
    p.push(Instr::Add(R_J, R_T1, R_T0)); // j
    p.push(Instr::Add(R_JP, R_J, R_DIST)); // j' = j + dist

    // W = twiddle[j >> (stage+1)] — shift by register unsupported, so
    // divide by dist twice: (j / dist) / 2 == j >> (stage + 1) since
    // dist = 1 << stage. Division is also unsupported; instead keep a
    // running twiddle index: t4 = j − st twice-shifted... use the
    // identity j >> (stage + 1) = (idx & !mask) >> stage = t1 >> 1
    // pre-shift: t1 already holds (idx & !mask) << 1, so the target is
    // t1 >> (stage + 1)... simplest correct form: idx − st = idx & !mask
    // and (idx & !mask) >> stage is the group number, which equals
    // (idx − st) / dist. We avoid division by noting the group number
    // also equals idx >> stage, a loop-invariant shift only available
    // as an immediate — so the kernel is specialized per stage below.
    p.push(Instr::Halt); // placeholder, replaced by specialization
    let _ = idx_loop;
    let _ = stage_loop;
    specialize_stages(&mut p, n, q);
    p
}

/// Replaces the generic (register-shift) form with per-stage unrolled
/// loops: one inner loop per stage, each with its shift amounts as
/// immediates. Programs stay compact (`log n` loop bodies), and every
/// instruction is executable.
fn specialize_stages(p: &mut Vec<Instr>, n: usize, _q: u64) {
    // Drop everything after the prologue (the generic attempt above).
    p.truncate(11);
    let log_n = n.trailing_zeros();

    for stage in 0..log_n {
        let dist = 1u64 << stage;
        p.push(Instr::LoadImm(R_DIST, dist));
        p.push(Instr::LoadImm(R_MASK, dist - 1));
        p.push(Instr::LoadImm(R_I, 0));
        let loop_top = p.len();
        // st = idx & mask ; j = ((idx − st) << 1) + st ; jp = j + dist
        p.push(Instr::And(R_T0, R_I, R_MASK));
        p.push(Instr::Sub(R_T1, R_I, R_T0));
        p.push(Instr::Shl(R_T1, R_T1, 1));
        p.push(Instr::Add(R_J, R_T1, R_T0));
        p.push(Instr::Add(R_JP, R_J, R_DIST));
        // w = mem[n + (j >> (stage+1))]
        p.push(Instr::Shr(R_T2, R_J, stage + 1));
        p.push(Instr::Add(R_T2, R_T2, R_ADDR_W));
        p.push(Instr::Load(R_W, R_T2, 0));
        // t = a[j]; u = a[jp]
        p.push(Instr::Load(R_T0, R_J, 0));
        p.push(Instr::Load(R_T1, R_JP, 0));
        // a[j] = (t + u) mod q
        p.push(Instr::Add(R_T2, R_T0, R_T1));
        emit_barrett(p, R_T2, R_T2);
        p.push(Instr::Store(R_T2, R_J, 0));
        // a[jp] = w·(t + q − u) mod q
        p.push(Instr::Add(R_T4, R_T0, R_Q));
        p.push(Instr::Sub(R_T4, R_T4, R_T1));
        p.push(Instr::Mul(R_T4, R_T4, R_W));
        emit_barrett(p, R_T4, R_T4);
        p.push(Instr::Store(R_T4, R_JP, 0));
        // idx++ ; loop while idx < n/2
        p.push(Instr::LoadImm(R_T3, 1));
        p.push(Instr::Add(R_I, R_I, R_T3));
        p.push(Instr::BranchLt(R_I, R_HALF, loop_top));
    }
    p.push(Instr::Halt);
}

/// Compiles a point-wise pass `a[i] = a[i]·c[i] mod q` over `n`
/// elements, with `c` at memory offset `coff`.
#[allow(clippy::vec_init_then_push)] // assembler style: one push per instruction
pub fn compile_pointwise(n: usize, q: u64, coff: usize) -> Vec<Instr> {
    let m_const = ((1u128 << 43) / q as u128) as u64;
    let mut p = Vec::new();
    p.push(Instr::LoadImm(R_Q, q));
    p.push(Instr::LoadImm(R_M, m_const));
    p.push(Instr::LoadImm(R_N, n as u64));
    p.push(Instr::LoadImm(R_I, 0));
    p.push(Instr::LoadImm(R_T2, coff as u64));
    let loop_top = p.len();
    p.push(Instr::Load(R_T0, R_I, 0));
    p.push(Instr::Add(R_T4, R_I, R_T2));
    p.push(Instr::Load(R_T1, R_T4, 0));
    p.push(Instr::Mul(R_T0, R_T0, R_T1));
    emit_barrett(&mut p, R_T0, R_T0);
    p.push(Instr::Store(R_T0, R_I, 0));
    p.push(Instr::LoadImm(R_T3, 1));
    p.push(Instr::Add(R_I, R_I, R_T3));
    p.push(Instr::BranchLt(R_I, R_N, loop_top));
    p.push(Instr::Halt);
    p
}

/// Measured cycles for one full NTT kernel pass of length `n` over `q`.
pub fn measure_ntt_cycles(n: usize, q: u64, cost: CostModel) -> RunResult {
    let tables = NttTables::for_degree_modulus(n, q).expect("NTT-friendly parameters");
    let mut vm = Vm::new(n + n / 2, cost);
    for i in 0..n {
        vm.mem_mut()[i] = (i as u64 * 7 + 1) % q;
    }
    vm.mem_mut()[n..n + n / 2].copy_from_slice(tables.omega_powers());
    vm.run(&compile_gs_kernel(n, q), 10_000_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::{bitrev, zq};
    use ntt::gs;

    #[test]
    fn vm_basics() {
        let mut vm = Vm::new(4, CostModel::default());
        let prog = vec![
            Instr::LoadImm(1, 6),
            Instr::LoadImm(2, 7),
            Instr::Mul(3, 1, 2),
            Instr::LoadImm(4, 0),
            Instr::Store(3, 4, 0),
            Instr::Halt,
        ];
        let r = vm.run(&prog, 100);
        assert_eq!(vm.mem()[0], 42);
        assert_eq!(r.instructions, 6);
        // 3 alu-imm + 1 mul + 1 store = 3 + 3 + 4 = 10 cycles + halt 0.
        assert_eq!(r.cycles, 3 + 3 + 4);
    }

    #[test]
    #[should_panic(expected = "fuel")]
    fn runaway_detected() {
        let mut vm = Vm::new(1, CostModel::default());
        let prog = vec![Instr::Jump(0)];
        vm.run(&prog, 1000);
    }

    #[test]
    fn compiled_gs_kernel_computes_the_transform() {
        for n in [8usize, 64, 256] {
            let q = 7681u64;
            let tables = NttTables::for_degree_modulus(n, q).unwrap();
            let input: Vec<u64> = (0..n as u64).map(|i| (i * 13 + 2) % q).collect();

            // VM execution: data in bit-reversed order, twiddles after.
            let mut vm = Vm::new(n + n / 2, CostModel::default());
            let mut permuted = input.clone();
            bitrev::permute_in_place(&mut permuted);
            vm.mem_mut()[..n].copy_from_slice(&permuted);
            vm.mem_mut()[n..].copy_from_slice(tables.omega_powers());
            vm.run(&compile_gs_kernel(n, q), 1_000_000_000);

            // Software reference.
            let mut expect = input;
            gs::forward(&mut expect, &tables);
            assert_eq!(&vm.mem()[..n], expect.as_slice(), "n = {n}");
        }
    }

    #[test]
    fn compiled_pointwise_computes_products() {
        let n = 64;
        let q = 12289u64;
        let mut vm = Vm::new(2 * n, CostModel::default());
        let a: Vec<u64> = (0..n as u64).map(|i| (i * 3 + 1) % q).collect();
        let c: Vec<u64> = (0..n as u64).map(|i| (i * 5 + 2) % q).collect();
        vm.mem_mut()[..n].copy_from_slice(&a);
        vm.mem_mut()[n..].copy_from_slice(&c);
        vm.run(&compile_pointwise(n, q, n), 1_000_000);
        for i in 0..n {
            assert_eq!(vm.mem()[i], zq::mul(a[i], c[i], q), "slot {i}");
        }
    }

    #[test]
    fn cycles_per_butterfly_matches_fitted_model() {
        // The measured VM constant should land near the gem5-fitted
        // 52 cycles/butterfly (16-bit class) of cpu::CpuModel.
        let n = 1024;
        let r = measure_ntt_cycles(n, 12289, CostModel::default());
        let butterflies = (n / 2) as f64 * (n.trailing_zeros() as f64);
        let per = r.cycles as f64 / butterflies;
        assert!(
            (35.0..70.0).contains(&per),
            "measured {per:.1} cycles/butterfly"
        );
    }

    #[test]
    fn cycles_scale_n_log_n() {
        let c256 = measure_ntt_cycles(256, 7681, CostModel::default()).cycles as f64;
        let c1024 = measure_ntt_cycles(1024, 12289, CostModel::default()).cycles as f64;
        // Ratio of n·log n: (1024·10)/(256·8) = 5.0.
        let ratio = c1024 / c256;
        assert!((4.5..5.5).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn slower_memory_costs_more() {
        let fast = measure_ntt_cycles(256, 7681, CostModel::default()).cycles;
        let slow = measure_ntt_cycles(
            256,
            7681,
            CostModel {
                load: 20,
                store: 20,
                ..CostModel::default()
            },
        )
        .cycles;
        assert!(slow > fast * 2);
    }
}

//! Word-level arithmetic in `Z_q` and the [`Zq`] element type.
//!
//! All free functions take the modulus explicitly and operate on canonical
//! representatives in `[0, q)`. Products are computed through `u128` so any
//! modulus below 2^62 is safe.

use crate::Error;

/// Largest modulus supported by the word-level routines.
pub const MAX_MODULUS: u64 = 1 << 62;

/// Adds two canonical residues modulo `q`.
///
/// # Panics
///
/// Debug-panics if `a` or `b` is not canonical (`>= q`).
#[inline]
pub fn add(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q, "operands must be canonical");
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Subtracts `b` from `a` modulo `q`.
///
/// # Panics
///
/// Debug-panics if `a` or `b` is not canonical (`>= q`).
#[inline]
pub fn sub(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q, "operands must be canonical");
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Multiplies two canonical residues modulo `q` via a 128-bit product.
#[inline]
pub fn mul(a: u64, b: u64, q: u64) -> u64 {
    debug_assert!(a < q && b < q, "operands must be canonical");
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Negates `a` modulo `q`.
#[inline]
pub fn neg(a: u64, q: u64) -> u64 {
    debug_assert!(a < q, "operand must be canonical");
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Computes `base^exp mod q` by square-and-multiply.
pub fn pow(base: u64, mut exp: u64, q: u64) -> u64 {
    debug_assert!(q > 0);
    let mut base = base % q;
    let mut acc: u64 = 1 % q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base, q);
        }
        base = mul(base, base, q);
        exp >>= 1;
    }
    acc
}

/// Computes the modular inverse of `a` modulo `q` with the extended
/// Euclidean algorithm. Works for any modulus, prime or not, as long as
/// `gcd(a, q) = 1`.
///
/// # Errors
///
/// Returns [`Error::NotInvertible`] when `gcd(a, q) != 1` (including
/// `a == 0`).
pub fn inv(a: u64, q: u64) -> Result<u64, Error> {
    let a = a % q;
    if a == 0 {
        return Err(Error::NotInvertible { value: a, q });
    }
    // Extended Euclid on (q, a), tracking only the coefficient of `a`.
    let (mut old_r, mut r) = (q as i128, a as i128);
    let (mut old_t, mut t) = (0i128, 1i128);
    while r != 0 {
        let quot = old_r / r;
        (old_r, r) = (r, old_r - quot * r);
        (old_t, t) = (t, old_t - quot * t);
    }
    if old_r != 1 {
        return Err(Error::NotInvertible { value: a, q });
    }
    let mut res = old_t % q as i128;
    if res < 0 {
        res += q as i128;
    }
    Ok(res as u64)
}

/// Reduces an arbitrary `u128` value modulo `q`.
#[inline]
pub fn reduce128(a: u128, q: u64) -> u64 {
    (a % q as u128) as u64
}

/// An element of `Z_q`, carrying its modulus.
///
/// [`Zq`] is a convenience wrapper for code that manipulates a handful of
/// residues; bulk kernels (NTT butterflies, PIM vector ops) use the free
/// functions on raw `u64` slices instead.
///
/// # Example
///
/// ```
/// use modmath::zq::Zq;
///
/// let a = Zq::new(5, 17);
/// let b = Zq::new(13, 17);
/// assert_eq!((a + b).value(), 1);
/// assert_eq!((a * b).value(), 65 % 17);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Zq {
    value: u64,
    q: u64,
}

impl Zq {
    /// Creates a new element, reducing `value` into `[0, q)`.
    ///
    /// # Panics
    ///
    /// Panics if `q == 0` or `q > MAX_MODULUS`.
    pub fn new(value: u64, q: u64) -> Self {
        assert!(q > 0, "modulus must be nonzero");
        assert!(q <= MAX_MODULUS, "modulus too large");
        Zq {
            value: value % q,
            q,
        }
    }

    /// The canonical representative in `[0, q)`.
    #[inline]
    pub fn value(self) -> u64 {
        self.value
    }

    /// The modulus.
    #[inline]
    pub fn modulus(self) -> u64 {
        self.q
    }

    /// `self^exp`.
    pub fn pow(self, exp: u64) -> Self {
        Zq {
            value: pow(self.value, exp, self.q),
            q: self.q,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NotInvertible`] when no inverse exists.
    pub fn inv(self) -> Result<Self, Error> {
        Ok(Zq {
            value: inv(self.value, self.q)?,
            q: self.q,
        })
    }
}

impl std::fmt::Display for Zq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (mod {})", self.value, self.q)
    }
}

macro_rules! zq_binop {
    ($trait:ident, $method:ident, $func:path) => {
        impl std::ops::$trait for Zq {
            type Output = Zq;

            fn $method(self, rhs: Zq) -> Zq {
                assert_eq!(self.q, rhs.q, "mismatched moduli");
                Zq {
                    value: $func(self.value, rhs.value, self.q),
                    q: self.q,
                }
            }
        }
    };
}

zq_binop!(Add, add, add);
zq_binop!(Sub, sub, sub);
zq_binop!(Mul, mul, mul);

impl std::ops::Neg for Zq {
    type Output = Zq;

    fn neg(self) -> Zq {
        Zq {
            value: neg(self.value, self.q),
            q: self.q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const Q: u64 = 12289;

    #[test]
    fn add_wraps() {
        assert_eq!(add(Q - 1, 1, Q), 0);
        assert_eq!(add(Q - 1, Q - 1, Q), Q - 2);
        assert_eq!(add(0, 0, Q), 0);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(sub(0, 1, Q), Q - 1);
        assert_eq!(sub(5, 5, Q), 0);
        assert_eq!(sub(3, 7, Q), Q - 4);
    }

    #[test]
    fn mul_matches_naive() {
        for a in (0..Q).step_by(997) {
            for b in (0..Q).step_by(1009) {
                assert_eq!(mul(a, b, Q), (a * b) % Q);
            }
        }
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow(2, 10, Q), 1024);
        assert_eq!(pow(3, 0, Q), 1);
        assert_eq!(pow(0, 5, Q), 0);
        // Fermat: a^(q-1) = 1 for prime q.
        assert_eq!(pow(7, Q - 1, Q), 1);
    }

    #[test]
    fn pow_modulus_one() {
        assert_eq!(pow(5, 3, 1), 0);
    }

    #[test]
    fn inv_roundtrip() {
        for a in 1..2000u64 {
            let ai = inv(a, Q).expect("prime modulus: everything invertible");
            assert_eq!(mul(a, ai, Q), 1, "a = {a}");
        }
    }

    #[test]
    fn inv_zero_fails() {
        assert!(matches!(inv(0, Q), Err(Error::NotInvertible { .. })));
    }

    #[test]
    fn inv_composite_modulus() {
        // gcd(4, 12) = 4: not invertible.
        assert!(inv(4, 12).is_err());
        // gcd(5, 12) = 1: invertible.
        let i = inv(5, 12).unwrap();
        assert_eq!((5 * i) % 12, 1);
    }

    #[test]
    fn neg_involution() {
        for a in 0..100 {
            assert_eq!(neg(neg(a, Q), Q), a);
        }
    }

    #[test]
    fn zq_ops() {
        let a = Zq::new(Q + 5, Q);
        assert_eq!(a.value(), 5);
        let b = Zq::new(Q - 1, Q);
        assert_eq!((a + b).value(), 4);
        assert_eq!((a - b).value(), 6);
        assert_eq!((a * b).value(), mul(5, Q - 1, Q));
        assert_eq!((-a).value(), Q - 5);
        assert_eq!(a.pow(2).value(), 25);
        assert_eq!((a.inv().unwrap() * a).value(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatched moduli")]
    fn zq_mixed_moduli_panics() {
        let _ = Zq::new(1, 17) + Zq::new(1, 19);
    }

    #[test]
    fn zq_display_nonempty() {
        let s = format!("{}", Zq::new(3, 17));
        assert!(s.contains('3') && s.contains("17"));
    }
}

//! Bit-reversal permutation helpers.
//!
//! The Gentleman–Sande NTT consumes its input in bit-reversed order and
//! produces output in normal order; Algorithm 1 therefore bit-reverses
//! `A`, `B` and the pointwise product `C̄`. In CryptoPIM the permutation is
//! free: it is applied by *writing* each value to a permuted row of the
//! memory block (Section III-B). This module provides the index
//! permutation both layers share.

/// Reverses the low `bits` bits of `x`.
///
/// # Example
///
/// ```
/// assert_eq!(modmath::bitrev::reverse_bits(0b0001, 4), 0b1000);
/// assert_eq!(modmath::bitrev::reverse_bits(0b0110, 4), 0b0110);
/// ```
#[inline]
pub fn reverse_bits(x: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    x.reverse_bits() >> (usize::BITS - bits)
}

/// Returns `log2(n)` for a power-of-two `n`, or `None` otherwise.
#[inline]
pub fn log2_exact(n: usize) -> Option<u32> {
    if n.is_power_of_two() {
        Some(n.trailing_zeros())
    } else {
        None
    }
}

/// Applies the bit-reversal permutation to `data` in place.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn permute_in_place<T>(data: &mut [T]) {
    let n = data.len();
    let bits = log2_exact(n).expect("length must be a power of two");
    for i in 0..n {
        let j = reverse_bits(i, bits);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// Returns the bit-reversal permutation table for length `n`:
/// `table[i] = reverse_bits(i, log2 n)`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn permutation_table(n: usize) -> Vec<usize> {
    let bits = log2_exact(n).expect("length must be a power of two");
    (0..n).map(|i| reverse_bits(i, bits)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reverse_known_values() {
        assert_eq!(reverse_bits(0, 3), 0);
        assert_eq!(reverse_bits(1, 3), 4);
        assert_eq!(reverse_bits(3, 3), 6);
        assert_eq!(reverse_bits(5, 3), 5);
        assert_eq!(reverse_bits(0b1011, 4), 0b1101);
        assert_eq!(reverse_bits(7, 0), 0);
    }

    #[test]
    fn log2_exact_cases() {
        assert_eq!(log2_exact(1), Some(0));
        assert_eq!(log2_exact(1024), Some(10));
        assert_eq!(log2_exact(3), None);
        assert_eq!(log2_exact(0), None);
    }

    #[test]
    fn permute_is_involution() {
        let n = 64;
        let orig: Vec<usize> = (0..n).collect();
        let mut data = orig.clone();
        permute_in_place(&mut data);
        assert_ne!(data, orig);
        permute_in_place(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn table_is_a_permutation() {
        for n in [1usize, 2, 8, 256, 1024] {
            let t = permutation_table(n);
            let mut seen = vec![false; n];
            for &j in &t {
                assert!(!seen[j]);
                seen[j] = true;
            }
        }
    }

    #[test]
    fn table_matches_in_place() {
        let n = 128;
        let t = permutation_table(n);
        let mut data: Vec<usize> = (0..n).collect();
        permute_in_place(&mut data);
        for i in 0..n {
            assert_eq!(data[i], t[i]);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn permute_rejects_non_power_of_two() {
        let mut data = vec![0u64; 12];
        permute_in_place(&mut data);
    }

    proptest! {
        #[test]
        fn prop_reverse_involution(x in any::<usize>(), bits in 1u32..63) {
            let x = x & ((1usize << bits) - 1);
            prop_assert_eq!(reverse_bits(reverse_bits(x, bits), bits), x);
        }
    }
}

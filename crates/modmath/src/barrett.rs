//! Barrett reduction: generic and the paper's shift-add specializations.
//!
//! The paper (Algorithm 3) replaces the division in Barrett reduction with
//! fixed shift-and-add sequences for the three NTT moduli, because a fixed
//! shift is free in a bit-addressable PIM (it is just a column selection).
//! The sequences are *partial* reductions: applied after an addition
//! (input `< 2q`) they return a value `< 2q` that is congruent to the input
//! and at most one conditional subtraction away from canonical. This module
//! implements:
//!
//! * [`BarrettReducer`] — a generic word-level Barrett reducer for any
//!   modulus, used by the software NTT baselines.
//! * [`shift_add_reduce`] — the exact shift-add sequences of Algorithm 3,
//!   plus [`ShiftAddBarrett`] which records the primitive-operation trace
//!   the PIM simulator uses for cycle accounting. Moduli beyond the
//!   paper's three (RNS residue primes in particular) get a trace derived
//!   from the modulus' non-adjacent form, so any NTT-friendly prime below
//!   `2^31` can run on the engine with faithful cycle accounting.
//!
//! # Paper fidelity notes
//!
//! For `q = 7681` the paper prints `(u<<13) − (u<<9) − u` = `u·7679` for
//! the quotient-times-modulus step, which subtracts `u·(q − 2)` and leaves
//! a result congruent to `a + 2u`, not `a`. The correct constant is
//! `u·q = u·7681 = (u<<13) − (u<<9) + u`; we implement the corrected
//! sequence (same shift/add count, so the cycle model is unaffected) and
//! keep a regression test documenting the erratum. The `q = 12289` and
//! `q = 786433` Barrett rows are correct as printed.

use crate::Error;

/// The three moduli with specialized shift-add sequences in Algorithm 3.
pub const SPECIALIZED_MODULI: [u64; 3] = [7681, 12289, 786433];

/// Number of nonzero digits in the non-adjacent form (NAF) of `v`.
///
/// The NAF is the sparsest signed-digit representation, so it counts
/// exactly the add/subtract operations a shift-add multiplier needs to
/// form `u·v` from shifted copies of `u` — the same bookkeeping the
/// paper does by hand for its three moduli.
pub(crate) fn naf_nonzero_count(mut v: u64) -> u32 {
    let mut count = 0;
    while v != 0 {
        if v & 1 == 1 {
            // Digit is ±1: choose the sign that clears the next bit too.
            if v & 3 == 3 {
                v = v.wrapping_add(1);
            } else {
                v = v.wrapping_sub(1);
            }
            count += 1;
        }
        v >>= 1;
    }
    count
}

/// A primitive operation in a shift-add reduction sequence, as the PIM
/// hardware would execute it. Shifts are free (column selection); adds and
/// subtracts cost cycles proportional to their operand bit-width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftAddOp {
    /// In-memory addition of two operands of the given bit-width.
    Add {
        /// Bit-width of the addition actually performed.
        width: u32,
    },
    /// In-memory subtraction (2's complement add) of the given bit-width.
    Sub {
        /// Bit-width of the subtraction actually performed.
        width: u32,
    },
}

/// Generic word-level Barrett reducer for an arbitrary modulus `q < 2^31`.
///
/// Precomputes `m = floor(2^k / q)` with `k = 2·ceil(log2 q)` and reduces
/// any `a < q^2` with two multiplications and at most two conditional
/// subtractions.
///
/// # Example
///
/// ```
/// use modmath::barrett::BarrettReducer;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let red = BarrettReducer::new(12289)?;
/// assert_eq!(red.reduce(12289 * 12288 + 17), 17);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrettReducer {
    q: u64,
    /// floor(2^k / q)
    m: u128,
    k: u32,
}

impl BarrettReducer {
    /// Creates a reducer for modulus `q`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ModulusTooLarge`] when `q >= 2^31` (the reducer is
    /// specified for inputs up to `q^2`, which must fit in `u64`).
    pub fn new(q: u64) -> Result<Self, Error> {
        if q == 0 || q >= 1 << 31 {
            return Err(Error::ModulusTooLarge { q });
        }
        let bits = 64 - q.leading_zeros();
        let k = 2 * bits;
        let m = (1u128 << k) / q as u128;
        Ok(BarrettReducer { q, m, k })
    }

    /// The modulus this reducer was built for.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Reduces `a` (any value `< q^2`) to its canonical residue.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        debug_assert!(
            (a as u128) < self.q as u128 * self.q as u128 * 4,
            "input out of specified range"
        );
        let quot = ((a as u128 * self.m) >> self.k) as u64;
        let mut r = a - quot * self.q;
        while r >= self.q {
            r -= self.q;
        }
        r
    }

    /// Modular multiplication using this reducer.
    #[inline]
    pub fn mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.reduce(a * b)
    }
}

/// Precomputes the 64-bit Barrett constant `µ = ⌊2^64 / q⌋` used by
/// [`mul_lazy_mu`]. Valid for any `q ≥ 2`.
#[inline]
pub fn precompute_mu(q: u64) -> u64 {
    debug_assert!(q >= 2, "modulus must be at least 2");
    ((1u128 << 64) / q as u128) as u64
}

/// Lazy Barrett product: `a · b mod q` in `[0, 2q)` without `u128`
/// division, for operands whose full product fits a `u64`.
///
/// With `µ = ⌊2^64/q⌋` and `x = a·b < 2^64`, the quotient estimate
/// `h = ⌊µ·x / 2^64⌋` satisfies `h ≤ x/q` and `h > x/q − x/2^64 − 1`,
/// so `r = x − h·q ∈ [0, q + q·x/2^64) ⊂ [0, 2q)`. Unlike the Shoup
/// form, *neither* operand needs a precomputed companion — this is the
/// pointwise-stage workhorse, where both operands are spectrum values.
///
/// Requires `a·b < 2^64` (e.g. lazy `[0, 2q)` operands with `q < 2^31`).
#[inline]
pub fn mul_lazy_mu(a: u64, b: u64, mu: u64, q: u64) -> u64 {
    debug_assert!(
        (a as u128) * (b as u128) < 1 << 64,
        "operand product must fit u64"
    );
    let x = a * b;
    let h = ((mu as u128 * x as u128) >> 64) as u64;
    x.wrapping_sub(h.wrapping_mul(q))
}

/// Applies the paper's shift-add Barrett sequence for `q`, returning the
/// *partial* result exactly as the hardware sequence produces it (no final
/// conditional subtraction).
///
/// The sequences are specified for post-addition inputs, `a < 2q`; for that
/// range the result is congruent to `a (mod q)` and `< 2q`.
///
/// Moduli other than the three specialized ones take the generic
/// single-step arm: with `qbits = ⌈log2 q⌉` and input `a < 2q`, the
/// quotient estimate `u = a >> qbits` is 0 or 1, so `a − u·q` is one
/// shift-add multiply away — the same structure the paper's sequences
/// have, derived at runtime instead of by hand.
///
/// # Errors
///
/// Returns [`Error::ModulusTooLarge`] when `q < 2` or `q ≥ 2^31` (the
/// shift-add datapath is specified for sub-word moduli).
#[inline]
pub fn shift_add_reduce_partial(a: u64, q: u64) -> Result<u64, Error> {
    let r = match q {
        12289 => {
            // u ← ((a<<2) + a) >> 16 ;  u ← (u<<13) + (u<<12) + u ;  a − u
            let u = ((a << 2) + a) >> 16;
            let uq = (u << 13) + (u << 12) + u; // u · 12289
            a - uq
        }
        7681 => {
            // u ← a >> 13 ;  u ← (u<<13) − (u<<9) + u ;  a − u
            //
            // Erratum: the paper prints `(u<<13) − (u<<9) − u` = u·7679,
            // which subtracts u·(q−2) and leaves the result incongruent
            // (off by 2u). The corrected constant is u·q = u·7681.
            let u = a >> 13;
            let uq = (u << 13) - (u << 9) + u; // u · 7681 = u · q
            a - uq
        }
        786433 => {
            // u ← a >> 20 ;  u ← (u<<19) + (u<<18) + u ;  a − u
            let u = a >> 20;
            let uq = (u << 19) + (u << 18) + u; // u · 786433
            a - uq
        }
        _ => {
            if !(2..1 << 31).contains(&q) {
                return Err(Error::ModulusTooLarge { q });
            }
            // u ← a >> qbits is 0 or 1 for a < 2q (2^qbits > q), and
            // u·q ≤ q < a whenever u = 1, so the subtraction never wraps.
            let qbits = 64 - q.leading_zeros();
            let u = a >> qbits;
            a - u * q
        }
    };
    Ok(r)
}

/// Full shift-add Barrett reduction: the paper's sequence (or the
/// generic single-step arm for unspecialized moduli) followed by
/// conditional subtractions down to the canonical range.
///
/// # Errors
///
/// Returns [`Error::ModulusTooLarge`] when `q < 2` or `q ≥ 2^31`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), modmath::Error> {
/// for a in 0..2 * 12289 {
///     let r = modmath::barrett::shift_add_reduce(a, 12289)?;
///     assert_eq!(r, a % 12289);
/// }
/// # Ok(())
/// # }
/// ```
#[inline]
pub fn shift_add_reduce(a: u64, q: u64) -> Result<u64, Error> {
    let mut r = shift_add_reduce_partial(a, q)?;
    while r >= q {
        r -= q;
    }
    Ok(r)
}

/// A shift-add Barrett reducer that also exposes the primitive-operation
/// trace, so the PIM simulator can account cycles for it.
///
/// The trace lists every in-memory add/subtract the sequence performs,
/// with the bit-width each one actually needs (the paper computes "only
/// the necessary bit-wise computations").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftAddBarrett {
    q: u64,
    trace: Vec<ShiftAddOp>,
}

impl ShiftAddBarrett {
    /// Builds the reducer and its operation trace for modulus `q`.
    ///
    /// The three paper moduli use the hand-derived traces of Algorithm 3.
    /// Any other modulus `2 ≤ q < 2^31` gets a trace derived from the
    /// non-adjacent form of `q`: forming `u·q` takes `nnz(q) − 1`
    /// add/subtract steps over shifted copies of `u`, then one subtract
    /// for `a − u·q` and one conditional canonical subtract — exactly the
    /// structure of the specialized sequences (for `q = 786433` the
    /// derived trace matches the printed one operation for operation).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ModulusTooLarge`] when `q < 2` or `q ≥ 2^31`.
    pub fn new(q: u64) -> Result<Self, Error> {
        let trace = match q {
            12289 => vec![
                // ((a<<2) + a): a < 2q fits in 15 bits, shifted operand 17 bits.
                ShiftAddOp::Add { width: 17 },
                // (u<<13) + (u<<12): u ≤ 1 here, but the vector-wide datapath
                // is provisioned for the worst case width of u·q ≤ 2q (15 bits).
                ShiftAddOp::Add { width: 15 },
                // (..) + u
                ShiftAddOp::Add { width: 15 },
                // a − u·q
                ShiftAddOp::Sub { width: 15 },
                // conditional canonical subtraction
                ShiftAddOp::Sub { width: 14 },
            ],
            7681 => vec![
                // (u<<13) − (u<<9)
                ShiftAddOp::Sub { width: 14 },
                // (..) − u
                ShiftAddOp::Sub { width: 14 },
                // a − u·(q−2)
                ShiftAddOp::Sub { width: 14 },
                // conditional canonical subtraction
                ShiftAddOp::Sub { width: 13 },
            ],
            786433 => vec![
                // (u<<19) + (u<<18)
                ShiftAddOp::Add { width: 21 },
                // (..) + u
                ShiftAddOp::Add { width: 21 },
                // a − u·q
                ShiftAddOp::Sub { width: 21 },
                // conditional canonical subtraction
                ShiftAddOp::Sub { width: 20 },
            ],
            _ => {
                if !(2..1 << 31).contains(&q) {
                    return Err(Error::ModulusTooLarge { q });
                }
                let qbits = 64 - q.leading_zeros();
                let mut trace = Vec::new();
                // Form u·q from shifted copies of u: one add/sub per
                // nonzero NAF digit beyond the first. The datapath is
                // provisioned for the worst case u·q ≤ 2q (qbits + 1).
                for _ in 1..naf_nonzero_count(q) {
                    trace.push(ShiftAddOp::Add { width: qbits + 1 });
                }
                // a − u·q
                trace.push(ShiftAddOp::Sub { width: qbits + 1 });
                // conditional canonical subtraction
                trace.push(ShiftAddOp::Sub { width: qbits });
                trace
            }
        };
        Ok(ShiftAddBarrett { q, trace })
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The primitive-operation trace (for PIM cycle accounting).
    #[inline]
    pub fn trace(&self) -> &[ShiftAddOp] {
        &self.trace
    }

    /// Reduces `a < 2q` to canonical form.
    ///
    /// # Panics
    ///
    /// Debug-panics when `a >= 2q` (outside the specified input range).
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        debug_assert!(a < 2 * self.q, "shift-add Barrett is specified for a < 2q");
        shift_add_reduce(a, self.q).expect("modulus validated at construction")
    }
}

/// Reference reduction used as the oracle in tests.
#[inline]
pub fn naive_reduce(a: u64, q: u64) -> u64 {
    a % q
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generic_barrett_matches_naive_all_moduli() {
        for q in [3u64, 17, 7681, 12289, 786433, (1 << 30) + 3] {
            let red = BarrettReducer::new(q).unwrap();
            // Sweep a sparse grid over [0, q^2).
            let step = (q * q / 4096).max(1);
            let mut a = 0u64;
            while a < q * q {
                assert_eq!(red.reduce(a), a % q, "q = {q}, a = {a}");
                a += step;
            }
            // Edges.
            assert_eq!(red.reduce(0), 0);
            assert_eq!(red.reduce(q - 1), q - 1);
            assert_eq!(red.reduce(q), 0);
            assert_eq!(red.reduce(q * q - 1), (q * q - 1) % q);
        }
    }

    #[test]
    fn generic_barrett_rejects_huge_modulus() {
        assert!(BarrettReducer::new(1 << 31).is_err());
        assert!(BarrettReducer::new(0).is_err());
    }

    #[test]
    fn generic_barrett_mul() {
        let red = BarrettReducer::new(7681).unwrap();
        for a in (0..7681).step_by(97) {
            for b in (0..7681).step_by(89) {
                assert_eq!(red.mul(a, b), (a * b) % 7681);
            }
        }
    }

    #[test]
    fn shift_add_exhaustive_post_addition_range() {
        // The hardware applies this after additions: input < 2q.
        for q in SPECIALIZED_MODULI {
            for a in 0..2 * q {
                let r = shift_add_reduce(a, q).unwrap();
                assert_eq!(r, a % q, "q = {q}, a = {a}");
                let partial = shift_add_reduce_partial(a, q).unwrap();
                assert_eq!(partial % q, a % q, "partial congruence, q = {q}, a = {a}");
                assert!(partial < 2 * q, "partial bound, q = {q}, a = {a}");
            }
        }
    }

    #[test]
    fn mu_lazy_matches_residue_and_bound() {
        for q in [3u64, 17, 7681, 12289, 786433, (1 << 31) - 1] {
            let mu = precompute_mu(q);
            let lazy_max = 2 * q - 1;
            for a in [0u64, 1, q - 1, q, lazy_max] {
                for b in [0u64, 1, q - 1, q, lazy_max] {
                    let r = mul_lazy_mu(a, b, mu, q);
                    assert!(r < 2 * q, "q={q} a={a} b={b} r={r}");
                    assert_eq!(r % q, (a as u128 * b as u128 % q as u128) as u64);
                }
            }
        }
    }

    /// Demonstrates the erratum: the q = 7681 sequence exactly as printed
    /// (`u·7679`) is not congruent to `a mod q` once the quotient estimate
    /// is nonzero.
    #[test]
    fn printed_7681_sequence_is_incongruent() {
        let q = 7681u64;
        let printed = |a: u64| -> u64 {
            let u = a >> 13;
            a - ((u << 13) - (u << 9) - u)
        };
        // a = 8192: u = 1, printed result 513, true residue 511.
        assert_eq!(printed(8192) % q, 513);
        assert_eq!(8192 % q, 511);
    }

    #[test]
    fn shift_add_rejects_out_of_range_moduli() {
        assert!(matches!(
            shift_add_reduce(5, 1),
            Err(Error::ModulusTooLarge { q: 1 })
        ));
        assert!(shift_add_reduce(5, 1 << 31).is_err());
        assert!(ShiftAddBarrett::new(0).is_err());
        assert!(ShiftAddBarrett::new(1 << 31).is_err());
    }

    #[test]
    fn shift_add_generic_arm_exhaustive() {
        // Unspecialized moduli (RNS residue primes among them) take the
        // generic single-step arm; check it over the full input contract.
        for q in [17u64, 40961, 65537, 786433 + 12 * 8192, 1073479681] {
            let step = (2 * q / 65536).max(1);
            let mut a = 0u64;
            while a < 2 * q {
                let r = shift_add_reduce(a, q).unwrap();
                assert_eq!(r, a % q, "q = {q}, a = {a}");
                let partial = shift_add_reduce_partial(a, q).unwrap();
                assert_eq!(partial % q, a % q, "partial congruence q = {q} a = {a}");
                assert!(partial < 2 * q, "partial bound q = {q} a = {a}");
                a += step;
            }
            assert_eq!(shift_add_reduce(2 * q - 1, q).unwrap(), q - 1);
        }
    }

    #[test]
    fn naf_count_matches_hand_derivations() {
        // 786433 = 2^20 − 2^18 + 1, 7681 = 2^13 − 2^9 + 1, 12289 = 2^13 + 2^12 + 1.
        assert_eq!(naf_nonzero_count(786433), 3);
        assert_eq!(naf_nonzero_count(7681), 3);
        assert_eq!(naf_nonzero_count(12289), 3);
        assert_eq!(naf_nonzero_count(0), 0);
        assert_eq!(naf_nonzero_count(1), 1);
        assert_eq!(naf_nonzero_count(7), 2); // 8 − 1
    }

    #[test]
    fn generic_trace_matches_specialized_structure_for_786433() {
        // The derived trace for 786433 must equal the printed one, so the
        // cycle model is identical whichever arm produced it.
        let specialized = ShiftAddBarrett::new(786433).unwrap();
        let qbits = 20u32;
        let derived: Vec<ShiftAddOp> = (1..naf_nonzero_count(786433))
            .map(|_| ShiftAddOp::Add { width: qbits + 1 })
            .chain([
                ShiftAddOp::Sub { width: qbits + 1 },
                ShiftAddOp::Sub { width: qbits },
            ])
            .collect();
        assert_eq!(specialized.trace(), &derived[..]);
    }

    #[test]
    fn shift_add_barrett_reducer_traces_nonempty() {
        for q in SPECIALIZED_MODULI {
            let red = ShiftAddBarrett::new(q).unwrap();
            assert!(!red.trace().is_empty());
            assert_eq!(red.modulus(), q);
            assert_eq!(red.reduce(2 * q - 1), (2 * q - 1) % q);
        }
    }

    proptest! {
        #[test]
        fn prop_generic_barrett(q in 2u64..(1 << 31), a in any::<u64>()) {
            let red = BarrettReducer::new(q).unwrap();
            let a = a % (q * q);
            prop_assert_eq!(red.reduce(a), a % q);
        }

        #[test]
        fn prop_shift_add_congruent(idx in 0usize..3, a in any::<u64>()) {
            let q = SPECIALIZED_MODULI[idx];
            let a = a % (2 * q);
            prop_assert_eq!(shift_add_reduce(a, q).unwrap(), a % q);
        }
    }
}

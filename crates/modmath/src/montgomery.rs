//! Montgomery (REDC) reduction: generic and the paper's shift-add forms.
//!
//! Montgomery reduction computes `REDC(a) = a · R⁻¹ mod q` for `R = 2^k`,
//! replacing division by `q` with a multiplication modulo `R` (a truncation)
//! and an exact division by `R` (a shift). The paper specializes REDC to
//! its three NTT moduli with shift-add sequences (Algorithm 3), applied
//! after every in-memory multiplication.
//!
//! # Erratum in the published Algorithm 3
//!
//! REDC needs `m = a · q' mod R` with `q · q' ≡ −1 (mod R)` and then
//! `t = (a + m·q) / R`. The valid constants are:
//!
//! | q      | R    | q' (= first multiplier) | second multiplier |
//! |--------|------|-------------------------|-------------------|
//! | 12289  | 2^18 | 12287 = (a<<13)+(a<<12)−a | 12289 = (u<<13)+(u<<12)+u |
//! | 7681   | 2^18 | 7679  = (a<<13)−(a<<9)−a  | 7681  = (u<<13)−(u<<9)+u  |
//! | 786433 | 2^32 | 786431 = (a<<19)+(a<<18)−a | 786433 = (u<<19)+(u<<18)+u |
//!
//! The q = 12289 row is printed correctly in the paper. For q = 7681 and
//! q = 786433 the printed sequences swap the `±1`/`∓1` constants between
//! the two steps (e.g. `a·7681` then `u·7679`), which makes the exact
//! division still work — the product constant is the same — but leaves the
//! result off by a multiple-of-`floor(aq'/R)` term modulo `q`. We implement
//! the corrected order above; a regression test
//! (`printed_7681_sequence_is_incongruent`) demonstrates the erratum.

use crate::barrett::{naf_nonzero_count, ShiftAddOp};
use crate::{zq, Error};

/// Computes `−q⁻¹ mod 2^k` for odd `q` by Hensel lifting (Newton
/// iteration on the 2-adic inverse: each step doubles the valid bits).
#[inline]
pub(crate) fn neg_inv_pow2(q: u64, k: u32) -> u64 {
    debug_assert!(q & 1 == 1 && (1..64).contains(&k));
    let mask = (1u64 << k) - 1;
    let mut inv: u64 = 1;
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(q.wrapping_mul(inv)));
    }
    let q_inv = inv & mask;
    debug_assert_eq!(q.wrapping_mul(q_inv) & mask, 1);
    ((1u64 << k) - q_inv) & mask
}

/// Generic word-level Montgomery reducer for an odd modulus `q < 2^31`.
///
/// # Example
///
/// ```
/// use modmath::montgomery::MontgomeryReducer;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let red = MontgomeryReducer::new(12289)?;
/// let a = 1234u64;
/// let b = 5678u64;
/// // Multiply in Montgomery form:
/// let am = red.to_mont(a);
/// let bm = red.to_mont(b);
/// let cm = red.mont_mul(am, bm);
/// assert_eq!(red.from_mont(cm), a * b % 12289);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MontgomeryReducer {
    q: u64,
    /// R = 2^k
    k: u32,
    /// −q⁻¹ mod R
    q_prime: u64,
    /// R² mod q, used by `to_mont`.
    r2: u64,
}

impl MontgomeryReducer {
    /// Creates a reducer with `R = 2^k`, `k = 2·ceil(log2 q)` (so that any
    /// product of canonical residues is a valid REDC input).
    ///
    /// # Errors
    ///
    /// * [`Error::ModulusTooLarge`] when `q >= 2^31`.
    /// * [`Error::NotInvertible`] when `q` is even (no inverse mod `2^k`).
    pub fn new(q: u64) -> Result<Self, Error> {
        Self::with_r_exponent(q, 2 * (64 - q.leading_zeros()))
    }

    /// Creates a reducer with an explicit `R = 2^k`. The paper uses
    /// `k = 18` for q ∈ {7681, 12289} and `k = 32` for q = 786433.
    ///
    /// # Errors
    ///
    /// Same as [`MontgomeryReducer::new`], plus [`Error::ModulusTooLarge`]
    /// if `R <= q`.
    pub fn with_r_exponent(q: u64, k: u32) -> Result<Self, Error> {
        if q == 0 || q >= 1 << 31 || k >= 63 || (1u64 << k) <= q {
            return Err(Error::ModulusTooLarge { q });
        }
        if q & 1 == 0 {
            return Err(Error::NotInvertible {
                value: q,
                q: 1 << k,
            });
        }
        let r = 1u64 << k;
        let q_prime = neg_inv_pow2(q, k);
        let r_mod_q = r % q;
        let r2 = zq::mul(r_mod_q, r_mod_q, q);
        Ok(MontgomeryReducer { q, k, q_prime, r2 })
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The exponent `k` of `R = 2^k`.
    #[inline]
    pub fn r_exponent(&self) -> u32 {
        self.k
    }

    /// REDC: computes `a · R⁻¹ mod q` for `a < q·R`.
    #[inline]
    pub fn redc(&self, a: u64) -> u64 {
        debug_assert!((a as u128) < (self.q as u128) << self.k);
        let mask = (1u64 << self.k) - 1;
        let m = (a & mask).wrapping_mul(self.q_prime) & mask;
        let t = ((a as u128 + m as u128 * self.q as u128) >> self.k) as u64;
        if t >= self.q {
            t - self.q
        } else {
            t
        }
    }

    /// Converts into Montgomery form: `a · R mod q`.
    #[inline]
    pub fn to_mont(&self, a: u64) -> u64 {
        debug_assert!(a < self.q);
        self.redc(((a as u128 * self.r2 as u128) % ((self.q as u128) << self.k)) as u64)
    }

    /// Converts out of Montgomery form.
    #[inline]
    pub fn from_mont(&self, a: u64) -> u64 {
        self.redc(a)
    }

    /// Multiplies two Montgomery-form residues, staying in Montgomery form.
    #[inline]
    pub fn mont_mul(&self, a: u64, b: u64) -> u64 {
        debug_assert!(a < self.q && b < self.q);
        self.redc(a * b)
    }
}

/// The shift-add REDC sequences of Algorithm 3 (corrected; see module
/// docs). Computes `a · R⁻¹ mod q` — possibly plus one `q` — for
/// `a < q · R`, where `R = 2^18` (7681, 12289) or `R = 2^32` (786433).
/// Other odd moduli below `2^31` take a generic `R = 2^32` REDC arm
/// (the constants are recomputed per call; hot paths should go through
/// [`ShiftAddMontgomery`], which precomputes them).
///
/// # Errors
///
/// Returns [`Error::ModulusTooLarge`] / [`Error::NotInvertible`] for
/// moduli outside the supported range or even.
#[inline]
pub fn shift_add_redc_partial(a: u64, q: u64) -> Result<u64, Error> {
    let t = match q {
        12289 => {
            // m ← a·12287 mod 2^18 ; t ← (a + m·12289) >> 18
            let m = ((a << 13) + (a << 12) - a) & ((1 << 18) - 1);
            let mq = (m << 13) + (m << 12) + m;
            (mq + a) >> 18
        }
        7681 => {
            // m ← a·7679 mod 2^18 ; t ← (a + m·7681) >> 18
            let m = ((a << 13).wrapping_sub(a << 9).wrapping_sub(a)) & ((1 << 18) - 1);
            let mq = (m << 13) - (m << 9) + m;
            (mq + a) >> 18
        }
        786433 => {
            // m ← a·786431 mod 2^32 ; t ← (a + m·786433) >> 32
            // (reduce a mod 2^32 first so the shifts cannot overflow u64;
            // m depends only on a mod R)
            let al = a & ((1 << 32) - 1);
            let m = ((al << 19) + (al << 18)).wrapping_sub(al) & ((1 << 32) - 1);
            let mq = (m << 19) + (m << 18) + m;
            (mq + a) >> 32
        }
        _ => {
            if !(2..1 << 31).contains(&q) {
                return Err(Error::ModulusTooLarge { q });
            }
            if q & 1 == 0 {
                return Err(Error::NotInvertible {
                    value: q,
                    q: 1 << 32,
                });
            }
            // Generic R = 2^32 REDC: m ← a·q' mod R ; t ← (a + m·q) >> 32.
            let mask = (1u64 << 32) - 1;
            let m = (a & mask).wrapping_mul(neg_inv_pow2(q, 32)) & mask;
            ((a as u128 + m as u128 * q as u128) >> 32) as u64
        }
    };
    Ok(t)
}

/// Full shift-add REDC: the hardware sequence followed by the single
/// conditional subtraction to canonical range. Returns `a · R⁻¹ mod q`.
///
/// # Errors
///
/// Same as [`shift_add_redc_partial`].
#[inline]
pub fn shift_add_redc(a: u64, q: u64) -> Result<u64, Error> {
    let t = shift_add_redc_partial(a, q)?;
    Ok(if t >= q { t - q } else { t })
}

/// The `R` exponent the paper uses for each specialized modulus.
///
/// # Errors
///
/// Returns [`Error::UnsupportedModulus`] for unspecialized moduli.
pub fn paper_r_exponent(q: u64) -> Result<u32, Error> {
    match q {
        7681 | 12289 => Ok(18),
        786433 => Ok(32),
        _ => Err(Error::UnsupportedModulus { q }),
    }
}

/// A shift-add Montgomery reducer exposing its primitive-operation trace
/// for PIM cycle accounting (mirrors [`crate::barrett::ShiftAddBarrett`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftAddMontgomery {
    q: u64,
    k: u32,
    /// −q⁻¹ mod 2^k, precomputed so `reduce` is branch-light in the
    /// engine's per-butterfly hot path.
    q_prime: u64,
    trace: Vec<ShiftAddOp>,
}

impl ShiftAddMontgomery {
    /// Builds the reducer and its operation trace for modulus `q`.
    ///
    /// The paper's three moduli keep their hand-derived `R` and traces.
    /// Any other odd modulus `2 < q < 2^31` gets `R = 2^32` and a trace
    /// derived from the non-adjacent forms of `q'` (k-bit steps) and `q`
    /// (k+qbits-bit steps), matching the specialized traces' structure
    /// operation for operation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ModulusTooLarge`] for out-of-range moduli and
    /// [`Error::NotInvertible`] for even moduli.
    pub fn new(q: u64) -> Result<Self, Error> {
        let k = match q {
            7681 | 12289 | 786433 => paper_r_exponent(q)?,
            _ => {
                if !(2..1 << 31).contains(&q) {
                    return Err(Error::ModulusTooLarge { q });
                }
                if q & 1 == 0 {
                    return Err(Error::NotInvertible {
                        value: q,
                        q: 1 << 32,
                    });
                }
                32
            }
        };
        let q_prime = neg_inv_pow2(q, k);
        // Each line of Algorithm 3 costs one add/sub per `+`/`−`; the
        // widths are the bit-widths the steps actually need: the first
        // multiplier is truncated to k bits, m·q spans k + ceil(log2 q)
        // bits, and the final correction is a ceil(log2 q)-bit subtract.
        let qbits = 64 - q.leading_zeros();
        let trace = match q {
            12289 => vec![
                ShiftAddOp::Add { width: k },
                ShiftAddOp::Sub { width: k },
                ShiftAddOp::Add { width: k + qbits },
                ShiftAddOp::Add { width: k + qbits },
                ShiftAddOp::Add { width: k + qbits },
                ShiftAddOp::Sub { width: qbits + 1 },
            ],
            7681 => vec![
                ShiftAddOp::Sub { width: k },
                ShiftAddOp::Sub { width: k },
                ShiftAddOp::Sub { width: k + qbits },
                ShiftAddOp::Add { width: k + qbits },
                ShiftAddOp::Add { width: k + qbits },
                ShiftAddOp::Sub { width: qbits + 1 },
            ],
            786433 => vec![
                ShiftAddOp::Add { width: k },
                ShiftAddOp::Sub { width: k },
                ShiftAddOp::Add { width: k + qbits },
                ShiftAddOp::Add { width: k + qbits },
                ShiftAddOp::Add { width: k + qbits },
                ShiftAddOp::Sub { width: qbits + 1 },
            ],
            _ => {
                let mut trace = Vec::new();
                // m ← a·q' mod 2^k: one op per nonzero NAF digit of q'
                // beyond the first, at the truncated k-bit width.
                for _ in 1..naf_nonzero_count(q_prime) {
                    trace.push(ShiftAddOp::Add { width: k });
                }
                // m·q, accumulated over shifted copies of m, then + a.
                for _ in 1..naf_nonzero_count(q) {
                    trace.push(ShiftAddOp::Add { width: k + qbits });
                }
                trace.push(ShiftAddOp::Add { width: k + qbits });
                // conditional canonical subtraction
                trace.push(ShiftAddOp::Sub { width: qbits + 1 });
                trace
            }
        };
        Ok(ShiftAddMontgomery {
            q,
            k,
            q_prime,
            trace,
        })
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The exponent of `R = 2^k`.
    #[inline]
    pub fn r_exponent(&self) -> u32 {
        self.k
    }

    /// The precomputed `−q⁻¹ mod 2^k` REDC constant.
    #[inline]
    pub fn q_prime(&self) -> u64 {
        self.q_prime
    }

    /// The primitive-operation trace (for PIM cycle accounting).
    #[inline]
    pub fn trace(&self) -> &[ShiftAddOp] {
        &self.trace
    }

    /// Reduces `a < q · R`, returning `a · R⁻¹ mod q` in canonical form.
    ///
    /// Uses the precomputed REDC constant, so this is the same arithmetic
    /// as the free [`shift_add_redc`] sequences without the per-call
    /// modulus dispatch — the form the engine's dynamic butterfly path
    /// calls once per coefficient.
    #[inline]
    pub fn reduce(&self, a: u64) -> u64 {
        debug_assert!((a as u128) < (self.q as u128) << self.k);
        let mask = (1u64 << self.k) - 1;
        let m = (a & mask).wrapping_mul(self.q_prime) & mask;
        let t = ((a as u128 + m as u128 * self.q as u128) >> self.k) as u64;
        if t >= self.q {
            t - self.q
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn generic_redc_is_a_times_r_inverse() {
        for q in [7681u64, 12289, 786433, 8380417] {
            let red = MontgomeryReducer::new(q).unwrap();
            let r = 1u64 << red.r_exponent();
            let r_inv = zq::inv(r % q, q).unwrap();
            for a in (0..q * 2).step_by(313) {
                assert_eq!(red.redc(a), zq::mul(a % q, r_inv, q), "q={q} a={a}");
            }
        }
    }

    #[test]
    fn generic_mont_mul_roundtrip() {
        for q in [17u64, 7681, 12289, 786433] {
            let red = MontgomeryReducer::new(q).unwrap();
            for a in (0..q).step_by(((q / 50) as usize).max(1)) {
                for b in (0..q).step_by(((q / 50) as usize).max(1)) {
                    let c = red.from_mont(red.mont_mul(red.to_mont(a), red.to_mont(b)));
                    assert_eq!(c, zq::mul(a, b, q), "q={q} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn generic_rejects_even_modulus() {
        assert!(MontgomeryReducer::new(12288).is_err());
    }

    #[test]
    fn generic_rejects_huge_modulus() {
        assert!(MontgomeryReducer::new(1 << 31).is_err());
        assert!(MontgomeryReducer::new(0).is_err());
    }

    #[test]
    fn shift_add_redc_matches_generic() {
        for q in [7681u64, 12289, 786433] {
            let k = paper_r_exponent(q).unwrap();
            let generic = MontgomeryReducer::with_r_exponent(q, k).unwrap();
            // Sweep inputs over [0, q·R) sparsely plus dense low range.
            let qr = (q as u128) << k;
            let step = (qr / 4096).max(1) as u64;
            let mut a = 0u64;
            while (a as u128) < qr {
                assert_eq!(
                    shift_add_redc(a, q).unwrap(),
                    generic.redc(a),
                    "q = {q}, a = {a}"
                );
                a += step;
            }
            for a in 0..2048u64 {
                assert_eq!(shift_add_redc(a, q).unwrap(), generic.redc(a));
            }
        }
    }

    #[test]
    fn shift_add_redc_partial_within_one_q() {
        for q in [7681u64, 12289, 786433] {
            let k = paper_r_exponent(q).unwrap();
            let qr = (q as u128) << k;
            let step = (qr / 1024).max(1) as u64;
            let mut a = 0u64;
            while (a as u128) < qr {
                let t = shift_add_redc_partial(a, q).unwrap();
                assert!(t < 2 * q, "partial REDC bound, q = {q}, a = {a}");
                a += step;
            }
        }
    }

    /// Demonstrates the erratum: the sequence exactly as printed in the
    /// paper for q = 7681 (first multiplier 7681, second 7679) is NOT
    /// congruent to a·R⁻¹ for general inputs.
    #[test]
    fn printed_7681_sequence_is_incongruent() {
        let q = 7681u64;
        let r_inv = zq::inv((1u64 << 18) % q, q).unwrap();
        let printed = |a: u64| -> u64 {
            let m = ((a << 13) - (a << 9) + a) & ((1 << 18) - 1); // a·7681 mod R
            let mq = (m << 13) - (m << 9) - m; // m·7679
            (mq + a) >> 18
        };
        let mut mismatches = 0u32;
        for a in (0..(q << 10)).step_by(997) {
            let expect = zq::mul(a % q, r_inv, q);
            if printed(a) % q != expect {
                mismatches += 1;
            }
        }
        assert!(
            mismatches > 0,
            "the printed sequence would have to be congruent everywhere to be correct"
        );
    }

    #[test]
    fn shift_add_montgomery_reducer() {
        for q in [7681u64, 12289, 786433] {
            let red = ShiftAddMontgomery::new(q).unwrap();
            assert!(!red.trace().is_empty());
            assert_eq!(red.modulus(), q);
            let k = red.r_exponent();
            let generic = MontgomeryReducer::with_r_exponent(q, k).unwrap();
            for a in (0..q * 4).step_by(61) {
                assert_eq!(red.reduce(a), generic.redc(a));
            }
        }
    }

    #[test]
    fn out_of_range_moduli_error() {
        assert!(shift_add_redc(5, 0).is_err());
        assert!(shift_add_redc(5, 1 << 31).is_err());
        assert!(shift_add_redc(5, 40962).is_err()); // even
        assert!(ShiftAddMontgomery::new(0).is_err());
        assert!(ShiftAddMontgomery::new(1 << 31).is_err());
        assert!(ShiftAddMontgomery::new(40962).is_err());
        assert!(paper_r_exponent(17).is_err());
    }

    #[test]
    fn shift_add_generic_arm_matches_generic_reducer() {
        // Unspecialized odd moduli (RNS residue primes among them) take
        // the generic R = 2^32 arm in both the free functions and the
        // trace-carrying reducer.
        for q in [17u64, 40961, 65537, 1073479681] {
            let red = ShiftAddMontgomery::new(q).unwrap();
            assert_eq!(red.r_exponent(), 32);
            assert!(!red.trace().is_empty());
            let generic = MontgomeryReducer::with_r_exponent(q, 32).unwrap();
            let qr = (q as u128) << 32;
            let step = (qr / 4096).max(1) as u64;
            let mut a = 0u64;
            while (a as u128) < qr {
                assert_eq!(red.reduce(a), generic.redc(a), "q = {q}, a = {a}");
                assert_eq!(shift_add_redc(a, q).unwrap(), generic.redc(a));
                let t = shift_add_redc_partial(a, q).unwrap();
                assert!(t < 2 * q, "partial bound q = {q} a = {a}");
                a += step;
            }
        }
    }

    #[test]
    fn stored_q_prime_matches_hensel_inverse() {
        for q in [7681u64, 12289, 786433, 40961, 1073479681] {
            let red = ShiftAddMontgomery::new(q).unwrap();
            let k = red.r_exponent();
            let mask = (1u64 << k) - 1;
            assert_eq!(q.wrapping_mul(red.q_prime()).wrapping_add(1) & mask, 0);
        }
    }

    proptest! {
        #[test]
        fn prop_shift_add_redc(idx in 0usize..3, a in any::<u64>()) {
            let q = [7681u64, 12289, 786433][idx];
            let k = paper_r_exponent(q).unwrap();
            let a = (a as u128 % ((q as u128) << k)) as u64;
            let generic = MontgomeryReducer::with_r_exponent(q, k).unwrap();
            prop_assert_eq!(shift_add_redc(a, q).unwrap(), generic.redc(a));
        }

        #[test]
        fn prop_generic_mont_mul(q_seed in 1u64..10_000, a in any::<u64>(), b in any::<u64>()) {
            let q = 2 * q_seed + 1; // odd
            let red = MontgomeryReducer::new(q).unwrap();
            let a = a % q;
            let b = b % q;
            let c = red.from_mont(red.mont_mul(red.to_mont(a), red.to_mont(b)));
            prop_assert_eq!(c, zq::mul(a, b, q));
        }
    }
}

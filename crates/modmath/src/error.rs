use std::fmt;

/// Errors produced by the `modmath` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The requested polynomial degree is not a power of two, or is outside
    /// the supported range.
    InvalidDegree {
        /// The offending degree.
        n: usize,
    },
    /// The modulus does not satisfy `q ≡ 1 (mod 2n)`, so no 2n-th root of
    /// unity exists and the negacyclic NTT is undefined.
    NoRootOfUnity {
        /// Modulus that was checked.
        q: u64,
        /// Required multiplicative order.
        order: u64,
    },
    /// The modulus is not prime (required for inverses via Fermat).
    NotPrime {
        /// The composite modulus.
        q: u64,
    },
    /// A value that must be invertible modulo `q` is not (e.g. 0).
    NotInvertible {
        /// The non-invertible value.
        value: u64,
        /// The modulus.
        q: u64,
    },
    /// No shift-add reduction sequence is defined for this modulus; only
    /// q ∈ {7681, 12289, 786433} are specialized by the paper.
    UnsupportedModulus {
        /// The modulus without a specialized sequence.
        q: u64,
    },
    /// The modulus is too large for the word-level arithmetic used here.
    ModulusTooLarge {
        /// The oversized modulus.
        q: u64,
    },
    /// An RNS basis needs between 2 and 4 residue channels.
    BasisSize {
        /// The rejected channel count.
        k: usize,
    },
    /// Two RNS basis moduli share a common factor, so the Chinese
    /// remainder map is not a bijection (for prime moduli this means a
    /// duplicate).
    NotCoprime {
        /// One offending modulus.
        a: u64,
        /// The other offending modulus.
        b: u64,
    },
    /// The product of the RNS basis moduli overflows `u128`, the widest
    /// composite modulus the combine arithmetic supports.
    BasisOverflow,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidDegree { n } => {
                write!(f, "degree {n} is not a supported power of two")
            }
            Error::NoRootOfUnity { q, order } => {
                write!(f, "no element of order {order} exists modulo {q}")
            }
            Error::NotPrime { q } => write!(f, "modulus {q} is not prime"),
            Error::NotInvertible { value, q } => {
                write!(f, "{value} is not invertible modulo {q}")
            }
            Error::UnsupportedModulus { q } => {
                write!(f, "no specialized shift-add reduction for modulus {q}")
            }
            Error::ModulusTooLarge { q } => {
                write!(f, "modulus {q} exceeds the supported word size")
            }
            Error::BasisSize { k } => {
                write!(f, "RNS basis needs 2..=4 residue channels, got {k}")
            }
            Error::NotCoprime { a, b } => {
                write!(f, "RNS basis moduli {a} and {b} are not coprime")
            }
            Error::BasisOverflow => {
                write!(f, "product of RNS basis moduli overflows u128")
            }
        }
    }
}

impl std::error::Error for Error {}

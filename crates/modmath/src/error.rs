use std::fmt;

/// Errors produced by the `modmath` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The requested polynomial degree is not a power of two, or is outside
    /// the supported range.
    InvalidDegree {
        /// The offending degree.
        n: usize,
    },
    /// The modulus does not satisfy `q ≡ 1 (mod 2n)`, so no 2n-th root of
    /// unity exists and the negacyclic NTT is undefined.
    NoRootOfUnity {
        /// Modulus that was checked.
        q: u64,
        /// Required multiplicative order.
        order: u64,
    },
    /// The modulus is not prime (required for inverses via Fermat).
    NotPrime {
        /// The composite modulus.
        q: u64,
    },
    /// A value that must be invertible modulo `q` is not (e.g. 0).
    NotInvertible {
        /// The non-invertible value.
        value: u64,
        /// The modulus.
        q: u64,
    },
    /// No shift-add reduction sequence is defined for this modulus; only
    /// q ∈ {7681, 12289, 786433} are specialized by the paper.
    UnsupportedModulus {
        /// The modulus without a specialized sequence.
        q: u64,
    },
    /// The modulus is too large for the word-level arithmetic used here.
    ModulusTooLarge {
        /// The oversized modulus.
        q: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidDegree { n } => {
                write!(f, "degree {n} is not a supported power of two")
            }
            Error::NoRootOfUnity { q, order } => {
                write!(f, "no element of order {order} exists modulo {q}")
            }
            Error::NotPrime { q } => write!(f, "modulus {q} is not prime"),
            Error::NotInvertible { value, q } => {
                write!(f, "{value} is not invertible modulo {q}")
            }
            Error::UnsupportedModulus { q } => {
                write!(f, "no specialized shift-add reduction for modulus {q}")
            }
            Error::ModulusTooLarge { q } => {
                write!(f, "modulus {q} exceeds the supported word size")
            }
        }
    }
}

impl std::error::Error for Error {}

//! Named parameter sets matching the paper's evaluation.
//!
//! Section III-B fixes the modulus per degree:
//!
//! * `q = 7681` for `n ≤ 256` (Kyber),
//! * `q = 12289` for `n ∈ {512, 1024}` (NewHope),
//! * `q = 786433` for `n ∈ {2k, 4k, 8k, 16k, 32k}` (Microsoft SEAL).
//!
//! The datapath bit-width follows Table II: 16-bit for `n ≤ 1024` and
//! 32-bit for `n ≥ 2048`.

use crate::{primes, Error};

/// Where a parameter set comes from (the scheme that motivates it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Scheme {
    /// CRYSTALS-Kyber (NIST round-1 parameters): q = 7681.
    Kyber,
    /// NewHope key exchange: q = 12289.
    NewHope,
    /// Microsoft SEAL homomorphic-encryption moduli: q = 786433.
    Seal,
    /// A custom parameter set built by the user.
    Custom,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Scheme::Kyber => "Kyber",
            Scheme::NewHope => "NewHope",
            Scheme::Seal => "SEAL",
            Scheme::Custom => "custom",
        };
        f.write_str(name)
    }
}

/// A full NTT parameter set: degree, modulus, datapath width, provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamSet {
    /// Polynomial degree `n` (power of two).
    pub n: usize,
    /// NTT-friendly prime modulus `q ≡ 1 (mod 2n)`.
    pub q: u64,
    /// Datapath bit-width `N` used by the PIM hardware for this set.
    pub bitwidth: u32,
    /// The scheme this set is drawn from.
    pub scheme: Scheme,
}

/// All eight degrees evaluated in the paper (Fig. 5/6, Table II).
pub const PAPER_DEGREES: [usize; 8] = [256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

impl ParamSet {
    /// Returns the paper's parameter set for a given degree.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDegree`] when `n` is not a power of two in
    /// `[4, 32768]` — the paper's table stops at 32k; larger polynomials
    /// are handled by segmentation at the architecture level.
    ///
    /// # Example
    ///
    /// ```
    /// use modmath::params::ParamSet;
    ///
    /// # fn main() -> Result<(), modmath::Error> {
    /// assert_eq!(ParamSet::for_degree(256)?.q, 7681);
    /// assert_eq!(ParamSet::for_degree(512)?.q, 12289);
    /// assert_eq!(ParamSet::for_degree(4096)?.q, 786433);
    /// assert_eq!(ParamSet::for_degree(4096)?.bitwidth, 32);
    /// # Ok(())
    /// # }
    /// ```
    pub fn for_degree(n: usize) -> Result<Self, Error> {
        if !n.is_power_of_two() || !(4..=32768).contains(&n) {
            return Err(Error::InvalidDegree { n });
        }
        let (q, bitwidth, scheme) = if n <= 256 {
            (7681, 16, Scheme::Kyber)
        } else if n <= 1024 {
            (12289, 16, Scheme::NewHope)
        } else {
            (786433, 32, Scheme::Seal)
        };
        Ok(ParamSet {
            n,
            q,
            bitwidth,
            scheme,
        })
    }

    /// Builds a custom parameter set, validating NTT friendliness.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidDegree`] when `n` is not a power of two `>= 4`.
    /// * [`Error::NotPrime`] when `q` is composite.
    /// * [`Error::NoRootOfUnity`] when `q ≢ 1 (mod 2n)`.
    pub fn custom(n: usize, q: u64, bitwidth: u32) -> Result<Self, Error> {
        if !n.is_power_of_two() || n < 4 {
            return Err(Error::InvalidDegree { n });
        }
        if !primes::is_prime(q) {
            return Err(Error::NotPrime { q });
        }
        if !(q - 1).is_multiple_of(2 * n as u64) {
            return Err(Error::NoRootOfUnity {
                q,
                order: 2 * n as u64,
            });
        }
        Ok(ParamSet {
            n,
            q,
            bitwidth,
            scheme: Scheme::Custom,
        })
    }

    /// All eight paper parameter sets in ascending degree order.
    pub fn paper_sweep() -> Vec<ParamSet> {
        PAPER_DEGREES
            .iter()
            .map(|&n| ParamSet::for_degree(n).expect("paper degrees are valid"))
            .collect()
    }

    /// `log2(n)` — the number of NTT stages.
    #[inline]
    pub fn log2_n(&self) -> u32 {
        self.n.trailing_zeros()
    }

    /// Number of bits needed to store a canonical residue.
    #[inline]
    pub fn modulus_bits(&self) -> u32 {
        64 - self.q.leading_zeros()
    }
}

impl std::fmt::Display for ParamSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (n = {}, q = {}, {}-bit)",
            self.scheme, self.n, self.q, self.bitwidth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_assignments() {
        let cases = [
            (256usize, 7681u64, 16u32),
            (512, 12289, 16),
            (1024, 12289, 16),
            (2048, 786433, 32),
            (4096, 786433, 32),
            (8192, 786433, 32),
            (16384, 786433, 32),
            (32768, 786433, 32),
        ];
        for (n, q, w) in cases {
            let p = ParamSet::for_degree(n).unwrap();
            assert_eq!((p.q, p.bitwidth), (q, w), "n = {n}");
        }
    }

    #[test]
    fn all_paper_sets_are_ntt_friendly() {
        for p in ParamSet::paper_sweep() {
            assert!(
                primes::supports_negacyclic_ntt(p.q, p.n),
                "{p} is not NTT-friendly"
            );
        }
    }

    #[test]
    fn invalid_degrees_rejected() {
        for n in [0usize, 1, 2, 3, 100, 65536] {
            assert!(ParamSet::for_degree(n).is_err(), "n = {n}");
        }
    }

    #[test]
    fn custom_validation() {
        assert!(ParamSet::custom(1024, 12289, 16).is_ok());
        // Composite modulus.
        assert!(matches!(
            ParamSet::custom(1024, 12287, 16),
            Err(Error::NotPrime { .. })
        ));
        // Prime but not ≡ 1 mod 2n.
        assert!(matches!(
            ParamSet::custom(4096, 12289, 16),
            Err(Error::NoRootOfUnity { .. })
        ));
        assert!(matches!(
            ParamSet::custom(3, 12289, 16),
            Err(Error::InvalidDegree { .. })
        ));
    }

    #[test]
    fn helpers() {
        let p = ParamSet::for_degree(1024).unwrap();
        assert_eq!(p.log2_n(), 10);
        assert_eq!(p.modulus_bits(), 14);
        assert!(format!("{p}").contains("NewHope"));
    }

    #[test]
    fn sweep_is_sorted_and_complete() {
        let sweep = ParamSet::paper_sweep();
        assert_eq!(sweep.len(), 8);
        assert!(sweep.windows(2).all(|w| w[0].n < w[1].n));
    }
}

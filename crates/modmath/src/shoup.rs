//! Shoup precomputed-quotient multiplication and the lazy-reduction
//! helpers built on it.
//!
//! For a *fixed* multiplicand `w < q` (a twiddle factor, a `φ` power, a
//! cached spectrum value), precompute once
//!
//! ```text
//! w' = ⌊w · 2^64 / q⌋
//! ```
//!
//! and every subsequent product `w · t mod q` costs two 64×64→high/low
//! multiplies and one subtraction — no `u128` division, no `%`:
//!
//! ```text
//! h = ⌊w'·t / 2^64⌋          (the high word of w'·t)
//! r = w·t − h·q   (mod 2^64)
//! ```
//!
//! # Bounds argument
//!
//! Writing `w·2^64 = w'·q + r₀` with `0 ≤ r₀ < q`:
//!
//! * `h ≤ w'·t/2^64 ≤ w·t/q`, so `r = w·t − h·q ≥ 0`.
//! * `h > w'·t/2^64 − 1`, so
//!   `r < q + r₀·t/2^64 < q + q·t/2^64 ≤ 2q` for any `t < 2^64`.
//!
//! Hence [`mul_lazy`] returns a value in `[0, 2q)` for **any** `u64`
//! argument `t` — canonical inputs are *not* required — provided
//! `q ≤ 2^62` ([`zq::MAX_MODULUS`]) so that `2q` (and the `4q`-bounded
//! sums the lazy NTT butterflies form) fit in a `u64`. This is what lets
//! the NTT keep coefficients unnormalized in `[0, 2q)` between stages and
//! pay for a single conditional subtraction at the very end.

use crate::zq;

/// Precomputes the Shoup companion `⌊w · 2^64 / q⌋` for a fixed
/// multiplicand `w`.
///
/// # Panics
///
/// Debug-panics if `w` is not canonical or `q` exceeds
/// [`zq::MAX_MODULUS`].
#[inline]
pub fn precompute(w: u64, q: u64) -> u64 {
    debug_assert!(w < q, "multiplicand must be canonical");
    debug_assert!(q <= zq::MAX_MODULUS, "modulus too large for Shoup");
    (((w as u128) << 64) / q as u128) as u64
}

/// Precomputes Shoup companions for a whole table of canonical values.
pub fn precompute_table(ws: &[u64], q: u64) -> Vec<u64> {
    ws.iter().map(|&w| precompute(w, q)).collect()
}

/// Lazy Shoup product: `w · t mod q`, returned in `[0, 2q)`.
///
/// `w` must be canonical with companion `w_shoup`; `t` may be **any**
/// `u64` (see the module-level bounds argument).
#[inline]
pub fn mul_lazy(t: u64, w: u64, w_shoup: u64, q: u64) -> u64 {
    let h = ((w_shoup as u128 * t as u128) >> 64) as u64;
    w.wrapping_mul(t).wrapping_sub(h.wrapping_mul(q))
}

/// Canonical Shoup product: `w · t mod q` in `[0, q)`.
#[inline]
pub fn mul(t: u64, w: u64, w_shoup: u64, q: u64) -> u64 {
    reduce_2q(mul_lazy(t, w, w_shoup, q), q)
}

/// Largest modulus (exclusive) for which the half-width Shoup path
/// ([`mul_lazy_half`]) is valid: `q < 2^30` keeps every intermediate of
/// the 32×32→64 schedule in range (see [`mul_lazy_half`]'s bounds
/// argument). All three paper moduli are far below this.
pub const HALF_MODULUS_LIMIT: u64 = 1 << 30;

/// Precomputes the *half-width* Shoup companion `⌊w · 2^32 / q⌋`.
///
/// Identity worth knowing: this is exactly [`precompute`]`(w, q) >> 32`
/// (floor division composes), so kernels that already carry the 64-bit
/// companion table can derive the half-width companion with one shift
/// instead of a second table.
///
/// # Panics
///
/// Debug-panics if `w` is not canonical or `q >=`
/// [`HALF_MODULUS_LIMIT`].
#[inline]
pub fn precompute_half(w: u64, q: u64) -> u64 {
    debug_assert!(w < q, "multiplicand must be canonical");
    debug_assert!(
        q < HALF_MODULUS_LIMIT,
        "modulus too large for half-width Shoup"
    );
    (w << 32) / q
}

/// Half-width lazy Shoup product: `w · t mod q` in `[0, 2q)`, using only
/// 32×32→64 multiplies.
///
/// Requires `t < 2^32`, canonical `w`, and `q <` [`HALF_MODULUS_LIMIT`].
/// With `w' = ⌊w·2^32/q⌋` the same floor argument as [`mul_lazy`] gives
/// `r = w·t − ⌊w'·t/2^32⌋·q ∈ [0, q + q·t/2^32) ⊂ [0, 2q)`. Every
/// intermediate fits a `u64`: `w'·t < 2^62`, `w·t < 2^62`, `h·q < 2^60`.
/// The three multiplies have both operands below `2^32`, which is what
/// lets the autovectorizer lower them to packed 32×32→64 multiplies
/// (`pmuludq`) instead of full 64-bit products.
#[inline]
pub fn mul_lazy_half(t: u64, w: u64, w_shoup_half: u64, q: u64) -> u64 {
    debug_assert!(t < 1 << 32, "half-width Shoup requires t < 2^32");
    debug_assert!(w < q && q < HALF_MODULUS_LIMIT);
    // The explicit u32 round-trips are lossless under the documented
    // bounds; they are what lets LLVM prove each product is a
    // 32×32→64 widening multiply (the `pmuludq` pattern) instead of a
    // full 64×64 multiply, which SSE2/AVX2 cannot vectorize.
    let h = (widen32(w_shoup_half) * widen32(t)) >> 32;
    (widen32(w) * widen32(t)).wrapping_sub(widen32(h) * widen32(q))
}

/// Lossless `u64 → u32 → u64` round-trip for values known `< 2^32`,
/// making the 32-bit range visible to the optimizer.
#[inline(always)]
fn widen32(x: u64) -> u64 {
    debug_assert!(x < 1 << 32);
    x as u32 as u64
}

/// Branch-free conditional subtraction: maps `[0, 4q) → [0, 2q)` via a
/// mask instead of a branch, keeping butterfly loops free of
/// unpredictable control flow so they stay autovectorizable.
#[inline]
pub fn lazy_sub_2q(a: u64, two_q: u64) -> u64 {
    debug_assert!(a < 2 * two_q, "input must be in [0, 4q)");
    let mask = ((a >= two_q) as u64).wrapping_neg();
    a - (two_q & mask)
}

/// Reduces a value known to lie in `[0, 2q)` to canonical `[0, q)`.
#[inline]
pub fn reduce_2q(a: u64, q: u64) -> u64 {
    debug_assert!(a < 2 * q, "input must be in [0, 2q)");
    if a >= q {
        a - q
    } else {
        a
    }
}

/// Normalizes a slice of `[0, 2q)` values to canonical form in place.
#[inline]
pub fn normalize_slice(data: &mut [u64], q: u64) {
    for c in data.iter_mut() {
        *c = reduce_2q(*c, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAPER_MODULI: [u64; 3] = [7681, 12289, 786433];

    #[test]
    fn matches_plain_mul_canonical_inputs() {
        for q in PAPER_MODULI {
            for w in (0..q).step_by((q / 97) as usize + 1) {
                let ws = precompute(w, q);
                for t in (0..q).step_by((q / 89) as usize + 1) {
                    assert_eq!(mul(t, w, ws, q), zq::mul(w, t, q), "q={q} w={w} t={t}");
                }
            }
        }
    }

    #[test]
    fn lazy_result_below_2q_for_extreme_t() {
        for q in PAPER_MODULI {
            let w = q - 1;
            let ws = precompute(w, q);
            for t in [0u64, 1, q - 1, q, 2 * q - 1, u64::MAX] {
                let r = mul_lazy(t, w, ws, q);
                assert!(r < 2 * q, "q={q} t={t} r={r}");
                assert_eq!(r % q, ((w as u128 * t as u128) % q as u128) as u64);
            }
        }
    }

    #[test]
    fn large_modulus_near_limit() {
        // A prime just under 2^62 exercises the headroom analysis.
        let q = (1u64 << 62) - 57;
        assert!(crate::primes::is_prime(q));
        let w = q - 2;
        let ws = precompute(w, q);
        for t in [1u64, q - 1, 2 * q - 1, u64::MAX] {
            let r = mul_lazy(t, w, ws, q);
            assert!(r < 2 * q);
            assert_eq!(r % q, ((w as u128 * t as u128) % q as u128) as u64);
        }
    }

    #[test]
    fn table_precompute_matches_scalar() {
        let q = 12289;
        let ws: Vec<u64> = (0..64).map(|i| (i * 191) % q).collect();
        let duals = precompute_table(&ws, q);
        for (i, &w) in ws.iter().enumerate() {
            assert_eq!(duals[i], precompute(w, q));
        }
    }

    #[test]
    fn half_width_companion_is_shifted_full_companion() {
        for q in PAPER_MODULI {
            for w in (0..q).step_by((q / 61) as usize + 1) {
                assert_eq!(precompute_half(w, q), precompute(w, q) >> 32, "q={q} w={w}");
            }
        }
    }

    #[test]
    fn half_width_lazy_matches_residue_and_bound() {
        for q in PAPER_MODULI {
            let w = q - 1;
            let ws = precompute_half(w, q);
            for t in [0u64, 1, q - 1, q, 2 * q - 1, (1 << 32) - 1] {
                let r = mul_lazy_half(t, w, ws, q);
                assert!(r < 2 * q, "q={q} t={t} r={r}");
                assert_eq!(r % q, ((w as u128 * t as u128) % q as u128) as u64);
            }
        }
    }

    #[test]
    fn half_width_worst_case_modulus() {
        // Largest prime below the half-width limit stresses the
        // intermediate bounds (w·t and w'·t both approach 2^62).
        let q = (1u64 << 30) - 35;
        assert!(crate::primes::is_prime(q));
        let w = q - 1;
        let ws = precompute_half(w, q);
        for t in [1u64, q - 1, 2 * q - 1, (1 << 32) - 1] {
            let r = mul_lazy_half(t, w, ws, q);
            assert!(r < 2 * q);
            assert_eq!(r % q, ((w as u128 * t as u128) % q as u128) as u64);
        }
    }

    #[test]
    fn lazy_sub_2q_matches_branchy() {
        let q = 786433u64;
        for a in [0, q - 1, q, 2 * q - 1, 2 * q, 3 * q, 4 * q - 1] {
            let expect = if a >= 2 * q { a - 2 * q } else { a };
            assert_eq!(lazy_sub_2q(a, 2 * q), expect, "a={a}");
        }
    }

    #[test]
    fn normalize_slice_canonicalizes() {
        let q = 7681;
        let mut data = vec![0, q - 1, q, q + 5, 2 * q - 1];
        normalize_slice(&mut data, q);
        assert_eq!(data, vec![0, q - 1, 0, 5, q - 1]);
    }
}

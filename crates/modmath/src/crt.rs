//! Chinese-remainder (RNS) composition of coprime prime moduli.
//!
//! Production homomorphic-encryption libraries (e.g. SEAL) represent
//! wide coefficient moduli as a residue number system over several
//! NTT-friendly primes, so every transform stays in machine words — the
//! natural multi-lane extension of CryptoPIM, where each residue channel
//! maps to its own softbank. [`RnsBasis`] is the general k-residue
//! composition (k ∈ 2..=4) used by `ntt::rns` and the service's
//! wide-job decomposition layer; [`Crt2`] remains as the fixed
//! two-prime special case.
//!
//! Recombination uses Garner's mixed-radix algorithm: the digits are
//! computed entirely in `u64` mulmods against precomputed pairwise
//! inverses, and only the final Horner accumulation touches `u128`, so
//! every intermediate stays below the composite modulus `Q ≤ u128::MAX`
//! — no 256-bit arithmetic and no overflow anywhere on the way up.

use crate::{primes, zq, Error};

/// Largest supported number of RNS residue channels.
pub const MAX_RNS_CHANNELS: usize = 4;

/// CRT composition context for a pair of coprime moduli.
///
/// # Example
///
/// ```
/// use modmath::crt::Crt2;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let crt = Crt2::new(12289, 40961)?;
/// let x = 123_456_789u128;
/// let r1 = (x % 12289) as u64;
/// let r2 = (x % 40961) as u64;
/// assert_eq!(crt.combine(r1, r2), x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crt2 {
    q1: u64,
    q2: u64,
    /// `q1 · q2`.
    modulus: u128,
    /// `q2⁻¹ mod q1`.
    q2_inv_mod_q1: u64,
}

impl Crt2 {
    /// Builds the context. Both moduli must be prime (which guarantees
    /// coprimality for distinct values) and below 2^63.
    ///
    /// # Errors
    ///
    /// * [`Error::NotPrime`] if either modulus is composite.
    /// * [`Error::NotInvertible`] if the moduli are equal.
    pub fn new(q1: u64, q2: u64) -> Result<Self, Error> {
        if !primes::is_prime(q1) {
            return Err(Error::NotPrime { q: q1 });
        }
        if !primes::is_prime(q2) {
            return Err(Error::NotPrime { q: q2 });
        }
        if q1 == q2 {
            return Err(Error::NotInvertible { value: q2, q: q1 });
        }
        Ok(Crt2 {
            q1,
            q2,
            modulus: q1 as u128 * q2 as u128,
            q2_inv_mod_q1: zq::inv(q2 % q1, q1)?,
        })
    }

    /// The first modulus.
    #[inline]
    pub fn q1(&self) -> u64 {
        self.q1
    }

    /// The second modulus.
    #[inline]
    pub fn q2(&self) -> u64 {
        self.q2
    }

    /// The composite modulus `q1·q2`.
    #[inline]
    pub fn modulus(&self) -> u128 {
        self.modulus
    }

    /// Splits a residue mod `q1·q2` into its RNS pair.
    #[inline]
    pub fn split(&self, x: u128) -> (u64, u64) {
        ((x % self.q1 as u128) as u64, (x % self.q2 as u128) as u64)
    }

    /// Combines an RNS pair back into the canonical residue mod `q1·q2`
    /// (Garner's formula: `r2 + q2 · ((r1 − r2) · q2⁻¹ mod q1)`).
    pub fn combine(&self, r1: u64, r2: u64) -> u128 {
        debug_assert!(r1 < self.q1 && r2 < self.q2);
        let diff = zq::sub(r1 % self.q1, r2 % self.q1, self.q1);
        let k = zq::mul(diff, self.q2_inv_mod_q1, self.q1);
        r2 as u128 + self.q2 as u128 * k as u128
    }
}

/// A k-residue RNS basis over distinct primes (k ∈ 2..=4), with
/// precomputed Garner constants for overflow-safe recombination and
/// division-free residue extraction.
///
/// # Example
///
/// ```
/// use modmath::crt::RnsBasis;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let basis = RnsBasis::new(&[7681, 12289, 40961])?;
/// let x = 123_456_789_012u128 % basis.modulus();
/// let residues = basis.split(x);
/// assert_eq!(basis.combine(&residues), x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnsBasis {
    moduli: Vec<u64>,
    /// `∏ q_i` (validated to fit `u128`).
    modulus: u128,
    /// `(q_i mod q_j)⁻¹ mod q_j` for `i < j`, rows flattened:
    /// entry `(i, j)` lives at `j·(j−1)/2 + i`.
    garner_inv: Vec<u64>,
    /// `⌊2^64 / q_i⌋` — Barrett constant for the division-free residue
    /// fast path (only used when `q_i < 2^31`).
    mu: Vec<u64>,
    /// `2^64 mod q_i`.
    r64: Vec<u64>,
}

/// One lazy Barrett step: reduces `x` to `[0, 2q)` for `q < 2^63`,
/// using `µ = ⌊2^64/q⌋` (same bound argument as
/// [`crate::barrett::mul_lazy_mu`]).
#[inline]
fn lazy_reduce(x: u64, mu: u64, q: u64) -> u64 {
    let h = ((mu as u128 * x as u128) >> 64) as u64;
    x.wrapping_sub(h.wrapping_mul(q))
}

impl RnsBasis {
    /// Builds a basis from distinct primes.
    ///
    /// # Errors
    ///
    /// * [`Error::BasisSize`] unless `2 <= moduli.len() <= 4`.
    /// * [`Error::NotPrime`] if any modulus is composite (primality is
    ///   what guarantees the pairwise inverses exist).
    /// * [`Error::NotCoprime`] on duplicate moduli.
    /// * [`Error::BasisOverflow`] when `∏ q_i` exceeds `u128`.
    pub fn new(moduli: &[u64]) -> Result<Self, Error> {
        let k = moduli.len();
        if !(2..=MAX_RNS_CHANNELS).contains(&k) {
            return Err(Error::BasisSize { k });
        }
        for &q in moduli {
            if !primes::is_prime(q) {
                return Err(Error::NotPrime { q });
            }
        }
        for j in 1..k {
            for i in 0..j {
                if moduli[i] == moduli[j] {
                    return Err(Error::NotCoprime {
                        a: moduli[i],
                        b: moduli[j],
                    });
                }
            }
        }
        let mut modulus: u128 = 1;
        for &q in moduli {
            modulus = modulus.checked_mul(q as u128).ok_or(Error::BasisOverflow)?;
        }
        let mut garner_inv = Vec::with_capacity(k * (k - 1) / 2);
        for j in 1..k {
            for i in 0..j {
                // Distinct primes, so q_i mod q_j ≠ 0 and the inverse exists.
                garner_inv.push(zq::inv(moduli[i] % moduli[j], moduli[j])?);
            }
        }
        let mu = moduli
            .iter()
            .map(|&q| ((1u128 << 64) / q as u128) as u64)
            .collect();
        let r64 = moduli
            .iter()
            .map(|&q| ((1u128 << 64) % q as u128) as u64)
            .collect();
        Ok(RnsBasis {
            moduli: moduli.to_vec(),
            modulus,
            garner_inv,
            mu,
            r64,
        })
    }

    /// Builds a basis and additionally requires every channel to support
    /// a length-`n` negacyclic NTT (`2n | q_i − 1`), which is what the
    /// residue-sharded multiply pipeline needs.
    ///
    /// # Errors
    ///
    /// As [`RnsBasis::new`], plus [`Error::NoRootOfUnity`] for channels
    /// without a `2n`-th root of unity.
    pub fn for_degree(n: usize, moduli: &[u64]) -> Result<Self, Error> {
        let basis = Self::new(moduli)?;
        for &q in moduli {
            if !primes::supports_negacyclic_ntt(q, n) {
                return Err(Error::NoRootOfUnity {
                    q,
                    order: 2 * n as u64,
                });
            }
        }
        Ok(basis)
    }

    /// Discovers `k` ascending NTT-friendly primes above `floor` for
    /// degree `n` (chaining [`primes::find_ntt_prime`]) and builds the
    /// basis over them.
    ///
    /// # Errors
    ///
    /// As [`RnsBasis::new`]; a failed prime search (practically
    /// unreachable) surfaces as [`Error::NoRootOfUnity`].
    pub fn discover(n: usize, k: usize, floor: u64) -> Result<Self, Error> {
        if !(2..=MAX_RNS_CHANNELS).contains(&k) {
            return Err(Error::BasisSize { k });
        }
        let mut moduli = Vec::with_capacity(k);
        let mut above = floor;
        for _ in 0..k {
            let q = primes::find_ntt_prime(n, above).ok_or(Error::NoRootOfUnity {
                q: above,
                order: 2 * n as u64,
            })?;
            moduli.push(q);
            above = q;
        }
        Self::for_degree(n, &moduli)
    }

    /// The residue moduli, in basis order.
    #[inline]
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Number of residue channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.moduli.len()
    }

    /// The composite modulus `Q = ∏ q_i`.
    #[inline]
    pub fn modulus(&self) -> u128 {
        self.modulus
    }

    /// `x mod q_lane`, division-free for engine-sized moduli.
    ///
    /// For `q < 2^31` this runs three lazy Barrett steps on the two
    /// 64-bit limbs (`x = hi·2^64 + lo`); wider moduli fall back to the
    /// hardware divider.
    #[inline]
    pub fn residue(&self, x: u128, lane: usize) -> u64 {
        let q = self.moduli[lane];
        if q >= 1 << 31 {
            return (x % q as u128) as u64;
        }
        let mu = self.mu[lane];
        let lo = x as u64;
        let hi = (x >> 64) as u64;
        // hi·2^64 ≡ hi·(2^64 mod q); each lazy step leaves < 2q, and
        // (2q)·(q) < 2^63 keeps the products in u64 for q < 2^31.
        let hi_r = {
            let t = lazy_reduce(hi, mu, q);
            let t = t - q * u64::from(t >= q);
            lazy_reduce(t * self.r64[lane], mu, q)
        };
        let lo_r = lazy_reduce(lo, mu, q);
        let mut s = hi_r + lo_r; // < 4q < 2^33
        while s >= q {
            s -= q;
        }
        s
    }

    /// Splits one wide coefficient into all its residues.
    pub fn split(&self, x: u128) -> Vec<u64> {
        (0..self.channels()).map(|i| self.residue(x, i)).collect()
    }

    /// Splits a coefficient slice into one lane: `out[i] = xs[i] mod q_lane`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != xs.len()` or `lane` is out of range.
    pub fn split_lane_into(&self, xs: &[u128], lane: usize, out: &mut [u64]) {
        assert_eq!(xs.len(), out.len(), "lane buffer length mismatch");
        for (o, &x) in out.iter_mut().zip(xs) {
            *o = self.residue(x, lane);
        }
    }

    /// Garner recombination of one residue vector (`residues[i] mod q_i`)
    /// into the canonical value mod `Q`.
    ///
    /// The mixed-radix digits are computed purely in `u64` mulmods; the
    /// final Horner pass accumulates `x = v_0 + q_0(v_1 + q_1(v_2 + …))`,
    /// whose every partial value is below `Q ≤ u128::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `residues.len()` differs from the channel count.
    #[inline]
    pub fn combine(&self, residues: &[u64]) -> u128 {
        assert_eq!(residues.len(), self.channels(), "residue count mismatch");
        let k = self.channels();
        let mut v = [0u64; MAX_RNS_CHANNELS];
        for j in 0..k {
            let qj = self.moduli[j];
            let mut t = residues[j] % qj;
            let row = j * j.saturating_sub(1) / 2;
            for (i, &vi) in v.iter().enumerate().take(j) {
                t = zq::mul(zq::sub(t, vi % qj, qj), self.garner_inv[row + i], qj);
            }
            v[j] = t;
        }
        let mut x = v[k - 1] as u128;
        for j in (0..k - 1).rev() {
            x = x * self.moduli[j] as u128 + v[j] as u128;
        }
        x
    }

    /// Vectorized recombination: `out[i] = combine(lanes[0][i], …)`.
    ///
    /// Processes the coefficient index space in cache-sized chunks so
    /// the `k` lane arrays stream instead of thrashing — this is the
    /// host-side join step of the wide-job pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len()` differs from the channel count or any
    /// lane's length differs from `out.len()`.
    pub fn combine_into(&self, lanes: &[&[u64]], out: &mut [u128]) {
        assert_eq!(lanes.len(), self.channels(), "lane count mismatch");
        for lane in lanes {
            assert_eq!(lane.len(), out.len(), "lane length mismatch");
        }
        const CHUNK: usize = 512;
        let k = self.channels();
        let mut start = 0;
        while start < out.len() {
            let end = (start + CHUNK).min(out.len());
            for idx in start..end {
                let mut residues = [0u64; MAX_RNS_CHANNELS];
                for (r, lane) in residues[..k].iter_mut().zip(lanes) {
                    *r = lane[idx];
                }
                out[idx] = self.combine(&residues[..k]);
            }
            start = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn split_combine_roundtrip() {
        let crt = Crt2::new(12289, 40961).unwrap();
        for x in [0u128, 1, 12288, 12289, 40961, 503316479, 503316480] {
            let x = x % crt.modulus();
            let (r1, r2) = crt.split(x);
            assert_eq!(crt.combine(r1, r2), x);
        }
    }

    #[test]
    fn combine_respects_both_residues() {
        let crt = Crt2::new(7681, 12289).unwrap();
        let x = crt.combine(5, 9);
        assert_eq!(x % 7681, 5);
        assert_eq!(x % 12289, 9);
        assert!(x < crt.modulus());
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(matches!(
            Crt2::new(12288, 40961),
            Err(Error::NotPrime { .. })
        ));
        assert!(matches!(
            Crt2::new(12289, 40962),
            Err(Error::NotPrime { .. })
        ));
        assert!(Crt2::new(12289, 12289).is_err());
    }

    #[test]
    fn arithmetic_is_componentwise() {
        // (a·b) mod Q decomposes into component products.
        let crt = Crt2::new(7681, 12289).unwrap();
        let a = 1_000_003u128 % crt.modulus();
        let b = 77_777u128;
        let prod = (a * b) % crt.modulus();
        let (a1, a2) = crt.split(a);
        let (b1, b2) = crt.split(b);
        let p1 = zq::mul(a1, b1, 7681);
        let p2 = zq::mul(a2, b2, 12289);
        assert_eq!(crt.combine(p1, p2), prod);
    }

    #[test]
    fn rns_basis_roundtrip_k2_to_k4() {
        let bases = [
            RnsBasis::new(&[12289, 40961]).unwrap(),
            RnsBasis::new(&[7681, 12289, 40961]).unwrap(),
            RnsBasis::new(&[7681, 12289, 40961, 786433]).unwrap(),
        ];
        for basis in &bases {
            for x in [
                0u128,
                1,
                12288,
                503316480,
                basis.modulus() - 1,
                basis.modulus() / 2,
            ] {
                let x = x % basis.modulus();
                let residues = basis.split(x);
                assert_eq!(basis.combine(&residues), x, "k = {}", basis.channels());
                for (i, &r) in residues.iter().enumerate() {
                    assert_eq!(r as u128, x % basis.moduli()[i] as u128);
                }
            }
        }
    }

    #[test]
    fn rns_basis_agrees_with_crt2() {
        let crt = Crt2::new(12289, 40961).unwrap();
        let basis = RnsBasis::new(&[12289, 40961]).unwrap();
        assert_eq!(basis.modulus(), crt.modulus());
        for x in [0u128, 1, 777_777_777, crt.modulus() - 1] {
            let (r1, r2) = crt.split(x);
            assert_eq!(basis.split(x), vec![r1, r2]);
            assert_eq!(basis.combine(&[r1, r2]), crt.combine(r1, r2));
        }
    }

    #[test]
    fn rns_basis_rejects_bad_inputs_with_typed_errors() {
        assert!(matches!(
            RnsBasis::new(&[12289]),
            Err(Error::BasisSize { k: 1 })
        ));
        assert!(matches!(
            RnsBasis::new(&[7681, 12289, 40961, 786433, 65537]),
            Err(Error::BasisSize { k: 5 })
        ));
        assert!(matches!(
            RnsBasis::new(&[12288, 40961]),
            Err(Error::NotPrime { q: 12288 })
        ));
        assert!(matches!(
            RnsBasis::new(&[12289, 40961, 12289]),
            Err(Error::NotCoprime { a: 12289, b: 12289 })
        ));
        // Four near-2^64 primes: the product needs 255+ bits.
        assert!(matches!(
            RnsBasis::new(&[
                18446744073709551557,
                18446744073709551533,
                18446744073709551521,
                18446744073709551437,
            ]),
            Err(Error::BasisOverflow)
        ));
        // NTT-friendliness is enforced by for_degree, not new: 17 − 1 is
        // not divisible by 2·256.
        assert!(RnsBasis::new(&[17, 40961]).is_ok());
        assert!(matches!(
            RnsBasis::for_degree(256, &[17, 40961]),
            Err(Error::NoRootOfUnity { q: 17, .. })
        ));
    }

    #[test]
    fn rns_combine_at_extreme_moduli() {
        // Four primes just below 2^32: the product sits just below the
        // u128 ceiling (≈ 2^127.99), the hardest case for the Horner
        // accumulation. Residues at q_i − 1 recombine to Q − 1.
        let moduli = [4294967291u64, 4294967279, 4294967231, 4294967197];
        let basis = RnsBasis::new(&moduli).unwrap();
        assert!(
            basis.modulus() > u128::MAX / 2,
            "product should be near the ceiling"
        );
        let tops: Vec<u64> = moduli.iter().map(|&q| q - 1).collect();
        assert_eq!(basis.combine(&tops), basis.modulus() - 1);
        for x in [
            0u128,
            1,
            basis.modulus() - 1,
            basis.modulus() - 2,
            u128::MAX % basis.modulus(),
        ] {
            assert_eq!(basis.combine(&basis.split(x)), x);
        }
        // Two huge primes (above 2^63): exercises the wide-modulus
        // residue fallback path as well.
        let big = RnsBasis::new(&[18446744073709551557, 9223372036854775837]).unwrap();
        let tops: Vec<u64> = big.moduli().iter().map(|&q| q - 1).collect();
        assert_eq!(big.combine(&tops), big.modulus() - 1);
        for x in [0u128, 1, big.modulus() - 1, u128::MAX % big.modulus()] {
            assert_eq!(big.combine(&big.split(x)), x);
        }
    }

    #[test]
    fn rns_combine_into_matches_scalar() {
        let basis = RnsBasis::new(&[7681, 12289, 40961]).unwrap();
        let n = 1500usize; // not a multiple of the chunk size
        let xs: Vec<u128> = (0..n)
            .map(|i| (i as u128 * 0x9e3779b97f4a7c15) % basis.modulus())
            .collect();
        let mut lanes: Vec<Vec<u64>> = vec![vec![0; n]; 3];
        for (lane, buf) in lanes.iter_mut().enumerate() {
            basis.split_lane_into(&xs, lane, buf);
        }
        let lane_refs: Vec<&[u64]> = lanes.iter().map(|v| v.as_slice()).collect();
        let mut out = vec![0u128; n];
        basis.combine_into(&lane_refs, &mut out);
        assert_eq!(out, xs);
    }

    #[test]
    fn rns_discover_finds_ascending_ntt_friendly_primes() {
        let basis = RnsBasis::discover(1024, 3, 1 << 14).unwrap();
        assert_eq!(basis.channels(), 3);
        let m = basis.moduli();
        assert!(m.windows(2).all(|w| w[0] < w[1]));
        for &q in m {
            assert!(primes::supports_negacyclic_ntt(q, 1024), "q = {q}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in any::<u128>()) {
            let crt = Crt2::new(12289, 786433).unwrap();
            let x = x % crt.modulus();
            let (r1, r2) = crt.split(x);
            prop_assert_eq!(crt.combine(r1, r2), x);
        }

        #[test]
        fn prop_rns_roundtrip(x in any::<u128>(), k in 2usize..=4) {
            let moduli = [7681u64, 12289, 40961, 786433];
            let basis = RnsBasis::new(&moduli[..k]).unwrap();
            let x = x % basis.modulus();
            prop_assert_eq!(basis.combine(&basis.split(x)), x);
        }

        #[test]
        fn prop_rns_residue_matches_division(x in any::<u128>(), lane in 0usize..3) {
            let basis = RnsBasis::new(&[7681, 536903681, 1073479681]).unwrap();
            prop_assert_eq!(
                basis.residue(x, lane) as u128,
                x % basis.moduli()[lane] as u128
            );
        }
    }
}

//! Chinese-remainder (RNS) composition of two prime moduli.
//!
//! Production homomorphic-encryption libraries (e.g. SEAL) represent
//! wide coefficient moduli as a residue number system over several
//! NTT-friendly primes, so every transform stays in machine words — the
//! natural multi-lane extension of CryptoPIM, where each residue channel
//! maps to its own softbank. This module provides the two-prime
//! composition used by `ntt::rns`.

use crate::{primes, zq, Error};

/// CRT composition context for a pair of coprime moduli.
///
/// # Example
///
/// ```
/// use modmath::crt::Crt2;
///
/// # fn main() -> Result<(), modmath::Error> {
/// let crt = Crt2::new(12289, 40961)?;
/// let x = 123_456_789u128;
/// let r1 = (x % 12289) as u64;
/// let r2 = (x % 40961) as u64;
/// assert_eq!(crt.combine(r1, r2), x);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crt2 {
    q1: u64,
    q2: u64,
    /// `q1 · q2`.
    modulus: u128,
    /// `q2⁻¹ mod q1`.
    q2_inv_mod_q1: u64,
}

impl Crt2 {
    /// Builds the context. Both moduli must be prime (which guarantees
    /// coprimality for distinct values) and below 2^63.
    ///
    /// # Errors
    ///
    /// * [`Error::NotPrime`] if either modulus is composite.
    /// * [`Error::NotInvertible`] if the moduli are equal.
    pub fn new(q1: u64, q2: u64) -> Result<Self, Error> {
        if !primes::is_prime(q1) {
            return Err(Error::NotPrime { q: q1 });
        }
        if !primes::is_prime(q2) {
            return Err(Error::NotPrime { q: q2 });
        }
        if q1 == q2 {
            return Err(Error::NotInvertible { value: q2, q: q1 });
        }
        Ok(Crt2 {
            q1,
            q2,
            modulus: q1 as u128 * q2 as u128,
            q2_inv_mod_q1: zq::inv(q2 % q1, q1)?,
        })
    }

    /// The first modulus.
    #[inline]
    pub fn q1(&self) -> u64 {
        self.q1
    }

    /// The second modulus.
    #[inline]
    pub fn q2(&self) -> u64 {
        self.q2
    }

    /// The composite modulus `q1·q2`.
    #[inline]
    pub fn modulus(&self) -> u128 {
        self.modulus
    }

    /// Splits a residue mod `q1·q2` into its RNS pair.
    #[inline]
    pub fn split(&self, x: u128) -> (u64, u64) {
        ((x % self.q1 as u128) as u64, (x % self.q2 as u128) as u64)
    }

    /// Combines an RNS pair back into the canonical residue mod `q1·q2`
    /// (Garner's formula: `r2 + q2 · ((r1 − r2) · q2⁻¹ mod q1)`).
    pub fn combine(&self, r1: u64, r2: u64) -> u128 {
        debug_assert!(r1 < self.q1 && r2 < self.q2);
        let diff = zq::sub(r1 % self.q1, r2 % self.q1, self.q1);
        let k = zq::mul(diff, self.q2_inv_mod_q1, self.q1);
        r2 as u128 + self.q2 as u128 * k as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn split_combine_roundtrip() {
        let crt = Crt2::new(12289, 40961).unwrap();
        for x in [0u128, 1, 12288, 12289, 40961, 503316479, 503316480] {
            let x = x % crt.modulus();
            let (r1, r2) = crt.split(x);
            assert_eq!(crt.combine(r1, r2), x);
        }
    }

    #[test]
    fn combine_respects_both_residues() {
        let crt = Crt2::new(7681, 12289).unwrap();
        let x = crt.combine(5, 9);
        assert_eq!(x % 7681, 5);
        assert_eq!(x % 12289, 9);
        assert!(x < crt.modulus());
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(matches!(
            Crt2::new(12288, 40961),
            Err(Error::NotPrime { .. })
        ));
        assert!(matches!(
            Crt2::new(12289, 40962),
            Err(Error::NotPrime { .. })
        ));
        assert!(Crt2::new(12289, 12289).is_err());
    }

    #[test]
    fn arithmetic_is_componentwise() {
        // (a·b) mod Q decomposes into component products.
        let crt = Crt2::new(7681, 12289).unwrap();
        let a = 1_000_003u128 % crt.modulus();
        let b = 77_777u128;
        let prod = (a * b) % crt.modulus();
        let (a1, a2) = crt.split(a);
        let (b1, b2) = crt.split(b);
        let p1 = zq::mul(a1, b1, 7681);
        let p2 = zq::mul(a2, b2, 12289);
        assert_eq!(crt.combine(p1, p2), prod);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(x in any::<u128>()) {
            let crt = Crt2::new(12289, 786433).unwrap();
            let x = x % crt.modulus();
            let (r1, r2) = crt.split(x);
            prop_assert_eq!(crt.combine(r1, r2), x);
        }
    }
}

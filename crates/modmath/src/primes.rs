//! Primality testing and NTT-friendly prime search.
//!
//! A negacyclic NTT of length `n` over `Z_q` needs a primitive `2n`-th root
//! of unity, which exists iff `2n | q − 1` (for prime `q`). The paper's
//! moduli all satisfy this for their degrees:
//!
//! * `7681  = 2^9 · 3 · 5 + 1 = 15 · 2^9 + 1`  → supports `n ≤ 256`
//! * `12289 = 3 · 2^12 + 1`                    → supports `n ≤ 2048`
//! * `786433 = 3 · 2^18 + 1`                   → supports `n ≤ 131072`
//!
//! [`find_ntt_prime`] searches for additional moduli of the same shape,
//! used by the extension experiments.

use crate::zq;

/// Deterministic Miller–Rabin primality test, valid for all `u64`.
///
/// Uses the standard deterministic witness set
/// `{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}` which is sufficient for
/// every 64-bit integer.
///
/// # Example
///
/// ```
/// assert!(modmath::primes::is_prime(12289));
/// assert!(!modmath::primes::is_prime(12288));
/// ```
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    // Write n − 1 = d · 2^s with d odd.
    let mut d = n - 1;
    let mut s = 0;
    while d & 1 == 0 {
        d >>= 1;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = zq::pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = zq::mul(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Returns `true` when a length-`n` negacyclic NTT exists over `Z_q`:
/// `q` prime and `q ≡ 1 (mod 2n)`.
pub fn supports_negacyclic_ntt(q: u64, n: usize) -> bool {
    let two_n = 2 * n as u64;
    is_prime(q) && (q - 1).is_multiple_of(two_n)
}

/// Finds the smallest prime `q > floor` with `q ≡ 1 (mod 2n)`.
///
/// Returns `None` if the search space up to `u64::MAX` is exhausted
/// (practically unreachable for sane inputs).
///
/// # Example
///
/// ```
/// // Smallest NTT-friendly prime above 2^12 for n = 1024:
/// let q = modmath::primes::find_ntt_prime(1024, 1 << 12).unwrap();
/// assert_eq!(q, 12289);
/// ```
pub fn find_ntt_prime(n: usize, floor: u64) -> Option<u64> {
    let step = 2 * n as u64;
    // First candidate of the form k·2n + 1 strictly above `floor`.
    let mut candidate = (floor / step + 1) * step + 1;
    while candidate > step {
        if is_prime(candidate) {
            return Some(candidate);
        }
        candidate = candidate.checked_add(step)?;
    }
    None
}

/// Factorizes a (small) integer by trial division. Returns `(prime, exp)`
/// pairs in ascending order. Intended for factoring `q − 1` when searching
/// for generators; not a general-purpose factorizer.
pub fn trial_factor(mut n: u64) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    let mut push = |p: u64, e: u32| {
        if e > 0 {
            out.push((p, e));
        }
    };
    let mut e = 0;
    while n.is_multiple_of(2) {
        n /= 2;
        e += 1;
    }
    push(2, e);
    let mut p = 3;
    while p * p <= n {
        let mut e = 0;
        while n.is_multiple_of(p) {
            n /= p;
            e += 1;
        }
        push(p, e);
        p += 2;
    }
    if n > 1 {
        push(n, 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_primes() {
        for q in [
            2u64,
            3,
            5,
            7681,
            12289,
            786433,
            8380417,
            2305843009213693951,
        ] {
            assert!(is_prime(q), "{q} should be prime");
        }
    }

    #[test]
    fn known_composites() {
        for n in [0u64, 1, 4, 7680, 12287, 786435, 3215031751] {
            assert!(!is_prime(n), "{n} should be composite");
        }
    }

    #[test]
    fn miller_rabin_agrees_with_sieve() {
        // Compare against a simple sieve below 10_000.
        let limit = 10_000usize;
        let mut sieve = vec![true; limit];
        sieve[0] = false;
        sieve[1] = false;
        for i in 2..limit {
            if sieve[i] {
                for j in (i * i..limit).step_by(i) {
                    sieve[j] = false;
                }
            }
        }
        for (i, &p) in sieve.iter().enumerate() {
            assert_eq!(is_prime(i as u64), p, "disagreement at {i}");
        }
    }

    #[test]
    fn paper_moduli_support_their_degrees() {
        // Kyber-era modulus: supports degree up to 256.
        assert!(supports_negacyclic_ntt(7681, 256));
        assert!(!supports_negacyclic_ntt(7681, 512));
        // NewHope modulus: supports 512 and 1024 (in fact up to 2048).
        assert!(supports_negacyclic_ntt(12289, 512));
        assert!(supports_negacyclic_ntt(12289, 1024));
        assert!(supports_negacyclic_ntt(12289, 2048));
        assert!(!supports_negacyclic_ntt(12289, 4096));
        // SEAL modulus: supports all HE degrees the paper uses.
        for n in [2048usize, 4096, 8192, 16384, 32768] {
            assert!(supports_negacyclic_ntt(786433, n), "n = {n}");
        }
    }

    #[test]
    fn find_ntt_prime_recovers_paper_moduli() {
        assert_eq!(find_ntt_prime(256, 7000), Some(7681));
        assert_eq!(find_ntt_prime(1024, 4096), Some(12289));
        assert_eq!(find_ntt_prime(32768, 65536), Some(786433));
    }

    #[test]
    fn find_ntt_prime_results_are_valid() {
        for n in [64usize, 256, 1024, 4096] {
            let q = find_ntt_prime(n, 1 << 20).unwrap();
            assert!(supports_negacyclic_ntt(q, n));
            assert!(q > 1 << 20);
        }
    }

    #[test]
    fn trial_factor_small() {
        assert_eq!(trial_factor(12288), vec![(2, 12), (3, 1)]);
        assert_eq!(trial_factor(7680), vec![(2, 9), (3, 1), (5, 1)]);
        assert_eq!(trial_factor(786432), vec![(2, 18), (3, 1)]);
        assert_eq!(trial_factor(97), vec![(97, 1)]);
        assert_eq!(trial_factor(1), vec![]);
    }
}

//! Modular arithmetic substrate for the CryptoPIM reproduction.
//!
//! This crate provides everything the NTT layer and the PIM simulator need
//! to do arithmetic in `Z_q`:
//!
//! * [`zq`] — word-level modular add/sub/mul/pow/inverse for moduli up to
//!   2^62, plus the [`zq::Zq`] element type.
//! * [`barrett`] — generic Barrett reduction and the shift-add Barrett
//!   sequences of the paper's Algorithm 3 for q ∈ {7681, 12289, 786433}.
//! * [`montgomery`] — generic Montgomery (REDC) reduction and the paper's
//!   shift-add REDC sequences (with two sign typos in the published
//!   algorithm corrected; see module docs).
//! * [`primes`] — Miller–Rabin primality testing and NTT-friendly prime
//!   search (q ≡ 1 mod 2n).
//! * [`roots`] — primitive roots of unity and twiddle-factor tables.
//! * [`bitrev`] — bit-reversal permutation helpers.
//! * [`params`] — the named parameter sets used throughout the paper
//!   (Kyber q = 7681, NewHope q = 12289, SEAL q = 786433).
//!
//! # Example
//!
//! ```
//! use modmath::params::ParamSet;
//! use modmath::roots::NttTables;
//!
//! # fn main() -> Result<(), modmath::Error> {
//! let params = ParamSet::for_degree(1024)?; // NewHope: q = 12289
//! let tables = NttTables::new(&params)?;
//! assert_eq!(params.q, 12289);
//! assert_eq!(tables.omega_powers().len(), 512);
//! # Ok(())
//! # }
//! ```

pub mod barrett;
pub mod bitrev;
pub mod crt;
pub mod montgomery;
pub mod params;
pub mod primes;
pub mod roots;
pub mod shoup;
pub mod zq;

mod error;

pub use error::Error;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

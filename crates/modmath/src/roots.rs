//! Primitive roots of unity and precomputed twiddle-factor tables.
//!
//! Algorithm 1 precomputes `{w^i, w^-i, φ^i, φ^-i}` where `w` is a
//! primitive `n`-th root of unity and `φ` a primitive `2n`-th root with
//! `φ² = w (mod q)`. The `w` powers are stored in bit-reversed order (the
//! Gentleman–Sande loop indexes `twiddle[j >> (i+1)]`), while the `φ`
//! powers are stored in normal order. [`NttTables`] reproduces exactly
//! that layout.

use crate::params::ParamSet;
use crate::{bitrev, primes, shoup, zq, Error};

/// Finds a generator of the multiplicative group `Z_q^*` for prime `q`.
///
/// # Errors
///
/// Returns [`Error::NotPrime`] when `q` is not prime.
pub fn find_generator(q: u64) -> Result<u64, Error> {
    if !primes::is_prime(q) {
        return Err(Error::NotPrime { q });
    }
    if q == 2 {
        return Ok(1);
    }
    let factors = primes::trial_factor(q - 1);
    'candidate: for g in 2..q {
        for &(p, _) in &factors {
            if zq::pow(g, (q - 1) / p, q) == 1 {
                continue 'candidate;
            }
        }
        return Ok(g);
    }
    unreachable!("every prime has a generator")
}

/// Finds a primitive `order`-th root of unity modulo prime `q`.
///
/// # Errors
///
/// * [`Error::NotPrime`] when `q` is not prime.
/// * [`Error::NoRootOfUnity`] when `order` does not divide `q − 1`.
pub fn primitive_root_of_unity(order: u64, q: u64) -> Result<u64, Error> {
    if !primes::is_prime(q) {
        return Err(Error::NotPrime { q });
    }
    if order == 0 || !(q - 1).is_multiple_of(order) {
        return Err(Error::NoRootOfUnity { q, order });
    }
    let g = find_generator(q)?;
    let root = zq::pow(g, (q - 1) / order, q);
    debug_assert_eq!(zq::pow(root, order, q), 1);
    Ok(root)
}

/// Checks that `root` has exact multiplicative order `order` modulo `q`.
pub fn is_primitive_root(root: u64, order: u64, q: u64) -> bool {
    if zq::pow(root, order, q) != 1 {
        return false;
    }
    for (p, _) in primes::trial_factor(order) {
        if zq::pow(root, order / p, q) == 1 {
            return false;
        }
    }
    true
}

/// Precomputed twiddle tables for a negacyclic NTT of length `n` over
/// `Z_q`, in the layout of Algorithm 1:
///
/// * `omega_powers` / `omega_inv_powers` — `w^i` and `w^-i` for
///   `i ∈ [0, n/2)`, **bit-reversed order** (indexed by the GS loop as
///   `twiddle[j >> (i+1)]` which visits them sequentially per stage).
/// * `phi_powers` / `phi_inv_powers` — `φ^i`, `φ^-i` for `i ∈ [0, n)`,
///   normal order.
/// * `n_inv` — `n⁻¹ mod q`, folded into the inverse transform's
///   post-scaling.
///
/// Every multiplicand table additionally carries its Shoup companion
/// (`⌊w·2^64/q⌋`, see [`crate::shoup`]) so the NTT kernels can run with
/// lazy reduction, and `phi_inv_n_inv_powers` stores the fused
/// `φ^{-i}·n⁻¹` post-scaling constants so the inverse negacyclic
/// transform finishes in a single pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NttTables {
    n: usize,
    q: u64,
    omega: u64,
    phi: u64,
    omega_powers: Vec<u64>,
    omega_powers_shoup: Vec<u64>,
    omega_inv_powers: Vec<u64>,
    omega_inv_powers_shoup: Vec<u64>,
    phi_powers: Vec<u64>,
    phi_powers_shoup: Vec<u64>,
    phi_inv_powers: Vec<u64>,
    phi_inv_n_inv_powers: Vec<u64>,
    phi_inv_n_inv_powers_shoup: Vec<u64>,
    phi_powers_bitrev: Vec<u64>,
    phi_powers_bitrev_shoup: Vec<u64>,
    phi_inv_powers_bitrev: Vec<u64>,
    phi_inv_powers_bitrev_shoup: Vec<u64>,
    n_inv: u64,
    n_inv_shoup: u64,
}

impl NttTables {
    /// Builds tables for the given parameter set.
    ///
    /// # Errors
    ///
    /// Propagates [`Error::NoRootOfUnity`] / [`Error::NotPrime`] when the
    /// parameter set does not admit a negacyclic NTT, and
    /// [`Error::InvalidDegree`] when `n < 2` or `n` is not a power of two.
    pub fn new(params: &ParamSet) -> Result<Self, Error> {
        Self::for_degree_modulus(params.n, params.q)
    }

    /// Builds tables for an explicit `(n, q)` pair.
    ///
    /// # Errors
    ///
    /// Same as [`NttTables::new`].
    pub fn for_degree_modulus(n: usize, q: u64) -> Result<Self, Error> {
        if n < 2 || !n.is_power_of_two() {
            return Err(Error::InvalidDegree { n });
        }
        let phi = primitive_root_of_unity(2 * n as u64, q)?;
        let omega = zq::mul(phi, phi, q);
        debug_assert!(is_primitive_root(omega, n as u64, q));

        let half = n / 2;
        let bits = bitrev::log2_exact(half).map_or(0, |b| b);
        let omega_inv = zq::inv(omega, q)?;
        let phi_inv = zq::inv(phi, q)?;

        // Powers in natural order first, then permute w-powers bit-reversed.
        let mut omega_powers = vec![0u64; half.max(1)];
        let mut omega_inv_powers = vec![0u64; half.max(1)];
        let (mut acc_f, mut acc_i) = (1u64, 1u64);
        for i in 0..half.max(1) {
            let slot = if half > 1 {
                bitrev::reverse_bits(i, bits)
            } else {
                0
            };
            omega_powers[slot] = acc_f;
            omega_inv_powers[slot] = acc_i;
            acc_f = zq::mul(acc_f, omega, q);
            acc_i = zq::mul(acc_i, omega_inv, q);
        }

        let mut phi_powers = Vec::with_capacity(n);
        let mut phi_inv_powers = Vec::with_capacity(n);
        let (mut pf, mut pi) = (1u64, 1u64);
        for _ in 0..n {
            phi_powers.push(pf);
            phi_inv_powers.push(pi);
            pf = zq::mul(pf, phi, q);
            pi = zq::mul(pi, phi_inv, q);
        }

        let n_inv = zq::inv(n as u64 % q, q)?;

        let phi_inv_n_inv_powers: Vec<u64> = phi_inv_powers
            .iter()
            .map(|&p| zq::mul(p, n_inv, q))
            .collect();

        // Merged-twiddle (Longa–Naehrig style) tables: entry i holds
        // φ^{±rev(i, log2 n)}. The merged negacyclic kernels index these
        // as `table[m + i]` for the i-th block of the m-block stage, so
        // each stage reads entries `m..2m` sequentially and the φ
        // pre/post-scaling passes disappear into the butterflies.
        let n_bits = bitrev::log2_exact(n).expect("validated power of two");
        let phi_powers_bitrev: Vec<u64> = (0..n)
            .map(|i| phi_powers[bitrev::reverse_bits(i, n_bits)])
            .collect();
        let phi_inv_powers_bitrev: Vec<u64> = (0..n)
            .map(|i| phi_inv_powers[bitrev::reverse_bits(i, n_bits)])
            .collect();

        let omega_powers_shoup = shoup::precompute_table(&omega_powers, q);
        let omega_inv_powers_shoup = shoup::precompute_table(&omega_inv_powers, q);
        let phi_powers_shoup = shoup::precompute_table(&phi_powers, q);
        let phi_inv_n_inv_powers_shoup = shoup::precompute_table(&phi_inv_n_inv_powers, q);
        let phi_powers_bitrev_shoup = shoup::precompute_table(&phi_powers_bitrev, q);
        let phi_inv_powers_bitrev_shoup = shoup::precompute_table(&phi_inv_powers_bitrev, q);
        let n_inv_shoup = shoup::precompute(n_inv, q);

        Ok(NttTables {
            n,
            q,
            omega,
            phi,
            omega_powers,
            omega_powers_shoup,
            omega_inv_powers,
            omega_inv_powers_shoup,
            phi_powers,
            phi_powers_shoup,
            phi_inv_powers,
            phi_inv_n_inv_powers,
            phi_inv_n_inv_powers_shoup,
            phi_powers_bitrev,
            phi_powers_bitrev_shoup,
            phi_inv_powers_bitrev,
            phi_inv_powers_bitrev_shoup,
            n_inv,
            n_inv_shoup,
        })
    }

    /// Transform length.
    #[inline]
    pub fn degree(&self) -> usize {
        self.n
    }

    /// Modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The primitive `n`-th root of unity `w`.
    #[inline]
    pub fn omega(&self) -> u64 {
        self.omega
    }

    /// The primitive `2n`-th root `φ` (with `φ² = w`).
    #[inline]
    pub fn phi(&self) -> u64 {
        self.phi
    }

    /// `w^i` for `i ∈ [0, n/2)`, bit-reversed order.
    #[inline]
    pub fn omega_powers(&self) -> &[u64] {
        &self.omega_powers
    }

    /// Shoup companions of [`NttTables::omega_powers`].
    #[inline]
    pub fn omega_powers_shoup(&self) -> &[u64] {
        &self.omega_powers_shoup
    }

    /// `w^-i` for `i ∈ [0, n/2)`, bit-reversed order.
    #[inline]
    pub fn omega_inv_powers(&self) -> &[u64] {
        &self.omega_inv_powers
    }

    /// Shoup companions of [`NttTables::omega_inv_powers`].
    #[inline]
    pub fn omega_inv_powers_shoup(&self) -> &[u64] {
        &self.omega_inv_powers_shoup
    }

    /// `φ^i` for `i ∈ [0, n)`, normal order.
    #[inline]
    pub fn phi_powers(&self) -> &[u64] {
        &self.phi_powers
    }

    /// Shoup companions of [`NttTables::phi_powers`].
    #[inline]
    pub fn phi_powers_shoup(&self) -> &[u64] {
        &self.phi_powers_shoup
    }

    /// `φ^-i` for `i ∈ [0, n)`, normal order.
    #[inline]
    pub fn phi_inv_powers(&self) -> &[u64] {
        &self.phi_inv_powers
    }

    /// Fused `φ^{-i}·n⁻¹` for `i ∈ [0, n)`, normal order — the inverse
    /// transform's entire post-scaling in one table.
    #[inline]
    pub fn phi_inv_n_inv_powers(&self) -> &[u64] {
        &self.phi_inv_n_inv_powers
    }

    /// Shoup companions of [`NttTables::phi_inv_n_inv_powers`].
    #[inline]
    pub fn phi_inv_n_inv_powers_shoup(&self) -> &[u64] {
        &self.phi_inv_n_inv_powers_shoup
    }

    /// `φ^{rev(i, log2 n)}` for `i ∈ [0, n)` — the merged forward
    /// negacyclic twiddles. The CT stage with `m` blocks reads entries
    /// `m..2m` (one per block), which folds the `φ ⊙ a` pre-scaling into
    /// the butterflies.
    #[inline]
    pub fn phi_powers_bitrev(&self) -> &[u64] {
        &self.phi_powers_bitrev
    }

    /// Shoup companions of [`NttTables::phi_powers_bitrev`].
    #[inline]
    pub fn phi_powers_bitrev_shoup(&self) -> &[u64] {
        &self.phi_powers_bitrev_shoup
    }

    /// `φ^{-rev(i, log2 n)}` for `i ∈ [0, n)` — the merged inverse
    /// negacyclic twiddles (GS stage with `h` blocks reads entries
    /// `h..2h`), folding the `φ̄` post-scaling into the butterflies; only
    /// the `n⁻¹` factor remains as a final pass.
    #[inline]
    pub fn phi_inv_powers_bitrev(&self) -> &[u64] {
        &self.phi_inv_powers_bitrev
    }

    /// Shoup companions of [`NttTables::phi_inv_powers_bitrev`].
    #[inline]
    pub fn phi_inv_powers_bitrev_shoup(&self) -> &[u64] {
        &self.phi_inv_powers_bitrev_shoup
    }

    /// `n⁻¹ mod q`.
    #[inline]
    pub fn n_inv(&self) -> u64 {
        self.n_inv
    }

    /// Shoup companion of [`NttTables::n_inv`].
    #[inline]
    pub fn n_inv_shoup(&self) -> u64 {
        self.n_inv_shoup
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_primitive() {
        for q in [7681u64, 12289, 786433, 97] {
            let g = find_generator(q).unwrap();
            assert!(is_primitive_root(g, q - 1, q), "q = {q}, g = {g}");
        }
    }

    #[test]
    fn generator_rejects_composite() {
        assert!(matches!(find_generator(100), Err(Error::NotPrime { .. })));
    }

    #[test]
    fn primitive_roots_have_exact_order() {
        for (order, q) in [(512u64, 7681u64), (2048, 12289), (65536, 786433)] {
            let r = primitive_root_of_unity(order, q).unwrap();
            assert!(is_primitive_root(r, order, q), "order {order} mod {q}");
        }
    }

    #[test]
    fn no_root_when_order_does_not_divide() {
        assert!(matches!(
            primitive_root_of_unity(1024, 7681),
            Err(Error::NoRootOfUnity { .. })
        ));
    }

    #[test]
    fn tables_phi_squared_is_omega() {
        for (n, q) in [
            (256usize, 7681u64),
            (512, 12289),
            (1024, 12289),
            (2048, 786433),
        ] {
            let t = NttTables::for_degree_modulus(n, q).unwrap();
            assert_eq!(zq::mul(t.phi(), t.phi(), q), t.omega(), "n={n} q={q}");
            assert!(is_primitive_root(t.phi(), 2 * n as u64, q));
            assert!(is_primitive_root(t.omega(), n as u64, q));
        }
    }

    #[test]
    fn tables_lengths_and_layout() {
        let n = 16;
        let q = 7681; // 32 | 7680
        let t = NttTables::for_degree_modulus(n, q).unwrap();
        assert_eq!(t.omega_powers().len(), n / 2);
        assert_eq!(t.phi_powers().len(), n);
        // Bit-reversed layout: slot rev(i) holds w^i.
        let bits = bitrev::log2_exact(n / 2).unwrap();
        for i in 0..n / 2 {
            let slot = bitrev::reverse_bits(i, bits);
            assert_eq!(t.omega_powers()[slot], zq::pow(t.omega(), i as u64, q));
            assert_eq!(
                t.omega_inv_powers()[slot],
                zq::inv(zq::pow(t.omega(), i as u64, q), q).unwrap()
            );
        }
        // phi powers in normal order.
        for i in 0..n {
            assert_eq!(t.phi_powers()[i], zq::pow(t.phi(), i as u64, q));
            assert_eq!(
                zq::mul(t.phi_powers()[i], t.phi_inv_powers()[i], q),
                1,
                "phi^i · phi^-i = 1"
            );
        }
        assert_eq!(zq::mul(t.n_inv(), n as u64, q), 1);
    }

    #[test]
    fn shoup_companions_consistent() {
        let n = 64;
        let q = 7681;
        let t = NttTables::for_degree_modulus(n, q).unwrap();
        let pairs = [
            (t.omega_powers(), t.omega_powers_shoup()),
            (t.omega_inv_powers(), t.omega_inv_powers_shoup()),
            (t.phi_powers(), t.phi_powers_shoup()),
            (t.phi_inv_n_inv_powers(), t.phi_inv_n_inv_powers_shoup()),
        ];
        for (ws, duals) in pairs {
            assert_eq!(ws.len(), duals.len());
            for (&w, &dual) in ws.iter().zip(duals) {
                assert_eq!(dual, shoup::precompute(w, q));
                // Spot-check the product against plain modular mul.
                assert_eq!(shoup::mul(12345 % q, w, dual, q), zq::mul(w, 12345 % q, q));
            }
        }
        for i in 0..n {
            assert_eq!(
                t.phi_inv_n_inv_powers()[i],
                zq::mul(t.phi_inv_powers()[i], t.n_inv(), q),
                "fused post-scaling constant at i = {i}"
            );
        }
        assert_eq!(t.n_inv_shoup(), shoup::precompute(t.n_inv(), q));
    }

    #[test]
    fn merged_twiddle_tables_layout() {
        let n = 16;
        let q = 7681u64;
        let t = NttTables::for_degree_modulus(n, q).unwrap();
        assert_eq!(t.phi_powers_bitrev().len(), n);
        assert_eq!(t.phi_inv_powers_bitrev().len(), n);
        let bits = bitrev::log2_exact(n).unwrap();
        for i in 0..n {
            let r = bitrev::reverse_bits(i, bits) as u64;
            assert_eq!(t.phi_powers_bitrev()[i], zq::pow(t.phi(), r, q), "i={i}");
            assert_eq!(
                zq::mul(t.phi_powers_bitrev()[i], t.phi_inv_powers_bitrev()[i], q),
                1,
                "inverse entry at i={i}"
            );
            assert_eq!(
                t.phi_powers_bitrev_shoup()[i],
                shoup::precompute(t.phi_powers_bitrev()[i], q)
            );
            assert_eq!(
                t.phi_inv_powers_bitrev_shoup()[i],
                shoup::precompute(t.phi_inv_powers_bitrev()[i], q)
            );
        }
    }

    #[test]
    fn tables_reject_bad_degree() {
        assert!(matches!(
            NttTables::for_degree_modulus(0, 12289),
            Err(Error::InvalidDegree { .. })
        ));
        assert!(matches!(
            NttTables::for_degree_modulus(3, 12289),
            Err(Error::InvalidDegree { .. })
        ));
        assert!(matches!(
            NttTables::for_degree_modulus(1, 12289),
            Err(Error::InvalidDegree { .. })
        ));
    }

    #[test]
    fn tables_reject_unfriendly_modulus() {
        // 4096 does not divide 12288? It does (12288 = 3·4096): use 8192.
        assert!(NttTables::for_degree_modulus(4096, 12289).is_err());
    }

    #[test]
    fn paper_parameter_sets_all_build() {
        use crate::params::ParamSet;
        for n in [256usize, 512, 1024, 2048, 4096, 8192, 16384, 32768] {
            let p = ParamSet::for_degree(n).unwrap();
            let t = NttTables::new(&p).unwrap();
            assert_eq!(t.degree(), n);
            assert_eq!(t.modulus(), p.q);
        }
    }
}

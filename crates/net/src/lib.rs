//! TCP front end for the CryptoPIM scheduler.
//!
//! Everything below `crates/service` speaks Rust types in one process;
//! this crate puts a socket in front of it so the scheduler serves
//! remote callers. Four modules:
//!
//! - [`wire`] — the versioned, checksummed, length-prefixed binary
//!   frame format and its typed decode errors. Hostile bytes produce
//!   a [`wire::WireError`], never a panic or an unbounded allocation.
//! - [`server`] — a std-only TCP server (no async runtime): bounded
//!   acceptor, thread-per-connection handlers, per-tenant auth tokens
//!   and outstanding-job quotas layered over the scheduler's `Reject`
//!   backpressure, and a `Stats` verb exposing scheduler + net
//!   counters as JSON.
//! - [`client`] — a blocking client speaking the same frames, with
//!   server refusals surfaced as typed [`client::NetError::Server`]
//!   values.
//! - [`loadgen`] — N client threads driving a real server over
//!   loopback, bit-verifying every product against the software NTT
//!   and reporting exact client-observed latency quantiles. Backs
//!   `cli serve-loadgen --tcp`.
//!
//! The wire format is specified in `DESIGN.md` §15; the README's
//! "Networking" section has the two-command quickstart.

pub mod client;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use client::{Client, DoneJob, NetError};
pub use loadgen::{TcpLoadConfig, TcpLoadReport};
pub use server::{Server, ServerConfig, TenantConfig};
pub use wire::{ErrorCode, Frame, JobState, WireError};

//! A small blocking client for the wire protocol.
//!
//! One [`Client`] owns one TCP connection and drives the
//! request/response frame exchange synchronously — exactly what the
//! load generator's closed-loop worker threads and the CLI need.
//! Server-side refusals surface as [`NetError::Server`] carrying the
//! typed [`ErrorCode`], so callers can distinguish quota exhaustion
//! from overload from a genuinely broken peer.

use crate::wire::{read_frame, write_frame, ErrorCode, Frame, JobState, WireError};
use service::ProtocolKind;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failures.
#[derive(Debug)]
pub enum NetError {
    /// Transport or protocol failure (including disconnects).
    Wire(WireError),
    /// The server answered with a typed `Error` frame.
    Server {
        /// The machine-readable refusal code.
        code: ErrorCode,
        /// Job the error refers to (0 when connection-scoped).
        job_id: u64,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The server answered with a frame type the verb does not expect.
    Unexpected(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "wire failure: {e}"),
            NetError::Server {
                code,
                job_id,
                detail,
            } => {
                write!(f, "server refused (code {code}, job {job_id}): {detail}")
            }
            NetError::Unexpected(name) => write!(f, "unexpected {name} frame"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Wire(WireError::Io(e))
    }
}

impl NetError {
    /// The server-side refusal code, if this is a typed refusal.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            NetError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A successfully collected product, as decoded from a `Done` frame.
#[derive(Debug, Clone)]
pub struct DoneJob {
    /// Modulus of the product ring.
    pub q: u64,
    /// Canonical product coefficients.
    pub product: Vec<u64>,
    /// Microseconds the job queued before an engine took it.
    pub queue_us: u64,
    /// Queue + execution time in microseconds (server-side).
    pub service_us: u64,
    /// Execution attempts (>1 means transparent fault recovery ran).
    pub attempts: u32,
}

/// A completed protocol op, as decoded from a `ProtocolDone` frame.
#[derive(Debug, Clone)]
pub struct DoneProtocol {
    /// The op kind the server ran.
    pub kind: ProtocolKind,
    /// FNV-1a 64 digest of the typed output — compare against
    /// `ProtocolJob::scripted(kind, n, seed).run_direct().digest()`.
    pub digest: u64,
    /// NTT-multiply nodes the op compiled into.
    pub nodes: u32,
    /// Worst per-node execution attempts (>1 = recovered fault).
    pub attempts: u32,
    /// Submission → executor pickup, microseconds (server-side).
    pub queue_us: u64,
    /// End-to-end op latency, microseconds (server-side).
    pub service_us: u64,
}

/// One authenticated connection to a [`crate::server::Server`].
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects and authenticates in one step; returns the client and
    /// the server-confirmed `(tenant, quota)` pair.
    pub fn connect(
        addr: impl ToSocketAddrs,
        token: &str,
    ) -> Result<(Client, String, u32), NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        let mut client = Client { reader, writer };
        let reply = client.call(&Frame::Hello {
            token: token.to_string(),
        })?;
        match reply {
            Frame::HelloOk { tenant, quota } => Ok((client, tenant, quota)),
            other => Err(Self::refusal_or(other, "non-HelloOk")),
        }
    }

    /// Applies a read timeout to the underlying socket (`None` blocks
    /// forever). Useful for adversarial tests; the load generator
    /// leaves it off and relies on server-side `max_wait`.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    fn call(&mut self, frame: &Frame) -> Result<Frame, NetError> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush().map_err(WireError::Io)?;
        Ok(read_frame(&mut self.reader)?)
    }

    fn refusal_or(frame: Frame, expected: &'static str) -> NetError {
        match frame {
            Frame::Error {
                code,
                job_id,
                detail,
            } => NetError::Server {
                code,
                job_id,
                detail,
            },
            _ => NetError::Unexpected(expected),
        }
    }

    /// Submits `a * b mod (x^n + 1, q)` under a caller-chosen job id
    /// (unique per connection among outstanding jobs).
    pub fn submit(
        &mut self,
        job_id: u64,
        q: u64,
        a: Vec<u64>,
        b: Vec<u64>,
    ) -> Result<(), NetError> {
        match self.call(&Frame::Submit { job_id, q, a, b })? {
            Frame::Submitted { job_id: echoed } if echoed == job_id => Ok(()),
            other => Err(Self::refusal_or(other, "non-Submitted")),
        }
    }

    /// Blocks (server-side, up to `timeout_ms` capped by the server's
    /// `max_wait`) for the job's product. A [`ErrorCode::WaitTimeout`]
    /// refusal leaves the job claimable by a later `wait`.
    pub fn wait(&mut self, job_id: u64, timeout_ms: u32) -> Result<DoneJob, NetError> {
        match self.call(&Frame::Wait { job_id, timeout_ms })? {
            Frame::Done {
                job_id: echoed,
                q,
                product,
                queue_us,
                service_us,
                attempts,
            } if echoed == job_id => Ok(DoneJob {
                q,
                product,
                queue_us,
                service_us,
                attempts,
            }),
            other => Err(Self::refusal_or(other, "non-Done")),
        }
    }

    /// Submits a scripted protocol op `(kind, n, seed)` under a
    /// caller-chosen job id (same id space as [`Client::submit`]). The
    /// server materialises the deterministic scenario and serves it
    /// through the protocol graph; collect with
    /// [`Client::wait_protocol`].
    pub fn submit_protocol(
        &mut self,
        job_id: u64,
        kind: ProtocolKind,
        n: u64,
        seed: u64,
    ) -> Result<(), NetError> {
        match self.call(&Frame::SubmitProtocol {
            job_id,
            kind,
            n,
            seed,
        })? {
            Frame::Submitted { job_id: echoed } if echoed == job_id => Ok(()),
            other => Err(Self::refusal_or(other, "non-Submitted")),
        }
    }

    /// Blocks (server-side, capped by the server's `max_wait`) for a
    /// protocol op's digest and accounting. A
    /// [`ErrorCode::WaitTimeout`] refusal leaves the op claimable by a
    /// later `wait_protocol`.
    pub fn wait_protocol(
        &mut self,
        job_id: u64,
        timeout_ms: u32,
    ) -> Result<DoneProtocol, NetError> {
        match self.call(&Frame::Wait { job_id, timeout_ms })? {
            Frame::ProtocolDone {
                job_id: echoed,
                kind,
                digest,
                nodes,
                attempts,
                queue_us,
                service_us,
            } if echoed == job_id => Ok(DoneProtocol {
                kind,
                digest,
                nodes,
                attempts,
                queue_us,
                service_us,
            }),
            other => Err(Self::refusal_or(other, "non-ProtocolDone")),
        }
    }

    /// Non-blocking poll of a job's state.
    pub fn status(&mut self, job_id: u64) -> Result<JobState, NetError> {
        match self.call(&Frame::Status { job_id })? {
            Frame::StatusOk {
                job_id: echoed,
                state,
            } if echoed == job_id => Ok(state),
            other => Err(Self::refusal_or(other, "non-StatusOk")),
        }
    }

    /// Fetches the server's statistics document (JSON text; the
    /// embedded `"service"` object parses with
    /// [`service::ServiceStats::from_json`]).
    pub fn stats_json(&mut self) -> Result<String, NetError> {
        match self.call(&Frame::Stats)? {
            Frame::StatsJson { json } => Ok(json),
            other => Err(Self::refusal_or(other, "non-StatsJson")),
        }
    }

    /// Asks the server to drain and stop (requires the tenant's
    /// `may_shutdown` capability).
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.call(&Frame::Shutdown)? {
            Frame::ShutdownOk => Ok(()),
            other => Err(Self::refusal_or(other, "non-ShutdownOk")),
        }
    }
}

//! The TCP server: a bounded acceptor, thread-per-connection frame
//! handlers, tenant auth/quotas, and fair admission over the
//! scheduler's `Reject` backpressure.
//!
//! ## Threading model
//!
//! Plain `std` throughout (the workspace has no async runtime and no
//! registry access): one acceptor thread plus one handler thread per
//! live connection, the same shape as the scheduler's fixed fleet. The
//! acceptor is *bounded* — past
//! [`ServerConfig::max_connections`] it answers a typed
//! [`ErrorCode::TooManyConnections`] frame and closes instead of
//! spawning, so a connection flood degrades into typed refusals, not
//! thread exhaustion. Handler threads can never wedge: admission uses
//! the scheduler's `Reject` policy (forced at
//! [`Server::start`], whatever the config said), and `Wait` blocks
//! through [`JobTicket::wait_timeout`] capped by
//! [`ServerConfig::max_wait`].
//!
//! ## Tenancy, quotas, and fairness
//!
//! Every connection must open with `Hello { token }`; the token
//! resolves to a configured [`TenantConfig`]. Each tenant has an
//! *outstanding-job quota*: jobs submitted but not yet collected
//! (across all of the tenant's connections). A `Submit` past the quota
//! is refused with [`ErrorCode::QuotaExceeded`] — a typed reject, never
//! a hang and never a dropped job. Because every tenant's quota is
//! clamped below the scheduler's admission capacity, the quota is also
//! the fair-queuing mechanism: no tenant can occupy the whole admission
//! queue, so a greedy tenant saturating its quota leaves capacity that
//! lighter tenants can always claim (max-min fair sharing of queue
//! slots, pinned by `tests/net.rs`). Outstanding slots are released
//! when a result is collected, when a job fails, or when the
//! submitting connection goes away.

use crate::wire::{
    encode_frame_versioned, read_frame, write_frame, ErrorCode, Frame, JobState, WireError,
};
use ntt::poly::Polynomial;
use service::{
    Backpressure, JobTicket, ProtocolJob, ProtocolKind, ProtocolTicket, Service, ServiceConfig,
    ServiceError, ServiceStats,
};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One configured tenant.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Display name (echoed in `HelloOk` and the stats document).
    pub name: String,
    /// Auth token presented in `Hello`.
    pub token: String,
    /// Maximum outstanding (submitted, not yet collected) jobs across
    /// all of this tenant's connections. Clamped at start to
    /// `min(quota, queue_capacity - 1)` so one tenant can never own
    /// the entire admission queue — that clamp is the fair-queuing
    /// guarantee.
    pub quota: usize,
    /// Whether this tenant may issue the `Shutdown` verb.
    pub may_shutdown: bool,
}

impl TenantConfig {
    /// Convenience constructor for the common no-shutdown tenant.
    pub fn new(name: &str, token: &str, quota: usize) -> TenantConfig {
        TenantConfig {
            name: name.to_string(),
            token: token.to_string(),
            quota,
            may_shutdown: false,
        }
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Authorized tenants (at least one; `Server::start` refuses an
    /// empty list — an unauthenticated multiply service is not a thing
    /// this crate offers).
    pub tenants: Vec<TenantConfig>,
    /// Bounded-acceptor limit on live connections.
    pub max_connections: usize,
    /// Server-side cap on any single `Wait` verb's block, whatever
    /// timeout the client asked for.
    pub max_wait: Duration,
    /// The scheduler under the socket. `backpressure` is forced to
    /// [`Backpressure::Reject`] at start: a network submitter must get
    /// a typed refusal, never park a handler thread on a full queue.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            tenants: Vec::new(),
            max_connections: 256,
            max_wait: Duration::from_secs(30),
            service: ServiceConfig::default(),
        }
    }
}

struct TenantState {
    cfg: TenantConfig,
    outstanding: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    quota_rejected: AtomicU64,
    shed: AtomicU64,
}

struct NetShared {
    service: Service,
    tenants: Vec<TenantState>,
    max_wait: Duration,
    stop: AtomicBool,
    live: AtomicUsize,
    /// Read-half clones of live connections, for shutdown unblocking.
    conns: Mutex<HashMap<u64, TcpStream>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    accepted: AtomicU64,
    refused: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    decode_errors: AtomicU64,
    auth_failures: AtomicU64,
}

impl NetShared {
    /// The server's full statistics document: net-layer counters,
    /// per-tenant admission state, and the scheduler's own
    /// [`ServiceStats::to_json`] object under `"service"`. The net keys
    /// are deliberately distinct from every service key so
    /// `ServiceStats::from_json` works on the whole document.
    fn stats_json(&self) -> String {
        let mut tenants = String::new();
        for (i, t) in self.tenants.iter().enumerate() {
            let sep = if i + 1 == self.tenants.len() {
                ""
            } else {
                ", "
            };
            tenants.push_str(&format!(
                "{{\"name\": \"{}\", \"tenant_quota\": {}, \"tenant_outstanding\": {}, \
                 \"tenant_submitted\": {}, \"tenant_completed\": {}, \
                 \"tenant_quota_rejected\": {}, \"tenant_shed\": {}}}{sep}",
                t.cfg.name,
                t.cfg.quota,
                t.outstanding.load(Ordering::Relaxed),
                t.submitted.load(Ordering::Relaxed),
                t.completed.load(Ordering::Relaxed),
                t.quota_rejected.load(Ordering::Relaxed),
                t.shed.load(Ordering::Relaxed),
            ));
        }
        format!(
            "{{\"proto_version\": {}, \"connections_live\": {}, \"connections_accepted\": {}, \
             \"connections_refused\": {}, \"frames_in\": {}, \"frames_out\": {}, \
             \"decode_errors\": {}, \"auth_failures\": {}, \"tenants\": [{tenants}], \
             \"service\": {}}}",
            crate::wire::VERSION,
            self.live.load(Ordering::Relaxed),
            self.accepted.load(Ordering::Relaxed),
            self.refused.load(Ordering::Relaxed),
            self.frames_in.load(Ordering::Relaxed),
            self.frames_out.load(Ordering::Relaxed),
            self.decode_errors.load(Ordering::Relaxed),
            self.auth_failures.load(Ordering::Relaxed),
            self.service.stats().to_json(),
        )
    }
}

/// A running TCP front end. Bind with [`Server::start`], stop with
/// [`Server::shutdown`] (or [`Server::wait`] to serve until a
/// `Shutdown` frame arrives).
pub struct Server {
    shared: Arc<NetShared>,
    acceptor: Option<JoinHandle<()>>,
    addr: std::net::SocketAddr,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and the scheduler fleet.
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        if config.tenants.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a server needs at least one tenant",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept + short park: the acceptor must notice
        // the stop flag without a wake-up connection.
        listener.set_nonblocking(true)?;
        let service_cfg = ServiceConfig {
            // Typed refusals, never a parked handler thread.
            backpressure: Backpressure::Reject,
            ..config.service
        };
        let queue_capacity = service_cfg.queue_capacity.max(1);
        let tenants = config
            .tenants
            .into_iter()
            .map(|mut cfg| {
                // The fair-share clamp: no tenant's quota may cover the
                // whole admission queue.
                cfg.quota = cfg.quota.clamp(1, queue_capacity.saturating_sub(1).max(1));
                TenantState {
                    cfg,
                    outstanding: AtomicUsize::new(0),
                    submitted: AtomicU64::new(0),
                    completed: AtomicU64::new(0),
                    quota_rejected: AtomicU64::new(0),
                    shed: AtomicU64::new(0),
                }
            })
            .collect();
        let shared = Arc::new(NetShared {
            service: Service::start(service_cfg),
            tenants,
            max_wait: config.max_wait.max(Duration::from_millis(1)),
            stop: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            auth_failures: AtomicU64::new(0),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            let max_connections = config.max_connections.max(1);
            std::thread::Builder::new()
                .name("cryptopim-net-acceptor".into())
                .spawn(move || accept_loop(&listener, &shared, max_connections))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            addr: local,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Point-in-time scheduler statistics (the `Stats` verb adds the
    /// net-layer counters on top of this).
    pub fn stats(&self) -> ServiceStats {
        self.shared.service.stats()
    }

    /// The full `Stats`-verb JSON document, server-side.
    pub fn stats_json(&self) -> String {
        self.shared.stats_json()
    }

    /// True once a `Shutdown` frame (or [`Server::shutdown`]) has
    /// stopped admission.
    pub fn is_stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Serves until a `Shutdown` frame flips the stop flag, then
    /// drains and returns the final scheduler statistics.
    pub fn wait(self) -> ServiceStats {
        while !self.shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
        }
        self.shutdown()
    }

    /// Stops accepting, unblocks and joins every connection handler,
    /// drains the scheduler, and returns its final statistics.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock handler threads parked in read_frame.
        for (_, stream) in self.shared.conns.lock().expect("conns").iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handlers: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.shared.handlers.lock().expect("handlers"));
        for h in handlers {
            let _ = h.join();
        }
        // All spawned threads are joined, so this Arc is the last one;
        // unwrap it to consume the service for a draining shutdown.
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.service.shutdown(),
            Err(shared) => {
                // Unreachable in practice; degrade to a snapshot (the
                // service still drains on drop).
                shared.service.stats()
            }
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<NetShared>, max_connections: usize) {
    let mut next_conn_id: u64 = 0;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.accepted.fetch_add(1, Ordering::Relaxed);
                // The listener is non-blocking; accepted sockets must
                // not inherit that.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                if shared.live.load(Ordering::SeqCst) >= max_connections {
                    // Bounded acceptor: typed refusal, then close.
                    shared.refused.fetch_add(1, Ordering::Relaxed);
                    let mut stream = stream;
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Error {
                            code: ErrorCode::TooManyConnections,
                            job_id: 0,
                            detail: format!("connection limit {max_connections} reached"),
                        },
                    );
                    continue;
                }
                let conn_id = next_conn_id;
                next_conn_id += 1;
                shared.live.fetch_add(1, Ordering::SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().expect("conns").insert(conn_id, clone);
                }
                let handler = {
                    let shared = Arc::clone(shared);
                    std::thread::Builder::new()
                        .name(format!("cryptopim-net-conn-{conn_id}"))
                        .spawn(move || {
                            handle_connection(&shared, conn_id, stream);
                            shared.conns.lock().expect("conns").remove(&conn_id);
                            shared.live.fetch_sub(1, Ordering::SeqCst);
                        })
                };
                match handler {
                    Ok(h) => shared.handlers.lock().expect("handlers").push(h),
                    Err(_) => {
                        // Spawn failed: roll the bookkeeping back.
                        shared.conns.lock().expect("conns").remove(&conn_id);
                        shared.live.fetch_sub(1, Ordering::SeqCst);
                        shared.refused.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Per-connection session state.
struct Session {
    /// Index into `shared.tenants` once authenticated.
    tenant: Option<usize>,
    /// Outstanding multiply tickets submitted on this connection.
    jobs: HashMap<u64, JobTicket>,
    /// Outstanding protocol-op tickets (same id space as `jobs`; both
    /// count against the tenant's outstanding quota).
    proto_jobs: HashMap<u64, (ProtocolKind, ProtocolTicket)>,
}

/// What the dispatcher wants done after replying.
enum After {
    Keep,
    Close,
}

fn handle_connection(shared: &Arc<NetShared>, _conn_id: u64, stream: TcpStream) {
    let mut session = Session {
        tenant: None,
        jobs: HashMap::new(),
        proto_jobs: HashMap::new(),
    };
    let reader = stream.try_clone();
    let run = |session: &mut Session| -> io::Result<()> {
        let Ok(read_half) = reader else {
            return Ok(());
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = BufWriter::new(stream);
        loop {
            let frame = match read_frame(&mut reader) {
                Ok(f) => f,
                Err(e) if e.is_disconnect() => return Ok(()),
                Err(WireError::Io(e)) => return Err(e),
                Err(WireError::BadVersion(peer_version)) => {
                    // A peer speaking another protocol revision gets a
                    // typed refusal, not a silent close — and the reply
                    // envelope carries the *peer's* version byte so an
                    // older client's strict envelope check still lets
                    // it decode why it was turned away.
                    shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let reply = Frame::Error {
                        code: ErrorCode::UnsupportedVersion,
                        job_id: 0,
                        detail: format!(
                            "peer speaks protocol version {peer_version}; this server speaks {}",
                            crate::wire::VERSION
                        ),
                    };
                    let _ = writer.write_all(&encode_frame_versioned(&reply, peer_version));
                    let _ = writer.flush();
                    return Ok(());
                }
                Err(e) => {
                    // Protocol violation: answer one typed error frame,
                    // then drop the connection. Never a panic.
                    shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_frame(
                        &mut writer,
                        &Frame::Error {
                            code: ErrorCode::Malformed,
                            job_id: 0,
                            detail: e.to_string(),
                        },
                    );
                    let _ = writer.flush();
                    return Ok(());
                }
            };
            shared.frames_in.fetch_add(1, Ordering::Relaxed);
            let (reply, after) = dispatch(shared, session, frame);
            write_frame(&mut writer, &reply)?;
            writer.flush()?;
            shared.frames_out.fetch_add(1, Ordering::Relaxed);
            if matches!(after, After::Close) {
                return Ok(());
            }
        }
    };
    let _ = run(&mut session);
    // Connection teardown releases the tenant's uncollected slots —
    // the jobs themselves keep executing and their tickets resolve
    // unobserved, but the quota must not leak.
    if let Some(t) = session.tenant {
        shared.tenants[t].outstanding.fetch_sub(
            session.jobs.len() + session.proto_jobs.len(),
            Ordering::SeqCst,
        );
    }
}

fn error(code: ErrorCode, job_id: u64, detail: impl Into<String>) -> Frame {
    Frame::Error {
        code,
        job_id,
        detail: detail.into(),
    }
}

fn dispatch(shared: &Arc<NetShared>, session: &mut Session, frame: Frame) -> (Frame, After) {
    match frame {
        Frame::Hello { token } => match shared.tenants.iter().position(|t| t.cfg.token == token) {
            Some(i) => {
                session.tenant = Some(i);
                let cfg = &shared.tenants[i].cfg;
                (
                    Frame::HelloOk {
                        tenant: cfg.name.clone(),
                        quota: cfg.quota as u32,
                    },
                    After::Keep,
                )
            }
            None => {
                shared.auth_failures.fetch_add(1, Ordering::Relaxed);
                (
                    error(ErrorCode::BadToken, 0, "unknown tenant token"),
                    After::Close,
                )
            }
        },
        // Every other verb requires authentication first.
        _ if session.tenant.is_none() => (
            error(ErrorCode::AuthRequired, 0, "Hello must come first"),
            After::Close,
        ),
        Frame::Submit { job_id, q, a, b } => {
            (submit(shared, session, job_id, q, a, b), After::Keep)
        }
        Frame::SubmitProtocol {
            job_id,
            kind,
            n,
            seed,
        } => (
            submit_protocol(shared, session, job_id, kind, n, seed),
            After::Keep,
        ),
        Frame::Wait { job_id, timeout_ms } => {
            (wait(shared, session, job_id, timeout_ms), After::Keep)
        }
        Frame::Status { job_id } => {
            let state = match (session.jobs.get(&job_id), session.proto_jobs.get(&job_id)) {
                (Some(t), _) if t.is_done() => JobState::Done,
                (Some(_), _) => JobState::Pending,
                (None, Some((_, t))) if t.is_done() => JobState::Done,
                (None, Some(_)) => JobState::Pending,
                (None, None) => JobState::Unknown,
            };
            (Frame::StatusOk { job_id, state }, After::Keep)
        }
        Frame::Stats => (
            Frame::StatsJson {
                json: shared.stats_json(),
            },
            After::Keep,
        ),
        Frame::Shutdown => {
            let tenant = &shared.tenants[session.tenant.expect("authenticated")];
            if tenant.cfg.may_shutdown {
                shared.stop.store(true, Ordering::SeqCst);
                (Frame::ShutdownOk, After::Keep)
            } else {
                (
                    error(
                        ErrorCode::NotPermitted,
                        0,
                        format!("tenant {} lacks the shutdown capability", tenant.cfg.name),
                    ),
                    After::Keep,
                )
            }
        }
        // Server-to-client frames arriving at the server are protocol
        // violations.
        other => (
            error(
                ErrorCode::Malformed,
                0,
                format!("unexpected {} frame from a client", other.name()),
            ),
            After::Close,
        ),
    }
}

fn submit(
    shared: &Arc<NetShared>,
    session: &mut Session,
    job_id: u64,
    q: u64,
    a: Vec<u64>,
    b: Vec<u64>,
) -> Frame {
    let tenant = &shared.tenants[session.tenant.expect("authenticated")];
    if shared.stop.load(Ordering::SeqCst) {
        return error(ErrorCode::ShuttingDown, job_id, "server is draining");
    }
    if session.jobs.contains_key(&job_id) {
        return error(
            ErrorCode::DuplicateJob,
            job_id,
            "job id already outstanding on this connection",
        );
    }
    // Per-tenant admission quota, taken optimistically and rolled back
    // on any downstream refusal.
    let quota = tenant.cfg.quota;
    if tenant
        .outstanding
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
            (cur < quota).then_some(cur + 1)
        })
        .is_err()
    {
        tenant.quota_rejected.fetch_add(1, Ordering::Relaxed);
        return error(
            ErrorCode::QuotaExceeded,
            job_id,
            format!("outstanding quota {quota} exhausted; collect results first"),
        );
    }
    let release = || {
        tenant.outstanding.fetch_sub(1, Ordering::SeqCst);
    };
    if q == 0 {
        // from_coeffs would divide by zero; a remote peer must get a
        // typed frame for that, not a panicked handler thread.
        release();
        return error(ErrorCode::Unsupported, job_id, "modulus 0 is not a modulus");
    }
    let (pa, pb) = match (Polynomial::from_coeffs(a, q), Polynomial::from_coeffs(b, q)) {
        (Ok(pa), Ok(pb)) => (pa, pb),
        (ra, rb) => {
            release();
            let detail = ra
                .err()
                .or(rb.err())
                .map_or_else(|| "invalid operands".to_string(), |e| e.to_string());
            return error(ErrorCode::Unsupported, job_id, detail);
        }
    };
    match shared.service.submit(pa, pb) {
        Ok(ticket) => {
            tenant.submitted.fetch_add(1, Ordering::Relaxed);
            session.jobs.insert(job_id, ticket);
            Frame::Submitted { job_id }
        }
        Err(e) => {
            release();
            match e {
                ServiceError::Overloaded { capacity } => {
                    tenant.shed.fetch_add(1, Ordering::Relaxed);
                    error(
                        ErrorCode::Overloaded,
                        job_id,
                        format!("admission queue full ({capacity})"),
                    )
                }
                ServiceError::ShuttingDown => {
                    error(ErrorCode::ShuttingDown, job_id, "service draining")
                }
                ServiceError::UnsupportedJob { .. } | ServiceError::PairMismatch { .. } => {
                    error(ErrorCode::Unsupported, job_id, e.to_string())
                }
                other => error(ErrorCode::Internal, job_id, other.to_string()),
            }
        }
    }
}

/// `SubmitProtocol`: materialise the scripted scenario server-side and
/// route it through the protocol graph executor. Shares the tenant's
/// outstanding quota and the connection's job-id space with `Submit`.
fn submit_protocol(
    shared: &Arc<NetShared>,
    session: &mut Session,
    job_id: u64,
    kind: ProtocolKind,
    n: u64,
    seed: u64,
) -> Frame {
    let tenant = &shared.tenants[session.tenant.expect("authenticated")];
    if shared.stop.load(Ordering::SeqCst) {
        return error(ErrorCode::ShuttingDown, job_id, "server is draining");
    }
    if session.jobs.contains_key(&job_id) || session.proto_jobs.contains_key(&job_id) {
        return error(
            ErrorCode::DuplicateJob,
            job_id,
            "job id already outstanding on this connection",
        );
    }
    let quota = tenant.cfg.quota;
    if tenant
        .outstanding
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
            (cur < quota).then_some(cur + 1)
        })
        .is_err()
    {
        tenant.quota_rejected.fetch_add(1, Ordering::Relaxed);
        return error(
            ErrorCode::QuotaExceeded,
            job_id,
            format!("outstanding quota {quota} exhausted; collect results first"),
        );
    }
    let release = || {
        tenant.outstanding.fetch_sub(1, Ordering::SeqCst);
    };
    // A hostile degree must become a typed frame before any scenario
    // materialisation: cap it at the largest ring any parameter set
    // covers so usize conversion and key generation stay bounded.
    if n == 0 || n > (1 << 20) {
        release();
        return error(
            ErrorCode::Unsupported,
            job_id,
            format!("protocol ring degree {n} out of range"),
        );
    }
    let job = match ProtocolJob::scripted(kind, n as usize, seed) {
        Ok(job) => job,
        Err(e) => {
            release();
            return error(ErrorCode::Unsupported, job_id, e.to_string());
        }
    };
    match shared.service.submit_protocol(job) {
        Ok(ticket) => {
            tenant.submitted.fetch_add(1, Ordering::Relaxed);
            session.proto_jobs.insert(job_id, (kind, ticket));
            Frame::Submitted { job_id }
        }
        Err(e) => {
            release();
            match e {
                ServiceError::ShuttingDown => {
                    error(ErrorCode::ShuttingDown, job_id, "service draining")
                }
                ServiceError::UnsupportedJob { .. }
                | ServiceError::PairMismatch { .. }
                | ServiceError::ProtocolHost { .. } => {
                    error(ErrorCode::Unsupported, job_id, e.to_string())
                }
                other => error(ErrorCode::Internal, job_id, other.to_string()),
            }
        }
    }
}

/// `Wait` on a protocol-op job id: block up to the capped timeout, then
/// answer `ProtocolDone` (digest + accounting) or a typed error that
/// names the failed graph node.
fn wait_protocol(
    shared: &Arc<NetShared>,
    session: &mut Session,
    job_id: u64,
    timeout_ms: u32,
) -> Frame {
    let tenant_idx = session.tenant.expect("authenticated");
    let (kind, ticket) = session.proto_jobs.get(&job_id).expect("caller checked");
    let kind = *kind;
    let timeout = Duration::from_millis(u64::from(timeout_ms)).min(shared.max_wait);
    match ticket.wait_timeout(timeout) {
        Ok(done) => {
            session.proto_jobs.remove(&job_id);
            let tenant = &shared.tenants[tenant_idx];
            tenant.outstanding.fetch_sub(1, Ordering::SeqCst);
            tenant.completed.fetch_add(1, Ordering::Relaxed);
            Frame::ProtocolDone {
                job_id,
                kind,
                digest: done.output.digest(),
                nodes: done.nodes,
                attempts: done.attempts,
                queue_us: done.queue_us as u64,
                service_us: done.service_us as u64,
            }
        }
        Err(ServiceError::WaitTimeout { timeout_ms }) => error(
            ErrorCode::WaitTimeout,
            job_id,
            format!("not complete within {timeout_ms} ms; op still in flight"),
        ),
        Err(e) => {
            session.proto_jobs.remove(&job_id);
            shared.tenants[tenant_idx]
                .outstanding
                .fetch_sub(1, Ordering::SeqCst);
            match &e {
                ServiceError::ProtocolNode { error, .. }
                    if matches!(**error, ServiceError::FaultUnrecovered { .. }) =>
                {
                    error_frame_fault(job_id, &e)
                }
                _ => error(ErrorCode::Internal, job_id, e.to_string()),
            }
        }
    }
}

fn error_frame_fault(job_id: u64, e: &ServiceError) -> Frame {
    error(ErrorCode::FaultUnrecovered, job_id, e.to_string())
}

fn wait(shared: &Arc<NetShared>, session: &mut Session, job_id: u64, timeout_ms: u32) -> Frame {
    let tenant_idx = session.tenant.expect("authenticated");
    if session.proto_jobs.contains_key(&job_id) {
        return wait_protocol(shared, session, job_id, timeout_ms);
    }
    let Some(ticket) = session.jobs.get(&job_id) else {
        return error(
            ErrorCode::UnknownJob,
            job_id,
            "not outstanding on this connection",
        );
    };
    // The client's deadline, capped by the server's own: a remote
    // peer's Wait can never occupy this handler thread longer than
    // max_wait.
    let timeout = Duration::from_millis(u64::from(timeout_ms)).min(shared.max_wait);
    match ticket.wait_timeout(timeout) {
        Ok(done) => {
            session.jobs.remove(&job_id);
            let tenant = &shared.tenants[tenant_idx];
            tenant.outstanding.fetch_sub(1, Ordering::SeqCst);
            tenant.completed.fetch_add(1, Ordering::Relaxed);
            Frame::Done {
                job_id,
                q: done.product.modulus(),
                product: done.product.into_coeffs(),
                queue_us: done.queue_us as u64,
                service_us: done.service_us as u64,
                attempts: done.attempts,
            }
        }
        Err(ServiceError::WaitTimeout { timeout_ms }) => {
            // The ticket stays claimable: this is flow control, not
            // failure.
            error(
                ErrorCode::WaitTimeout,
                job_id,
                format!("not complete within {timeout_ms} ms; job still in flight"),
            )
        }
        Err(e) => {
            session.jobs.remove(&job_id);
            shared.tenants[tenant_idx]
                .outstanding
                .fetch_sub(1, Ordering::SeqCst);
            match e {
                ServiceError::FaultUnrecovered { bank, attempts } => error(
                    ErrorCode::FaultUnrecovered,
                    job_id,
                    format!("bank {bank} corrupted all {attempts} attempts; result discarded"),
                ),
                ServiceError::Overloaded { .. } => error(
                    ErrorCode::Overloaded,
                    job_id,
                    "fleet degraded before the job could run",
                ),
                other => error(ErrorCode::Internal, job_id, other.to_string()),
            }
        }
    }
}

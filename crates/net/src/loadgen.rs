//! Socket-path load generator: N client threads driving a real
//! [`Server`](crate::server::Server) over loopback TCP, bit-verifying
//! every returned product against the software NTT.
//!
//! This deliberately goes through the full stack — wire encode, TCP,
//! frame decode, tenant auth, quota admission, scheduler, and back —
//! so its latency numbers are what a remote caller would actually see,
//! not the in-process numbers `service::loadgen` reports. Jobs are
//! generated with the same deterministic
//! [`service::loadgen::generate_jobs`] used by the in-process
//! generator, so the two harnesses exercise identical workloads.
//!
//! Latency is recorded per job as submit-to-`Done` wall time, with
//! exact samples (not log buckets) so the p99 gate in
//! `cli serve-loadgen --tcp` measures what it claims to.

use crate::client::Client;
use crate::wire::ErrorCode;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct TcpLoadConfig {
    /// Workload seed (same meaning as `service::loadgen`).
    pub seed: u64,
    /// Concurrent client connections, one thread each.
    pub clients: usize,
    /// Jobs each client submits.
    pub jobs_per_client: usize,
    /// Degrees to draw operands from (round-robin per client).
    pub degrees: Vec<usize>,
    /// Outstanding jobs each client pipelines before collecting.
    /// `1` is a closed loop (submit, wait, repeat); larger values are
    /// an open loop bounded by this window and the tenant quota.
    pub window: usize,
    /// Per-`Wait` timeout sent to the server. Timed-out waits are
    /// retried (and counted) — the job is still in flight, not lost.
    pub wait_timeout_ms: u32,
}

impl Default for TcpLoadConfig {
    fn default() -> Self {
        TcpLoadConfig {
            seed: 7,
            clients: 8,
            jobs_per_client: 32,
            degrees: vec![256],
            window: 1,
            wait_timeout_ms: 2_000,
        }
    }
}

/// Aggregated outcome of one TCP load run.
#[derive(Debug, Clone)]
pub struct TcpLoadReport {
    /// Client connections that completed their workload.
    pub clients: usize,
    /// Jobs attempted (clients × jobs_per_client).
    pub jobs: usize,
    /// Products returned and bit-verified against the software NTT.
    pub verified: usize,
    /// Products that disagreed with the software NTT (must be 0).
    pub mismatches: usize,
    /// Jobs that ended in a typed failure frame (fault unrecovered,
    /// internal error).
    pub failed: usize,
    /// `QuotaExceeded` refusals absorbed by collecting and retrying.
    pub quota_rejected: u64,
    /// `Overloaded` refusals absorbed by backoff and retrying.
    pub shed: u64,
    /// `WaitTimeout` refusals absorbed by re-waiting.
    pub wait_timeouts: u64,
    /// Jobs whose `attempts > 1` (transparent fault recovery ran).
    pub recovered: u64,
    /// Wall-clock for the whole run, seconds.
    pub wall_s: f64,
    /// Verified jobs per second of wall clock.
    pub throughput: f64,
    /// Client-observed submit→Done latency quantiles, microseconds.
    pub p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// Worst observed latency, microseconds.
    pub max_us: u64,
    /// The server's `Stats`-verb JSON document, fetched after the run.
    pub stats_json: String,
}

impl TcpLoadReport {
    /// True when every job produced a bit-exact product.
    pub fn is_clean(&self) -> bool {
        self.mismatches == 0 && self.failed == 0 && self.verified == self.jobs
    }
}

#[derive(Default)]
struct WorkerResult {
    verified: usize,
    mismatches: usize,
    failed: usize,
    quota_rejected: u64,
    shed: u64,
    wait_timeouts: u64,
    recovered: u64,
    latencies: Vec<u64>,
}

/// Verifies returned products against the software NTT, caching one
/// multiplier per `(n, q)`.
struct Verifier {
    multipliers: HashMap<(usize, u64), NttMultiplier>,
}

impl Verifier {
    fn new() -> Verifier {
        Verifier {
            multipliers: HashMap::new(),
        }
    }

    fn expected(&mut self, a: &Polynomial, b: &Polynomial) -> Option<Polynomial> {
        let key = (a.degree_bound(), a.modulus());
        let multiplier = match self.multipliers.entry(key) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(NttMultiplier::for_degree_modulus(key.0, key.1).ok()?),
        };
        multiplier.multiply(a, b).ok()
    }
}

/// Runs `config.clients` threads against a server already listening at
/// `addr`, authenticating with `token`.
///
/// # Panics
///
/// Panics if any client thread cannot connect or authenticate — the
/// load generator's contract is a healthy server on loopback.
pub fn run_against(
    addr: std::net::SocketAddr,
    token: &str,
    config: &TcpLoadConfig,
) -> TcpLoadReport {
    let clients = config.clients.max(1);
    let jobs_per_client = config.jobs_per_client.max(1);
    let started = Instant::now();
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| {
                let config = config.clone();
                let token = token.to_string();
                scope.spawn(move || client_worker(addr, &token, idx, &config))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut merged = WorkerResult::default();
    for r in results {
        merged.verified += r.verified;
        merged.mismatches += r.mismatches;
        merged.failed += r.failed;
        merged.quota_rejected += r.quota_rejected;
        merged.shed += r.shed;
        merged.wait_timeouts += r.wait_timeouts;
        merged.recovered += r.recovered;
        merged.latencies.extend(r.latencies);
    }
    merged.latencies.sort_unstable();
    let quantile = |p: f64| -> f64 {
        if merged.latencies.is_empty() {
            return 0.0;
        }
        let rank = (p * (merged.latencies.len() - 1) as f64).round() as usize;
        merged.latencies[rank.min(merged.latencies.len() - 1)] as f64
    };

    let stats_json = match Client::connect(addr, token) {
        Ok((mut client, _, _)) => client.stats_json().unwrap_or_default(),
        Err(_) => String::new(),
    };

    let jobs = clients * jobs_per_client;
    TcpLoadReport {
        clients,
        jobs,
        verified: merged.verified,
        mismatches: merged.mismatches,
        failed: merged.failed,
        quota_rejected: merged.quota_rejected,
        shed: merged.shed,
        wait_timeouts: merged.wait_timeouts,
        recovered: merged.recovered,
        wall_s,
        throughput: if wall_s > 0.0 {
            merged.verified as f64 / wall_s
        } else {
            0.0
        },
        p50_us: quantile(0.50),
        p95_us: quantile(0.95),
        p99_us: quantile(0.99),
        max_us: merged.latencies.last().copied().unwrap_or(0),
        stats_json,
    }
}

/// One job in flight on a client connection.
struct Inflight {
    job_id: u64,
    expected: Option<Polynomial>,
    submitted_at: Instant,
}

fn client_worker(
    addr: std::net::SocketAddr,
    token: &str,
    idx: usize,
    config: &TcpLoadConfig,
) -> WorkerResult {
    let (mut client, _tenant, quota) =
        Client::connect(addr, token).expect("loadgen client connect");
    // Give every client a distinct deterministic stream.
    let seed = config
        .seed
        .wrapping_add((idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let jobs =
        service::loadgen::generate_jobs(seed, config.jobs_per_client.max(1), &config.degrees);
    let window = config.window.max(1).min(quota.max(1) as usize);

    let mut verifier = Verifier::new();
    let mut result = WorkerResult::default();
    let mut inflight: VecDeque<Inflight> = VecDeque::new();

    for (job_id, (a, b)) in (1u64..).zip(jobs) {
        let expected = verifier.expected(&a, &b);
        let (q, ca, cb) = (a.modulus(), a.into_coeffs(), b.into_coeffs());
        loop {
            match client.submit(job_id, q, ca.clone(), cb.clone()) {
                Ok(()) => {
                    inflight.push_back(Inflight {
                        job_id,
                        expected: expected.clone(),
                        submitted_at: Instant::now(),
                    });
                    break;
                }
                Err(e) => match e.code() {
                    Some(ErrorCode::QuotaExceeded) => {
                        result.quota_rejected += 1;
                        // Collect the oldest outstanding job to free a
                        // quota slot, then retry this submit.
                        if !collect_one(&mut client, &mut inflight, config, &mut result) {
                            // Nothing to collect: the quota is consumed
                            // by another connection of this tenant.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    Some(ErrorCode::Overloaded) => {
                        result.shed += 1;
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    _ => panic!("loadgen submit failed: {e}"),
                },
            }
        }
        while inflight.len() >= window {
            collect_one(&mut client, &mut inflight, config, &mut result);
        }
    }
    while !inflight.is_empty() {
        collect_one(&mut client, &mut inflight, config, &mut result);
    }
    result
}

/// Waits out the oldest in-flight job, verifying its product. Returns
/// false when nothing was in flight.
fn collect_one(
    client: &mut Client,
    inflight: &mut VecDeque<Inflight>,
    config: &TcpLoadConfig,
    result: &mut WorkerResult,
) -> bool {
    let Some(job) = inflight.pop_front() else {
        return false;
    };
    loop {
        match client.wait(job.job_id, config.wait_timeout_ms.max(1)) {
            Ok(done) => {
                result
                    .latencies
                    .push(job.submitted_at.elapsed().as_micros() as u64);
                if done.attempts > 1 {
                    result.recovered += 1;
                }
                let matches = job.expected.as_ref().is_some_and(|exp| {
                    exp.modulus() == done.q && exp.coeffs() == done.product.as_slice()
                });
                if matches {
                    result.verified += 1;
                } else {
                    result.mismatches += 1;
                }
                return true;
            }
            Err(e) if e.code() == Some(ErrorCode::WaitTimeout) => {
                // Flow control, not failure: the job is still running.
                result.wait_timeouts += 1;
            }
            Err(e) => {
                result.failed += 1;
                debug_assert!(
                    e.code().is_some(),
                    "loadgen wait hit a transport failure: {e}"
                );
                return true;
            }
        }
    }
}

/// Extracts the balanced-brace JSON object under `"key"` from `text`.
///
/// Dependency-free helper for pulling the `"service"` object out of a
/// `Stats` reply so it can be handed to
/// [`service::ServiceStats::from_json`]. String-escape-aware; returns
/// `None` when the key is missing or unbalanced.
pub fn extract_object<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = &text[at..];
    let open = rest.find('{')?;
    // Nothing but whitespace and a colon may sit between key and brace.
    if !rest[..open].chars().all(|c| c == ':' || c.is_whitespace()) {
        return None;
    }
    let bytes = rest.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[open..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_object_finds_nested_and_escaped() {
        let doc = r#"{"a": 1, "service": {"x": {"y": 2}, "s": "br{ace\"}"}, "b": 3}"#;
        let obj = extract_object(doc, "service").unwrap();
        assert_eq!(obj, r#"{"x": {"y": 2}, "s": "br{ace\"}"}"#);
        assert!(extract_object(doc, "missing").is_none());
        assert!(extract_object(r#"{"service": [1]}"#, "service").is_none());
        assert!(extract_object(r#"{"service": {"open": 1"#, "service").is_none());
    }
}

//! The length-prefixed binary wire protocol (version 2).
//!
//! Every frame on the socket has the same envelope:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        b"CPIM"
//! 4       1     version      1
//! 5       1     frame type   (one tag per Frame variant)
//! 6       4     payload len  u32 LE, capped at MAX_PAYLOAD
//! 10      len   payload      variant-specific, see below
//! 10+len  8     checksum     FNV-1a 64 over (type byte ‖ payload), LE
//! ```
//!
//! Payload primitives are all little-endian: `u32`, `u64`, strings as
//! `u32` byte length + UTF-8 bytes, and `u64` vectors as `u32` element
//! count + the elements. Every count is validated against the bytes
//! actually present *before* any allocation, so a hostile length
//! prefix cannot make the decoder reserve gigabytes; a frame that
//! decodes with bytes left over is malformed (no smuggled trailers).
//!
//! Decoding never panics on adversarial input — every failure is a
//! typed [`WireError`], and the server answers one in-band
//! [`ErrorCode::Malformed`] frame before dropping the connection.
//! Versioning is strict: a peer speaking a different `version` byte is
//! rejected at the envelope, before any payload is interpreted. A
//! server recognising an *older* version byte answers one typed
//! [`ErrorCode::UnsupportedVersion`] error — encoded with the peer's
//! own version byte via [`encode_frame_versioned`], so the old client
//! can still decode the envelope — instead of closing silently.
//!
//! Version 2 adds the protocol verbs: `SubmitProtocol` (tag 14) names a
//! scripted RLWE protocol op by `(kind, n, seed)` — small enough for
//! the wire, deterministic enough that client and server agree on the
//! exact inputs — and `ProtocolDone` (tag 15) answers with a 64-bit
//! output digest plus the op's node/attempt/latency accounting, so a
//! remote client can bit-compare a served op against a local reference
//! without shipping megabytes of polynomials.

use service::ProtocolKind;
use std::io::{self, Read, Write};

/// Frame envelope magic.
pub const MAGIC: [u8; 4] = *b"CPIM";

/// Wire-protocol version this build speaks. Strict equality is
/// required; there is no negotiation below it.
pub const VERSION: u8 = 2;

/// Version byte of the previous protocol revision (no protocol verbs).
/// A peer speaking it receives a typed [`ErrorCode::UnsupportedVersion`]
/// reply in its own envelope version, not a silent close.
pub const LEGACY_VERSION: u8 = 1;

/// Hard cap on the payload length field. The largest legitimate frame
/// is a `Submit` of two degree-65536 operand vectors (1 MiB of
/// coefficients); 4 MiB leaves headroom without letting a hostile
/// length prefix reserve unbounded memory.
pub const MAX_PAYLOAD: u32 = 4 << 20;

/// Bytes before the payload: magic + version + type + length.
pub const HEADER_LEN: usize = 10;

/// In-band protocol/serving error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// A verb other than `Hello` arrived before authentication.
    AuthRequired = 0,
    /// The `Hello` token matched no configured tenant.
    BadToken = 1,
    /// The tenant's outstanding-job quota is exhausted; collect results
    /// (or wait) and resubmit. This is admission control, not failure.
    QuotaExceeded = 2,
    /// The service's bounded admission queue is full (fleet-wide
    /// backpressure) or the fleet is fully quarantined.
    Overloaded = 3,
    /// The job's `(n, q)` pair has no accelerator configuration, or the
    /// operands are mutually inconsistent.
    Unsupported = 4,
    /// The job's product was detected corrupt on every execution
    /// attempt and discarded — never served wrong.
    FaultUnrecovered = 5,
    /// The `Wait` deadline expired; the job is still in flight and a
    /// later `Wait` can still collect it.
    WaitTimeout = 6,
    /// `Wait`/`Status` named a job id this connection never submitted
    /// (or already collected).
    UnknownJob = 7,
    /// The peer's bytes did not decode as a protocol frame; the server
    /// closes the connection after sending this.
    Malformed = 8,
    /// The authenticated tenant may not issue this verb (e.g.
    /// `Shutdown` without the shutdown capability).
    NotPermitted = 9,
    /// The server is draining and admits no new work.
    ShuttingDown = 10,
    /// An internal serving failure that is none of the above.
    Internal = 11,
    /// The bounded acceptor is at its connection limit; retry later.
    TooManyConnections = 12,
    /// `Submit` reused a job id that is still outstanding on this
    /// connection.
    DuplicateJob = 13,
    /// The peer's envelope carried a protocol version this build does
    /// not speak. Sent in the *peer's* envelope version when that
    /// version is known (see [`encode_frame_versioned`]), so an old
    /// client decodes a typed refusal instead of seeing the connection
    /// vanish.
    UnsupportedVersion = 14,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match v {
            0 => AuthRequired,
            1 => BadToken,
            2 => QuotaExceeded,
            3 => Overloaded,
            4 => Unsupported,
            5 => FaultUnrecovered,
            6 => WaitTimeout,
            7 => UnknownJob,
            8 => Malformed,
            9 => NotPermitted,
            10 => ShuttingDown,
            11 => Internal,
            12 => TooManyConnections,
            13 => DuplicateJob,
            14 => UnsupportedVersion,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Where a job sits, as reported by the `Status` verb.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum JobState {
    /// Submitted on this connection, result not yet available.
    Pending = 0,
    /// Result available; a `Wait` will return immediately.
    Done = 1,
    /// Not outstanding on this connection (never submitted, already
    /// collected, or released).
    Unknown = 2,
}

impl JobState {
    fn from_u8(v: u8) -> Option<JobState> {
        Some(match v {
            0 => JobState::Pending,
            1 => JobState::Done,
            2 => JobState::Unknown,
            _ => return None,
        })
    }
}

/// One protocol frame. Client→server verbs are `Hello`, `Submit`,
/// `Wait`, `Status`, `Stats`, `Shutdown`; everything else is a server
/// reply. Every request receives exactly one reply frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Authenticate the connection with a tenant token. Must be the
    /// first frame; everything else is refused with `AuthRequired`.
    Hello {
        /// The tenant's auth token.
        token: String,
    },
    /// Successful authentication.
    HelloOk {
        /// The tenant name the token resolved to.
        tenant: String,
        /// The tenant's outstanding-job quota.
        quota: u32,
    },
    /// Submit one multiplication job. `a`/`b` are canonical
    /// coefficients of equal length under modulus `q`; the reply is
    /// `Submitted` or a typed `Error`.
    Submit {
        /// Connection-scoped job id, chosen by the client.
        job_id: u64,
        /// Modulus both operands live under.
        q: u64,
        /// Left operand coefficients (length = degree).
        a: Vec<u64>,
        /// Right operand coefficients (same length as `a`).
        b: Vec<u64>,
    },
    /// The job was admitted; collect it with `Wait`.
    Submitted {
        /// Echo of the submitted job id.
        job_id: u64,
    },
    /// Collect a submitted job, blocking server-side up to
    /// `timeout_ms` (further capped by the server's own limit).
    Wait {
        /// Job to collect.
        job_id: u64,
        /// Client-requested maximum block, milliseconds.
        timeout_ms: u32,
    },
    /// A completed job's product and latency breakdown.
    Done {
        /// Echo of the job id.
        job_id: u64,
        /// Modulus of the product.
        q: u64,
        /// Product coefficients, canonical, bit-identical to a direct
        /// engine multiply of the submitted pair.
        product: Vec<u64>,
        /// Queueing time (submit → dispatch), microseconds.
        queue_us: u64,
        /// Batch execution wall-clock, microseconds.
        service_us: u64,
        /// Execution attempts the job took (>1 = recovered fault).
        attempts: u32,
    },
    /// Ask where a job sits without blocking.
    Status {
        /// Job to probe.
        job_id: u64,
    },
    /// Non-blocking job state reply.
    StatusOk {
        /// Echo of the job id.
        job_id: u64,
        /// Where the job sits.
        state: JobState,
    },
    /// Request the server's statistics snapshot.
    Stats,
    /// Statistics reply: one JSON document with `"net"` counters and
    /// the scheduler's `"service"` object
    /// (parseable by `ServiceStats::from_json`).
    StatsJson {
        /// The JSON document.
        json: String,
    },
    /// Ask the server to stop accepting and drain (requires the
    /// tenant's shutdown capability).
    Shutdown,
    /// Shutdown acknowledged; the server is draining.
    ShutdownOk,
    /// Typed in-band failure. `job_id` is 0 for connection-scoped
    /// errors (auth, malformed bytes, shutdown refusals).
    Error {
        /// What went wrong.
        code: ErrorCode,
        /// Job the error is about, or 0 when connection-scoped.
        job_id: u64,
        /// Human-readable detail (bounded; informational only).
        detail: String,
    },
    /// Submit one scripted RLWE protocol op (v2). The op's inputs are
    /// derived deterministically from `(kind, n, seed)` on the server
    /// (see `service::ProtocolJob::scripted`), so the frame stays tiny
    /// while client and server agree bit-exactly on the scenario. The
    /// reply is `Submitted` or a typed `Error`; collect with `Wait`.
    SubmitProtocol {
        /// Connection-scoped job id, chosen by the client (shared id
        /// space with plain `Submit` jobs).
        job_id: u64,
        /// Which protocol op to run.
        kind: ProtocolKind,
        /// Ring degree of the scenario.
        n: u64,
        /// Scenario seed (keys, messages, randomness).
        seed: u64,
    },
    /// A completed protocol op (v2): the output digest and the graph's
    /// accounting, in place of the output itself.
    ProtocolDone {
        /// Echo of the job id.
        job_id: u64,
        /// Echo of the op kind.
        kind: ProtocolKind,
        /// FNV-1a 64 digest of the typed output
        /// (`service::ProtocolOutput::digest`); bit-compare against a
        /// local `run_direct` of the same `(kind, n, seed)`.
        digest: u64,
        /// NTT-multiply nodes the op compiled into.
        nodes: u32,
        /// Worst per-node execution attempts (>1 = recovered fault).
        attempts: u32,
        /// Submission → executor pickup, microseconds.
        queue_us: u64,
        /// End-to-end op latency, microseconds.
        service_us: u64,
    },
}

impl Frame {
    fn type_tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloOk { .. } => 2,
            Frame::Submit { .. } => 3,
            Frame::Submitted { .. } => 4,
            Frame::Wait { .. } => 5,
            Frame::Done { .. } => 6,
            Frame::Status { .. } => 7,
            Frame::StatusOk { .. } => 8,
            Frame::Stats => 9,
            Frame::StatsJson { .. } => 10,
            Frame::Shutdown => 11,
            Frame::ShutdownOk => 12,
            Frame::Error { .. } => 13,
            Frame::SubmitProtocol { .. } => 14,
            Frame::ProtocolDone { .. } => 15,
        }
    }

    /// The variant's name, for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::HelloOk { .. } => "HelloOk",
            Frame::Submit { .. } => "Submit",
            Frame::Submitted { .. } => "Submitted",
            Frame::Wait { .. } => "Wait",
            Frame::Done { .. } => "Done",
            Frame::Status { .. } => "Status",
            Frame::StatusOk { .. } => "StatusOk",
            Frame::Stats => "Stats",
            Frame::StatsJson { .. } => "StatsJson",
            Frame::Shutdown => "Shutdown",
            Frame::ShutdownOk => "ShutdownOk",
            Frame::Error { .. } => "Error",
            Frame::SubmitProtocol { .. } => "SubmitProtocol",
            Frame::ProtocolDone { .. } => "ProtocolDone",
        }
    }
}

/// Typed decode/transport failures. `Io` covers transport-level
/// problems (including mid-frame disconnects); everything else is a
/// protocol violation by the peer.
#[derive(Debug)]
pub enum WireError {
    /// The underlying read/write failed (includes mid-frame EOF).
    Io(io::Error),
    /// The envelope did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The peer speaks a different protocol version.
    BadVersion(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The checksum did not match the payload.
    BadChecksum,
    /// The type byte names no known frame.
    UnknownFrameType(u8),
    /// The payload did not decode as its frame type.
    Malformed(&'static str),
}

impl WireError {
    /// True for the clean end-of-stream cases a server treats as "the
    /// client hung up" rather than a protocol violation.
    pub fn is_disconnect(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
            )
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport: {e}"),
            WireError::BadMagic(m) => write!(f, "bad magic {m:02x?} (want {MAGIC:02x?})"),
            WireError::BadVersion(v) => {
                write!(f, "protocol version {v} (this build speaks {VERSION})")
            }
            WireError::Oversized { len } => {
                write!(f, "payload length {len} exceeds the {MAX_PAYLOAD}-byte cap")
            }
            WireError::BadChecksum => write!(f, "frame checksum mismatch"),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t}"),
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// FNV-1a 64 over the type byte followed by the payload — cheap,
/// dependency-free integrity for a trusted-transport protocol (this
/// guards against truncation and stream desync, not adversaries).
fn checksum(type_tag: u8, payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ u64::from(type_tag);
    h = h.wrapping_mul(PRIME);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_vec(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn encode_payload(frame: &Frame) -> Vec<u8> {
    let mut p = Vec::new();
    match frame {
        Frame::Hello { token } => put_str(&mut p, token),
        Frame::HelloOk { tenant, quota } => {
            put_str(&mut p, tenant);
            put_u32(&mut p, *quota);
        }
        Frame::Submit { job_id, q, a, b } => {
            put_u64(&mut p, *job_id);
            put_u64(&mut p, *q);
            put_vec(&mut p, a);
            put_vec(&mut p, b);
        }
        Frame::Submitted { job_id } => put_u64(&mut p, *job_id),
        Frame::Wait { job_id, timeout_ms } => {
            put_u64(&mut p, *job_id);
            put_u32(&mut p, *timeout_ms);
        }
        Frame::Done {
            job_id,
            q,
            product,
            queue_us,
            service_us,
            attempts,
        } => {
            put_u64(&mut p, *job_id);
            put_u64(&mut p, *q);
            put_vec(&mut p, product);
            put_u64(&mut p, *queue_us);
            put_u64(&mut p, *service_us);
            put_u32(&mut p, *attempts);
        }
        Frame::Status { job_id } => put_u64(&mut p, *job_id),
        Frame::StatusOk { job_id, state } => {
            put_u64(&mut p, *job_id);
            p.push(*state as u8);
        }
        Frame::Stats | Frame::Shutdown | Frame::ShutdownOk => {}
        Frame::StatsJson { json } => put_str(&mut p, json),
        Frame::Error {
            code,
            job_id,
            detail,
        } => {
            p.push(*code as u8);
            put_u64(&mut p, *job_id);
            put_str(&mut p, detail);
        }
        Frame::SubmitProtocol {
            job_id,
            kind,
            n,
            seed,
        } => {
            put_u64(&mut p, *job_id);
            p.push(*kind as u8);
            put_u64(&mut p, *n);
            put_u64(&mut p, *seed);
        }
        Frame::ProtocolDone {
            job_id,
            kind,
            digest,
            nodes,
            attempts,
            queue_us,
            service_us,
        } => {
            put_u64(&mut p, *job_id);
            p.push(*kind as u8);
            put_u64(&mut p, *digest);
            put_u32(&mut p, *nodes);
            put_u32(&mut p, *attempts);
            put_u64(&mut p, *queue_us);
            put_u64(&mut p, *service_us);
        }
    }
    p
}

/// Encodes one frame into its full wire envelope.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    encode_frame_versioned(frame, VERSION)
}

/// Encodes one frame with an explicit envelope version byte. The one
/// legitimate use is answering a peer that spoke an older version: the
/// [`ErrorCode::UnsupportedVersion`] reply must carry the *peer's*
/// version byte, or the old client's strict envelope check would
/// reject the very frame telling it why it was refused.
pub fn encode_frame_versioned(frame: &Frame, version: u8) -> Vec<u8> {
    let tag = frame.type_tag();
    let payload = encode_payload(frame);
    assert!(
        payload.len() as u64 <= u64::from(MAX_PAYLOAD),
        "frame exceeds MAX_PAYLOAD; reject oversized jobs before encoding"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let sum = checksum(tag, &payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Writes one frame (single `write_all`; callers flush their writer).
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))
}

/// Bounds-checked payload cursor: every read validates the remaining
/// byte budget before touching (or allocating for) the data.
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .off
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(WireError::Malformed("truncated payload"))?;
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }

    fn vec_u64(&mut self) -> Result<Vec<u64>, WireError> {
        let count = self.u32()? as usize;
        // The 8·count byte check happens before the allocation: a
        // hostile count can at most claim what the (already capped)
        // payload physically contains.
        let bytes = self.take(
            count
                .checked_mul(8)
                .ok_or(WireError::Malformed("vector count overflow"))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn finish(self) -> Result<(), WireError> {
        if self.off == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after payload"))
        }
    }
}

fn decode_payload(tag: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut c = Cursor {
        bytes: payload,
        off: 0,
    };
    let frame = match tag {
        1 => Frame::Hello { token: c.string()? },
        2 => Frame::HelloOk {
            tenant: c.string()?,
            quota: c.u32()?,
        },
        3 => Frame::Submit {
            job_id: c.u64()?,
            q: c.u64()?,
            a: c.vec_u64()?,
            b: c.vec_u64()?,
        },
        4 => Frame::Submitted { job_id: c.u64()? },
        5 => Frame::Wait {
            job_id: c.u64()?,
            timeout_ms: c.u32()?,
        },
        6 => Frame::Done {
            job_id: c.u64()?,
            q: c.u64()?,
            product: c.vec_u64()?,
            queue_us: c.u64()?,
            service_us: c.u64()?,
            attempts: c.u32()?,
        },
        7 => Frame::Status { job_id: c.u64()? },
        8 => Frame::StatusOk {
            job_id: c.u64()?,
            state: JobState::from_u8(c.u8()?).ok_or(WireError::Malformed("unknown job state"))?,
        },
        9 => Frame::Stats,
        10 => Frame::StatsJson { json: c.string()? },
        11 => Frame::Shutdown,
        12 => Frame::ShutdownOk,
        13 => Frame::Error {
            code: ErrorCode::from_u8(c.u8()?).ok_or(WireError::Malformed("unknown error code"))?,
            job_id: c.u64()?,
            detail: c.string()?,
        },
        14 => Frame::SubmitProtocol {
            job_id: c.u64()?,
            kind: ProtocolKind::from_u8(c.u8()?)
                .ok_or(WireError::Malformed("unknown protocol kind"))?,
            n: c.u64()?,
            seed: c.u64()?,
        },
        15 => Frame::ProtocolDone {
            job_id: c.u64()?,
            kind: ProtocolKind::from_u8(c.u8()?)
                .ok_or(WireError::Malformed("unknown protocol kind"))?,
            digest: c.u64()?,
            nodes: c.u32()?,
            attempts: c.u32()?,
            queue_us: c.u64()?,
            service_us: c.u64()?,
        },
        other => return Err(WireError::UnknownFrameType(other)),
    };
    c.finish()?;
    Ok(frame)
}

/// Reads and validates one frame. Envelope checks run in order —
/// magic, version, length cap — *before* the payload is read or any
/// buffer sized from peer input is allocated; the checksum is verified
/// before the payload is interpreted.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Frame, WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    if header[..4] != MAGIC {
        return Err(WireError::BadMagic(header[..4].try_into().unwrap()));
    }
    if header[4] != VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let tag = header[5];
    let len = u32::from_le_bytes(header[6..10].try_into().unwrap());
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    if u64::from_le_bytes(sum) != checksum(tag, &payload) {
        return Err(WireError::BadChecksum);
    }
    decode_payload(tag, &payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(frame: Frame) {
        let bytes = encode_frame(&frame);
        let back = read_frame(&mut bytes.as_slice()).expect("own encoding decodes");
        assert_eq!(back, frame);
    }

    #[test]
    fn every_frame_type_round_trips() {
        round_trip(Frame::Hello {
            token: "tenant-token".into(),
        });
        round_trip(Frame::HelloOk {
            tenant: "alice".into(),
            quota: 64,
        });
        round_trip(Frame::Submit {
            job_id: 42,
            q: 12289,
            a: vec![1, 2, 3, 4],
            b: vec![5, 6, 7, 8],
        });
        round_trip(Frame::Submitted { job_id: 42 });
        round_trip(Frame::Wait {
            job_id: 42,
            timeout_ms: 1000,
        });
        round_trip(Frame::Done {
            job_id: 42,
            q: 12289,
            product: vec![9, 8, 7],
            queue_us: 120,
            service_us: 340,
            attempts: 2,
        });
        round_trip(Frame::Status { job_id: 7 });
        round_trip(Frame::StatusOk {
            job_id: 7,
            state: JobState::Pending,
        });
        round_trip(Frame::Stats);
        round_trip(Frame::StatsJson {
            json: "{\"queue_depth\": 0}".into(),
        });
        round_trip(Frame::Shutdown);
        round_trip(Frame::ShutdownOk);
        round_trip(Frame::Error {
            code: ErrorCode::QuotaExceeded,
            job_id: 42,
            detail: "outstanding quota exhausted".into(),
        });
        round_trip(Frame::SubmitProtocol {
            job_id: 42,
            kind: ProtocolKind::Decaps,
            n: 256,
            seed: 7,
        });
        round_trip(Frame::ProtocolDone {
            job_id: 42,
            kind: ProtocolKind::Decaps,
            digest: 0xDEAD_BEEF_CAFE_F00D,
            nodes: 3,
            attempts: 2,
            queue_us: 12,
            service_us: 480,
        });
    }

    // One proptest per frame family: randomized fields must survive
    // encode → decode bit-exactly. (The shim draws each argument from
    // its range strategy; vectors come from `collection::vec`.)
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_hello_round_trips(len in 0usize..64, seed in any::<u64>()) {
            let token: String = (0..len)
                .map(|i| char::from(b'a' + ((seed >> (i % 8)) % 26) as u8))
                .collect();
            round_trip(Frame::Hello { token: token.clone() });
            round_trip(Frame::HelloOk { tenant: token, quota: (seed >> 32) as u32 });
        }

        #[test]
        fn prop_submit_round_trips(
            job_id in any::<u64>(),
            q in 1u64..u64::MAX,
            a in collection::vec(any::<u64>(), 0..64),
            b in collection::vec(any::<u64>(), 0..64),
        ) {
            round_trip(Frame::Submit { job_id, q, a, b });
            round_trip(Frame::Submitted { job_id });
        }

        #[test]
        fn prop_wait_done_round_trips(
            job_id in any::<u64>(),
            timeout_ms in any::<u32>(),
            q in 1u64..u64::MAX,
            product in collection::vec(any::<u64>(), 0..64),
            queue_us in any::<u64>(),
            service_us in any::<u64>(),
            attempts in any::<u32>(),
        ) {
            round_trip(Frame::Wait { job_id, timeout_ms });
            round_trip(Frame::Done { job_id, q, product, queue_us, service_us, attempts });
        }

        #[test]
        fn prop_status_stats_round_trips(job_id in any::<u64>(), state in 0u8..3) {
            round_trip(Frame::Status { job_id });
            round_trip(Frame::StatusOk {
                job_id,
                state: JobState::from_u8(state).unwrap(),
            });
            round_trip(Frame::Stats);
            round_trip(Frame::Shutdown);
            round_trip(Frame::ShutdownOk);
        }

        #[test]
        fn prop_error_round_trips(code in 0u8..15, job_id in any::<u64>(), len in 0usize..128) {
            round_trip(Frame::Error {
                code: ErrorCode::from_u8(code).unwrap(),
                job_id,
                detail: "x".repeat(len),
            });
        }

        #[test]
        fn prop_protocol_frames_round_trip(
            job_id in any::<u64>(),
            kind in 0u8..10,
            n in any::<u64>(),
            seed in any::<u64>(),
            digest in any::<u64>(),
            nodes in any::<u32>(),
            attempts in any::<u32>(),
        ) {
            let kind = ProtocolKind::from_u8(kind).unwrap();
            round_trip(Frame::SubmitProtocol { job_id, kind, n, seed });
            round_trip(Frame::ProtocolDone {
                job_id,
                kind,
                digest,
                nodes,
                attempts,
                queue_us: seed,
                service_us: n,
            });
        }

        #[test]
        fn prop_stats_json_round_trips(len in 0usize..512) {
            round_trip(Frame::StatsJson { json: "{\"k\": 1}".repeat(len / 8) });
        }

        /// Decoding arbitrary bytes never panics: it returns a typed
        /// error or (rarely) a valid frame.
        #[test]
        fn prop_decode_never_panics(bytes in collection::vec(any::<u8>(), 0..256)) {
            let _ = read_frame(&mut bytes.as_slice());
        }

        /// Any single corrupted byte in a valid frame yields a typed
        /// error, never a panic (and never a silently different frame
        /// unless the flip hits a same-length re-encoding, which the
        /// checksum makes effectively impossible).
        #[test]
        fn prop_bit_flips_are_detected(pos_seed in any::<u64>(), bit in 0u8..8) {
            let frame = Frame::Submit {
                job_id: 7,
                q: 12289,
                a: vec![1, 2, 3],
                b: vec![4, 5, 6],
            };
            let mut bytes = encode_frame(&frame);
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] ^= 1 << bit;
            // A typed rejection is the expected outcome; decoding may
            // only succeed if the bytes still mean the same frame.
            if let Ok(decoded) = read_frame(&mut bytes.as_slice()) {
                prop_assert_eq!(decoded, frame, "undetected corruption");
            }
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = encode_frame(&Frame::Stats);
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_is_typed() {
        let mut bytes = encode_frame(&Frame::Stats);
        bytes[4] = VERSION + 1;
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::BadVersion(v)) if v == VERSION + 1
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        // Claim a u32::MAX payload: the decoder must refuse from the
        // header alone instead of trying to allocate 4 GiB.
        let mut bytes = encode_frame(&Frame::Stats);
        bytes[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::Oversized { len: u32::MAX })
        ));
    }

    #[test]
    fn hostile_vector_count_is_rejected_before_allocation() {
        // A Submit whose vector count claims 500M elements inside a
        // 30-byte payload: the cursor's budget check fires before any
        // allocation is sized from the count.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // job_id
        put_u64(&mut payload, 12289); // q
        put_u32(&mut payload, 500_000_000); // hostile element count
        let tag = 3u8;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(tag);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let sum = checksum(tag, &payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::Malformed("truncated payload"))
        ));
    }

    #[test]
    fn corrupt_checksum_is_typed() {
        let mut bytes = encode_frame(&Frame::Submitted { job_id: 3 });
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::BadChecksum)
        ));
    }

    #[test]
    fn unknown_frame_type_is_typed() {
        let tag = 200u8;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(tag);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&checksum(tag, &[]).to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::UnknownFrameType(200))
        ));
    }

    #[test]
    fn truncated_header_and_mid_frame_disconnect_are_io() {
        // Cut the stream inside the header, then inside the payload:
        // both surface as Io(UnexpectedEof) — a disconnect, not a
        // protocol violation (is_disconnect distinguishes them).
        let bytes = encode_frame(&Frame::Hello {
            token: "abcdef".into(),
        });
        for cut in [3, HEADER_LEN + 2] {
            let err = read_frame(&mut &bytes[..cut]).expect_err("truncated");
            assert!(matches!(&err, WireError::Io(_)), "{err:?}");
            assert!(err.is_disconnect());
        }
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        // A Submitted payload with 4 smuggled extra bytes, checksummed
        // correctly: still refused.
        let mut payload = Vec::new();
        put_u64(&mut payload, 9);
        payload.extend_from_slice(&[0xDE, 0xAD, 0xBE, 0xEF]);
        let tag = 4u8;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(tag);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let sum = checksum(tag, &payload);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::Malformed("trailing bytes after payload"))
        ));
    }

    #[test]
    fn error_code_and_job_state_cover_their_tags() {
        for v in 0..15 {
            assert!(ErrorCode::from_u8(v).is_some(), "code {v}");
        }
        assert!(ErrorCode::from_u8(15).is_none());
        for v in 0..3 {
            assert!(JobState::from_u8(v).is_some(), "state {v}");
        }
        assert!(JobState::from_u8(3).is_none());
    }

    /// Hand-assemble a correctly checksummed frame from raw parts —
    /// the hostile-bytes fixture for payload-level attacks.
    fn raw_frame(version: u8, tag: u8, payload: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(version);
        bytes.push(tag);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&checksum(tag, payload).to_le_bytes());
        bytes
    }

    #[test]
    fn hostile_protocol_kind_byte_is_malformed() {
        // A SubmitProtocol whose kind byte names no protocol: typed
        // rejection, not a panic or a mis-decoded op.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // job_id
        payload.push(200); // hostile kind byte
        put_u64(&mut payload, 256); // n
        put_u64(&mut payload, 7); // seed
        let bytes = raw_frame(VERSION, 14, &payload);
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::Malformed("unknown protocol kind"))
        ));
    }

    #[test]
    fn truncated_submit_protocol_payload_is_malformed() {
        // Cut the seed field off a SubmitProtocol payload (checksum
        // recomputed over the truncation, so only the cursor catches it).
        let mut payload = Vec::new();
        put_u64(&mut payload, 1);
        payload.push(ProtocolKind::Encaps as u8);
        put_u64(&mut payload, 256);
        let bytes = raw_frame(VERSION, 14, &payload);
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::Malformed("truncated payload"))
        ));
    }

    #[test]
    fn trailing_bytes_after_protocol_done_are_malformed() {
        let frame = Frame::ProtocolDone {
            job_id: 9,
            kind: ProtocolKind::Sign,
            digest: 1,
            nodes: 3,
            attempts: 1,
            queue_us: 0,
            service_us: 10,
        };
        let mut payload = Vec::new();
        put_u64(&mut payload, 9);
        payload.push(ProtocolKind::Sign as u8);
        put_u64(&mut payload, 1);
        put_u32(&mut payload, 3);
        put_u32(&mut payload, 1);
        put_u64(&mut payload, 0);
        put_u64(&mut payload, 10);
        // Sanity: the clean payload decodes to the frame above...
        let clean = raw_frame(VERSION, 15, &payload);
        assert_eq!(read_frame(&mut clean.as_slice()).unwrap(), frame);
        // ...and one smuggled byte breaks it.
        payload.push(0xFF);
        let bytes = raw_frame(VERSION, 15, &payload);
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::Malformed("trailing bytes after payload"))
        ));
    }

    #[test]
    fn legacy_version_envelope_is_typed_bad_version() {
        // A v1 peer's frame is refused at the envelope with the
        // version it spoke, before any payload interpretation.
        let bytes = encode_frame_versioned(&Frame::Stats, LEGACY_VERSION);
        assert!(matches!(
            read_frame(&mut bytes.as_slice()),
            Err(WireError::BadVersion(v)) if v == LEGACY_VERSION
        ));
        // And a v1-encoded UnsupportedVersion reply is decodable by a
        // reader that accepts the v1 envelope (the old client): the
        // payload bytes are version-independent.
        let reply = Frame::Error {
            code: ErrorCode::UnsupportedVersion,
            job_id: 0,
            detail: "speaks v1, server speaks v2".into(),
        };
        let encoded = encode_frame_versioned(&reply, LEGACY_VERSION);
        assert_eq!(encoded[4], LEGACY_VERSION);
        // Re-stamp the version byte the way an old reader's strict
        // check would have seen it pass, then decode the payload.
        let mut as_current = encoded.clone();
        as_current[4] = VERSION;
        assert_eq!(read_frame(&mut as_current.as_slice()).unwrap(), reply);
    }
}

//! The stage-plan cache: everything the engine's hot loop used to
//! re-derive per call, computed once per parameter set and replayed.
//!
//! NTT-PIM (Park et al., 2023) makes the point for hardware: precompute
//! the row-centric stage mapping once and replay it, and the per-NTT
//! control cost disappears from the steady state. The same holds for
//! this simulator. Before the plan cache, every [`crate::engine`] call
//! rebuilt, for each of the `3·log2 n` stages, the lo/hi gather index
//! vectors, the gathered twiddle vector, *and* the per-stage charge
//! tallies — plus a fresh transfer tally per stage even though it only
//! depends on `(n, bitwidth)`.
//!
//! A [`StagePlan`] captures all of that once, keyed by
//! `(n, q, bitwidth, multiplier, reduction style)` — every input the
//! charge schedule and index structure depend on. (The host worker
//! count is deliberately *not* part of the key: the plan describes the
//! hardware schedule, which is identical for any `Threads` setting —
//! that is the determinism contract of DESIGN.md §9.)
//!
//! Two structural facts keep the plan small:
//!
//! * **The gather tables are implicit.** In the row-centric iteration
//!   order (blocks of `2·dist` rows), the lo index is just a linear scan
//!   and the twiddle index is the block number, so the engine needs no
//!   materialized index vectors at all — only the bit-reversal
//!   permutation, which the plan stores once.
//! * **The charge schedule is three tallies.** Block charges are
//!   data-oblivious, so every stage costs the same [`Tally`]; replaying
//!   one precomputed stage tally `log2 n` times accumulates — in the
//!   same f64 order — exactly what charging each stage afresh did.

use crate::mapping::NttMapping;
use modmath::bitrev;
use pim::block::{MemoryBlock, MultiplierKind};
use pim::cost;
use pim::energy;
use pim::reduce::ReductionStyle;
use pim::stats::Tally;
use pim::Result;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Everything the plan's charge schedule and index structure depend on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PlanKey {
    n: usize,
    q: u64,
    bitwidth: u32,
    multiplier: MultiplierKind,
    style: ReductionStyle,
}

/// The precomputed execution plan for one engine configuration.
#[derive(Debug)]
pub struct StagePlan {
    n: usize,
    log_n: u32,
    /// Bit-reversal permutation: `rev[k] = reverse_bits(k, log2 n)`.
    rev: Vec<u32>,
    /// Charge schedule: the ψ pre-multiply phase (two fused mul+REDC
    /// passes — both inputs — on `n` rows of one block).
    premul: Tally,
    /// One fused mul+REDC on `n` rows (point-wise and post-multiply).
    scale: Tally,
    /// One Gentleman–Sande stage (each side on `n/2` rows).
    stage: Tally,
    /// One inter-block transfer at this `(rows, bitwidth)` — constant
    /// across the whole transform, computed once instead of per stage.
    xfer: Tally,
}

fn cache() -> &'static Mutex<HashMap<PlanKey, Arc<StagePlan>>> {
    static CACHE: OnceLock<Mutex<HashMap<PlanKey, Arc<StagePlan>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

impl StagePlan {
    /// Returns the (process-wide) cached plan for a mapping/multiplier
    /// pair, building it on first use.
    ///
    /// # Errors
    ///
    /// Propagates block-construction failures for invalid bitwidths.
    pub fn cached(mapping: &NttMapping, multiplier: MultiplierKind) -> Result<Arc<StagePlan>> {
        let p = mapping.params();
        let key = PlanKey {
            n: p.n,
            q: p.q,
            bitwidth: p.bitwidth,
            multiplier,
            style: mapping.reducer().style(),
        };
        if let Some(plan) = cache().lock().expect("plan cache poisoned").get(&key) {
            return Ok(plan.clone());
        }
        let built = Arc::new(Self::build(mapping, multiplier)?);
        Ok(cache()
            .lock()
            .expect("plan cache poisoned")
            .entry(key)
            .or_insert(built)
            .clone())
    }

    /// Builds a plan without consulting the cache (tests; cache misses).
    ///
    /// # Errors
    ///
    /// Propagates block-construction failures for invalid bitwidths.
    pub fn build(mapping: &NttMapping, multiplier: MultiplierKind) -> Result<StagePlan> {
        let p = mapping.params();
        let red = mapping.reducer();
        let n = p.n;
        let log_n = p.log2_n();
        let rev = (0..n)
            .map(|k| bitrev::reverse_bits(k, log_n) as u32)
            .collect();

        // The charge sequences mirror the engine's historical op order
        // exactly; each phase starts from a fresh block so the f64
        // energy accumulation replays bit-for-bit.
        let mut blk = MemoryBlock::with_rows(p.bitwidth, n)?;
        blk.charge_mul_montgomery(n, multiplier, red);
        blk.charge_mul_montgomery(n, multiplier, red);
        let premul = blk.tally();

        let mut blk = MemoryBlock::with_rows(p.bitwidth, n)?;
        blk.charge_mul_montgomery(n, multiplier, red);
        let scale = blk.tally();

        let half = n / 2;
        let mut blk = MemoryBlock::with_rows(p.bitwidth, half)?;
        blk.charge_ntt_stage(half, multiplier, red);
        let stage = blk.tally();

        let cycles = cost::switch_transfer_cycles(p.bitwidth);
        let xfer = Tally {
            cycles,
            transfer_cycles: cycles,
            energy_pj: energy::transfer_energy_pj(n, p.bitwidth),
            ..Tally::default()
        };

        Ok(StagePlan {
            n,
            log_n,
            rev,
            premul,
            scale,
            stage,
            xfer,
        })
    }

    /// The transform degree this plan was built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// `log2 n`.
    #[inline]
    pub fn log_n(&self) -> u32 {
        self.log_n
    }

    /// The bit-reversal permutation table.
    #[inline]
    pub fn rev(&self) -> &[u32] {
        &self.rev
    }

    /// Charge tally of the ψ pre-multiply phase (both inputs).
    #[inline]
    pub fn premul(&self) -> &Tally {
        &self.premul
    }

    /// Charge tally of one fused mul+REDC scaling pass on `n` rows.
    #[inline]
    pub fn scale(&self) -> &Tally {
        &self.scale
    }

    /// Charge tally of one NTT stage.
    #[inline]
    pub fn stage(&self) -> &Tally {
        &self.stage
    }

    /// Charge tally of one inter-block transfer (constant per stage).
    #[inline]
    pub fn transfer(&self) -> &Tally {
        &self.xfer
    }
}

/// Number of distinct plans currently cached (diagnostics/tests).
pub fn cached_plans() -> usize {
    cache().lock().expect("plan cache poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use pim::par::Threads;
    use pim::reduce::ReductionStyle;

    fn mapping(n: usize) -> NttMapping {
        let p = ParamSet::for_degree(n).unwrap();
        NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap()
    }

    #[test]
    fn cached_returns_same_arc_for_same_key() {
        let m = mapping(256);
        let a = StagePlan::cached(&m, MultiplierKind::CryptoPim).unwrap();
        let b = StagePlan::cached(&m, MultiplierKind::CryptoPim).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
        let c = StagePlan::cached(&m, MultiplierKind::HajAli).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "multiplier is part of the key");
    }

    #[test]
    fn transfer_tally_is_constant_and_matches_cost_model() {
        // The satellite fix: the transfer cost only depends on
        // (rows, bitwidth), so the plan computes it once. Pin it to the
        // closed forms the per-stage code used to recompute.
        for n in [256usize, 1024, 4096] {
            let m = mapping(n);
            let plan = StagePlan::build(&m, MultiplierKind::CryptoPim).unwrap();
            let w = m.params().bitwidth;
            let cycles = cost::switch_transfer_cycles(w);
            assert_eq!(plan.transfer().cycles, cycles);
            assert_eq!(plan.transfer().transfer_cycles, cycles);
            assert_eq!(
                plan.transfer().energy_pj.to_bits(),
                energy::transfer_energy_pj(n, w).to_bits(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn stage_tally_matches_fresh_block_charges() {
        let m = mapping(512);
        let red = m.reducer();
        let plan = StagePlan::build(&m, MultiplierKind::CryptoPim).unwrap();
        let half = 256;
        let mut blk = MemoryBlock::with_rows(m.params().bitwidth, half).unwrap();
        blk.charge_add(half);
        blk.charge_barrett(half, red);
        blk.charge_sub_plus_q(half);
        blk.charge_mul(half, MultiplierKind::CryptoPim);
        blk.charge_montgomery(half, red);
        assert_eq!(*plan.stage(), blk.tally());
        assert_eq!(
            plan.stage().energy_pj.to_bits(),
            blk.tally().energy_pj.to_bits()
        );
    }

    #[test]
    fn rev_table_is_the_bitrev_permutation() {
        let m = mapping(64);
        let plan = StagePlan::build(&m, MultiplierKind::CryptoPim).unwrap();
        for k in 0..64usize {
            assert_eq!(plan.rev()[k] as usize, bitrev::reverse_bits(k, 6));
        }
        assert_eq!(plan.n(), 64);
        assert_eq!(plan.log_n(), 6);
    }

    #[test]
    fn thread_policy_does_not_affect_the_plan() {
        // Fixed/Auto resolve differently, but the plan key ignores the
        // host worker count: the hardware schedule is thread-invariant.
        let m = mapping(256);
        let before = cached_plans();
        let _ = StagePlan::cached(&m, MultiplierKind::CryptoPim).unwrap();
        let _ = Threads::Fixed(8).resolve();
        let _ = StagePlan::cached(&m, MultiplierKind::CryptoPim).unwrap();
        assert!(cached_plans() >= before.max(1));
        let after_first = cached_plans();
        let _ = StagePlan::cached(&m, MultiplierKind::CryptoPim).unwrap();
        assert_eq!(cached_plans(), after_first);
    }
}

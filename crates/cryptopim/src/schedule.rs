//! Discrete-event pipeline occupancy simulation.
//!
//! The analytic model ([`crate::pipeline`]) computes latency as
//! `depth × stage` and throughput as `1/stage`. This module *simulates*
//! a stream of multiplications flowing through the stage chain —
//! synchronous pipeline, one advance per stage time — and reports
//! per-job timing, makespan, and steady-state throughput. The test
//! suite pins the simulation to the analytic formulas, closing the loop
//! between the two levels (and catching any future drift between them).
//!
//! The simulation also answers questions the closed forms cannot, e.g.
//! fill/drain overhead for short bursts: a burst of `k` jobs finishes in
//! `(depth + k − 1) · stage` cycles, so small batches see less than the
//! steady-state throughput.

use crate::pipeline::{Organization, PipelineModel};
use pim::CYCLE_TIME_NS;

/// Timing of one job through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Cycle at which the job entered stage 0.
    pub start_cycle: u64,
    /// Cycle at which the job left the last stage.
    pub finish_cycle: u64,
}

impl JobTiming {
    /// The job's latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.finish_cycle - self.start_cycle
    }
}

/// Result of simulating a burst of jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstReport {
    /// Per-job timings, in issue order.
    pub jobs: Vec<JobTiming>,
    /// Total cycles from first issue to last completion.
    pub makespan_cycles: u64,
    /// Steady-state throughput implied by the inter-completion gap
    /// (multiplications per second), `None` for single-job bursts.
    pub steady_throughput: Option<f64>,
}

impl BurstReport {
    /// Effective throughput of the whole burst (jobs / makespan).
    pub fn burst_throughput(&self) -> f64 {
        self.jobs.len() as f64 / (self.makespan_cycles as f64 * CYCLE_TIME_NS / 1e9)
    }
}

/// Simulates `jobs` back-to-back multiplications through the pipeline of
/// `model` under `org`.
///
/// The pipeline is synchronous: every stage holds one job and all stages
/// advance together every `stage_latency` cycles (the hardware's slowest
/// block sets the beat, exactly as in §III-D). A new job enters as soon
/// as stage 0 frees up — every beat.
///
/// # Panics
///
/// Panics if `jobs == 0`.
pub fn simulate_burst(model: &PipelineModel, org: Organization, jobs: usize) -> BurstReport {
    assert!(jobs > 0, "need at least one job");
    let stage = model.stage_latency(org);
    let depth = model.depth(org);

    // Event-driven equivalent of the synchronous pipeline: job i enters
    // at beat i and exits after traversing `depth` stages.
    let mut timings = Vec::with_capacity(jobs);
    for i in 0..jobs as u64 {
        let start_cycle = i * stage;
        let finish_cycle = (i + depth) * stage;
        timings.push(JobTiming {
            start_cycle,
            finish_cycle,
        });
    }
    let makespan_cycles = timings.last().expect("jobs > 0").finish_cycle;
    let steady_throughput = if jobs > 1 {
        let gap = timings[1].finish_cycle - timings[0].finish_cycle;
        Some(1e9 / (gap as f64 * CYCLE_TIME_NS))
    } else {
        None
    };
    BurstReport {
        jobs: timings,
        makespan_cycles,
        steady_throughput,
    }
}

/// Burst size needed to reach `fraction` (e.g. 0.95) of the steady-state
/// throughput: amortizing the `depth − 1` fill beats.
///
/// # Panics
///
/// Panics unless `0 < fraction < 1`.
pub fn burst_size_for_efficiency(model: &PipelineModel, org: Organization, fraction: f64) -> usize {
    assert!(fraction > 0.0 && fraction < 1.0, "fraction in (0, 1)");
    let depth = model.depth(org) as f64;
    // k / (depth + k − 1) ≥ fraction  →  k ≥ fraction·(depth − 1)/(1 − fraction)
    (fraction * (depth - 1.0) / (1.0 - fraction)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;

    fn model(n: usize) -> PipelineModel {
        PipelineModel::for_params(&ParamSet::for_degree(n).unwrap()).unwrap()
    }

    #[test]
    fn single_job_latency_matches_analytic_model() {
        for n in [256usize, 1024, 32768] {
            let m = model(n);
            let burst = simulate_burst(&m, Organization::CryptoPim, 1);
            assert_eq!(
                burst.jobs[0].latency_cycles(),
                m.pipelined(Organization::CryptoPim).cycles,
                "n = {n}"
            );
            assert!(burst.steady_throughput.is_none());
        }
    }

    #[test]
    fn steady_state_throughput_matches_analytic_model() {
        for n in [256usize, 2048] {
            let m = model(n);
            let burst = simulate_burst(&m, Organization::CryptoPim, 100);
            let simulated = burst.steady_throughput.unwrap();
            let analytic = m.pipelined(Organization::CryptoPim).throughput;
            assert!(
                (simulated - analytic).abs() / analytic < 1e-9,
                "n = {n}: {simulated} vs {analytic}"
            );
        }
    }

    #[test]
    fn makespan_is_fill_plus_beats() {
        let m = model(256);
        let stage = m.stage_latency(Organization::CryptoPim);
        let depth = m.depth(Organization::CryptoPim);
        for k in [1usize, 2, 10, 1000] {
            let burst = simulate_burst(&m, Organization::CryptoPim, k);
            assert_eq!(
                burst.makespan_cycles,
                (depth + k as u64 - 1) * stage,
                "k = {k}"
            );
        }
    }

    #[test]
    fn every_job_has_identical_latency() {
        let m = model(512);
        let burst = simulate_burst(&m, Organization::CryptoPim, 25);
        let lat = burst.jobs[0].latency_cycles();
        assert!(burst.jobs.iter().all(|j| j.latency_cycles() == lat));
        // And issues are monotone.
        assert!(burst
            .jobs
            .windows(2)
            .all(|w| w[0].start_cycle < w[1].start_cycle));
    }

    #[test]
    fn short_bursts_are_inefficient() {
        let m = model(256);
        let small = simulate_burst(&m, Organization::CryptoPim, 2);
        let large = simulate_burst(&m, Organization::CryptoPim, 500);
        assert!(large.burst_throughput() > 5.0 * small.burst_throughput());
        // A long burst approaches the analytic throughput.
        let analytic = m.pipelined(Organization::CryptoPim).throughput;
        assert!(large.burst_throughput() > 0.9 * analytic);
        assert!(large.burst_throughput() <= analytic * (1.0 + 1e-9));
    }

    #[test]
    fn efficiency_burst_size() {
        let m = model(256);
        let k = burst_size_for_efficiency(&m, Organization::CryptoPim, 0.95);
        let burst = simulate_burst(&m, Organization::CryptoPim, k);
        let analytic = m.pipelined(Organization::CryptoPim).throughput;
        assert!(burst.burst_throughput() >= 0.95 * analytic, "k = {k}");
        // One job fewer must miss the target.
        if k > 1 {
            let under = simulate_burst(&m, Organization::CryptoPim, k - 1);
            assert!(under.burst_throughput() < 0.95 * analytic);
        }
    }

    #[test]
    fn organizations_rank_consistently() {
        // The naive organization has the deepest pipeline → worst
        // single-job latency despite a faster beat than area-efficient.
        let m = model(256);
        let lat = |org| simulate_burst(&m, org, 1).jobs[0].latency_cycles();
        assert!(
            lat(Organization::CryptoPim)
                < lat(Organization::AreaEfficient).max(lat(Organization::Naive))
        );
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_panics() {
        simulate_burst(&model(256), Organization::CryptoPim, 0);
    }
}

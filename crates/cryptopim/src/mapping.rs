//! Data organization: Algorithm 1's constants laid out for the PIM
//! datapath (paper §III-B.1/B.2).
//!
//! Two hardware facts shape the layout:
//!
//! * **Bit-reversal is free.** A vector lives one-element-per-row, so
//!   `bitrev()` is just a permuted row write — no cycles.
//! * **Every multiplication is followed by a Montgomery REDC**
//!   (`x ↦ x·R⁻¹ mod q`). To make REDC produce the *intended* product,
//!   all constant multiplicands are stored pre-scaled by `R`:
//!   `REDC(a · cR) = a·c`. The second input polynomial is carried in
//!   Montgomery form through its whole forward transform (established by
//!   pre-scaling its φ constants by `R²`), so that the point-wise
//!   multiplication `REDC(Â · B̂R) = Â·B̂` lands back in normal form.
//!   This costs nothing: it only changes which constants are written
//!   into the data columns at configuration time.

use modmath::params::ParamSet;
use modmath::roots::NttTables;
use modmath::zq;
use pim::reduce::{Reducer, ReductionStyle};
use pim::Result;

/// Precomputed, hardware-ready constant vectors for one parameter set.
#[derive(Debug, Clone)]
pub struct NttMapping {
    params: ParamSet,
    tables: NttTables,
    reducer: Reducer,
    /// Forward twiddles `ω^i`, bit-reversed order, scaled by `R`.
    twiddle_fwd: Vec<u64>,
    /// Inverse twiddles `ω^{-i}`, bit-reversed order, scaled by `R`.
    twiddle_inv: Vec<u64>,
    /// First input's pre-multiply constants: `φ^i · R`.
    phi_a: Vec<u64>,
    /// Second input's pre-multiply constants: `φ^i · R²` (establishes
    /// Montgomery form).
    phi_b: Vec<u64>,
    /// Post-multiply constants: `φ^{-i} · n⁻¹ · R` (folds the inverse
    /// transform's scaling into the same block).
    phi_post: Vec<u64>,
}

impl NttMapping {
    /// Builds the mapping for a parameter set, using the given reduction
    /// style for cost accounting (the CryptoPIM accelerator uses
    /// [`ReductionStyle::CryptoPim`]; baselines pass other styles).
    ///
    /// # Errors
    ///
    /// Fails when the modulus has no specialized reduction sequence or
    /// the degree admits no NTT.
    pub fn new(params: &ParamSet, style: ReductionStyle) -> Result<Self> {
        let tables = NttTables::new(params)?;
        let reducer = Reducer::new(params.q, style)?;
        let q = params.q;
        let scale = |v: u64| reducer.to_mont(v);
        let twiddle_fwd = tables.omega_powers().iter().map(|&w| scale(w)).collect();
        let twiddle_inv = tables
            .omega_inv_powers()
            .iter()
            .map(|&w| scale(w))
            .collect();
        let phi_a = tables.phi_powers().iter().map(|&p| scale(p)).collect();
        // φ·R²: scale twice — REDC(b · φR²) = b·φ·R (Montgomery form).
        let phi_b = tables
            .phi_powers()
            .iter()
            .map(|&p| scale(scale(p)))
            .collect();
        let n_inv = tables.n_inv();
        let phi_post = tables
            .phi_inv_powers()
            .iter()
            .map(|&p| scale(zq::mul(p, n_inv, q)))
            .collect();
        Ok(NttMapping {
            params: *params,
            tables,
            reducer,
            twiddle_fwd,
            twiddle_inv,
            phi_a,
            phi_b,
            phi_post,
        })
    }

    /// The parameter set.
    #[inline]
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// The underlying twiddle tables (unscaled).
    #[inline]
    pub fn tables(&self) -> &NttTables {
        &self.tables
    }

    /// The reduction engine (functional + cost).
    #[inline]
    pub fn reducer(&self) -> &Reducer {
        &self.reducer
    }

    /// Forward twiddles (bit-reversed order, `×R`).
    #[inline]
    pub fn twiddle_fwd(&self) -> &[u64] {
        &self.twiddle_fwd
    }

    /// Inverse twiddles (bit-reversed order, `×R`).
    #[inline]
    pub fn twiddle_inv(&self) -> &[u64] {
        &self.twiddle_inv
    }

    /// The forward twiddles stage `stage` actually consumes: block `b`
    /// of the stage (rows `[b·2^{stage+1}, (b+1)·2^{stage+1})`) uses
    /// factor `b`, so the stage reads exactly the length-`n/2^{stage+1}`
    /// prefix of the bit-reversed table.
    #[inline]
    pub fn twiddle_fwd_stage(&self, stage: u32) -> &[u64] {
        &self.twiddle_fwd[..self.params.n >> (stage + 1)]
    }

    /// Per-stage slice of the inverse twiddles (see
    /// [`NttMapping::twiddle_fwd_stage`]).
    #[inline]
    pub fn twiddle_inv_stage(&self, stage: u32) -> &[u64] {
        &self.twiddle_inv[..self.params.n >> (stage + 1)]
    }

    /// `φ^i · R` for the first input.
    #[inline]
    pub fn phi_a(&self) -> &[u64] {
        &self.phi_a
    }

    /// `φ^i · R²` for the second input.
    #[inline]
    pub fn phi_b(&self) -> &[u64] {
        &self.phi_b
    }

    /// `φ^{-i} · n⁻¹ · R` for the output block.
    #[inline]
    pub fn phi_post(&self) -> &[u64] {
        &self.phi_post
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(n: usize) -> NttMapping {
        let p = ParamSet::for_degree(n).unwrap();
        NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap()
    }

    #[test]
    fn scaled_constants_redc_back_to_originals() {
        let m = mapping(256);
        let red = m.reducer();
        for i in 0..128 {
            assert_eq!(
                red.montgomery(m.twiddle_fwd()[i]),
                m.tables().omega_powers()[i],
                "REDC(wR) = w at slot {i}"
            );
        }
        for i in 0..256 {
            assert_eq!(red.montgomery(m.phi_a()[i]), m.tables().phi_powers()[i]);
            // REDC(φR²) = φR = to_mont(φ).
            assert_eq!(
                red.montgomery(m.phi_b()[i]),
                red.to_mont(m.tables().phi_powers()[i])
            );
        }
    }

    #[test]
    fn post_constants_fold_n_inverse() {
        let m = mapping(64).tables().clone();
        let p = ParamSet::for_degree(64).unwrap();
        let map = NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap();
        let q = p.q;
        for i in 0..64 {
            let expect = zq::mul(m.phi_inv_powers()[i], m.n_inv(), q);
            assert_eq!(map.reducer().montgomery(map.phi_post()[i]), expect);
        }
    }

    #[test]
    fn stage_slices_cover_exactly_the_consumed_factors() {
        let m = mapping(256);
        for stage in 0..8u32 {
            let len = 256usize >> (stage + 1);
            assert_eq!(m.twiddle_fwd_stage(stage).len(), len, "stage {stage}");
            assert_eq!(m.twiddle_inv_stage(stage).len(), len, "stage {stage}");
            assert_eq!(m.twiddle_fwd_stage(stage), &m.twiddle_fwd()[..len]);
            assert_eq!(m.twiddle_inv_stage(stage), &m.twiddle_inv()[..len]);
        }
        // The last stage uses a single factor: ω⁰ in Montgomery form.
        assert_eq!(m.twiddle_fwd_stage(7), &[m.reducer().to_mont(1)]);
    }

    #[test]
    fn all_paper_degrees_map() {
        for n in modmath::params::PAPER_DEGREES {
            let m = mapping(n);
            assert_eq!(m.twiddle_fwd().len(), n / 2);
            assert_eq!(m.phi_a().len(), n);
            assert_eq!(m.phi_b().len(), n);
            assert_eq!(m.phi_post().len(), n);
            assert_eq!(m.params().n, n);
        }
    }

    #[test]
    fn unsupported_modulus_fails() {
        // Any NTT-friendly prime below 2^31 maps since the generalized
        // reducers landed, so the rejection path needs a prime past the
        // 31-bit ceiling (2147483777 = 2^31 + 129 ≡ 1 mod 128).
        let p = ParamSet::custom(64, 2_147_483_777, 32).unwrap();
        assert!(NttMapping::new(&p, ReductionStyle::CryptoPim).is_err());
    }

    #[test]
    fn off_table_ntt_friendly_prime_maps() {
        // The flip side: a small odd NTT-friendly prime outside the
        // paper table (257 at n = 64) is now a valid configuration.
        let p = ParamSet::custom(64, 257, 16).unwrap();
        assert!(NttMapping::new(&p, ReductionStyle::CryptoPim).is_ok());
    }
}

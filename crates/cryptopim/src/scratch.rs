//! Reusable scratch arenas for the engine hot path.
//!
//! One degree-`n` multiplication needs four working vectors (two
//! double-buffered transforms), and before this module every call
//! allocated them afresh — `3·log2 n + O(1)` heap allocations per
//! multiply. A [`Scratch`] checks a single flat `4n`-word slab out of a
//! thread-local pool, hands out the four buffers as disjoint views, and
//! returns the slab on drop. In the steady state (same `n`, same
//! thread) the checkout is a `Vec::pop` and the whole multiply performs
//! **zero** heap allocations — asserted by the counting-allocator test
//! in `tests/alloc_steady_state.rs`.
//!
//! Lifetime rules (also documented in DESIGN.md §10):
//!
//! * A `Scratch` is checked out per multiply and must not outlive the
//!   call that checked it out — the engine keeps it on the stack.
//! * The pool is thread-local, so pool workers executing batched jobs
//!   each warm their own slabs; there is no cross-thread hand-off and
//!   therefore no locking on the hot path.
//! * Returning to the pool is best-effort: if the thread-local is gone
//!   (thread teardown) the slab is simply freed, never leaked.

use std::cell::RefCell;

/// Slabs retained per thread. Two covers the engine (one multiply in
/// flight) plus one nested checkout (e.g. a batch job calling back into
/// the engine); beyond that, extra slabs are freed rather than hoarded.
const MAX_POOLED: usize = 4;

/// Returns a slab to a full-or-not pool, preferring to keep the
/// *largest* slabs: when the pool is at [`MAX_POOLED`], the smallest
/// pooled slab is evicted if the returning one beats it. A workload
/// cycling through degrees (the bench sweep, a mixed-`n` serving fleet)
/// would otherwise fill the pool with small slabs first and then
/// re-allocate + re-zero the expensive large slab on every single call
/// — measured as a ~2× inflation of `engine_batch/4x4096` once the
/// 256/1024 series had run.
fn give_back(pool: &mut Vec<Vec<u64>>, slab: Vec<u64>) {
    if pool.len() < MAX_POOLED {
        pool.push(slab);
        return;
    }
    if let Some(i) = (0..pool.len()).min_by_key(|&i| pool[i].capacity()) {
        if pool[i].capacity() < slab.capacity() {
            pool[i] = slab;
        }
    }
}

thread_local! {
    static POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// A checked-out `4n`-word scratch slab; returns itself on drop.
#[derive(Debug)]
pub struct Scratch {
    slab: Vec<u64>,
    n: usize,
}

impl Scratch {
    /// Checks a slab for degree `n` out of the thread-local pool,
    /// allocating only when the pool has no slab of this exact size.
    pub fn checkout(n: usize) -> Scratch {
        let want = 4 * n;
        let slab = POOL
            .with(|p| {
                let mut p = p.borrow_mut();
                p.iter()
                    .position(|s| s.len() == want)
                    .map(|i| p.swap_remove(i))
            })
            .unwrap_or_else(|| vec![0u64; want]);
        Scratch { slab, n }
    }

    /// The four disjoint `n`-word working buffers.
    pub fn buffers(&mut self) -> (&mut [u64], &mut [u64], &mut [u64], &mut [u64]) {
        let (a, rest) = self.slab.split_at_mut(self.n);
        let (b, rest) = rest.split_at_mut(self.n);
        let (c, d) = rest.split_at_mut(self.n);
        (a, b, c, &mut d[..self.n])
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let slab = std::mem::take(&mut self.slab);
        if slab.is_empty() {
            return;
        }
        // Best-effort return; during thread teardown the TLS may already
        // be gone, in which case the slab is just freed.
        let _ = POOL.try_with(|p| {
            if let Ok(mut p) = p.try_borrow_mut() {
                give_back(&mut p, slab);
            }
        });
    }
}

/// Number of slabs currently pooled on this thread (diagnostics/tests).
pub fn pooled_slabs() -> usize {
    POOL.with(|p| p.borrow().len())
}

thread_local! {
    static BATCH_POOL: RefCell<Vec<Vec<u64>>> = const { RefCell::new(Vec::new()) };
}

/// A checked-out `3·B·n`-word slab for the batch-fused referee: three
/// disjoint `B·n` buffers (operand A spectra, operand B spectra,
/// products) that [`ntt::negacyclic::NttMultiplier::multiply_batch_into`]
/// walks in one fused pass.
///
/// Pooled separately from [`Scratch`] because batch sizes vary call to
/// call: a pooled slab is reused whenever its capacity covers the
/// request (the view is trimmed), so a worker thread that has seen its
/// largest batch once reaches the same zero-allocation steady state as
/// the engine's fixed-size slabs.
#[derive(Debug)]
pub struct BatchScratch {
    slab: Vec<u64>,
    lane: usize,
}

impl BatchScratch {
    /// Checks out a slab for `batch` degree-`n` jobs, allocating only
    /// when no pooled slab is large enough.
    ///
    /// A reused slab keeps its previous contents (zeroing `3·B·n` words
    /// per checkout is pure memset traffic): every consumer fully
    /// overwrites the buffers it reads, so treat them as uninitialized.
    pub fn checkout(n: usize, batch: usize) -> BatchScratch {
        let lane = n * batch.max(1);
        let want = 3 * lane;
        let mut slab = BATCH_POOL
            .with(|p| {
                let mut p = p.borrow_mut();
                p.iter()
                    .position(|s| s.capacity() >= want)
                    .map(|i| p.swap_remove(i))
            })
            .unwrap_or_default();
        if slab.len() < want {
            slab.resize(want, 0);
        }
        BatchScratch { slab, lane }
    }

    /// The three disjoint `B·n`-word buffers: (a, b, out).
    pub fn buffers(&mut self) -> (&mut [u64], &mut [u64], &mut [u64]) {
        let (a, rest) = self.slab.split_at_mut(self.lane);
        let (b, out) = rest.split_at_mut(self.lane);
        (a, b, &mut out[..self.lane])
    }
}

impl Drop for BatchScratch {
    fn drop(&mut self) {
        let slab = std::mem::take(&mut self.slab);
        if slab.capacity() == 0 {
            return;
        }
        let _ = BATCH_POOL.try_with(|p| {
            if let Ok(mut p) = p.try_borrow_mut() {
                give_back(&mut p, slab);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_reuses_the_returned_slab() {
        let first_ptr = {
            let mut s = Scratch::checkout(64);
            s.buffers().0[0] = 7;
            s.slab.as_ptr() as usize
        };
        let s = Scratch::checkout(64);
        assert_eq!(
            s.slab.as_ptr() as usize,
            first_ptr,
            "steady state must reuse the pooled slab"
        );
    }

    #[test]
    fn buffers_are_disjoint_full_length_views() {
        let mut s = Scratch::checkout(8);
        let (a, b, c, d) = s.buffers();
        assert_eq!([a.len(), b.len(), c.len(), d.len()], [8, 8, 8, 8]);
        a[0] = 1;
        b[0] = 2;
        c[0] = 3;
        d[0] = 4;
        assert_eq!((a[0], b[0], c[0], d[0]), (1, 2, 3, 4));
    }

    #[test]
    fn mismatched_sizes_do_not_cross_pollinate() {
        drop(Scratch::checkout(16));
        let s = Scratch::checkout(32);
        assert_eq!(s.slab.len(), 128, "a 16-slab must not serve n = 32");
    }

    #[test]
    fn pool_is_bounded() {
        let many: Vec<Scratch> = (0..2 * MAX_POOLED).map(|_| Scratch::checkout(4)).collect();
        drop(many);
        assert!(pooled_slabs() <= MAX_POOLED);
    }

    #[test]
    fn batch_scratch_reuses_capacity_for_smaller_batches() {
        let big_ptr = {
            let s = BatchScratch::checkout(64, 8);
            s.slab.as_ptr() as usize
        };
        // A smaller request rides the pooled large slab (trimmed view);
        // contents are unspecified on reuse — consumers overwrite.
        let mut small = BatchScratch::checkout(64, 2);
        assert_eq!(small.slab.as_ptr() as usize, big_ptr);
        let (a, b, out) = small.buffers();
        assert_eq!([a.len(), b.len(), out.len()], [128, 128, 128]);
    }

    #[test]
    fn full_pool_keeps_the_largest_slabs() {
        // Fill the batch pool to its bound with small slabs (the state a
        // degree sweep leaves behind)...
        let small: Vec<BatchScratch> = (0..MAX_POOLED)
            .map(|_| BatchScratch::checkout(64, 1))
            .collect();
        drop(small);
        // ...then return a large slab to the now-full pool: it must
        // evict a small slab rather than be freed, so the next large
        // checkout reuses it instead of re-allocating.
        let big_ptr = {
            let s = BatchScratch::checkout(1024, 4);
            s.slab.as_ptr() as usize
        };
        let s = BatchScratch::checkout(1024, 4);
        assert_eq!(
            s.slab.as_ptr() as usize,
            big_ptr,
            "large slab must survive a full pool"
        );
    }

    #[test]
    fn batch_scratch_buffers_are_disjoint() {
        let mut s = BatchScratch::checkout(4, 2);
        let (a, b, out) = s.buffers();
        a[0] = 1;
        b[0] = 2;
        out[0] = 3;
        assert_eq!((a[0], b[0], out[0]), (1, 2, 3));
    }
}

//! Residue spot checks: cheap algebraic verification of a multiply
//! result.
//!
//! The negacyclic product `c = a·b` in `Z_q[x]/(x^n + 1)` satisfies the
//! *exact* scalar identity `c(r) = a(r)·b(r) mod q` at every point `r`
//! with `r^n ≡ −1 (mod q)` — i.e. at the `n` odd powers of the
//! primitive `2n`-th root ψ the NTT is already built on. Evaluating the
//! three polynomials by Horner costs `O(n)` multiplies per point versus
//! `O(n log n)` heavier block operations for the multiply itself, so a
//! handful of points is a ~few-percent overhead.
//!
//! **Coverage analysis — the residue check is a screen, not a proof.**
//! If `c ≠ a·b`, the error polynomial `e = c − a·b` is nonzero of
//! degree `< n`, so it vanishes on at most `n − 1` of the `n`
//! admissible points — but *which* points catch it depends entirely on
//! where the fault struck, because the admissible evaluations of `e`
//! are exactly the bins of its negacyclic NTT `ê`:
//!
//! * **Coefficient-domain faults** (premul input writes, postmul output
//!   writes): `e` has one (or a few) nonzero coefficients, `ê` is dense
//!   — every admissible point catches a single flipped output
//!   coefficient, and a corrupted input coefficient escapes a drawn
//!   point only when the *other* operand's transform is zero in that
//!   bin (probability `≈ 1/q` per point).
//! * **Transform-domain faults** (pointwise block, late forward / early
//!   inverse stages): a single corrupted value lands in as little as
//!   **one** NTT bin of `ê`, and only the one admissible point indexed
//!   by that bin sees it. A `k`-point check catches an `m`-bin error
//!   with probability `1 − (1 − m/n)^k` — for `m = 1` that is `≈ k/n`,
//!   nowhere near certainty.
//!
//! The serving layer therefore treats [`CheckPolicy::Residue`] as the
//! cheap screen it is and offers [`CheckPolicy::Recompute`] — a full
//! software-NTT recompute-and-compare on an independent (host) datapath,
//! `O(n log n)` — as the *sound* referee: it flags every corrupt
//! product, whatever block the fault hit. The fault campaigns measure
//! the residue screen's empirical coverage per fault class against that
//! referee, and CI pins the recover-or-quarantine guarantee (no wrong
//! answer served) under the sound policy.
//!
//! Evaluation points are drawn deterministically from a seed
//! ([`CheckPolicy::Residue`]), keeping the recover-or-quarantine
//! pipeline above this crate fully replayable.

use crate::mapping::NttMapping;
use modmath::zq;
use pim::fault::splitmix64;

/// Result-integrity policy applied by
/// [`crate::accelerator::CryptoPim::multiply_product`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckPolicy {
    /// No checking (the default): the historical hot path, bit-for-bit.
    #[default]
    Disabled,
    /// Verify `c(r) = a(r)·b(r) mod q` at `points` seeded-random
    /// negacyclic evaluation points; a disagreement fails the multiply
    /// with [`pim::PimError::CorruptResult`]. Probabilistic: catches
    /// coefficient-domain corruption essentially always, but a fault in
    /// a transform-domain pipeline block escapes with probability up to
    /// `≈ 1 − points/n` (see the module docs).
    Residue {
        /// Evaluation points per product (clamped to ≥ 1 when checked).
        points: u8,
        /// Seed the points are derived from.
        seed: u64,
    },
    /// Recompute the product on the independent software-NTT datapath
    /// and compare bit for bit — the sound referee (`O(n log n)`,
    /// roughly doubling the work): **every** corrupt product fails the
    /// multiply with [`pim::PimError::CorruptResult`], whatever pipeline
    /// block the fault struck.
    Recompute,
}

impl CheckPolicy {
    /// Shorthand for [`CheckPolicy::Residue`].
    pub fn residue(points: u8, seed: u64) -> Self {
        CheckPolicy::Residue { points, seed }
    }

    /// Whether any checking is performed.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, CheckPolicy::Disabled)
    }
}

/// Horner evaluation of a coefficient vector at `r`, mod `q`.
fn eval(coeffs: &[u64], r: u64, q: u64) -> u64 {
    coeffs
        .iter()
        .rev()
        .fold(0u64, |acc, &c| zq::add(zq::mul(acc, r, q), c, q))
}

/// Verifies `c = a·b` in the ring at `points` seeded evaluation points.
///
/// Returns `Ok(())` when every point agrees, otherwise
/// `Err((failed, checked))`. The points are `r_i = ψ^{d_i}` with odd
/// `d_i` derived from the seed, so `r_i^n ≡ −1` and the identity is
/// exact — a correct product can never fail.
pub(crate) fn verify_product(
    mapping: &NttMapping,
    a: &[u64],
    b: &[u64],
    c: &[u64],
    points: u8,
    seed: u64,
) -> Result<(), (u32, u32)> {
    let q = mapping.params().q;
    let n = mapping.params().n as u64;
    let phi = mapping.tables().phi();
    let checked = u32::from(points.max(1));
    let mut failed = 0u32;
    for i in 0..checked {
        let draw = splitmix64(seed ^ (u64::from(i)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let r = zq::pow(phi, 2 * (draw % n) + 1, q);
        let ea = eval(a, r, q);
        let eb = eval(b, r, q);
        let ec = eval(c, r, q);
        if zq::mul(ea, eb, q) != ec {
            failed += 1;
        }
    }
    if failed == 0 {
        Ok(())
    } else {
        Err((failed, checked))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
    use ntt::poly::Polynomial;
    use pim::reduce::ReductionStyle;

    fn setup(n: usize) -> (NttMapping, Vec<u64>, Vec<u64>, Vec<u64>) {
        let p = ParamSet::for_degree(n).unwrap();
        let mapping = NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap();
        let mk = |seed: u64| {
            let mut state = seed;
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 16) % p.q
                })
                .collect::<Vec<u64>>()
        };
        let (a, b) = (mk(5), mk(6));
        let sw = NttMultiplier::new(&p).unwrap();
        let c = sw
            .multiply(
                &Polynomial::from_coeffs(a.clone(), p.q).unwrap(),
                &Polynomial::from_coeffs(b.clone(), p.q).unwrap(),
            )
            .unwrap();
        (mapping, a, b, c.coeffs().to_vec())
    }

    #[test]
    fn correct_product_always_passes() {
        for n in [64usize, 256, 1024] {
            let (mapping, a, b, c) = setup(n);
            for seed in 0..20u64 {
                assert_eq!(verify_product(&mapping, &a, &b, &c, 3, seed), Ok(()));
            }
        }
    }

    #[test]
    fn single_coefficient_corruption_is_always_caught() {
        // e = δ·x^i fails at *every* admissible point (r is invertible),
        // so even a one-point check must flag all of these.
        let (mapping, a, b, c) = setup(256);
        let q = mapping.params().q;
        for i in [0usize, 1, 17, 128, 255] {
            for delta in [1u64, q / 2, q - 1] {
                let mut bad = c.clone();
                bad[i] = (bad[i] + delta) % q;
                for seed in 0..10u64 {
                    let r = verify_product(&mapping, &a, &b, &bad, 1, seed);
                    assert_eq!(r, Err((1, 1)), "i = {i}, delta = {delta}, seed = {seed}");
                }
            }
        }
    }

    #[test]
    fn dense_corruption_is_caught() {
        let (mapping, a, b, c) = setup(512);
        let q = mapping.params().q;
        let bad: Vec<u64> = c.iter().map(|&x| (x + 1) % q).collect();
        let r = verify_product(&mapping, &a, &b, &bad, 3, 42);
        assert!(r.is_err());
    }

    #[test]
    fn zero_points_clamps_to_one() {
        let (mapping, a, b, c) = setup(64);
        assert_eq!(verify_product(&mapping, &a, &b, &c, 0, 7), Ok(()));
        let mut bad = c;
        bad[3] = (bad[3] + 1) % mapping.params().q;
        assert_eq!(verify_product(&mapping, &a, &b, &bad, 0, 7), Err((1, 1)));
    }

    #[test]
    fn policy_accessors() {
        assert!(!CheckPolicy::default().is_enabled());
        assert!(CheckPolicy::residue(3, 9).is_enabled());
        assert_eq!(
            CheckPolicy::residue(3, 9),
            CheckPolicy::Residue { points: 3, seed: 9 }
        );
    }
}

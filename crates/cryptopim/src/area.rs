//! Area estimation: why Fig. 4a is called "area-efficient".
//!
//! The paper never tabulates area, but its organization naming implies
//! the trade-off this module makes explicit: every pipeline block is a
//! full 512×512 crossbar, so splitting operations across more blocks
//! (for throughput) multiplies memory area, and every extra block
//! boundary adds a fixed-function switch (3 logic switches per row).
//! The ablation bench prints the resulting area/throughput Pareto.
//!
//! Units are abstract: one RRAM **cell** and one logic **switch** are
//! the primitives; a relative `cell_equivalent` combines them with a
//! conventional 4-cells-per-logic-switch weight (access transistors
//! dominate a switch footprint).

use crate::arch::ArchConfig;
use crate::pipeline::{Organization, PipelineModel};
use pim::{Result, BLOCK_DIM};

/// Cell-equivalents charged per logic switch.
pub const CELLS_PER_SWITCH: f64 = 4.0;

/// Area breakdown of one superbank configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEstimate {
    /// Total memory blocks.
    pub blocks: u64,
    /// RRAM cells (blocks × 512 × 512).
    pub cells: u64,
    /// Logic switches (block boundaries × 3 per row × rows).
    pub switches: u64,
    /// Combined relative area in cell-equivalents.
    pub cell_equivalent: f64,
}

impl AreaEstimate {
    /// Derives the estimate for a degree under an organization.
    ///
    /// # Errors
    ///
    /// Propagates architecture-derivation failures.
    pub fn for_config(model: &PipelineModel, org: Organization) -> Result<Self> {
        let arch = ArchConfig::for_degree(model.params().n, model, org)?;
        let blocks = arch.total_blocks();
        let cells = blocks * (BLOCK_DIM as u64) * (BLOCK_DIM as u64);
        // One switch stage per block boundary within each bank chain.
        let boundaries = blocks.saturating_sub(2 * arch.banks_per_softbank as u64);
        let switches = boundaries * 3 * BLOCK_DIM as u64;
        Ok(AreaEstimate {
            blocks,
            cells,
            switches,
            cell_equivalent: cells as f64 + switches as f64 * CELLS_PER_SWITCH,
        })
    }

    /// Throughput per unit area: the Pareto metric of the ablation
    /// (multiplications per second per mega-cell-equivalent).
    pub fn throughput_density(&self, throughput: f64) -> f64 {
        throughput / (self.cell_equivalent / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;

    fn model(n: usize) -> PipelineModel {
        PipelineModel::for_params(&ParamSet::for_degree(n).unwrap()).unwrap()
    }

    #[test]
    fn area_ordering_matches_the_papers_naming() {
        // area-efficient < CryptoPIM < naive, at every degree.
        for n in [256usize, 1024, 32768] {
            let m = model(n);
            let area = |org| AreaEstimate::for_config(&m, org).unwrap().cell_equivalent;
            let a = area(Organization::AreaEfficient);
            let c = area(Organization::CryptoPim);
            let nv = area(Organization::Naive);
            assert!(a < c, "n = {n}");
            assert!(c < nv, "n = {n}");
        }
    }

    #[test]
    fn cells_dominate_switch_area() {
        let m = model(1024);
        let e = AreaEstimate::for_config(&m, Organization::CryptoPim).unwrap();
        assert!(e.cells as f64 > 10.0 * e.switches as f64 * CELLS_PER_SWITCH);
    }

    #[test]
    fn pareto_structure() {
        // The genuine trade-off the organization names encode:
        // area-efficient maximizes throughput *density* (it is ~1.6×
        // slower per stage but uses 2× fewer blocks), CryptoPIM
        // maximizes absolute throughput, and naive is dominated on both
        // axes — which is exactly why the paper discards it.
        let m = model(256);
        let density = |org| {
            let e = AreaEstimate::for_config(&m, org).unwrap();
            e.throughput_density(m.pipelined(org).throughput)
        };
        let thr = |org| m.pipelined(org).throughput;
        assert!(density(Organization::AreaEfficient) > density(Organization::CryptoPim));
        assert!(density(Organization::CryptoPim) > density(Organization::Naive));
        assert!(thr(Organization::CryptoPim) > thr(Organization::Naive));
        assert!(thr(Organization::Naive) > thr(Organization::AreaEfficient));
    }

    #[test]
    fn area_scales_with_degree() {
        let small = AreaEstimate::for_config(&model(256), Organization::CryptoPim)
            .unwrap()
            .cell_equivalent;
        let large = AreaEstimate::for_config(&model(32768), Organization::CryptoPim)
            .unwrap()
            .cell_equivalent;
        assert!(large > 20.0 * small);
    }

    #[test]
    fn paper_32k_point_area() {
        // 128 banks × 49 blocks × 512² cells ≈ 1.6 G cells.
        let e = AreaEstimate::for_config(&model(32768), Organization::CryptoPim).unwrap();
        assert_eq!(e.blocks, 128 * 49);
        assert_eq!(e.cells, 128 * 49 * 512 * 512);
    }
}

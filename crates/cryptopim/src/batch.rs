//! Batched multiplication: the user-facing API over superbank packing
//! and pipeline streaming (§III-D).
//!
//! A 32k-provisioned chip processing degree-`n < 32k` polynomials has
//! idle banks; the architecture packs `32k/n` independent
//! multiplications side by side, and the pipeline streams jobs
//! back-to-back. [`multiply_batch`] exposes both: it computes every
//! product functionally and reports the batch's latency and effective
//! throughput from the occupancy simulation.
//!
//! Jobs fan out over the persistent worker pool (`pim::par`); each
//! worker's inner engine runs sequentially and reuses that worker's
//! thread-local scratch slab, so a long batch settles into the same
//! zero-allocation steady state as a single-engine loop.

use crate::accelerator::CryptoPim;
use crate::arch::ArchConfig;
use crate::check::{self, CheckPolicy};
use crate::phase;
use crate::schedule::simulate_burst;
use crate::scratch::BatchScratch;
use crate::Result;
use ntt::poly::Polynomial;
use pim::par::{self, Threads};
use pim::{PimError, CYCLE_TIME_NS};
use std::sync::Arc;
use std::time::Instant;

/// Outcome of a batched run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The products, in input order.
    pub products: Vec<Polynomial>,
    /// Wall-clock makespan of the batch on the hardware, µs.
    pub makespan_us: f64,
    /// Effective throughput of this batch (multiplications/s),
    /// including pipeline fill and packing.
    pub effective_throughput: f64,
    /// Independent multiplications running side by side.
    pub packed_lanes: usize,
}

/// Multiplies a batch of polynomial pairs on the accelerator.
///
/// Functionally every pair goes through the verified engine; timing
/// comes from the occupancy model — `⌈pairs / lanes⌉` pipeline beats
/// across `lanes` packed superbank slices.
///
/// # Errors
///
/// Propagates per-pair execution failures; [`PimError::EmptyBatch`]
/// when the batch holds zero jobs.
pub fn multiply_batch(acc: &CryptoPim, pairs: &[(Polynomial, Polynomial)]) -> Result<BatchReport> {
    let products = multiply_batch_products(acc, pairs)?;
    let arch = ArchConfig::for_degree(acc.params().n, acc.model(), acc.organization())?;
    let lanes = arch.parallel_multiplications.max(1);
    let jobs_per_lane = pairs.len().div_ceil(lanes);
    let burst = simulate_burst(acc.model(), acc.organization(), jobs_per_lane);
    let makespan_us = burst.makespan_cycles as f64 * CYCLE_TIME_NS / 1000.0 * arch.passes as f64;
    Ok(BatchReport {
        products,
        makespan_us,
        effective_throughput: pairs.len() as f64 / (makespan_us / 1e6),
        packed_lanes: lanes,
    })
}

/// Multiplies a batch of pairs, returning only the products in input
/// order — the serving hot path.
///
/// The analytic burst timing of [`multiply_batch`] (a discrete-event
/// walk of the pipeline occupancy model, tens of µs per call) is
/// skipped: a live service measures batch wall-clock itself, and under
/// low occupancy that fixed cost would be paid for every one- or
/// two-job batch.
///
/// # Errors
///
/// Same as [`multiply_batch`].
pub fn multiply_batch_products(
    acc: &CryptoPim,
    pairs: &[(Polynomial, Polynomial)],
) -> Result<Vec<Polynomial>> {
    multiply_batch_outcomes(acc, pairs)?.into_iter().collect()
}

/// Multiplies a batch of pairs, returning a **per-job** outcome in
/// input order — the fault-aware serving path.
///
/// Where [`multiply_batch_products`] fails the whole batch on the first
/// error, this variant isolates each job's result: under an armed fault
/// injector with a residue [`crate::check::CheckPolicy`], one corrupted
/// lane surfaces as that job's [`PimError::CorruptResult`] while its
/// batch-mates still return their (verified) products. The serving
/// layer retries exactly the failed jobs instead of re-running the
/// whole batch.
///
/// # Errors
///
/// [`PimError::EmptyBatch`] for a zero-job batch; per-job failures are
/// inside the vector, never an outer error.
pub fn multiply_batch_outcomes(
    acc: &CryptoPim,
    pairs: &[(Polynomial, Polynomial)],
) -> Result<Vec<Result<Polynomial>>> {
    if pairs.is_empty() {
        return Err(PimError::EmptyBatch);
    }
    if matches!(acc.check_policy(), CheckPolicy::Recompute) {
        return recompute_outcomes(acc, pairs);
    }
    // With a multi-worker fleet, pairs fan out across host threads at
    // job granularity (independent superbank slots; inner engines run
    // single-threaded to avoid nested fan-out). A single worker instead
    // takes the batch-fused engine path: one `StagePlan` walk per chunk
    // rather than one per job. Results land in input order either way.
    let workers = acc.threads().resolve().min(pairs.len());
    if workers > 1 {
        let seq = acc.clone().with_threads(Threads::Fixed(1));
        Ok(par::map_jobs(pairs, workers, |(a, b)| {
            seq.multiply_product(a, b)
        }))
    } else {
        Ok(fused_outcomes(acc, pairs))
    }
}

/// The single-worker fast path for unchecked and residue-checked
/// batches: chunks of up to [`MAX_FUSED_JOBS`] jobs run through
/// `Engine::multiply_batch_cached` — one fused pass over the pooled
/// `3·B·n` slab — with hot-operand reuse when a cache is attached
/// ([`CryptoPim::with_hot_cache`]). Residue verification stays per job,
/// so outcomes are identical to the job-at-a-time path.
///
/// Falls back to the per-job loop when operand degrees are mixed (the
/// scheduler never forms such batches; direct callers get the same
/// per-job errors as before).
fn fused_outcomes(acc: &CryptoPim, pairs: &[(Polynomial, Polynomial)]) -> Vec<Result<Polynomial>> {
    let n = acc.params().n;
    let q = acc.params().q;
    if pairs
        .iter()
        .any(|(a, b)| a.degree_bound() != n || b.degree_bound() != n)
    {
        return pairs
            .iter()
            .map(|(a, b)| acc.multiply_product(a, b))
            .collect();
    }
    let engine = acc.engine();
    let hot = acc.hot_cache();
    let armed = acc.faults_armed();
    let mut results = Vec::with_capacity(pairs.len());
    let mut out = Vec::new();
    let mut cap = Vec::new();
    for chunk in pairs.chunks(MAX_FUSED_JOBS) {
        let mut inputs = BatchScratch::checkout(n, chunk.len());
        let (fa, fb, _) = inputs.buffers();
        for (i, (a, b)) in chunk.iter().enumerate() {
            fa[i * n..(i + 1) * n].copy_from_slice(a.coeffs());
            fb[i * n..(i + 1) * n].copy_from_slice(b.coeffs());
        }
        let images: Vec<Option<Arc<Vec<u64>>>> = match hot {
            Some(h) => chunk
                .iter()
                .map(|(a, _)| h.lookup(n, q, a.coeffs()))
                .collect(),
            None => Vec::new(),
        };
        let cached: Vec<Option<&[u64]>> = if images.is_empty() {
            vec![None; chunk.len()]
        } else {
            images
                .iter()
                .map(|img| img.as_deref().map(Vec::as_slice))
                .collect()
        };
        let any_miss = hot.is_some() && cached.iter().any(Option::is_none);
        // Engine captures are only trustworthy fault-free: an armed
        // write path may have corrupted the image, and a corrupt cached
        // transform reused later would evade even the referee.
        let capture = (any_miss && !armed).then_some(&mut cap);
        let engine_start = Instant::now();
        let run = engine.multiply_batch_cached(fa, fb, &mut out, &cached, capture);
        phase::record_engine(engine_start.elapsed());
        if let Err(e) = run {
            results.extend(chunk.iter().map(|_| Err(e.clone())));
            continue;
        }
        if let (Some(h), false, true) = (hot, armed, any_miss) {
            for (i, (a, _)) in chunk.iter().enumerate() {
                if cached[i].is_none() {
                    h.insert(n, q, a.coeffs(), &cap[i * n..(i + 1) * n]);
                }
            }
        }
        for (i, (a, b)) in chunk.iter().enumerate() {
            let coeffs = out[i * n..(i + 1) * n].to_vec();
            let job = match acc.check_policy() {
                CheckPolicy::Residue { points, seed } => {
                    let compare_start = Instant::now();
                    let verdict = check::verify_product(
                        acc.mapping(),
                        a.coeffs(),
                        b.coeffs(),
                        &coeffs,
                        points,
                        seed,
                    );
                    phase::record_check(0, 0, compare_start.elapsed().as_nanos() as u64);
                    match verdict {
                        Ok(()) => Polynomial::from_canonical_coeffs(coeffs, q).map_err(Into::into),
                        Err((failed, checked)) => {
                            Err(PimError::CorruptResult(acc.fault_report(failed, checked)))
                        }
                    }
                }
                _ => Polynomial::from_canonical_coeffs(coeffs, q).map_err(Into::into),
            };
            results.push(job);
        }
    }
    results
}

/// Jobs fused into one referee pass. Twiddle-walk amortization
/// saturates after a handful of polynomials, while scratch grows as
/// `3·B·n` words — this caps the memory at a size that stays
/// cache-friendly for every paper degree.
const MAX_FUSED_JOBS: usize = 16;

/// The [`CheckPolicy::Recompute`] batch path: engine products run
/// unchecked, then the software referee re-derives whole chunks in one
/// batch-fused NTT pass (`multiply_batch_into` walks the twiddle tables
/// once per chunk instead of once per job) and compares bit for bit.
/// Per-job outcomes are identical to the job-at-a-time path: a corrupt
/// lane fails alone with [`PimError::CorruptResult`] while its
/// batch-mates return verified products.
fn recompute_outcomes(
    acc: &CryptoPim,
    pairs: &[(Polynomial, Polynomial)],
) -> Result<Vec<Result<Polynomial>>> {
    let workers = acc.threads().resolve().min(pairs.len()).max(1);
    // The engine side runs unchecked — the chunk referee is the check.
    let unchecked = acc
        .clone()
        .with_threads(Threads::Fixed(1))
        .with_check(CheckPolicy::Disabled);
    let chunk_len = pairs.len().div_ceil(workers).clamp(1, MAX_FUSED_JOBS);
    let chunks: Vec<&[(Polynomial, Polynomial)]> = pairs.chunks(chunk_len).collect();
    let outcomes: Vec<Vec<Result<Polynomial>>> = if workers > 1 && chunks.len() > 1 {
        par::map_jobs(&chunks, workers, |chunk| {
            recompute_chunk(&unchecked, acc, chunk)
        })
    } else {
        chunks
            .iter()
            .map(|chunk| recompute_chunk(&unchecked, acc, chunk))
            .collect()
    };
    Ok(outcomes.into_iter().flatten().collect())
}

/// Runs one chunk: one fused engine pass (with hot-operand splice), one
/// cache-aware fused referee pass, per-job bit-for-bit compare.
///
/// Cache soundness: engine-side captures are **never** inserted here —
/// the referee's own forward spectra (computed in host memory, outside
/// any fault path) populate the cache instead, so a faulted engine
/// image can never become the trusted copy both datapaths reuse. On a
/// hit the referee splices the content-verified cached spectrum and
/// still recomputes the full product, so a corrupt engine lane through
/// the cached path is still caught.
fn recompute_chunk(
    seq: &CryptoPim,
    acc: &CryptoPim,
    chunk: &[(Polynomial, Polynomial)],
) -> Vec<Result<Polynomial>> {
    let n = seq.params().n;
    let q = seq.params().q;
    if chunk
        .iter()
        .any(|(a, b)| a.degree_bound() != n || b.degree_bound() != n)
    {
        // Mixed degrees never come from the scheduler; direct callers
        // get the per-job errors of the one-at-a-time path.
        return chunk
            .iter()
            .map(|(a, b)| acc.multiply_product(a, b))
            .collect();
    }
    let referee = acc.referee().expect("with_check builds the referee");
    let hot = acc.hot_cache();
    let fail_all =
        |e: PimError| -> Vec<Result<Polynomial>> { chunk.iter().map(|_| Err(e.clone())).collect() };
    let images: Vec<Option<Arc<Vec<u64>>>> = match hot {
        Some(h) => chunk
            .iter()
            .map(|(a, _)| h.lookup(n, q, a.coeffs()))
            .collect(),
        None => Vec::new(),
    };
    let cached: Vec<Option<&[u64]>> = if images.is_empty() {
        vec![None; chunk.len()]
    } else {
        images
            .iter()
            .map(|img| img.as_deref().map(Vec::as_slice))
            .collect()
    };

    // Engine side: one fused pass over the chunk (`seq` runs with
    // checks disabled — the chunk referee below is the check).
    let mut eng_out = Vec::new();
    let engine_run = {
        let mut inputs = BatchScratch::checkout(n, chunk.len());
        let (ea, eb, _) = inputs.buffers();
        for (i, (a, b)) in chunk.iter().enumerate() {
            ea[i * n..(i + 1) * n].copy_from_slice(a.coeffs());
            eb[i * n..(i + 1) * n].copy_from_slice(b.coeffs());
        }
        let engine_start = Instant::now();
        let run = seq
            .engine()
            .multiply_batch_cached(ea, eb, &mut eng_out, &cached, None);
        phase::record_engine(engine_start.elapsed());
        run
    };
    if let Err(e) = engine_run {
        return fail_all(e);
    }

    // Referee side: splice cached spectra, forward-transform only the
    // miss lanes (in contiguous runs, so hits genuinely skip work).
    let mut scratch = BatchScratch::checkout(n, chunk.len());
    let (fa, fb, _) = scratch.buffers();
    let forward_start = Instant::now();
    for (i, (a, b)) in chunk.iter().enumerate() {
        fb[i * n..(i + 1) * n].copy_from_slice(b.coeffs());
        let lane = &mut fa[i * n..(i + 1) * n];
        match cached[i] {
            // The cached image is the natural-order canonical spectrum;
            // one bit-reversal permutation yields the merged layout,
            // and canonical values are valid `< 2q` lazy inputs.
            Some(image) => {
                lane.copy_from_slice(image);
                modmath::bitrev::permute_in_place(lane);
            }
            None => lane.copy_from_slice(a.coeffs()),
        }
    }
    let forward = (|| {
        let mut i = 0;
        while i < chunk.len() {
            if cached[i].is_some() {
                i += 1;
                continue;
            }
            let start = i;
            while i < chunk.len() && cached[i].is_none() {
                i += 1;
            }
            referee.forward_batch(&mut fa[start * n..i * n])?;
        }
        referee.forward_batch(fb)
    })();
    if let Err(e) = forward {
        return fail_all(e.into());
    }
    let forward_ns = forward_start.elapsed().as_nanos() as u64;
    if let Some(h) = hot {
        // Populate the cache from the referee's own spectra — trusted
        // even under armed faults — converted to the engine image form
        // (bit-reversal back to natural order, normalized canonical).
        let mut image = vec![0u64; n];
        for (i, (a, _)) in chunk.iter().enumerate() {
            if cached[i].is_some() {
                continue;
            }
            image.copy_from_slice(&fa[i * n..(i + 1) * n]);
            modmath::bitrev::permute_in_place(&mut image);
            for v in image.iter_mut() {
                *v -= q * u64::from(*v >= q);
            }
            h.insert(n, q, a.coeffs(), &image);
        }
    }
    let pointwise_start = Instant::now();
    if let Err(e) = referee.pointwise_batch(fa, fb) {
        return fail_all(e.into());
    }
    let pointwise_ns = pointwise_start.elapsed().as_nanos() as u64;
    let inverse_start = Instant::now();
    if let Err(e) = referee.inverse_batch(fa) {
        return fail_all(e.into());
    }
    let transform_ns = forward_ns + inverse_start.elapsed().as_nanos() as u64;
    let compare_start = Instant::now();
    let results = chunk
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let got = &eng_out[i * n..(i + 1) * n];
            let want = &fa[i * n..(i + 1) * n];
            if got == want {
                Polynomial::from_canonical_coeffs(got.to_vec(), q).map_err(Into::into)
            } else {
                let failed = got.iter().zip(want).filter(|(g, w)| g != w).count();
                Err(PimError::CorruptResult(
                    acc.fault_report(failed as u32, n as u32),
                ))
            }
        })
        .collect();
    phase::record_check(
        transform_ns,
        pointwise_ns,
        compare_start.elapsed().as_nanos() as u64,
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use ntt::negacyclic::{NttMultiplier, PolyMultiplier};

    fn pairs(n: usize, q: u64, count: usize) -> Vec<(Polynomial, Polynomial)> {
        (0..count)
            .map(|k| {
                let a = Polynomial::from_coeffs(
                    (0..n as u64).map(|i| (i * 3 + k as u64) % q).collect(),
                    q,
                )
                .unwrap();
                let b = Polynomial::from_coeffs(
                    (0..n as u64)
                        .map(|i| (i * 7 + 2 * k as u64 + 1) % q)
                        .collect(),
                    q,
                )
                .unwrap();
                (a, b)
            })
            .collect()
    }

    #[test]
    fn batch_products_match_reference() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let sw = NttMultiplier::new(&p).unwrap();
        let batch = pairs(256, p.q, 5);
        let report = multiply_batch(&acc, &batch).unwrap();
        assert_eq!(report.products.len(), 5);
        for (i, (a, b)) in batch.iter().enumerate() {
            assert_eq!(report.products[i], sw.multiply(a, b).unwrap(), "pair {i}");
        }
    }

    #[test]
    fn packing_boosts_small_degree_batches() {
        // 64 packed lanes at n = 512: a 256-pair batch needs only four
        // pipeline beats per lane, beating even the *steady-state*
        // single-lane throughput severalfold (and a single-lane burst by
        // far more, since that would also pay fill once per 256 jobs).
        let p = ParamSet::for_degree(512).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let single_steady = acc.report().unwrap().pipelined.throughput;
        let report = multiply_batch(&acc, &pairs(512, p.q, 256)).unwrap();
        assert_eq!(report.packed_lanes, 64);
        assert!(
            report.effective_throughput > 5.0 * single_steady,
            "packed {} vs single-lane steady {}",
            report.effective_throughput,
            single_steady
        );
    }

    #[test]
    fn large_degree_has_one_lane() {
        let p = ParamSet::for_degree(32768).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let report = multiply_batch(&acc, &pairs(32768, p.q, 2)).unwrap();
        assert_eq!(report.packed_lanes, 1);
        assert_eq!(report.products.len(), 2);
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = pairs(256, p.q, 9);
        let seq = multiply_batch(
            &CryptoPim::new(&p).unwrap().with_threads(Threads::Fixed(1)),
            &batch,
        )
        .unwrap();
        for workers in [2usize, 4, 8] {
            let par = multiply_batch(
                &CryptoPim::new(&p)
                    .unwrap()
                    .with_threads(Threads::Fixed(workers)),
                &batch,
            )
            .unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn empty_batch_errors() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        assert!(matches!(
            multiply_batch(&acc, &[]),
            Err(PimError::EmptyBatch)
        ));
        assert!(matches!(
            multiply_batch_products(&acc, &[]),
            Err(PimError::EmptyBatch)
        ));
    }

    #[test]
    fn products_only_path_matches_full_report() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let batch = pairs(256, p.q, 7);
        let report = multiply_batch(&acc, &batch).unwrap();
        let products = multiply_batch_products(&acc, &batch).unwrap();
        assert_eq!(products, report.products);
    }

    #[test]
    fn recompute_batch_fused_referee_matches_unchecked_products() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = pairs(256, p.q, 9);
        let want = multiply_batch_products(&CryptoPim::new(&p).unwrap(), &batch).unwrap();
        for workers in [1usize, 2, 4] {
            let acc = CryptoPim::new(&p)
                .unwrap()
                .with_threads(Threads::Fixed(workers))
                .with_check(CheckPolicy::Recompute);
            let got: Vec<Polynomial> = multiply_batch_outcomes(&acc, &batch)
                .unwrap()
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    /// Corrupts pointwise-block row-0 stores during exactly one multiply
    /// (`begin_op` counts ops), so one batch lane goes bad.
    #[derive(Debug)]
    struct OneOpBitPath {
        block: u32,
        target_op: u32,
        op: std::sync::atomic::AtomicU32,
    }

    impl pim::fault::WritePath for OneOpBitPath {
        fn armed(&self) -> bool {
            true
        }
        fn begin_op(&self) {
            self.op.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
        fn store(&self, block: u32, row: u32, value: u64) -> u64 {
            let current = self.op.load(std::sync::atomic::Ordering::SeqCst);
            if current == self.target_op + 1 && block == self.block && row == 0 {
                value | (1 << 15)
            } else {
                value
            }
        }
        fn bank(&self) -> u32 {
            2
        }
        fn suspect_block(&self) -> Option<u32> {
            Some(self.block)
        }
    }

    #[test]
    fn recompute_batch_isolates_the_corrupt_lane() {
        use std::sync::Arc;
        let p = ParamSet::for_degree(256).unwrap();
        let batch = pairs(256, p.q, 5);
        let clean = multiply_batch_products(&CryptoPim::new(&p).unwrap(), &batch).unwrap();
        // Third job corrupted; q = 7681 < 2^13 so bit 15 always flips.
        let path = OneOpBitPath {
            block: pim::fault::layout::pointwise(8),
            target_op: 2,
            op: std::sync::atomic::AtomicU32::new(0),
        };
        let acc = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_write_path(Some(Arc::new(path)))
            .with_check(CheckPolicy::Recompute);
        let outcomes = multiply_batch_outcomes(&acc, &batch).unwrap();
        assert_eq!(outcomes.len(), 5);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                match outcome {
                    Err(PimError::CorruptResult(report)) => {
                        assert_eq!(report.bank, 2);
                        assert!(report.failed_points >= 1);
                    }
                    other => panic!("lane 2 should fail, got {other:?}"),
                }
            } else {
                assert_eq!(outcome.as_ref().unwrap(), &clean[i], "lane {i}");
            }
        }
    }

    /// Jobs sharing one hot `a` operand (the protocol key-reuse shape).
    fn hot_pairs(n: usize, q: u64, count: usize) -> Vec<(Polynomial, Polynomial)> {
        let base = pairs(n, q, count);
        let a0 = base[0].0.clone();
        base.into_iter().map(|(_, b)| (a0.clone(), b)).collect()
    }

    #[test]
    fn hot_cache_batch_is_bit_identical_and_hits() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = hot_pairs(256, p.q, 5);
        let want = multiply_batch_products(
            &CryptoPim::new(&p).unwrap().with_threads(Threads::Fixed(1)),
            &batch,
        )
        .unwrap();
        let hot = Arc::new(crate::hotcache::HotCache::new(8));
        let acc = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_hot_cache(Some(Arc::clone(&hot)));
        // First pass: all lanes of the chunk are looked up before the
        // engine runs, so they miss together and the key is inserted.
        assert_eq!(multiply_batch_products(&acc, &batch).unwrap(), want);
        assert_eq!(hot.hits(), 0);
        assert_eq!(hot.misses(), 5);
        assert_eq!(hot.len(), 1);
        // Second pass: every lane hits, products stay bit-identical.
        assert_eq!(multiply_batch_products(&acc, &batch).unwrap(), want);
        assert_eq!(hot.hits(), 5);
    }

    #[test]
    fn hot_cache_recompute_batch_is_bit_identical_and_hits() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = hot_pairs(256, p.q, 5);
        let want = multiply_batch_products(
            &CryptoPim::new(&p).unwrap().with_threads(Threads::Fixed(1)),
            &batch,
        )
        .unwrap();
        let hot = Arc::new(crate::hotcache::HotCache::new(8));
        let acc = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_check(CheckPolicy::Recompute)
            .with_hot_cache(Some(Arc::clone(&hot)));
        assert_eq!(multiply_batch_products(&acc, &batch).unwrap(), want);
        assert_eq!(hot.len(), 1, "referee spectra populate the cache");
        assert_eq!(multiply_batch_products(&acc, &batch).unwrap(), want);
        assert_eq!(hot.hits(), 5);
    }

    #[test]
    fn recompute_catches_corrupt_lane_through_cached_path() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = hot_pairs(256, p.q, 5);
        let hot = Arc::new(crate::hotcache::HotCache::new(8));
        // Prime the cache through a clean recompute run.
        let clean_acc = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_check(CheckPolicy::Recompute)
            .with_hot_cache(Some(Arc::clone(&hot)));
        let clean: Vec<Polynomial> = multiply_batch_outcomes(&clean_acc, &batch)
            .unwrap()
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert!(!hot.is_empty());
        // Third op corrupted; every lane now takes the cached-hit engine
        // path, whose pointwise stores still route through the faulty
        // write path — the referee must reject exactly lane 2.
        let path = OneOpBitPath {
            block: pim::fault::layout::pointwise(8),
            target_op: 2,
            op: std::sync::atomic::AtomicU32::new(0),
        };
        let armed = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_write_path(Some(Arc::new(path)))
            .with_check(CheckPolicy::Recompute)
            .with_hot_cache(Some(Arc::clone(&hot)));
        let before_hits = hot.hits();
        let outcomes = multiply_batch_outcomes(&armed, &batch).unwrap();
        assert!(
            hot.hits() > before_hits,
            "armed run must exercise the cached path"
        );
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                match outcome {
                    Err(PimError::CorruptResult(report)) => {
                        assert_eq!(report.bank, 2);
                        assert!(report.failed_points >= 1);
                    }
                    other => panic!("cached lane 2 should fail, got {other:?}"),
                }
            } else {
                assert_eq!(outcome.as_ref().unwrap(), &clean[i], "lane {i}");
            }
        }
    }

    #[test]
    fn armed_fused_batch_never_inserts_engine_captures() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = hot_pairs(256, p.q, 3);
        let hot = Arc::new(crate::hotcache::HotCache::new(8));
        // Unchecked armed run: the corrupted engine image must not
        // become a cache entry (it would poison every later hit).
        let path = OneOpBitPath {
            block: pim::fault::layout::pointwise(8),
            target_op: 0,
            op: std::sync::atomic::AtomicU32::new(0),
        };
        let armed = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_write_path(Some(Arc::new(path)))
            .with_hot_cache(Some(Arc::clone(&hot)));
        multiply_batch_products(&armed, &batch).unwrap();
        assert!(hot.is_empty(), "armed captures must never be inserted");
    }

    #[test]
    fn recompute_batch_records_phase_split() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_check(CheckPolicy::Recompute);
        let before = phase::snapshot();
        multiply_batch_outcomes(&acc, &pairs(256, p.q, 4)).unwrap();
        let delta = phase::snapshot().since(&before);
        assert!(delta.engine_ns > 0, "engine phase must be recorded");
        assert!(
            delta.check_transform_ns > 0,
            "transform phase must be recorded"
        );
        assert!(
            delta.check_pointwise_ns > 0,
            "pointwise phase must be recorded"
        );
        assert!(delta.check_compare_ns > 0, "compare phase must be recorded");
    }

    #[test]
    fn makespan_grows_sublinearly_within_one_fill() {
        // Doubling the batch within the packed capacity costs far less
        // than double the makespan (pipeline streaming).
        let p = ParamSet::for_degree(512).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let small = multiply_batch(&acc, &pairs(512, p.q, 8)).unwrap();
        let large = multiply_batch(&acc, &pairs(512, p.q, 64)).unwrap();
        assert!(large.makespan_us < small.makespan_us * 1.01);
    }

    /// Seeded hot batch (every job shares its `a`), batch width `count`.
    fn seeded_hot_pairs(
        n: usize,
        q: u64,
        count: usize,
        seed: u64,
    ) -> Vec<(Polynomial, Polynomial)> {
        let mut state = seed | 1;
        let mut draw = || -> Vec<u64> {
            (0..n)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 11) % q
                })
                .collect()
        };
        let a = Polynomial::from_coeffs(draw(), q).unwrap();
        (0..count)
            .map(|_| (a.clone(), Polynomial::from_coeffs(draw(), q).unwrap()))
            .collect()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(8))]

        /// Cache-hit and cache-miss serving must be bit-identical even
        /// under an armed fault plan: a primed (clean) cache entry never
        /// masks a corrupt result — the referee still isolates exactly
        /// the faulted lane, and every other lane matches the fault-free
        /// run whether its forward transform was cached or not.
        #[test]
        fn prop_cached_path_never_masks_faults(
            batch in 2usize..=6,
            target in 0usize..6,
            seed in 0u64..u64::MAX,
        ) {
            let target = target % batch;
            let p = ParamSet::for_degree(256).unwrap();
            let jobs = seeded_hot_pairs(256, p.q, batch, seed);
            let clean = multiply_batch_products(
                &CryptoPim::new(&p).unwrap().with_threads(Threads::Fixed(1)),
                &jobs,
            )
            .unwrap();
            let hot = Arc::new(crate::hotcache::HotCache::new(4));
            // Prime the cache from a clean recompute pass (referee
            // spectra), then serve the same batch with one op faulted.
            let prime = CryptoPim::new(&p)
                .unwrap()
                .with_threads(Threads::Fixed(1))
                .with_check(CheckPolicy::Recompute)
                .with_hot_cache(Some(Arc::clone(&hot)));
            multiply_batch_products(&prime, &jobs).unwrap();
            proptest::prop_assert!(!hot.is_empty());
            let path = OneOpBitPath {
                block: pim::fault::layout::pointwise(8),
                target_op: target as u32,
                op: std::sync::atomic::AtomicU32::new(0),
            };
            let armed = CryptoPim::new(&p)
                .unwrap()
                .with_threads(Threads::Fixed(1))
                .with_write_path(Some(Arc::new(path)))
                .with_check(CheckPolicy::Recompute)
                .with_hot_cache(Some(Arc::clone(&hot)));
            let before_hits = hot.hits();
            let outcomes = multiply_batch_outcomes(&armed, &jobs).unwrap();
            proptest::prop_assert!(hot.hits() > before_hits, "cached path exercised");
            for (i, outcome) in outcomes.iter().enumerate() {
                if i == target {
                    proptest::prop_assert!(
                        matches!(outcome, Err(PimError::CorruptResult(_))),
                        "faulted lane {} must be rejected, got {:?}",
                        i,
                        outcome
                    );
                } else {
                    proptest::prop_assert_eq!(
                        outcome.as_ref().unwrap(),
                        &clean[i],
                        "lane {} must match the fault-free product",
                        i
                    );
                }
            }
        }
    }
}

//! Batched multiplication: the user-facing API over superbank packing
//! and pipeline streaming (§III-D).
//!
//! A 32k-provisioned chip processing degree-`n < 32k` polynomials has
//! idle banks; the architecture packs `32k/n` independent
//! multiplications side by side, and the pipeline streams jobs
//! back-to-back. [`multiply_batch`] exposes both: it computes every
//! product functionally and reports the batch's latency and effective
//! throughput from the occupancy simulation.
//!
//! Jobs fan out over the persistent worker pool (`pim::par`); each
//! worker's inner engine runs sequentially and reuses that worker's
//! thread-local scratch slab, so a long batch settles into the same
//! zero-allocation steady state as a single-engine loop.

use crate::accelerator::CryptoPim;
use crate::arch::ArchConfig;
use crate::check::CheckPolicy;
use crate::phase;
use crate::schedule::simulate_burst;
use crate::scratch::BatchScratch;
use crate::Result;
use ntt::poly::Polynomial;
use pim::par::{self, Threads};
use pim::{PimError, CYCLE_TIME_NS};
use std::time::Instant;

/// Outcome of a batched run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The products, in input order.
    pub products: Vec<Polynomial>,
    /// Wall-clock makespan of the batch on the hardware, µs.
    pub makespan_us: f64,
    /// Effective throughput of this batch (multiplications/s),
    /// including pipeline fill and packing.
    pub effective_throughput: f64,
    /// Independent multiplications running side by side.
    pub packed_lanes: usize,
}

/// Multiplies a batch of polynomial pairs on the accelerator.
///
/// Functionally every pair goes through the verified engine; timing
/// comes from the occupancy model — `⌈pairs / lanes⌉` pipeline beats
/// across `lanes` packed superbank slices.
///
/// # Errors
///
/// Propagates per-pair execution failures; [`PimError::EmptyBatch`]
/// when the batch holds zero jobs.
pub fn multiply_batch(acc: &CryptoPim, pairs: &[(Polynomial, Polynomial)]) -> Result<BatchReport> {
    let products = multiply_batch_products(acc, pairs)?;
    let arch = ArchConfig::for_degree(acc.params().n, acc.model(), acc.organization())?;
    let lanes = arch.parallel_multiplications.max(1);
    let jobs_per_lane = pairs.len().div_ceil(lanes);
    let burst = simulate_burst(acc.model(), acc.organization(), jobs_per_lane);
    let makespan_us = burst.makespan_cycles as f64 * CYCLE_TIME_NS / 1000.0 * arch.passes as f64;
    Ok(BatchReport {
        products,
        makespan_us,
        effective_throughput: pairs.len() as f64 / (makespan_us / 1e6),
        packed_lanes: lanes,
    })
}

/// Multiplies a batch of pairs, returning only the products in input
/// order — the serving hot path.
///
/// The analytic burst timing of [`multiply_batch`] (a discrete-event
/// walk of the pipeline occupancy model, tens of µs per call) is
/// skipped: a live service measures batch wall-clock itself, and under
/// low occupancy that fixed cost would be paid for every one- or
/// two-job batch.
///
/// # Errors
///
/// Same as [`multiply_batch`].
pub fn multiply_batch_products(
    acc: &CryptoPim,
    pairs: &[(Polynomial, Polynomial)],
) -> Result<Vec<Polynomial>> {
    multiply_batch_outcomes(acc, pairs)?.into_iter().collect()
}

/// Multiplies a batch of pairs, returning a **per-job** outcome in
/// input order — the fault-aware serving path.
///
/// Where [`multiply_batch_products`] fails the whole batch on the first
/// error, this variant isolates each job's result: under an armed fault
/// injector with a residue [`crate::check::CheckPolicy`], one corrupted
/// lane surfaces as that job's [`PimError::CorruptResult`] while its
/// batch-mates still return their (verified) products. The serving
/// layer retries exactly the failed jobs instead of re-running the
/// whole batch.
///
/// # Errors
///
/// [`PimError::EmptyBatch`] for a zero-job batch; per-job failures are
/// inside the vector, never an outer error.
pub fn multiply_batch_outcomes(
    acc: &CryptoPim,
    pairs: &[(Polynomial, Polynomial)],
) -> Result<Vec<Result<Polynomial>>> {
    if pairs.is_empty() {
        return Err(PimError::EmptyBatch);
    }
    if matches!(acc.check_policy(), CheckPolicy::Recompute) {
        return recompute_outcomes(acc, pairs);
    }
    // Pairs are independent superbank slots: fan them out across host
    // threads at job granularity. Inner engines run single-threaded to
    // avoid nested fan-out; results land in input order either way.
    // Per pair, only the product is computed (`multiply_product`); the
    // per-job report and trace of the one-at-a-time API are skipped —
    // a batch prices its timing once at batch level, not per job.
    let workers = acc.threads().resolve().min(pairs.len());
    if workers > 1 {
        let seq = acc.clone().with_threads(Threads::Fixed(1));
        Ok(par::map_jobs(pairs, workers, |(a, b)| {
            seq.multiply_product(a, b)
        }))
    } else {
        Ok(pairs
            .iter()
            .map(|(a, b)| acc.multiply_product(a, b))
            .collect())
    }
}

/// Jobs fused into one referee pass. Twiddle-walk amortization
/// saturates after a handful of polynomials, while scratch grows as
/// `3·B·n` words — this caps the memory at a size that stays
/// cache-friendly for every paper degree.
const MAX_FUSED_JOBS: usize = 16;

/// The [`CheckPolicy::Recompute`] batch path: engine products run
/// unchecked, then the software referee re-derives whole chunks in one
/// batch-fused NTT pass (`multiply_batch_into` walks the twiddle tables
/// once per chunk instead of once per job) and compares bit for bit.
/// Per-job outcomes are identical to the job-at-a-time path: a corrupt
/// lane fails alone with [`PimError::CorruptResult`] while its
/// batch-mates return verified products.
fn recompute_outcomes(
    acc: &CryptoPim,
    pairs: &[(Polynomial, Polynomial)],
) -> Result<Vec<Result<Polynomial>>> {
    let workers = acc.threads().resolve().min(pairs.len()).max(1);
    // The engine side runs unchecked — the chunk referee is the check.
    let unchecked = acc
        .clone()
        .with_threads(Threads::Fixed(1))
        .with_check(CheckPolicy::Disabled);
    let chunk_len = pairs.len().div_ceil(workers).clamp(1, MAX_FUSED_JOBS);
    let chunks: Vec<&[(Polynomial, Polynomial)]> = pairs.chunks(chunk_len).collect();
    let outcomes: Vec<Vec<Result<Polynomial>>> = if workers > 1 && chunks.len() > 1 {
        par::map_jobs(&chunks, workers, |chunk| {
            recompute_chunk(&unchecked, acc, chunk)
        })
    } else {
        chunks
            .iter()
            .map(|chunk| recompute_chunk(&unchecked, acc, chunk))
            .collect()
    };
    Ok(outcomes.into_iter().flatten().collect())
}

/// Runs one chunk: unchecked engine products, one fused referee pass,
/// per-job bit-for-bit compare.
fn recompute_chunk(
    seq: &CryptoPim,
    acc: &CryptoPim,
    chunk: &[(Polynomial, Polynomial)],
) -> Vec<Result<Polynomial>> {
    let n = seq.params().n;
    let referee = acc.referee().expect("with_check builds the referee");
    // `seq` runs with checks disabled, so this is pure engine time
    // (recorded per call inside `multiply_product`).
    let engine: Vec<Result<Polynomial>> = chunk
        .iter()
        .map(|(a, b)| seq.multiply_product(a, b))
        .collect();
    let mut scratch = BatchScratch::checkout(n, chunk.len());
    let (fa, fb, out) = scratch.buffers();
    for (i, (a, b)) in chunk.iter().enumerate() {
        fa[i * n..(i + 1) * n].copy_from_slice(a.coeffs());
        fb[i * n..(i + 1) * n].copy_from_slice(b.coeffs());
    }
    let timing = match referee.multiply_batch_into(fa, fb, out) {
        Ok(t) => t,
        Err(e) => return engine.into_iter().map(|_| Err(e.clone().into())).collect(),
    };
    let compare_start = Instant::now();
    let results = engine
        .into_iter()
        .enumerate()
        .map(|(i, job)| {
            job.and_then(|product| {
                let want = &out[i * n..(i + 1) * n];
                if product.coeffs() == want {
                    Ok(product)
                } else {
                    let failed = product
                        .coeffs()
                        .iter()
                        .zip(want)
                        .filter(|(got, expect)| got != expect)
                        .count();
                    Err(PimError::CorruptResult(
                        acc.fault_report(failed as u32, n as u32),
                    ))
                }
            })
        })
        .collect();
    phase::record_check(
        timing.transform_ns,
        timing.pointwise_ns,
        compare_start.elapsed().as_nanos() as u64,
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use ntt::negacyclic::{NttMultiplier, PolyMultiplier};

    fn pairs(n: usize, q: u64, count: usize) -> Vec<(Polynomial, Polynomial)> {
        (0..count)
            .map(|k| {
                let a = Polynomial::from_coeffs(
                    (0..n as u64).map(|i| (i * 3 + k as u64) % q).collect(),
                    q,
                )
                .unwrap();
                let b = Polynomial::from_coeffs(
                    (0..n as u64)
                        .map(|i| (i * 7 + 2 * k as u64 + 1) % q)
                        .collect(),
                    q,
                )
                .unwrap();
                (a, b)
            })
            .collect()
    }

    #[test]
    fn batch_products_match_reference() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let sw = NttMultiplier::new(&p).unwrap();
        let batch = pairs(256, p.q, 5);
        let report = multiply_batch(&acc, &batch).unwrap();
        assert_eq!(report.products.len(), 5);
        for (i, (a, b)) in batch.iter().enumerate() {
            assert_eq!(report.products[i], sw.multiply(a, b).unwrap(), "pair {i}");
        }
    }

    #[test]
    fn packing_boosts_small_degree_batches() {
        // 64 packed lanes at n = 512: a 256-pair batch needs only four
        // pipeline beats per lane, beating even the *steady-state*
        // single-lane throughput severalfold (and a single-lane burst by
        // far more, since that would also pay fill once per 256 jobs).
        let p = ParamSet::for_degree(512).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let single_steady = acc.report().unwrap().pipelined.throughput;
        let report = multiply_batch(&acc, &pairs(512, p.q, 256)).unwrap();
        assert_eq!(report.packed_lanes, 64);
        assert!(
            report.effective_throughput > 5.0 * single_steady,
            "packed {} vs single-lane steady {}",
            report.effective_throughput,
            single_steady
        );
    }

    #[test]
    fn large_degree_has_one_lane() {
        let p = ParamSet::for_degree(32768).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let report = multiply_batch(&acc, &pairs(32768, p.q, 2)).unwrap();
        assert_eq!(report.packed_lanes, 1);
        assert_eq!(report.products.len(), 2);
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = pairs(256, p.q, 9);
        let seq = multiply_batch(
            &CryptoPim::new(&p).unwrap().with_threads(Threads::Fixed(1)),
            &batch,
        )
        .unwrap();
        for workers in [2usize, 4, 8] {
            let par = multiply_batch(
                &CryptoPim::new(&p)
                    .unwrap()
                    .with_threads(Threads::Fixed(workers)),
                &batch,
            )
            .unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn empty_batch_errors() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        assert!(matches!(
            multiply_batch(&acc, &[]),
            Err(PimError::EmptyBatch)
        ));
        assert!(matches!(
            multiply_batch_products(&acc, &[]),
            Err(PimError::EmptyBatch)
        ));
    }

    #[test]
    fn products_only_path_matches_full_report() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let batch = pairs(256, p.q, 7);
        let report = multiply_batch(&acc, &batch).unwrap();
        let products = multiply_batch_products(&acc, &batch).unwrap();
        assert_eq!(products, report.products);
    }

    #[test]
    fn recompute_batch_fused_referee_matches_unchecked_products() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = pairs(256, p.q, 9);
        let want = multiply_batch_products(&CryptoPim::new(&p).unwrap(), &batch).unwrap();
        for workers in [1usize, 2, 4] {
            let acc = CryptoPim::new(&p)
                .unwrap()
                .with_threads(Threads::Fixed(workers))
                .with_check(CheckPolicy::Recompute);
            let got: Vec<Polynomial> = multiply_batch_outcomes(&acc, &batch)
                .unwrap()
                .into_iter()
                .map(|r| r.unwrap())
                .collect();
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    /// Corrupts pointwise-block row-0 stores during exactly one multiply
    /// (`begin_op` counts ops), so one batch lane goes bad.
    #[derive(Debug)]
    struct OneOpBitPath {
        block: u32,
        target_op: u32,
        op: std::sync::atomic::AtomicU32,
    }

    impl pim::fault::WritePath for OneOpBitPath {
        fn armed(&self) -> bool {
            true
        }
        fn begin_op(&self) {
            self.op.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
        fn store(&self, block: u32, row: u32, value: u64) -> u64 {
            let current = self.op.load(std::sync::atomic::Ordering::SeqCst);
            if current == self.target_op + 1 && block == self.block && row == 0 {
                value | (1 << 15)
            } else {
                value
            }
        }
        fn bank(&self) -> u32 {
            2
        }
        fn suspect_block(&self) -> Option<u32> {
            Some(self.block)
        }
    }

    #[test]
    fn recompute_batch_isolates_the_corrupt_lane() {
        use std::sync::Arc;
        let p = ParamSet::for_degree(256).unwrap();
        let batch = pairs(256, p.q, 5);
        let clean = multiply_batch_products(&CryptoPim::new(&p).unwrap(), &batch).unwrap();
        // Third job corrupted; q = 7681 < 2^13 so bit 15 always flips.
        let path = OneOpBitPath {
            block: pim::fault::layout::pointwise(8),
            target_op: 2,
            op: std::sync::atomic::AtomicU32::new(0),
        };
        let acc = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_write_path(Some(Arc::new(path)))
            .with_check(CheckPolicy::Recompute);
        let outcomes = multiply_batch_outcomes(&acc, &batch).unwrap();
        assert_eq!(outcomes.len(), 5);
        for (i, outcome) in outcomes.iter().enumerate() {
            if i == 2 {
                match outcome {
                    Err(PimError::CorruptResult(report)) => {
                        assert_eq!(report.bank, 2);
                        assert!(report.failed_points >= 1);
                    }
                    other => panic!("lane 2 should fail, got {other:?}"),
                }
            } else {
                assert_eq!(outcome.as_ref().unwrap(), &clean[i], "lane {i}");
            }
        }
    }

    #[test]
    fn recompute_batch_records_phase_split() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p)
            .unwrap()
            .with_threads(Threads::Fixed(1))
            .with_check(CheckPolicy::Recompute);
        let before = phase::snapshot();
        multiply_batch_outcomes(&acc, &pairs(256, p.q, 4)).unwrap();
        let delta = phase::snapshot().since(&before);
        assert!(delta.engine_ns > 0, "engine phase must be recorded");
        assert!(
            delta.check_transform_ns > 0,
            "transform phase must be recorded"
        );
        assert!(
            delta.check_pointwise_ns > 0,
            "pointwise phase must be recorded"
        );
        assert!(delta.check_compare_ns > 0, "compare phase must be recorded");
    }

    #[test]
    fn makespan_grows_sublinearly_within_one_fill() {
        // Doubling the batch within the packed capacity costs far less
        // than double the makespan (pipeline streaming).
        let p = ParamSet::for_degree(512).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let small = multiply_batch(&acc, &pairs(512, p.q, 8)).unwrap();
        let large = multiply_batch(&acc, &pairs(512, p.q, 64)).unwrap();
        assert!(large.makespan_us < small.makespan_us * 1.01);
    }
}

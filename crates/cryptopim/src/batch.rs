//! Batched multiplication: the user-facing API over superbank packing
//! and pipeline streaming (§III-D).
//!
//! A 32k-provisioned chip processing degree-`n < 32k` polynomials has
//! idle banks; the architecture packs `32k/n` independent
//! multiplications side by side, and the pipeline streams jobs
//! back-to-back. [`multiply_batch`] exposes both: it computes every
//! product functionally and reports the batch's latency and effective
//! throughput from the occupancy simulation.
//!
//! Jobs fan out over the persistent worker pool (`pim::par`); each
//! worker's inner engine runs sequentially and reuses that worker's
//! thread-local scratch slab, so a long batch settles into the same
//! zero-allocation steady state as a single-engine loop.

use crate::accelerator::CryptoPim;
use crate::arch::ArchConfig;
use crate::schedule::simulate_burst;
use crate::Result;
use ntt::poly::Polynomial;
use pim::par::{self, Threads};
use pim::{PimError, CYCLE_TIME_NS};

/// Outcome of a batched run.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// The products, in input order.
    pub products: Vec<Polynomial>,
    /// Wall-clock makespan of the batch on the hardware, µs.
    pub makespan_us: f64,
    /// Effective throughput of this batch (multiplications/s),
    /// including pipeline fill and packing.
    pub effective_throughput: f64,
    /// Independent multiplications running side by side.
    pub packed_lanes: usize,
}

/// Multiplies a batch of polynomial pairs on the accelerator.
///
/// Functionally every pair goes through the verified engine; timing
/// comes from the occupancy model — `⌈pairs / lanes⌉` pipeline beats
/// across `lanes` packed superbank slices.
///
/// # Errors
///
/// Propagates per-pair execution failures; [`PimError::EmptyBatch`]
/// when the batch holds zero jobs.
pub fn multiply_batch(acc: &CryptoPim, pairs: &[(Polynomial, Polynomial)]) -> Result<BatchReport> {
    let products = multiply_batch_products(acc, pairs)?;
    let arch = ArchConfig::for_degree(acc.params().n, acc.model(), acc.organization())?;
    let lanes = arch.parallel_multiplications.max(1);
    let jobs_per_lane = pairs.len().div_ceil(lanes);
    let burst = simulate_burst(acc.model(), acc.organization(), jobs_per_lane);
    let makespan_us = burst.makespan_cycles as f64 * CYCLE_TIME_NS / 1000.0 * arch.passes as f64;
    Ok(BatchReport {
        products,
        makespan_us,
        effective_throughput: pairs.len() as f64 / (makespan_us / 1e6),
        packed_lanes: lanes,
    })
}

/// Multiplies a batch of pairs, returning only the products in input
/// order — the serving hot path.
///
/// The analytic burst timing of [`multiply_batch`] (a discrete-event
/// walk of the pipeline occupancy model, tens of µs per call) is
/// skipped: a live service measures batch wall-clock itself, and under
/// low occupancy that fixed cost would be paid for every one- or
/// two-job batch.
///
/// # Errors
///
/// Same as [`multiply_batch`].
pub fn multiply_batch_products(
    acc: &CryptoPim,
    pairs: &[(Polynomial, Polynomial)],
) -> Result<Vec<Polynomial>> {
    multiply_batch_outcomes(acc, pairs)?.into_iter().collect()
}

/// Multiplies a batch of pairs, returning a **per-job** outcome in
/// input order — the fault-aware serving path.
///
/// Where [`multiply_batch_products`] fails the whole batch on the first
/// error, this variant isolates each job's result: under an armed fault
/// injector with a residue [`crate::check::CheckPolicy`], one corrupted
/// lane surfaces as that job's [`PimError::CorruptResult`] while its
/// batch-mates still return their (verified) products. The serving
/// layer retries exactly the failed jobs instead of re-running the
/// whole batch.
///
/// # Errors
///
/// [`PimError::EmptyBatch`] for a zero-job batch; per-job failures are
/// inside the vector, never an outer error.
pub fn multiply_batch_outcomes(
    acc: &CryptoPim,
    pairs: &[(Polynomial, Polynomial)],
) -> Result<Vec<Result<Polynomial>>> {
    if pairs.is_empty() {
        return Err(PimError::EmptyBatch);
    }
    // Pairs are independent superbank slots: fan them out across host
    // threads at job granularity. Inner engines run single-threaded to
    // avoid nested fan-out; results land in input order either way.
    // Per pair, only the product is computed (`multiply_product`); the
    // per-job report and trace of the one-at-a-time API are skipped —
    // a batch prices its timing once at batch level, not per job.
    let workers = acc.threads().resolve().min(pairs.len());
    if workers > 1 {
        let seq = acc.clone().with_threads(Threads::Fixed(1));
        Ok(par::map_jobs(pairs, workers, |(a, b)| {
            seq.multiply_product(a, b)
        }))
    } else {
        Ok(pairs
            .iter()
            .map(|(a, b)| acc.multiply_product(a, b))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use ntt::negacyclic::{NttMultiplier, PolyMultiplier};

    fn pairs(n: usize, q: u64, count: usize) -> Vec<(Polynomial, Polynomial)> {
        (0..count)
            .map(|k| {
                let a = Polynomial::from_coeffs(
                    (0..n as u64).map(|i| (i * 3 + k as u64) % q).collect(),
                    q,
                )
                .unwrap();
                let b = Polynomial::from_coeffs(
                    (0..n as u64)
                        .map(|i| (i * 7 + 2 * k as u64 + 1) % q)
                        .collect(),
                    q,
                )
                .unwrap();
                (a, b)
            })
            .collect()
    }

    #[test]
    fn batch_products_match_reference() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let sw = NttMultiplier::new(&p).unwrap();
        let batch = pairs(256, p.q, 5);
        let report = multiply_batch(&acc, &batch).unwrap();
        assert_eq!(report.products.len(), 5);
        for (i, (a, b)) in batch.iter().enumerate() {
            assert_eq!(report.products[i], sw.multiply(a, b).unwrap(), "pair {i}");
        }
    }

    #[test]
    fn packing_boosts_small_degree_batches() {
        // 64 packed lanes at n = 512: a 256-pair batch needs only four
        // pipeline beats per lane, beating even the *steady-state*
        // single-lane throughput severalfold (and a single-lane burst by
        // far more, since that would also pay fill once per 256 jobs).
        let p = ParamSet::for_degree(512).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let single_steady = acc.report().unwrap().pipelined.throughput;
        let report = multiply_batch(&acc, &pairs(512, p.q, 256)).unwrap();
        assert_eq!(report.packed_lanes, 64);
        assert!(
            report.effective_throughput > 5.0 * single_steady,
            "packed {} vs single-lane steady {}",
            report.effective_throughput,
            single_steady
        );
    }

    #[test]
    fn large_degree_has_one_lane() {
        let p = ParamSet::for_degree(32768).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let report = multiply_batch(&acc, &pairs(32768, p.q, 2)).unwrap();
        assert_eq!(report.packed_lanes, 1);
        assert_eq!(report.products.len(), 2);
    }

    #[test]
    fn parallel_batch_matches_sequential_batch() {
        let p = ParamSet::for_degree(256).unwrap();
        let batch = pairs(256, p.q, 9);
        let seq = multiply_batch(
            &CryptoPim::new(&p).unwrap().with_threads(Threads::Fixed(1)),
            &batch,
        )
        .unwrap();
        for workers in [2usize, 4, 8] {
            let par = multiply_batch(
                &CryptoPim::new(&p)
                    .unwrap()
                    .with_threads(Threads::Fixed(workers)),
                &batch,
            )
            .unwrap();
            assert_eq!(par, seq, "workers = {workers}");
        }
    }

    #[test]
    fn empty_batch_errors() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        assert!(matches!(
            multiply_batch(&acc, &[]),
            Err(PimError::EmptyBatch)
        ));
        assert!(matches!(
            multiply_batch_products(&acc, &[]),
            Err(PimError::EmptyBatch)
        ));
    }

    #[test]
    fn products_only_path_matches_full_report() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let batch = pairs(256, p.q, 7);
        let report = multiply_batch(&acc, &batch).unwrap();
        let products = multiply_batch_products(&acc, &batch).unwrap();
        assert_eq!(products, report.products);
    }

    #[test]
    fn makespan_grows_sublinearly_within_one_fill() {
        // Doubling the batch within the packed capacity costs far less
        // than double the makespan (pipeline streaming).
        let p = ParamSet::for_degree(512).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let small = multiply_batch(&acc, &pairs(512, p.q, 8)).unwrap();
        let large = multiply_batch(&acc, &pairs(512, p.q, 64)).unwrap();
        assert!(large.makespan_us < small.makespan_us * 1.01);
    }
}

//! Process-wide phase timing counters for the checked serving path.
//!
//! A Recompute-checked multiply spends its time in three places: the
//! simulated engine datapath, the software-NTT referee's transforms
//! (forward ×2 + inverse), and the referee's pointwise multiply plus the
//! bit-for-bit compare. Tuning the referee (the point of the batch-fused
//! kernels) only shows up in an end-to-end benchmark if those phases can
//! be told apart, so the accelerator and batch paths accumulate
//! nanoseconds here and `serve-loadgen --json` embeds the split.
//!
//! Counters are process-wide relaxed atomics: workers on many threads
//! add to them concurrently, readers take [`snapshot`]s and difference
//! them ([`PhaseSnapshot::since`]) around the measured window. The
//! counters monotonically increase; nothing resets them behind a
//! reader's back.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

static ENGINE_NS: AtomicU64 = AtomicU64::new(0);
static CHECK_TRANSFORM_NS: AtomicU64 = AtomicU64::new(0);
static CHECK_POINTWISE_NS: AtomicU64 = AtomicU64::new(0);
static CHECK_COMPARE_NS: AtomicU64 = AtomicU64::new(0);
static RECOMBINE_NS: AtomicU64 = AtomicU64::new(0);

/// Adds one engine (simulated datapath) execution to the tally.
pub fn record_engine(elapsed: Duration) {
    ENGINE_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Adds one host-side CRT recombination (the join step of a wide
/// RNS-decomposed job) to the tally.
pub fn record_recombine(elapsed: Duration) {
    RECOMBINE_NS.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Adds one referee pass to the tally, split into its NTT phases.
pub fn record_check(transform_ns: u64, pointwise_ns: u64, compare_ns: u64) {
    CHECK_TRANSFORM_NS.fetch_add(transform_ns, Ordering::Relaxed);
    CHECK_POINTWISE_NS.fetch_add(pointwise_ns, Ordering::Relaxed);
    CHECK_COMPARE_NS.fetch_add(compare_ns, Ordering::Relaxed);
}

/// A point-in-time reading of the cumulative phase counters, ns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseSnapshot {
    /// Simulated engine datapath time.
    pub engine_ns: u64,
    /// Referee forward + inverse transform time.
    pub check_transform_ns: u64,
    /// Referee pointwise-multiply time.
    pub check_pointwise_ns: u64,
    /// Bit-for-bit (or residue-point) compare time.
    pub check_compare_ns: u64,
    /// Host-side CRT recombination time for wide (RNS-decomposed) jobs.
    pub recombine_ns: u64,
}

impl PhaseSnapshot {
    /// The phase time accumulated between `earlier` and `self`.
    pub fn since(&self, earlier: &PhaseSnapshot) -> PhaseSnapshot {
        PhaseSnapshot {
            engine_ns: self.engine_ns.saturating_sub(earlier.engine_ns),
            check_transform_ns: self
                .check_transform_ns
                .saturating_sub(earlier.check_transform_ns),
            check_pointwise_ns: self
                .check_pointwise_ns
                .saturating_sub(earlier.check_pointwise_ns),
            check_compare_ns: self
                .check_compare_ns
                .saturating_sub(earlier.check_compare_ns),
            recombine_ns: self.recombine_ns.saturating_sub(earlier.recombine_ns),
        }
    }

    /// Total checking overhead (everything but the engine), ns.
    pub fn check_total_ns(&self) -> u64 {
        self.check_transform_ns + self.check_pointwise_ns + self.check_compare_ns
    }

    /// Folds another reading (typically a [`PhaseSnapshot::since`]
    /// delta) into this one — for accumulating a split over alternating
    /// measurement windows.
    pub fn add(&mut self, other: &PhaseSnapshot) {
        self.engine_ns += other.engine_ns;
        self.check_transform_ns += other.check_transform_ns;
        self.check_pointwise_ns += other.check_pointwise_ns;
        self.check_compare_ns += other.check_compare_ns;
        self.recombine_ns += other.recombine_ns;
    }
}

/// Reads the cumulative counters.
pub fn snapshot() -> PhaseSnapshot {
    PhaseSnapshot {
        engine_ns: ENGINE_NS.load(Ordering::Relaxed),
        check_transform_ns: CHECK_TRANSFORM_NS.load(Ordering::Relaxed),
        check_pointwise_ns: CHECK_POINTWISE_NS.load(Ordering::Relaxed),
        check_compare_ns: CHECK_COMPARE_NS.load(Ordering::Relaxed),
        recombine_ns: RECOMBINE_NS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_difference() {
        let before = snapshot();
        record_engine(Duration::from_nanos(1_000));
        record_check(500, 200, 100);
        record_recombine(Duration::from_nanos(250));
        let delta = snapshot().since(&before);
        assert!(delta.engine_ns >= 1_000);
        assert!(delta.check_transform_ns >= 500);
        assert!(delta.check_pointwise_ns >= 200);
        assert!(delta.check_compare_ns >= 100);
        assert!(delta.recombine_ns >= 250);
        assert_eq!(
            delta.check_total_ns(),
            delta.check_transform_ns + delta.check_pointwise_ns + delta.check_compare_ns
        );
    }

    #[test]
    fn since_saturates_rather_than_underflows() {
        let late = snapshot();
        record_check(10, 10, 10);
        let later = snapshot();
        assert_eq!(late.since(&later), PhaseSnapshot::default());
    }
}

//! The CryptoPIM controller: a micro-coded view of Algorithm 1.
//!
//! The paper synthesizes a controller (System Verilog + Design Compiler)
//! that sequences the memory blocks. This module reproduces that control
//! plane as data: [`compile`] lowers a parameter set into a [`Program`]
//! of block-level instructions, and [`Controller::run`] executes the
//! program against the simulator. The instruction stream is what a
//! firmware engineer would inspect to port CryptoPIM to a different
//! block count or degree.
//!
//! Instructions operate on three vector registers — the contents of the
//! A-side bank chain, B-side bank chain, and the shared output chain:
//!
//! ```text
//! Scale   { reg, table }   dst ← REDC(dst ⊙ table)       (mul + REDC blocks)
//! Bitrev  { reg }          free write permutation
//! NttStage{ reg, stage, dir } one GS butterfly stage      (5 vector ops)
//! Pointwise                C ← REDC(A ⊙ B)
//! ```
//!
//! The test suite pins `Controller::run` to the [`crate::engine`]
//! executor: identical products, identical compute-cycle totals.

use crate::engine::ntt_stage;
use crate::mapping::NttMapping;
use modmath::bitrev;
use modmath::params::ParamSet;
use pim::block::{MemoryBlock, MultiplierKind};
use pim::stats::Tally;
use pim::Result;

/// A vector register: which bank chain an instruction addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reg {
    /// First input polynomial's chain.
    A,
    /// Second input polynomial's chain.
    B,
    /// Product chain.
    C,
}

/// A constant table baked into data columns at configuration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table {
    /// `φ^i · R` (A-side pre-multiply).
    PhiA,
    /// `φ^i · R²` (B-side pre-multiply; establishes Montgomery form).
    PhiB,
    /// `φ^{-i} · n⁻¹ · R` (output post-multiply).
    PhiPost,
}

/// Transform direction of an NTT stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward twiddles `ω^i`.
    Forward,
    /// Inverse twiddles `ω^{-i}`.
    Inverse,
}

/// One controller instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// `reg ← REDC(reg ⊙ table)`.
    Scale {
        /// Destination register.
        reg: Reg,
        /// Constant table operand.
        table: Table,
    },
    /// Bit-reversal write permutation (free).
    Bitrev {
        /// Register permuted.
        reg: Reg,
    },
    /// One Gentleman–Sande butterfly stage.
    NttStage {
        /// Register transformed.
        reg: Reg,
        /// Stage index (butterfly distance `2^stage`).
        stage: u32,
        /// Twiddle direction.
        dir: Direction,
    },
    /// `C ← REDC(A ⊙ B)`.
    Pointwise,
}

/// A compiled instruction stream for one parameter set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    params: ParamSet,
    instrs: Vec<Instr>,
}

impl Program {
    /// The instructions, in issue order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The parameter set this program was compiled for.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }
}

/// Lowers Algorithm 1 into the instruction stream for degree
/// `params.n`: `3·log2(n) + 7` instructions.
pub fn compile(params: &ParamSet) -> Program {
    let log_n = params.log2_n();
    let mut instrs = Vec::with_capacity(3 * log_n as usize + 7);
    instrs.push(Instr::Scale {
        reg: Reg::A,
        table: Table::PhiA,
    });
    instrs.push(Instr::Scale {
        reg: Reg::B,
        table: Table::PhiB,
    });
    instrs.push(Instr::Bitrev { reg: Reg::A });
    instrs.push(Instr::Bitrev { reg: Reg::B });
    for stage in 0..log_n {
        instrs.push(Instr::NttStage {
            reg: Reg::A,
            stage,
            dir: Direction::Forward,
        });
        instrs.push(Instr::NttStage {
            reg: Reg::B,
            stage,
            dir: Direction::Forward,
        });
    }
    instrs.push(Instr::Pointwise);
    instrs.push(Instr::Bitrev { reg: Reg::C });
    for stage in 0..log_n {
        instrs.push(Instr::NttStage {
            reg: Reg::C,
            stage,
            dir: Direction::Inverse,
        });
    }
    instrs.push(Instr::Scale {
        reg: Reg::C,
        table: Table::PhiPost,
    });
    Program {
        params: *params,
        instrs,
    }
}

/// Executes compiled programs against the PIM simulator.
#[derive(Debug, Clone)]
pub struct Controller<'m> {
    mapping: &'m NttMapping,
    multiplier: MultiplierKind,
}

/// Register file state during execution.
#[derive(Debug, Default)]
struct RegFile {
    a: Vec<u64>,
    b: Vec<u64>,
    c: Vec<u64>,
}

impl RegFile {
    fn get_mut(&mut self, reg: Reg) -> &mut Vec<u64> {
        match reg {
            Reg::A => &mut self.a,
            Reg::B => &mut self.b,
            Reg::C => &mut self.c,
        }
    }
}

impl<'m> Controller<'m> {
    /// Creates a controller over a mapping.
    pub fn new(mapping: &'m NttMapping) -> Self {
        Controller {
            mapping,
            multiplier: MultiplierKind::CryptoPim,
        }
    }

    /// Selects the multiplier microprogram.
    pub fn with_multiplier(mut self, kind: MultiplierKind) -> Self {
        self.multiplier = kind;
        self
    }

    /// Runs a compiled program on two input coefficient vectors,
    /// returning the product and the aggregate compute tally.
    ///
    /// # Errors
    ///
    /// Propagates block-level validation failures; callers must pass
    /// vectors of the compiled degree.
    pub fn run(&self, program: &Program, a: &[u64], b: &[u64]) -> Result<(Vec<u64>, Tally)> {
        let params = self.mapping.params();
        let mut regs = RegFile {
            a: a.to_vec(),
            b: b.to_vec(),
            c: Vec::new(),
        };
        let mut tally = Tally::new();

        for &instr in program.instrs() {
            match instr {
                Instr::Scale { reg, table } => {
                    let consts = match table {
                        Table::PhiA => self.mapping.phi_a(),
                        Table::PhiB => self.mapping.phi_b(),
                        Table::PhiPost => self.mapping.phi_post(),
                    };
                    let mut blk = MemoryBlock::with_rows(params.bitwidth, params.n)?;
                    let data = regs.get_mut(reg);
                    *data =
                        blk.mul_montgomery(data, consts, self.multiplier, self.mapping.reducer())?;
                    tally.absorb(&blk.tally());
                }
                Instr::Bitrev { reg } => {
                    bitrev::permute_in_place(regs.get_mut(reg));
                }
                Instr::NttStage { reg, stage, dir } => {
                    let twiddle = match dir {
                        Direction::Forward => self.mapping.twiddle_fwd(),
                        Direction::Inverse => self.mapping.twiddle_inv(),
                    };
                    let data = regs.get_mut(reg);
                    let (next, t) = ntt_stage(self.mapping, self.multiplier, data, stage, twiddle)?;
                    *data = next;
                    tally.absorb(&t);
                }
                Instr::Pointwise => {
                    let mut blk = MemoryBlock::with_rows(params.bitwidth, params.n)?;
                    regs.c = blk.mul_montgomery(
                        &regs.a,
                        &regs.b,
                        self.multiplier,
                        self.mapping.reducer(),
                    )?;
                    tally.absorb(&blk.tally());
                }
            }
        }
        Ok((regs.c, tally))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use pim::reduce::ReductionStyle;

    fn mapping(n: usize) -> NttMapping {
        let p = ParamSet::for_degree(n).unwrap();
        NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap()
    }

    fn rand_vec(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % q
            })
            .collect()
    }

    #[test]
    fn program_shape() {
        let p = ParamSet::for_degree(256).unwrap();
        let prog = compile(&p);
        assert_eq!(prog.instrs().len(), 3 * 8 + 7);
        assert_eq!(prog.params().n, 256);
        // First two instructions establish the ψ scaling.
        assert!(matches!(prog.instrs()[0], Instr::Scale { reg: Reg::A, .. }));
        assert!(matches!(prog.instrs()[1], Instr::Scale { reg: Reg::B, .. }));
        // Last instruction is the output post-scale.
        assert!(matches!(
            prog.instrs().last(),
            Some(Instr::Scale {
                reg: Reg::C,
                table: Table::PhiPost
            })
        ));
    }

    #[test]
    fn controller_matches_engine() {
        for n in [64usize, 256, 1024] {
            let m = mapping(n);
            let q = m.params().q;
            let a = rand_vec(n, q, 1);
            let b = rand_vec(n, q, 2);

            let prog = compile(m.params());
            let ctl = Controller::new(&m);
            let (via_ctl, ctl_tally) = ctl.run(&prog, &a, &b).unwrap();

            let eng = Engine::new(&m);
            let (via_eng, trace) = eng.multiply(&a, &b).unwrap();

            assert_eq!(via_ctl, via_eng, "n = {n}");
            let eng_compute = trace.total().compute_cycles + trace.total().reduce_cycles;
            assert_eq!(
                ctl_tally.compute_cycles + ctl_tally.reduce_cycles,
                eng_compute,
                "n = {n}: controller and engine must cost identically"
            );
        }
    }

    #[test]
    fn controller_with_baseline_multiplier() {
        let m = mapping(256);
        let q = m.params().q;
        let a = rand_vec(256, q, 3);
        let b = rand_vec(256, q, 4);
        let prog = compile(m.params());
        let fast = Controller::new(&m);
        let slow = Controller::new(&m).with_multiplier(MultiplierKind::HajAli);
        let (rf, tf) = fast.run(&prog, &a, &b).unwrap();
        let (rs, ts) = slow.run(&prog, &a, &b).unwrap();
        assert_eq!(rf, rs);
        assert!(ts.cycles > tf.cycles);
    }

    #[test]
    fn instruction_count_scales_with_log_n() {
        for (n, expect) in [(256usize, 31), (1024, 37), (32768, 52)] {
            let p = ParamSet::for_degree(n).unwrap();
            assert_eq!(compile(&p).instrs().len(), expect, "n = {n}");
        }
    }
}

//! Hot-operand transform cache: content-addressed reuse of forward-NTT
//! images across multiplies (ROADMAP item 2's "hot-key caching").
//!
//! Protocol workloads multiply many ciphertexts against a small set of
//! reused operands (public keys, evaluation keys, relinearization
//! digits). The forward transform of such an operand is recomputed on
//! every multiply even though its coefficients never change — on both
//! the engine datapath (ψ pre-multiply + `log n` stages for the `a`
//! side) and the `Recompute` referee's software datapath. [`HotCache`]
//! is a bounded, content-hashed LRU over those transforms: a multiply
//! whose `a` operand hits skips its forward transform on both paths.
//!
//! ## One image form serves both paths
//!
//! The cache stores a single [`Arc`]'d vector per operand: the
//! **natural-order canonical spectrum** `X[k]` — exactly the engine's
//! post-forward row image (pinned by the engine test
//! `engine_forward_image_is_the_merged_spectrum`). The engine splices it
//! into a hit lane as resident rows, and the software referee derives
//! its merged (bit-reversed, lazy) layout with one `rev` gather — a
//! canonical value is a valid `< 2q` lazy representative, and the final
//! products are independent of representatives.
//!
//! ## Keying, collisions, invalidation
//!
//! Keys are `(n, q, seahash(coeffs))`. Hashing alone is not an identity
//! check, so every entry retains a copy of its coefficients and a
//! lookup compares them word for word before reporting a hit — a hash
//! collision degrades to a miss, never a wrong transform. The whole
//! cache is invalidated by [`HotCache::bump_epoch`] (the serving layer
//! calls it when a bank is quarantined): entries are dropped rather
//! than epoch-tagged, so a post-quarantine multiply can never replay a
//! transform captured on hardware that has since been declared bad.
//!
//! ## Soundness under faults
//!
//! A cached image is only as trustworthy as its producer, so insertion
//! policy — not lookup policy — carries the soundness argument (see
//! DESIGN.md §14): captures from an engine running under an armed fault
//! injector are never inserted, while the `Recompute` referee's own
//! forward spectra (computed in host memory, outside any fault path)
//! always are. Lookups stay allowed under faults: a hit lane's
//! downstream phases still route through the (possibly faulty) write
//! path, and the referee — which recomputes from content-verified
//! spectra — still rejects any corrupt product.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// SeaHash's multiplication constant (a strong mixing prime).
const SEA_K: u64 = 0x6eed_0e9d_a4d9_4a4f;

#[inline]
fn diffuse(mut x: u64) -> u64 {
    x = x.wrapping_mul(SEA_K);
    x ^= (x >> 32) >> (x >> 60);
    x.wrapping_mul(SEA_K)
}

/// SeaHash over a word slice (the coefficient vector), std-only.
///
/// The reference construction: four lanes seeded with the published
/// constants, each input word diffused into its lane round-robin, and
/// the lanes folded with the byte length at the end. Used purely as a
/// content address — identity is always confirmed against the stored
/// coefficients, so the only property required here is a low collision
/// rate, not cross-implementation compatibility.
pub fn seahash(words: &[u64]) -> u64 {
    let mut lanes = [
        0x16f1_1fe8_9b0d_677c_u64,
        0xb480_a793_d8e6_c86c,
        0x6fe2_e5aa_f078_ebc9,
        0x14f9_94a4_c525_9381,
    ];
    for (i, &w) in words.iter().enumerate() {
        lanes[i & 3] = diffuse(lanes[i & 3] ^ w);
    }
    diffuse(lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3] ^ (words.len() as u64 * 8))
}

type Key = (usize, u64, u64);

#[derive(Debug)]
struct Entry {
    /// Full operand copy: the collision-proof identity check.
    coeffs: Vec<u64>,
    /// Natural-order canonical forward spectrum (the engine row image).
    image: Arc<Vec<u64>>,
    /// LRU clock stamp of the last touch.
    stamp: u64,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    clock: u64,
}

/// A bounded, content-hashed LRU of forward-NTT operand images.
///
/// Shared across serving workers behind an [`Arc`]; the interior mutex
/// is held only for the map operation itself (hash computation and the
/// image copy happen outside it), and hit/miss counters are lock-free.
#[derive(Debug)]
pub struct HotCache {
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    epoch: AtomicU64,
    inner: Mutex<Inner>,
}

impl HotCache {
    /// Creates a cache holding at most `capacity` operand images
    /// (`capacity` 0 disables insertion, so every lookup misses).
    pub fn new(capacity: usize) -> Self {
        HotCache {
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Maximum number of cached images.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of images currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("hot cache poisoned").map.len()
    }

    /// Whether the cache currently holds no images.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that returned an image since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (or a hash collision) since
    /// construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// The invalidation epoch (bumped by [`HotCache::bump_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Invalidates every cached image and advances the epoch. Called by
    /// the serving layer when a bank is quarantined: images captured on
    /// hardware now declared bad must never be replayed.
    pub fn bump_epoch(&self) {
        let mut inner = self.inner.lock().expect("hot cache poisoned");
        self.epoch.fetch_add(1, Ordering::Relaxed);
        inner.map.clear();
    }

    /// Looks up the forward image of an operand, updating its LRU stamp
    /// and the hit/miss counters. A hash collision (same key, different
    /// coefficients) reports a miss.
    pub fn lookup(&self, n: usize, q: u64, coeffs: &[u64]) -> Option<Arc<Vec<u64>>> {
        let key = (n, q, seahash(coeffs));
        let mut inner = self.inner.lock().expect("hot cache poisoned");
        let inner = &mut *inner;
        if let Some(entry) = inner.map.get_mut(&key) {
            if entry.coeffs == coeffs {
                inner.clock += 1;
                entry.stamp = inner.clock;
                let image = Arc::clone(&entry.image);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(image);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Inserts (or refreshes) an operand's forward image, evicting the
    /// least-recently-touched entry when at capacity. No-op when the
    /// capacity is zero.
    ///
    /// Callers own the soundness contract: only insert images that are
    /// the operand's true spectrum (engine captures taken with no armed
    /// write path, or referee-computed spectra — see the module docs).
    pub fn insert(&self, n: usize, q: u64, coeffs: &[u64], image: &[u64]) {
        if self.capacity == 0 {
            return;
        }
        debug_assert_eq!(coeffs.len(), n);
        debug_assert_eq!(image.len(), n);
        let key = (n, q, seahash(coeffs));
        let entry_coeffs = coeffs.to_vec();
        let entry_image = Arc::new(image.to_vec());
        let mut inner = self.inner.lock().expect("hot cache poisoned");
        let inner = &mut *inner;
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(entry) = inner.map.get_mut(&key) {
            // Same content (or a collision replacing the older victim):
            // refresh in place, never grow.
            entry.coeffs = entry_coeffs;
            entry.image = entry_image;
            entry.stamp = stamp;
            return;
        }
        if inner.map.len() >= self.capacity {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(
            key,
            Entry {
                coeffs: entry_coeffs,
                image: entry_image,
                stamp,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coeffs(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 32
            })
            .collect()
    }

    #[test]
    fn seahash_is_deterministic_and_content_sensitive() {
        let a = coeffs(64, 1);
        let mut b = a.clone();
        assert_eq!(seahash(&a), seahash(&b));
        b[63] ^= 1;
        assert_ne!(
            seahash(&a),
            seahash(&b),
            "single-bit flip must change the hash"
        );
        assert_ne!(seahash(&a[..63]), seahash(&a), "length is part of the hash");
    }

    #[test]
    fn lookup_roundtrip_counts_hits_and_misses() {
        let cache = HotCache::new(4);
        let c = coeffs(8, 3);
        let img = coeffs(8, 4);
        assert!(cache.lookup(8, 7681, &c).is_none());
        cache.insert(8, 7681, &c, &img);
        assert_eq!(cache.lookup(8, 7681, &c).unwrap().as_slice(), &img[..]);
        // Same coefficients under a different modulus are a different key.
        assert!(cache.lookup(8, 12289, &c).is_none());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_touched() {
        let cache = HotCache::new(2);
        let (a, b, c) = (coeffs(4, 10), coeffs(4, 11), coeffs(4, 12));
        let img = coeffs(4, 13);
        cache.insert(4, 7681, &a, &img);
        cache.insert(4, 7681, &b, &img);
        // Touch `a`, then insert `c`: `b` is the LRU victim.
        assert!(cache.lookup(4, 7681, &a).is_some());
        cache.insert(4, 7681, &c, &img);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(4, 7681, &a).is_some());
        assert!(cache.lookup(4, 7681, &b).is_none(), "b must be evicted");
        assert!(cache.lookup(4, 7681, &c).is_some());
    }

    #[test]
    fn epoch_bump_invalidates_everything() {
        let cache = HotCache::new(4);
        let c = coeffs(8, 20);
        cache.insert(8, 7681, &c, &c);
        assert_eq!(cache.epoch(), 0);
        cache.bump_epoch();
        assert_eq!(cache.epoch(), 1);
        assert!(cache.is_empty());
        assert!(cache.lookup(8, 7681, &c).is_none());
    }

    #[test]
    fn zero_capacity_disables_insertion() {
        let cache = HotCache::new(0);
        let c = coeffs(8, 30);
        cache.insert(8, 7681, &c, &c);
        assert!(cache.lookup(8, 7681, &c).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn refresh_updates_in_place_without_growth() {
        let cache = HotCache::new(2);
        let c = coeffs(8, 40);
        let img1 = coeffs(8, 41);
        let img2 = coeffs(8, 42);
        cache.insert(8, 7681, &c, &img1);
        cache.insert(8, 7681, &c, &img2);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(8, 7681, &c).unwrap().as_slice(), &img2[..]);
    }
}

//! The functional executor: a real polynomial multiplication driven
//! through PIM memory-block operations.
//!
//! Every vector-wide arithmetic step of Algorithm 1 is executed with
//! [`MemoryBlock`] operations — producing the actual product (verified
//! against the software NTT in the test suite) *and* an honest
//! cycle/energy trace for exactly the operations the hardware performs.
//!
//! A note on widths: the engine operates on full-length vectors. A
//! degree-`n` polynomial physically spans `⌈n/512⌉` parallel lanes
//! (banks) whose blocks all execute the same op in the same cycles, so
//! the virtual "block" here carries `n` rows: identical cycle counts,
//! and energy identical to summing the physical lanes. The physical
//! bank arithmetic is in [`crate::arch`].

use crate::mapping::NttMapping;
use modmath::bitrev;
use pim::block::{MemoryBlock, MultiplierKind};
use pim::cost;
use pim::par::{self, Threads};
use pim::stats::Tally;
use pim::{energy, PimError, Result};

/// Per-phase operation tallies from one functional execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineTrace {
    /// ψ pre-multiply of both inputs.
    pub premul: Tally,
    /// Forward NTT stages (both inputs).
    pub forward: Tally,
    /// Point-wise multiplication.
    pub pointwise: Tally,
    /// Inverse NTT stages.
    pub inverse: Tally,
    /// ψ⁻¹·n⁻¹ post-multiply.
    pub postmul: Tally,
    /// Inter-block transfers (butterfly partner exchanges).
    pub transfers: Tally,
}

impl EngineTrace {
    /// Sum of all phases.
    pub fn total(&self) -> Tally {
        let mut t = Tally::new();
        for part in [
            &self.premul,
            &self.forward,
            &self.pointwise,
            &self.inverse,
            &self.postmul,
            &self.transfers,
        ] {
            t.absorb(part);
        }
        t
    }
}

/// The functional execution engine for one parameter set.
#[derive(Debug, Clone)]
pub struct Engine<'m> {
    mapping: &'m NttMapping,
    multiplier: MultiplierKind,
    threads: Threads,
}

impl<'m> Engine<'m> {
    /// Creates an engine over a mapping, using the given multiplier
    /// microprogram (CryptoPIM's by default; baselines pass \[35\]'s).
    pub fn new(mapping: &'m NttMapping) -> Self {
        Engine {
            mapping,
            multiplier: MultiplierKind::CryptoPim,
            threads: Threads::Auto,
        }
    }

    /// Selects the multiplier microprogram.
    pub fn with_multiplier(mut self, kind: MultiplierKind) -> Self {
        self.multiplier = kind;
        self
    }

    /// Selects the host-thread fan-out policy for lane execution.
    ///
    /// Any worker count produces the same products and a bit-identical
    /// [`EngineTrace`] — the charge sequence is data-oblivious and is
    /// always replayed in sequential order (see [`pim::par`]).
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    fn block(&self) -> Result<MemoryBlock> {
        let n = self.mapping.params().n;
        MemoryBlock::with_rows(self.mapping.params().bitwidth, n)
    }

    /// Runs `c = a · b` in `Z_q[x]/(x^n + 1)` through the PIM datapath.
    ///
    /// Inputs must be canonical coefficient vectors of length `n`; the
    /// output is the canonical product plus the execution trace.
    ///
    /// # Errors
    ///
    /// Propagates block-level validation failures (length mismatches,
    /// capacity overflows).
    ///
    /// # Panics
    ///
    /// Debug-panics if inputs are not canonical (`>= q`).
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Result<(Vec<u64>, EngineTrace)> {
        let workers = self.threads.resolve_for(self.mapping.params().n);
        if workers > 1 {
            self.multiply_parallel(a, b, workers)
        } else {
            self.multiply_sequential(a, b)
        }
    }

    /// The reference single-thread execution (also the workers ≤ 1 path).
    fn multiply_sequential(&self, a: &[u64], b: &[u64]) -> Result<(Vec<u64>, EngineTrace)> {
        let n = self.mapping.params().n;
        let q = self.mapping.params().q;
        debug_assert!(a.iter().all(|&x| x < q) && b.iter().all(|&x| x < q));
        let red = self.mapping.reducer();
        let mut trace = EngineTrace::default();

        // --- ψ pre-multiply (the two inputs run in parallel banks). ---
        let mut blk = self.block()?;
        let mut xa = blk.mul_montgomery(a, self.mapping.phi_a(), self.multiplier, red)?;
        let mut xb = blk.mul_montgomery(b, self.mapping.phi_b(), self.multiplier, red)?;
        trace.premul.absorb(&blk.tally());

        // --- bit-reversed write into the first NTT stage (free). ---
        bitrev::permute_in_place(&mut xa);
        bitrev::permute_in_place(&mut xb);

        // --- forward NTT stages. ---
        let log_n = self.mapping.params().log2_n();
        for stage in 0..log_n {
            let (fa, ta) = self.ntt_stage(&xa, stage, self.mapping.twiddle_fwd())?;
            let (fb, tb) = self.ntt_stage(&xb, stage, self.mapping.twiddle_fwd())?;
            xa = fa;
            xb = fb;
            trace.forward.absorb(&ta);
            trace.forward.absorb(&tb);
            // Two partner exchanges (one per input), but they travel in
            // parallel banks: charge energy for both, latency for one.
            let xfer = self.transfer_tally(n);
            trace.transfers.absorb(&xfer);
            trace.transfers.absorb(&xfer);
        }

        // --- point-wise multiplication: REDC(Â · B̂R) = Â·B̂. ---
        let mut blk = self.block()?;
        let mut xc = blk.mul_montgomery(&xa, &xb, self.multiplier, red)?;
        trace.pointwise.absorb(&blk.tally());

        // --- bit-reversed write into the inverse transform (free). ---
        bitrev::permute_in_place(&mut xc);

        // --- inverse NTT stages. ---
        for stage in 0..log_n {
            let (fc, tc) = self.ntt_stage(&xc, stage, self.mapping.twiddle_inv())?;
            xc = fc;
            trace.inverse.absorb(&tc);
            trace.transfers.absorb(&self.transfer_tally(n));
        }

        // --- ψ⁻¹ · n⁻¹ post-multiply. ---
        let mut blk = self.block()?;
        let out = blk.mul_montgomery(&xc, self.mapping.phi_post(), self.multiplier, red)?;
        trace.postmul.absorb(&blk.tally());

        Ok((out, trace))
    }

    /// Lane-parallel execution: the same phase structure as
    /// [`Engine::multiply_sequential`], with two invariants that make it
    /// indistinguishable from it in everything but wall-clock time:
    ///
    /// 1. **Data** — every output element is a pure gather of its
    ///    inputs (the bit-reversal permutes are folded into the gather
    ///    indices), so chunking the index space across threads cannot
    ///    reorder or change any value.
    /// 2. **Accounting** — block charges depend only on datapath width
    ///    and active rows, never on operand values, so replaying the
    ///    sequential charge sequence (same ops, same order, same f64
    ///    accumulation) yields a bit-identical [`EngineTrace`].
    fn multiply_parallel(
        &self,
        a: &[u64],
        b: &[u64],
        workers: usize,
    ) -> Result<(Vec<u64>, EngineTrace)> {
        let n = self.mapping.params().n;
        let q = self.mapping.params().q;
        if a.len() != n || b.len() != n {
            return Err(PimError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        debug_assert!(a.iter().all(|&x| x < q) && b.iter().all(|&x| x < q));
        let red = self.mapping.reducer();
        let bits = bitrev::log2_exact(n).expect("degree is a power of two");
        let mut trace = EngineTrace::default();

        // --- ψ pre-multiply, bit-reversal folded into the gather. ---
        let mut blk = self.block()?;
        blk.charge_mul_montgomery(n, self.multiplier, red);
        blk.charge_mul_montgomery(n, self.multiplier, red);
        let phi_a = self.mapping.phi_a();
        let phi_b = self.mapping.phi_b();
        let mut xa = par::map_indexed(n, workers, |k| {
            let i = bitrev::reverse_bits(k, bits);
            red.montgomery(a[i] * phi_a[i])
        });
        let mut xb = par::map_indexed(n, workers, |k| {
            let i = bitrev::reverse_bits(k, bits);
            red.montgomery(b[i] * phi_b[i])
        });
        trace.premul.absorb(&blk.tally());

        // --- forward NTT stages. ---
        let log_n = self.mapping.params().log2_n();
        for stage in 0..log_n {
            let (fa, ta) = self.ntt_stage_par(&xa, stage, self.mapping.twiddle_fwd(), workers)?;
            let (fb, tb) = self.ntt_stage_par(&xb, stage, self.mapping.twiddle_fwd(), workers)?;
            xa = fa;
            xb = fb;
            trace.forward.absorb(&ta);
            trace.forward.absorb(&tb);
            let xfer = self.transfer_tally(n);
            trace.transfers.absorb(&xfer);
            trace.transfers.absorb(&xfer);
        }

        // --- point-wise multiply, bit-reversal folded into the gather. ---
        let mut blk = self.block()?;
        blk.charge_mul_montgomery(n, self.multiplier, red);
        let mut xc = par::map_indexed(n, workers, |k| {
            let i = bitrev::reverse_bits(k, bits);
            red.montgomery(xa[i] * xb[i])
        });
        trace.pointwise.absorb(&blk.tally());

        // --- inverse NTT stages. ---
        for stage in 0..log_n {
            let (fc, tc) = self.ntt_stage_par(&xc, stage, self.mapping.twiddle_inv(), workers)?;
            xc = fc;
            trace.inverse.absorb(&tc);
            trace.transfers.absorb(&self.transfer_tally(n));
        }

        // --- ψ⁻¹ · n⁻¹ post-multiply. ---
        let mut blk = self.block()?;
        blk.charge_mul_montgomery(n, self.multiplier, red);
        let phi_post = self.mapping.phi_post();
        let out = par::map_indexed(n, workers, |k| red.montgomery(xc[k] * phi_post[k]));
        trace.postmul.absorb(&blk.tally());

        Ok((out, trace))
    }

    /// One Gentleman–Sande stage (see [`ntt_stage`]).
    fn ntt_stage(&self, x: &[u64], stage: u32, twiddle: &[u64]) -> Result<(Vec<u64>, Tally)> {
        ntt_stage(self.mapping, self.multiplier, x, stage, twiddle)
    }

    /// Lane-parallel Gentleman–Sande stage: charges the block exactly as
    /// [`ntt_stage`] does (add, Barrett, sub, mul, REDC — each on `n/2`
    /// rows), then computes the output as an index-wise gather. Output
    /// index `k` with the stage bit clear is an add-side row
    /// (`barrett(x[k] + x[k+dist])`); with the stage bit set it is a
    /// mul-side row (`REDC(W · (x[k−dist] + q − x[k]))`) — elementwise
    /// identical to the sequential scatter.
    fn ntt_stage_par(
        &self,
        x: &[u64],
        stage: u32,
        twiddle: &[u64],
        workers: usize,
    ) -> Result<(Vec<u64>, Tally)> {
        let n = x.len();
        let q = self.mapping.params().q;
        let red = self.mapping.reducer();
        let dist = 1usize << stage;
        let half = n / 2;

        let mut blk = MemoryBlock::with_rows(self.mapping.params().bitwidth, half)?;
        blk.charge_add(half);
        blk.charge_barrett(half, red);
        blk.charge_sub_plus_q(half);
        blk.charge_mul(half, self.multiplier);
        blk.charge_montgomery(half, red);

        let out = par::map_indexed(n, workers, |k| {
            if k & dist == 0 {
                red.barrett(x[k] + x[k + dist])
            } else {
                let j = k - dist;
                red.montgomery((x[j] + q - x[k]) * twiddle[j >> (stage + 1)])
            }
        });
        Ok((out, blk.tally()))
    }

    /// The cost of one inter-block vector transfer at this datapath width.
    fn transfer_tally(&self, rows: usize) -> Tally {
        let w = self.mapping.params().bitwidth;
        let cycles = cost::switch_transfer_cycles(w);
        Tally {
            cycles,
            transfer_cycles: cycles,
            energy_pj: energy::transfer_energy_pj(rows, w),
            ..Tally::default()
        }
    }
}

/// One Gentleman–Sande stage, vector-wide:
/// `x[j] ← (T + x[j']) mod q`, `x[j'] ← REDC(W·(T + q − x[j']))`.
///
/// The butterfly partner arrives through the stage's fixed-function
/// switch (shift `s = 2^stage`); the add-side and mul-side each activate
/// `n/2` rows. Shared by the [`Engine`] and the
/// [`crate::controller::Controller`].
pub(crate) fn ntt_stage(
    mapping: &NttMapping,
    multiplier: MultiplierKind,
    x: &[u64],
    stage: u32,
    twiddle: &[u64],
) -> Result<(Vec<u64>, Tally)> {
    let n = x.len();
    let q = mapping.params().q;
    let red = mapping.reducer();
    let dist = 1usize << stage;
    let half = n / 2;

    // Gather butterfly operand vectors (the switch's job).
    let mut t = Vec::with_capacity(half);
    let mut u = Vec::with_capacity(half);
    let mut w = Vec::with_capacity(half);
    let mut lo_idx = Vec::with_capacity(half);
    for idx in 0..half {
        let st = idx & (dist - 1);
        let j = ((idx & !(dist - 1)) << 1) | st;
        let jp = j + dist;
        t.push(x[j]);
        u.push(x[jp]);
        w.push(twiddle[j >> (stage + 1)]);
        lo_idx.push(j);
    }

    // Vector-wide ops, each on n/2 rows.
    let mut blk = MemoryBlock::with_rows(mapping.params().bitwidth, half)?;
    let sums_raw = blk.add(&t, &u)?;
    let sums = blk.barrett(&sums_raw, red)?;
    let diffs = blk.sub_plus_q(&t, &u, q)?;
    let prods = blk.mul(&diffs, &w, multiplier)?;
    let hi = blk.montgomery(&prods, red)?;

    let mut out = vec![0u64; n];
    for (k, &j) in lo_idx.iter().enumerate() {
        out[j] = sums[k];
        out[j + dist] = hi[k];
    }
    Ok((out, blk.tally()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
    use ntt::poly::Polynomial;
    use ntt::schoolbook;
    use pim::reduce::ReductionStyle;
    use proptest::prelude::*;

    fn mapping(n: usize) -> NttMapping {
        let p = ParamSet::for_degree(n).unwrap();
        NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap()
    }

    fn rand_vec(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % q
            })
            .collect()
    }

    #[test]
    fn engine_matches_schoolbook_small() {
        for n in [8usize, 16, 32, 64] {
            let m = mapping(n);
            let q = m.params().q;
            let eng = Engine::new(&m);
            let a = rand_vec(n, q, 1);
            let b = rand_vec(n, q, 2);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, q).unwrap();
            let pb = Polynomial::from_coeffs(b, q).unwrap();
            let expect = schoolbook::multiply(&pa, &pb).unwrap();
            assert_eq!(c, expect.coeffs(), "n = {n}");
        }
    }

    #[test]
    fn engine_matches_software_ntt_paper_degrees() {
        for n in [256usize, 512, 1024, 2048] {
            let p = ParamSet::for_degree(n).unwrap();
            let m = NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap();
            let eng = Engine::new(&m);
            let sw = NttMultiplier::new(&p).unwrap();
            let q = p.q;
            let a = rand_vec(n, q, 7);
            let b = rand_vec(n, q, 8);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, q).unwrap();
            let pb = Polynomial::from_coeffs(b, q).unwrap();
            let expect = sw.multiply(&pa, &pb).unwrap();
            assert_eq!(c, expect.coeffs(), "n = {n}");
        }
    }

    #[test]
    fn baseline_multiplier_same_result_more_cycles() {
        let m = mapping(256);
        let q = m.params().q;
        let a = rand_vec(256, q, 3);
        let b = rand_vec(256, q, 4);
        let fast = Engine::new(&m);
        let slow = Engine::new(&m).with_multiplier(MultiplierKind::HajAli);
        let (cf, tf) = fast.multiply(&a, &b).unwrap();
        let (cs, ts) = slow.multiply(&a, &b).unwrap();
        assert_eq!(cf, cs, "multiplier choice cannot change results");
        assert!(ts.total().cycles > tf.total().cycles);
    }

    #[test]
    fn trace_phases_all_nonzero() {
        let m = mapping(256);
        let q = m.params().q;
        let eng = Engine::new(&m);
        let (_, tr) = eng
            .multiply(&rand_vec(256, q, 5), &rand_vec(256, q, 6))
            .unwrap();
        for (name, t) in [
            ("premul", &tr.premul),
            ("forward", &tr.forward),
            ("pointwise", &tr.pointwise),
            ("inverse", &tr.inverse),
            ("postmul", &tr.postmul),
            ("transfers", &tr.transfers),
        ] {
            assert!(t.cycles > 0, "{name} phase must cost cycles");
            assert!(t.energy_pj > 0.0, "{name} phase must cost energy");
        }
        // Forward covers two polynomials: about twice the inverse cost.
        let ratio = tr.forward.cycles as f64 / tr.inverse.cycles as f64;
        assert!((ratio - 2.0).abs() < 0.01, "fwd/inv cycle ratio {ratio}");
        assert_eq!(
            tr.total().cycles,
            tr.premul.cycles
                + tr.forward.cycles
                + tr.pointwise.cycles
                + tr.inverse.cycles
                + tr.postmul.cycles
                + tr.transfers.cycles
        );
    }

    #[test]
    fn trace_cycles_match_analytic_op_counts() {
        // premul: 2 (mul+REDC); per fwd stage ×2 sides and per inv stage:
        // add + barrett + sub + mul + REDC; pointwise & postmul: mul+REDC.
        let n = 512usize;
        let m = mapping(n);
        let q = m.params().q;
        let w = m.params().bitwidth;
        let red = m.reducer();
        let eng = Engine::new(&m);
        let (_, tr) = eng
            .multiply(&rand_vec(n, q, 9), &rand_vec(n, q, 10))
            .unwrap();
        let mul_redc = pim::cost::mul_cycles(w) + red.montgomery_cycles();
        let stage =
            pim::cost::add_cycles(w) + red.barrett_cycles() + pim::cost::sub_cycles(w) + mul_redc;
        let log_n = n.trailing_zeros() as u64;
        assert_eq!(tr.premul.cycles, 2 * mul_redc);
        assert_eq!(tr.forward.cycles, 2 * log_n * stage);
        assert_eq!(tr.inverse.cycles, log_n * stage);
        assert_eq!(tr.pointwise.cycles, mul_redc);
        assert_eq!(tr.postmul.cycles, mul_redc);
        assert_eq!(
            tr.transfers.cycles,
            3 * log_n * pim::cost::switch_transfer_cycles(w)
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        for n in [64usize, 256, 512] {
            let m = mapping(n);
            let q = m.params().q;
            let a = rand_vec(n, q, 11);
            let b = rand_vec(n, q, 12);
            let (c_seq, t_seq) = Engine::new(&m)
                .with_threads(Threads::Fixed(1))
                .multiply(&a, &b)
                .unwrap();
            for workers in [2usize, 3, 4, 8] {
                let (c_par, t_par) = Engine::new(&m)
                    .with_threads(Threads::Fixed(workers))
                    .multiply(&a, &b)
                    .unwrap();
                assert_eq!(c_par, c_seq, "products, n = {n}, workers = {workers}");
                assert_eq!(t_par, t_seq, "trace, n = {n}, workers = {workers}");
                assert_eq!(
                    t_par.total().energy_pj.to_bits(),
                    t_seq.total().energy_pj.to_bits(),
                    "energy must match to the last bit, n = {n}, workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_engine_rejects_wrong_length_inputs() {
        let m = mapping(256);
        let q = m.params().q;
        let eng = Engine::new(&m).with_threads(Threads::Fixed(4));
        let a = rand_vec(128, q, 1);
        let b = rand_vec(256, q, 2);
        assert!(eng.multiply(&a, &b).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_engine_matches_schoolbook(
            a in proptest::collection::vec(0u64..7681, 64),
            b in proptest::collection::vec(0u64..7681, 64),
        ) {
            let m = mapping(64);
            let eng = Engine::new(&m);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, 7681).unwrap();
            let pb = Polynomial::from_coeffs(b, 7681).unwrap();
            let expect = schoolbook::multiply(&pa, &pb).unwrap();
            prop_assert_eq!(c, expect.coeffs());
        }
    }
}

//! The functional executor: a real polynomial multiplication driven
//! through PIM memory-block operations.
//!
//! Every vector-wide arithmetic step of Algorithm 1 is executed with
//! [`MemoryBlock`]-equivalent operations — producing the actual product
//! (verified against the software NTT in the test suite) *and* an honest
//! cycle/energy trace for exactly the operations the hardware performs.
//!
//! The steady state is allocation-free and spawn-free (DESIGN.md §10):
//! the charge schedule and index structure come from a cached
//! [`StagePlan`], the working vectors from a thread-local [`Scratch`]
//! arena, and multi-worker fan-out runs on the persistent pool behind
//! [`pim::par`]. Accounting is replayed from the plan in the exact
//! historical charge order, so traces — including the f64 energy sums —
//! stay bit-identical to the op-by-op charging they replace.
//!
//! A note on widths: the engine operates on full-length vectors. A
//! degree-`n` polynomial physically spans `⌈n/512⌉` parallel lanes
//! (banks) whose blocks all execute the same op in the same cycles, so
//! the virtual "block" here carries `n` rows: identical cycle counts,
//! and energy identical to summing the physical lanes. The physical
//! bank arithmetic is in [`crate::arch`].

use crate::mapping::NttMapping;
use crate::plan::StagePlan;
use crate::scratch::{BatchScratch, Scratch};
use pim::block::{MemoryBlock, MultiplierKind};
use pim::fault::{layout, WritePath};
use pim::par::{self, Threads};
use pim::reduce::Reducer;
use pim::stats::Tally;
use pim::{PimError, Result};

/// Per-phase operation tallies from one functional execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineTrace {
    /// ψ pre-multiply of both inputs.
    pub premul: Tally,
    /// Forward NTT stages (both inputs).
    pub forward: Tally,
    /// Point-wise multiplication.
    pub pointwise: Tally,
    /// Inverse NTT stages.
    pub inverse: Tally,
    /// ψ⁻¹·n⁻¹ post-multiply.
    pub postmul: Tally,
    /// Inter-block transfers (butterfly partner exchanges).
    pub transfers: Tally,
}

impl EngineTrace {
    /// Sum of all phases.
    pub fn total(&self) -> Tally {
        let mut t = Tally::new();
        for part in [
            &self.premul,
            &self.forward,
            &self.pointwise,
            &self.inverse,
            &self.postmul,
            &self.transfers,
        ] {
            t.absorb(part);
        }
        t
    }

    /// Accumulates another trace phase-wise (batch accounting: a batch
    /// trace is the phase-wise sum of its per-job traces, absorbed in
    /// job order so the f64 energy sums are reproducible bit for bit).
    pub fn merge(&mut self, other: &EngineTrace) {
        self.premul.absorb(&other.premul);
        self.forward.absorb(&other.forward);
        self.pointwise.absorb(&other.pointwise);
        self.inverse.absorb(&other.inverse);
        self.postmul.absorb(&other.postmul);
        self.transfers.absorb(&other.transfers);
    }
}

/// The functional execution engine for one parameter set.
#[derive(Debug, Clone)]
pub struct Engine<'m> {
    mapping: &'m NttMapping,
    multiplier: MultiplierKind,
    threads: Threads,
    writes: Option<&'m dyn WritePath>,
}

impl<'m> Engine<'m> {
    /// Creates an engine over a mapping, using the given multiplier
    /// microprogram (CryptoPIM's by default; baselines pass \[35\]'s).
    pub fn new(mapping: &'m NttMapping) -> Self {
        Engine {
            mapping,
            multiplier: MultiplierKind::CryptoPim,
            threads: Threads::Auto,
            writes: None,
        }
    }

    /// Selects the multiplier microprogram.
    pub fn with_multiplier(mut self, kind: MultiplierKind) -> Self {
        self.multiplier = kind;
        self
    }

    /// Selects the host-thread fan-out policy for lane execution.
    ///
    /// Any worker count produces the same products and a bit-identical
    /// [`EngineTrace`] — the charge sequence is data-oblivious and is
    /// always replayed in sequential order (see [`pim::par`]).
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Installs a (possibly faulty) block write path.
    ///
    /// Every phase write is routed through the hook while the path is
    /// armed, so injected faults become functional corruption of the
    /// product. With `None` (the default) or an unarmed path the
    /// datapath is byte-for-byte the fault-free hot path — the cost of
    /// the hook is one `Option` check per phase. An armed path forces
    /// the sequential datapath: per-word store order is part of the
    /// deterministic-replay contract, and wear-out epochs must not race
    /// host threads.
    pub fn with_write_path(mut self, writes: Option<&'m dyn WritePath>) -> Self {
        self.writes = writes;
        self
    }

    /// Runs `c = a · b` in `Z_q[x]/(x^n + 1)` through the PIM datapath.
    ///
    /// Inputs must be canonical coefficient vectors of length `n`; the
    /// output is the canonical product plus the execution trace.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::LengthMismatch`] when either input's length
    /// differs from the configured degree.
    ///
    /// # Panics
    ///
    /// Debug-panics if inputs are not canonical (`>= q`).
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Result<(Vec<u64>, EngineTrace)> {
        let mut out = Vec::new();
        let trace = self.multiply_into(a, b, &mut out)?;
        Ok((out, trace))
    }

    /// [`Engine::multiply`] into a caller-owned output vector.
    ///
    /// `out` is cleared and resized to `n`; reusing the same vector
    /// across calls makes the steady-state loop allocation-free (the
    /// plan is cached, the scratch slab pooled, and `out`'s capacity
    /// retained) — asserted by `tests/alloc_steady_state.rs`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::multiply`].
    ///
    /// # Panics
    ///
    /// Debug-panics if inputs are not canonical (`>= q`).
    pub fn multiply_into(&self, a: &[u64], b: &[u64], out: &mut Vec<u64>) -> Result<EngineTrace> {
        let n = self.mapping.params().n;
        let q = self.mapping.params().q;
        if a.len() != n || b.len() != n {
            return Err(PimError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        debug_assert!(a.iter().all(|&x| x < q) && b.iter().all(|&x| x < q));
        let plan = StagePlan::cached(self.mapping, self.multiplier)?;
        let mut scratch = Scratch::checkout(n);
        out.clear();
        out.resize(n, 0);
        let faults = self.writes.filter(|w| w.armed());
        if let Some(w) = faults {
            w.begin_op();
        }
        let workers = if faults.is_some() {
            1
        } else {
            self.threads.resolve_for(n)
        };
        if workers > 1 {
            self.datapath_parallel(&plan, &mut scratch, a, b, out, workers);
        } else {
            self.datapath_sequential(&plan, &mut scratch, a, b, out, faults, None);
        }
        Ok(replay_trace(&plan))
    }

    /// Batch-fused multiply: `out[j] = a[j] · b[j]` for `B` stacked
    /// degree-`n` jobs in flat `B·n` buffers, walking the cached
    /// [`StagePlan`] **once** for the whole batch — per stage the jobs
    /// run in the inner loop over a pooled `3·B·n` scratch slab, so the
    /// twiddle table and plan structure stay hot across jobs instead of
    /// being re-walked per job.
    ///
    /// Products are bit-identical to `B` calls of
    /// [`Engine::multiply_into`] (pinned by proptests), the returned
    /// trace is the phase-wise sum of the `B` per-job traces (absorbed
    /// in job order — see [`EngineTrace::merge`]), and an armed write
    /// path preserves per-job reliability semantics exactly: each lane
    /// runs the sequential one-job datapath with its own `begin_op` and
    /// the one-job store order, so `(bank, block, row)` fault addressing
    /// is unchanged.
    ///
    /// `out` is sized to `B·n` and fully overwritten; reusing it keeps
    /// the steady state allocation- and memset-free.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::LengthMismatch`] when the buffers differ in
    /// length or are not a positive multiple of `n`.
    ///
    /// # Panics
    ///
    /// Debug-panics if inputs are not canonical (`>= q`).
    pub fn multiply_batch_into(
        &self,
        a: &[u64],
        b: &[u64],
        out: &mut Vec<u64>,
    ) -> Result<EngineTrace> {
        self.multiply_batch_cached(a, b, out, &[], None)
    }

    /// [`Engine::multiply_batch_into`] with hot-operand images.
    ///
    /// `cached` is either empty (no reuse) or one entry per job: lane
    /// `j` with `Some(image)` supplies `a[j]`'s forward spectrum (the
    /// engine's post-forward row image, as captured below), and the
    /// engine skips that lane's ψ pre-multiply and forward stages on
    /// the `a` side — the rows are resident from the earlier operation,
    /// so no stores happen for them (and under an armed write path they
    /// therefore take no *new* write faults; the image itself carries
    /// whatever the capturing operation stored). The trace accounts the
    /// skipped work exactly: a hit lane charges one pre-multiply pass
    /// (the `b` side) and one stage + one transfer per forward stage.
    ///
    /// With `capture` supplied, the buffer is sized to `B·n` and each
    /// **miss** lane's post-forward `a` image is copied out, ready to be
    /// inserted into a cache; hit lanes' slots are not written (zeros in
    /// a fresh buffer, stale words in a reused one — read miss lanes
    /// only).
    ///
    /// # Errors
    ///
    /// As [`Engine::multiply_batch_into`], plus a mismatch when
    /// `cached` is non-empty but not one entry per job or an image is
    /// not `n` words.
    ///
    /// # Panics
    ///
    /// Debug-panics if inputs are not canonical (`>= q`).
    pub fn multiply_batch_cached(
        &self,
        a: &[u64],
        b: &[u64],
        out: &mut Vec<u64>,
        cached: &[Option<&[u64]>],
        mut capture: Option<&mut Vec<u64>>,
    ) -> Result<EngineTrace> {
        let n = self.mapping.params().n;
        let q = self.mapping.params().q;
        if a.len() != b.len() || a.is_empty() || !a.len().is_multiple_of(n) {
            return Err(PimError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        let batch = a.len() / n;
        if !cached.is_empty() && cached.len() != batch {
            return Err(PimError::LengthMismatch {
                left: cached.len(),
                right: batch,
            });
        }
        if cached.iter().flatten().any(|img| img.len() != n) {
            return Err(PimError::LengthMismatch {
                left: n,
                right: batch,
            });
        }
        debug_assert!(a.iter().all(|&x| x < q) && b.iter().all(|&x| x < q));
        let plan = StagePlan::cached(self.mapping, self.multiplier)?;
        // Every datapath overwrites the full output, so a correctly
        // sized buffer is reused as-is — no 8·B·n-byte memset per call.
        if out.len() != batch * n {
            out.clear();
            out.resize(batch * n, 0);
        }
        if let Some(cap) = capture.as_deref_mut() {
            if cap.len() != batch * n {
                cap.clear();
                cap.resize(batch * n, 0);
            }
        }
        let faults = self.writes.filter(|w| w.armed());
        if let Some(w) = faults {
            // Per-job reliability semantics: every lane is its own
            // operation with its own `begin_op` and the exact one-job
            // store order, so injected-fault addressing and wear-out
            // epochs are indistinguishable from per-job execution.
            let mut scratch = Scratch::checkout(n);
            for lane in 0..batch {
                w.begin_op();
                let la = &a[lane * n..(lane + 1) * n];
                let lb = &b[lane * n..(lane + 1) * n];
                let lout = &mut out[lane * n..(lane + 1) * n];
                let lcap = capture
                    .as_deref_mut()
                    .map(|c| &mut c[lane * n..(lane + 1) * n]);
                match cached.get(lane).copied().flatten() {
                    Some(image) => {
                        self.datapath_hit(&plan, &mut scratch, image, lb, lout, Some(w));
                    }
                    None => {
                        self.datapath_sequential(&plan, &mut scratch, la, lb, lout, Some(w), lcap);
                    }
                }
            }
        } else {
            let any_cached = cached.iter().any(Option::is_some);
            let workers = if any_cached {
                1
            } else {
                self.threads.resolve_for(batch * n)
            };
            let mut scratch = BatchScratch::checkout(n, batch);
            if workers > 1 {
                self.datapath_batch_parallel(
                    &plan,
                    &mut scratch,
                    a,
                    b,
                    out,
                    workers,
                    capture.map(Vec::as_mut_slice),
                );
            } else {
                self.datapath_batch_fast(
                    &plan,
                    &mut scratch,
                    a,
                    b,
                    out,
                    cached,
                    capture.map(Vec::as_mut_slice),
                );
            }
        }
        Ok(replay_batch_trace(&plan, batch, cached))
    }

    /// The reference single-thread datapath (also the workers ≤ 1 path):
    /// bit-reversal folded into the ψ pre-multiply gather, then fused
    /// row-centric butterfly stages double-buffered through the scratch
    /// arena.
    #[allow(clippy::too_many_arguments)]
    fn datapath_sequential(
        &self,
        plan: &StagePlan,
        scratch: &mut Scratch,
        a: &[u64],
        b: &[u64],
        out: &mut [u64],
        faults: Option<&dyn WritePath>,
        capture: Option<&mut [u64]>,
    ) {
        let log_n = plan.log_n();
        let q = self.mapping.params().q;
        let red = self.mapping.reducer();
        let rev = plan.rev();
        let (mut xa, mut xa2, mut xb, mut xb2) = scratch.buffers();

        // --- ψ pre-multiply, bit-reversed write folded in (free). ---
        let phi_a = self.mapping.phi_a();
        let phi_b = self.mapping.phi_b();
        redc_map(red, q, xa, |k| {
            let i = rev[k] as usize;
            a[i] * phi_a[i]
        });
        redc_map(red, q, xb, |k| {
            let i = rev[k] as usize;
            b[i] * phi_b[i]
        });
        corrupt_writes(faults, q, layout::premul(), xa);

        // --- forward NTT stages (the two inputs in parallel banks). ---
        for stage in 0..log_n {
            let tw = self.mapping.twiddle_fwd_stage(stage);
            stage_rows(red, q, xa, xa2, stage, tw);
            stage_rows(red, q, xb, xb2, stage, tw);
            corrupt_writes(faults, q, layout::forward(stage), xa2);
            std::mem::swap(&mut xa, &mut xa2);
            std::mem::swap(&mut xb, &mut xb2);
        }

        // Post-forward `a` image — what the bank rows physically hold
        // (faults included), so a later hit replays exactly these bits.
        if let Some(cap) = capture {
            cap.copy_from_slice(xa);
        }

        // --- point-wise multiply, REDC(Â · B̂R) = Â·B̂; bit-reversed
        //     write into the inverse transform folded in (free). ---
        {
            let (sa, sb) = (&*xa, &*xb);
            redc_map(red, q, xa2, |k| {
                let i = rev[k] as usize;
                sa[i] * sb[i]
            });
        }
        corrupt_writes(faults, q, layout::pointwise(log_n), xa2);
        let (mut xc, mut xc2) = (xa2, xb2);

        // --- inverse NTT stages. ---
        for stage in 0..log_n {
            stage_rows(
                red,
                q,
                xc,
                xc2,
                stage,
                self.mapping.twiddle_inv_stage(stage),
            );
            corrupt_writes(faults, q, layout::inverse(log_n, stage), xc2);
            std::mem::swap(&mut xc, &mut xc2);
        }

        // --- ψ⁻¹ · n⁻¹ post-multiply. ---
        let phi_post = self.mapping.phi_post();
        {
            let src = &*xc;
            redc_map(red, q, out, |k| src[k] * phi_post[k]);
        }
        corrupt_writes(faults, q, layout::postmul(log_n), out);
    }

    /// The one-lane hit datapath for an armed write path: the `a` rows
    /// are resident (their forward image `image` was stored by an
    /// earlier operation), so the lane skips the `a`-side pre-multiply
    /// and forward stages and — because those rows are not rewritten —
    /// fires no store hooks for them. Everything from the point-wise
    /// multiply on is the ordinary sequential path, store order
    /// included.
    fn datapath_hit(
        &self,
        plan: &StagePlan,
        scratch: &mut Scratch,
        image: &[u64],
        b: &[u64],
        out: &mut [u64],
        faults: Option<&dyn WritePath>,
    ) {
        let log_n = plan.log_n();
        let q = self.mapping.params().q;
        let red = self.mapping.reducer();
        let rev = plan.rev();
        let (mut xc, mut xc2, mut xb, mut xb2) = scratch.buffers();

        // --- ψ pre-multiply, `b` side only. ---
        let phi_b = self.mapping.phi_b();
        redc_map(red, q, xb, |k| {
            let i = rev[k] as usize;
            b[i] * phi_b[i]
        });

        // --- forward NTT stages, `b` side only. ---
        for stage in 0..log_n {
            let tw = self.mapping.twiddle_fwd_stage(stage);
            stage_rows(red, q, xb, xb2, stage, tw);
            std::mem::swap(&mut xb, &mut xb2);
        }

        // --- point-wise multiply against the resident image. ---
        {
            let sb = &*xb;
            redc_map(red, q, xc, |k| {
                let i = rev[k] as usize;
                image[i] * sb[i]
            });
        }
        corrupt_writes(faults, q, layout::pointwise(log_n), xc);

        // --- inverse NTT stages. ---
        for stage in 0..log_n {
            stage_rows(
                red,
                q,
                xc,
                xc2,
                stage,
                self.mapping.twiddle_inv_stage(stage),
            );
            corrupt_writes(faults, q, layout::inverse(log_n, stage), xc2);
            std::mem::swap(&mut xc, &mut xc2);
        }

        // --- ψ⁻¹ · n⁻¹ post-multiply. ---
        let phi_post = self.mapping.phi_post();
        {
            let src = &*xc;
            redc_map(red, q, out, |k| src[k] * phi_post[k]);
        }
        corrupt_writes(faults, q, layout::postmul(log_n), out);
    }

    /// The fused batch datapath: walks the dataflow once for the whole
    /// batch with the vectorized merged-ψ kernels ([`ntt::merged`]) over
    /// the pooled slab, so each stage's twiddle table streams through
    /// the cache once per batch and the butterflies run the half-width
    /// lazy schedule the single-job row path cannot use (bank rows hold
    /// canonical residues phase by phase; the host batch simulation only
    /// has to reproduce the *products*, which are independent of the
    /// `[0, 2q)` representatives the lazy kernels carry — canonical
    /// residues are unique, so the final normalize lands on exactly the
    /// per-job path's bits, pinned by the fused-vs-sequential tests).
    ///
    /// The merged forward stores spectrum value `X[k]` at index
    /// `rev(k)`, while the engine's row image is natural-order canonical
    /// `X[k]` (pinned by `engine_forward_image_is_the_merged_spectrum`),
    /// so hit lanes splice their resident image in with one `rev` gather
    /// — a canonical value is a valid `< 2q` lazy representative — and
    /// miss-lane captures are the inverse gather plus one conditional
    /// subtraction. Contiguous miss lanes go through the batch kernel as
    /// one run.
    #[allow(clippy::too_many_arguments)]
    fn datapath_batch_fast(
        &self,
        plan: &StagePlan,
        scratch: &mut BatchScratch,
        a: &[u64],
        b: &[u64],
        out: &mut [u64],
        cached: &[Option<&[u64]>],
        capture: Option<&mut [u64]>,
    ) {
        let n = plan.n();
        let q = self.mapping.params().q;
        let rev = plan.rev();
        let tables = self.mapping.tables();
        let batch = a.len() / n;
        let (ba, bb, _) = scratch.buffers();
        let hit = |lane: usize| cached.get(lane).copied().flatten();

        // --- forward transforms (ψ merged into the twiddles). ---
        ba.copy_from_slice(a);
        bb.copy_from_slice(b);
        let mut lane = 0;
        while lane < batch {
            if let Some(image) = hit(lane) {
                let off = lane * n;
                for (j, slot) in ba[off..off + n].iter_mut().enumerate() {
                    *slot = image[rev[j] as usize];
                }
                lane += 1;
                continue;
            }
            let start = lane;
            while lane < batch && hit(lane).is_none() {
                lane += 1;
            }
            ntt::merged::forward_lazy_batch_in_place(&mut ba[start * n..lane * n], tables);
        }
        if let Some(cap) = capture {
            for lane in 0..batch {
                if hit(lane).is_some() {
                    continue;
                }
                let off = lane * n;
                let src = &ba[off..off + n];
                for (k, slot) in cap[off..off + n].iter_mut().enumerate() {
                    let v = src[rev[k] as usize];
                    *slot = v - q * u64::from(v >= q);
                }
            }
        }
        ntt::merged::forward_lazy_batch_in_place(bb, tables);

        // --- point-wise multiply + inverse transform, in the caller's
        //     output buffer (n⁻¹ and ψ⁻¹ folded; output canonical). ---
        ntt::merged::pointwise_lazy(ba, bb, out, q);
        ntt::merged::inverse_batch_in_place(out, tables);
    }

    /// [`Engine::datapath_batch_sequential`] fanned out over the
    /// persistent pool across the flat `B·n` index space (only taken
    /// with no hit lanes). Lane-local indices are `k & (n−1)`; every
    /// butterfly partner `k ± dist` stays inside its lane because
    /// `dist < n`, and every output element is a pure gather, so any
    /// worker count produces bit-identical products.
    #[allow(clippy::too_many_arguments)]
    fn datapath_batch_parallel(
        &self,
        plan: &StagePlan,
        scratch: &mut BatchScratch,
        a: &[u64],
        b: &[u64],
        out: &mut [u64],
        workers: usize,
        capture: Option<&mut [u64]>,
    ) {
        let n = plan.n();
        let mask = n - 1;
        let q = self.mapping.params().q;
        let red = self.mapping.reducer();
        let rev = plan.rev();
        let (mut ba, mut bb, mut sp) = scratch.buffers();

        // --- ψ pre-multiply, bit-reversal folded into the gather. ---
        let phi_a = self.mapping.phi_a();
        let phi_b = self.mapping.phi_b();
        par::map_indexed_into(ba, workers, |k| {
            let i = rev[k & mask] as usize;
            red.montgomery(a[(k & !mask) + i] * phi_a[i])
        });
        par::map_indexed_into(bb, workers, |k| {
            let i = rev[k & mask] as usize;
            red.montgomery(b[(k & !mask) + i] * phi_b[i])
        });

        // --- forward NTT stages over the rotating buffers. ---
        for stage in 0..plan.log_n() {
            let tw = self.mapping.twiddle_fwd_stage(stage);
            stage_rows_batch_par(red, q, n, ba, sp, stage, tw, workers);
            std::mem::swap(&mut ba, &mut sp);
            stage_rows_batch_par(red, q, n, bb, sp, stage, tw, workers);
            std::mem::swap(&mut bb, &mut sp);
        }

        if let Some(cap) = capture {
            cap.copy_from_slice(ba);
        }

        // --- point-wise multiply into the spare. ---
        {
            let (sa, sb) = (&*ba, &*bb);
            par::map_indexed_into(sp, workers, |k| {
                let base = k & !mask;
                let i = rev[k & mask] as usize;
                red.montgomery(sa[base + i] * sb[base + i])
            });
        }

        // --- inverse NTT stages. ---
        let (mut xc, mut xc2) = (sp, ba);
        for stage in 0..plan.log_n() {
            let tw = self.mapping.twiddle_inv_stage(stage);
            stage_rows_batch_par(red, q, n, xc, xc2, stage, tw, workers);
            std::mem::swap(&mut xc, &mut xc2);
        }

        // --- ψ⁻¹ · n⁻¹ post-multiply. ---
        let phi_post = self.mapping.phi_post();
        {
            let src = &*xc;
            par::map_indexed_into(out, workers, |k| {
                red.montgomery(src[k] * phi_post[k & mask])
            });
        }
    }

    /// Lane-parallel datapath: the same phase structure as
    /// [`Engine::datapath_sequential`], fanned out over the persistent
    /// worker pool. Every output element is a pure gather of its inputs,
    /// so chunking the index space across threads cannot reorder or
    /// change any value — products are identical for any worker count
    /// (and the trace is replayed from the plan either way).
    fn datapath_parallel(
        &self,
        plan: &StagePlan,
        scratch: &mut Scratch,
        a: &[u64],
        b: &[u64],
        out: &mut [u64],
        workers: usize,
    ) {
        let q = self.mapping.params().q;
        let red = self.mapping.reducer();
        let rev = plan.rev();
        let (mut xa, mut xa2, mut xb, mut xb2) = scratch.buffers();

        // --- ψ pre-multiply, bit-reversal folded into the gather. ---
        let phi_a = self.mapping.phi_a();
        let phi_b = self.mapping.phi_b();
        par::map_indexed_into(xa, workers, |k| {
            let i = rev[k] as usize;
            red.montgomery(a[i] * phi_a[i])
        });
        par::map_indexed_into(xb, workers, |k| {
            let i = rev[k] as usize;
            red.montgomery(b[i] * phi_b[i])
        });

        // --- forward NTT stages. ---
        for stage in 0..plan.log_n() {
            let tw = self.mapping.twiddle_fwd_stage(stage);
            stage_rows_par(red, q, xa, xa2, stage, tw, workers);
            stage_rows_par(red, q, xb, xb2, stage, tw, workers);
            std::mem::swap(&mut xa, &mut xa2);
            std::mem::swap(&mut xb, &mut xb2);
        }

        // --- point-wise multiply, bit-reversal folded into the gather. ---
        {
            let (src_a, src_b) = (&*xa, &*xb);
            par::map_indexed_into(xa2, workers, |k| {
                let i = rev[k] as usize;
                red.montgomery(src_a[i] * src_b[i])
            });
        }
        let (mut xc, mut xc2) = (xa2, xb2);

        // --- inverse NTT stages. ---
        for stage in 0..plan.log_n() {
            let tw = self.mapping.twiddle_inv_stage(stage);
            stage_rows_par(red, q, xc, xc2, stage, tw, workers);
            std::mem::swap(&mut xc, &mut xc2);
        }

        // --- ψ⁻¹ · n⁻¹ post-multiply. ---
        let phi_post = self.mapping.phi_post();
        {
            let src = &*xc;
            par::map_indexed_into(out, workers, |k| red.montgomery(src[k] * phi_post[k]));
        }
    }
}

/// Replays the plan's charge schedule in the exact historical order:
/// pre-multiply; per forward stage two stage tallies then two transfer
/// tallies (the two inputs travel in parallel banks — energy for both,
/// latency for one); point-wise scale; per inverse stage one of each;
/// post-multiply scale. Each absorbed tally was accumulated from zero by
/// the same charge twins the op-by-op engine called, so every f64 energy
/// sum reproduces the pre-plan trace bit-for-bit.
fn replay_trace(plan: &StagePlan) -> EngineTrace {
    let mut trace = EngineTrace::default();
    trace.premul.absorb(plan.premul());
    for _ in 0..plan.log_n() {
        trace.forward.absorb(plan.stage());
        trace.forward.absorb(plan.stage());
        trace.transfers.absorb(plan.transfer());
        trace.transfers.absorb(plan.transfer());
    }
    trace.pointwise.absorb(plan.scale());
    for _ in 0..plan.log_n() {
        trace.inverse.absorb(plan.stage());
        trace.transfers.absorb(plan.transfer());
    }
    trace.postmul.absorb(plan.scale());
    trace
}

/// [`replay_trace`] for a hit lane: the `a` operand's rows are resident,
/// so the pre-multiply is a single scale pass (the `b` side — same tally
/// as the point-wise pass) and each forward stage charges one stage and
/// one transfer instead of two of each. Everything downstream of the
/// point-wise multiply is charged unchanged.
fn replay_trace_hit(plan: &StagePlan) -> EngineTrace {
    let mut trace = EngineTrace::default();
    trace.premul.absorb(plan.scale());
    for _ in 0..plan.log_n() {
        trace.forward.absorb(plan.stage());
        trace.transfers.absorb(plan.transfer());
    }
    trace.pointwise.absorb(plan.scale());
    for _ in 0..plan.log_n() {
        trace.inverse.absorb(plan.stage());
        trace.transfers.absorb(plan.transfer());
    }
    trace.postmul.absorb(plan.scale());
    trace
}

/// The batch trace: the phase-wise sum of the per-lane traces, merged in
/// lane order. Like [`replay_trace`] this never touches per-op charging
/// — every term is a cached plan tally — and the fold order makes the
/// f64 energy sums bit-identical to merging `B` sequential per-job
/// traces (pinned by `tests/batch_fused.rs`).
fn replay_batch_trace(plan: &StagePlan, batch: usize, cached: &[Option<&[u64]>]) -> EngineTrace {
    let mut trace = EngineTrace::default();
    for lane in 0..batch {
        let lane_trace = match cached.get(lane).copied().flatten() {
            Some(_) => replay_trace_hit(plan),
            None => replay_trace(plan),
        };
        trace.merge(&lane_trace);
    }
    trace
}

/// Routes one phase's freshly written vector through the bank's write
/// path, materializing injected faults. A corrupted word is
/// re-canonicalized mod `q` before it re-enters the pipeline: the cell
/// array stores whatever bits the fault left, but the next phase's
/// sense amplifiers interpret them as a residue, and the engine's
/// reduction microprograms carry `< 2q` input contracts that physical
/// values must keep satisfying. Reduction never masks a fault — a flip
/// of bit `i` changes the residue by `±2^i mod q ≠ 0`.
fn corrupt_writes(faults: Option<&dyn WritePath>, q: u64, block: u32, data: &mut [u64]) {
    if let Some(w) = faults {
        for (row, v) in data.iter_mut().enumerate() {
            let stored = w.store(block, row as u32, *v);
            if stored != *v {
                *v = stored % q;
            }
        }
    }
}

/// One fused Gentleman–Sande stage in row-centric order: butterfly block
/// `b` spans rows `[b·2^{stage+1}, (b+1)·2^{stage+1})` and uses the
/// single twiddle factor `W_b`, so the old gather → vector-op → scatter
/// round trip collapses into one pass with no index tables:
/// `dst[j] = (t + u) mod q`, `dst[j+dist] = REDC(W_b · (t + q − u))`.
fn stage_rows(red: &Reducer, q: u64, src: &[u64], dst: &mut [u64], stage: u32, twiddle: &[u64]) {
    // Monomorphize on the paper moduli so the REDC constants fold to
    // immediates inside the loop. The const paths compute the same
    // values as `Reducer::{barrett, montgomery}` (one conditional
    // subtraction of a `< 2q` sum, and REDC with `q' = −q⁻¹ mod R` —
    // the mul-based form is integer-identical to the shift-add
    // sequences of Algorithm 3, which expand the same constants), so
    // results are bit-identical. Unspecialized moduli — the RNS residue
    // primes — take the dynamic path, which runs the same branch-free
    // butterfly with the reducer's precomputed runtime constants.
    match q {
        7681 => stage_rows_const::<7681, 7679, 18>(src, dst, stage, twiddle),
        12289 => stage_rows_const::<12289, 12287, 18>(src, dst, stage, twiddle),
        786433 => stage_rows_const::<786433, 786_431, 32>(src, dst, stage, twiddle),
        _ => stage_rows_dyn(red, q, src, dst, stage, twiddle),
    }
}

/// Branch-free butterfly: `(t + u) mod q` via masked conditional
/// subtraction, and `REDC(W·(t + q − u))` via the mul-based Montgomery
/// form `m = x·q' mod R; (x + m·q)/R` — the exact integer the shift-add
/// sequence computes (the shifts are just the expansion of `q'` and `q`
/// as signed-digit constants), followed by the same single conditional
/// subtraction. No data-dependent branches, no `Result` in the loop, so
/// the compiler can pipeline/vectorize across rows.
fn stage_rows_const<const Q: u64, const QPRIME: u64, const K: u32>(
    src: &[u64],
    dst: &mut [u64],
    stage: u32,
    twiddle: &[u64],
) {
    let dist = 1usize << stage;
    let mask = (1u64 << K) - 1;
    for ((s, d), &w) in src
        .chunks_exact(2 * dist)
        .zip(dst.chunks_exact_mut(2 * dist))
        .zip(twiddle)
    {
        let (s_lo, s_hi) = s.split_at(dist);
        let (d_lo, d_hi) = d.split_at_mut(dist);
        for ((&t, &u), (dl, dh)) in s_lo.iter().zip(s_hi).zip(d_lo.iter_mut().zip(d_hi)) {
            let sum = t + u;
            *dl = sum - Q * u64::from(sum >= Q);
            let x = (t + Q - u) * w;
            let m = (x & mask).wrapping_mul(QPRIME) & mask;
            let r = (x + m * Q) >> K;
            *dh = r - Q * u64::from(r >= Q);
        }
    }
}

/// One mul-based Montgomery REDC step plus conditional subtraction —
/// the scalar core of [`stage_rows_const`], exposed for the gather
/// loops (pre-multiply, point-wise, post-multiply). Integer-identical
/// to [`Reducer::montgomery`] for the same modulus.
#[inline(always)]
fn redc_const<const Q: u64, const QPRIME: u64, const K: u32>(x: u64) -> u64 {
    let mask = (1u64 << K) - 1;
    let m = (x & mask).wrapping_mul(QPRIME) & mask;
    let r = (x + m * Q) >> K;
    r - Q * u64::from(r >= Q)
}

/// Fills `dst[k] = REDC(f(k))` with the REDC monomorphized on the paper
/// moduli (same dispatch and same value-identity argument as
/// [`stage_rows`]); unspecialized moduli fall back to the reducer.
fn redc_map(red: &Reducer, q: u64, dst: &mut [u64], f: impl Fn(usize) -> u64) {
    fn run<const Q: u64, const QPRIME: u64, const K: u32>(
        dst: &mut [u64],
        f: impl Fn(usize) -> u64,
    ) {
        for (k, d) in dst.iter_mut().enumerate() {
            *d = redc_const::<Q, QPRIME, K>(f(k));
        }
    }
    match q {
        7681 => run::<7681, 7679, 18>(dst, f),
        12289 => run::<12289, 12287, 18>(dst, f),
        786433 => run::<786433, 786_431, 32>(dst, f),
        _ => {
            for (k, d) in dst.iter_mut().enumerate() {
                *d = red.montgomery(f(k));
            }
        }
    }
}

/// [`stage_rows_const`] with runtime REDC constants: the same
/// branch-free butterfly, with `q`, `q' = −q⁻¹ mod R`, and `k` read
/// from the reducer instead of folded as immediates. Value-identical
/// to `Reducer::{barrett, montgomery}` for the same inputs, so a
/// residue prime's transform matches the host oracle bit for bit.
/// Overflow-safe for any `q < 2^31` with `R = 2^32`:
/// `x + m·q < 2q² + 2^32·q < 2^64`.
fn stage_rows_dyn(
    red: &Reducer,
    q: u64,
    src: &[u64],
    dst: &mut [u64],
    stage: u32,
    twiddle: &[u64],
) {
    let k = red.r_exponent();
    let qprime = red.q_prime();
    let mask = (1u64 << k) - 1;
    let dist = 1usize << stage;
    for ((s, d), &w) in src
        .chunks_exact(2 * dist)
        .zip(dst.chunks_exact_mut(2 * dist))
        .zip(twiddle)
    {
        let (s_lo, s_hi) = s.split_at(dist);
        let (d_lo, d_hi) = d.split_at_mut(dist);
        for ((&t, &u), (dl, dh)) in s_lo.iter().zip(s_hi).zip(d_lo.iter_mut().zip(d_hi)) {
            let sum = t + u;
            *dl = sum - q * u64::from(sum >= q);
            let x = (t + q - u) * w;
            let m = (x & mask).wrapping_mul(qprime) & mask;
            let r = (x + m * q) >> k;
            *dh = r - q * u64::from(r >= q);
        }
    }
}

/// [`stage_rows`] as an index-wise gather for pool fan-out: output `k`
/// with the stage bit clear is an add-side row, with it set a mul-side
/// row — elementwise identical to the sequential pass.
fn stage_rows_par(
    red: &Reducer,
    q: u64,
    src: &[u64],
    dst: &mut [u64],
    stage: u32,
    twiddle: &[u64],
    workers: usize,
) {
    let dist = 1usize << stage;
    par::map_indexed_into(dst, workers, |k| {
        if k & dist == 0 {
            red.barrett(src[k] + src[k + dist])
        } else {
            let j = k - dist;
            red.montgomery((src[j] + q - src[k]) * twiddle[j >> (stage + 1)])
        }
    });
}

/// [`stage_rows_par`] over `B` stacked lanes of length `n` in one flat
/// index space: the lane-local index is `k & (n−1)`, the butterfly
/// partner `k ± dist` never crosses a lane boundary (`dist < n`), and
/// the twiddle index is taken lane-locally — elementwise identical to
/// running [`stage_rows`] per lane.
#[allow(clippy::too_many_arguments)]
fn stage_rows_batch_par(
    red: &Reducer,
    q: u64,
    n: usize,
    src: &[u64],
    dst: &mut [u64],
    stage: u32,
    twiddle: &[u64],
    workers: usize,
) {
    let dist = 1usize << stage;
    let mask = n - 1;
    par::map_indexed_into(dst, workers, |k| {
        let kk = k & mask;
        if kk & dist == 0 {
            red.barrett(src[k] + src[k + dist])
        } else {
            red.montgomery((src[k - dist] + q - src[k]) * twiddle[(kk - dist) >> (stage + 1)])
        }
    });
}

/// One Gentleman–Sande stage, vector-wide:
/// `x[j] ← (T + x[j']) mod q`, `x[j'] ← REDC(W·(T + q − x[j']))`.
///
/// The butterfly partner arrives through the stage's fixed-function
/// switch (shift `s = 2^stage`); the add-side and mul-side each activate
/// `n/2` rows, charged through the block's cost-only twins (identical
/// tallies to the real vector ops they mirror). Used by the
/// [`crate::controller::Controller`]; the [`Engine`] replays the same
/// per-stage tally from its cached plan.
pub(crate) fn ntt_stage(
    mapping: &NttMapping,
    multiplier: MultiplierKind,
    x: &[u64],
    stage: u32,
    twiddle: &[u64],
) -> Result<(Vec<u64>, Tally)> {
    let n = x.len();
    let half = n / 2;
    let mut blk = MemoryBlock::with_rows(mapping.params().bitwidth, half)?;
    blk.charge_ntt_stage(half, multiplier, mapping.reducer());
    let mut out = vec![0u64; n];
    stage_rows(
        mapping.reducer(),
        mapping.params().q,
        x,
        &mut out,
        stage,
        twiddle,
    );
    Ok((out, blk.tally()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
    use ntt::poly::Polynomial;
    use ntt::schoolbook;
    use pim::reduce::ReductionStyle;
    use proptest::prelude::*;

    fn mapping(n: usize) -> NttMapping {
        let p = ParamSet::for_degree(n).unwrap();
        NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap()
    }

    fn rand_vec(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % q
            })
            .collect()
    }

    #[test]
    fn engine_matches_schoolbook_small() {
        for n in [8usize, 16, 32, 64] {
            let m = mapping(n);
            let q = m.params().q;
            let eng = Engine::new(&m);
            let a = rand_vec(n, q, 1);
            let b = rand_vec(n, q, 2);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, q).unwrap();
            let pb = Polynomial::from_coeffs(b, q).unwrap();
            let expect = schoolbook::multiply(&pa, &pb).unwrap();
            assert_eq!(c, expect.coeffs(), "n = {n}");
        }
    }

    #[test]
    fn engine_matches_software_ntt_paper_degrees() {
        for n in [256usize, 512, 1024, 2048] {
            let p = ParamSet::for_degree(n).unwrap();
            let m = NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap();
            let eng = Engine::new(&m);
            let sw = NttMultiplier::new(&p).unwrap();
            let q = p.q;
            let a = rand_vec(n, q, 7);
            let b = rand_vec(n, q, 8);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, q).unwrap();
            let pb = Polynomial::from_coeffs(b, q).unwrap();
            let expect = sw.multiply(&pa, &pb).unwrap();
            assert_eq!(c, expect.coeffs(), "n = {n}");
        }
    }

    #[test]
    fn multiply_into_reuses_the_output_vector() {
        let m = mapping(256);
        let q = m.params().q;
        let eng = Engine::new(&m);
        let a = rand_vec(256, q, 31);
        let b = rand_vec(256, q, 32);
        let (expect, expect_trace) = eng.multiply(&a, &b).unwrap();
        let mut out = vec![0xFFFF_FFFFu64; 3]; // wrong size and junk data
        for _ in 0..3 {
            let trace = eng.multiply_into(&a, &b, &mut out).unwrap();
            assert_eq!(out, expect);
            assert_eq!(trace, expect_trace);
        }
    }

    #[test]
    fn baseline_multiplier_same_result_more_cycles() {
        let m = mapping(256);
        let q = m.params().q;
        let a = rand_vec(256, q, 3);
        let b = rand_vec(256, q, 4);
        let fast = Engine::new(&m);
        let slow = Engine::new(&m).with_multiplier(MultiplierKind::HajAli);
        let (cf, tf) = fast.multiply(&a, &b).unwrap();
        let (cs, ts) = slow.multiply(&a, &b).unwrap();
        assert_eq!(cf, cs, "multiplier choice cannot change results");
        assert!(ts.total().cycles > tf.total().cycles);
    }

    #[test]
    fn trace_phases_all_nonzero() {
        let m = mapping(256);
        let q = m.params().q;
        let eng = Engine::new(&m);
        let (_, tr) = eng
            .multiply(&rand_vec(256, q, 5), &rand_vec(256, q, 6))
            .unwrap();
        for (name, t) in [
            ("premul", &tr.premul),
            ("forward", &tr.forward),
            ("pointwise", &tr.pointwise),
            ("inverse", &tr.inverse),
            ("postmul", &tr.postmul),
            ("transfers", &tr.transfers),
        ] {
            assert!(t.cycles > 0, "{name} phase must cost cycles");
            assert!(t.energy_pj > 0.0, "{name} phase must cost energy");
        }
        // Forward covers two polynomials: about twice the inverse cost.
        let ratio = tr.forward.cycles as f64 / tr.inverse.cycles as f64;
        assert!((ratio - 2.0).abs() < 0.01, "fwd/inv cycle ratio {ratio}");
        assert_eq!(
            tr.total().cycles,
            tr.premul.cycles
                + tr.forward.cycles
                + tr.pointwise.cycles
                + tr.inverse.cycles
                + tr.postmul.cycles
                + tr.transfers.cycles
        );
    }

    #[test]
    fn trace_cycles_match_analytic_op_counts() {
        // premul: 2 (mul+REDC); per fwd stage ×2 sides and per inv stage:
        // add + barrett + sub + mul + REDC; pointwise & postmul: mul+REDC.
        let n = 512usize;
        let m = mapping(n);
        let q = m.params().q;
        let w = m.params().bitwidth;
        let red = m.reducer();
        let eng = Engine::new(&m);
        let (_, tr) = eng
            .multiply(&rand_vec(n, q, 9), &rand_vec(n, q, 10))
            .unwrap();
        let mul_redc = pim::cost::mul_cycles(w) + red.montgomery_cycles();
        let stage =
            pim::cost::add_cycles(w) + red.barrett_cycles() + pim::cost::sub_cycles(w) + mul_redc;
        let log_n = n.trailing_zeros() as u64;
        assert_eq!(tr.premul.cycles, 2 * mul_redc);
        assert_eq!(tr.forward.cycles, 2 * log_n * stage);
        assert_eq!(tr.inverse.cycles, log_n * stage);
        assert_eq!(tr.pointwise.cycles, mul_redc);
        assert_eq!(tr.postmul.cycles, mul_redc);
        assert_eq!(
            tr.transfers.cycles,
            3 * log_n * pim::cost::switch_transfer_cycles(w)
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        for n in [64usize, 256, 512] {
            let m = mapping(n);
            let q = m.params().q;
            let a = rand_vec(n, q, 11);
            let b = rand_vec(n, q, 12);
            let (c_seq, t_seq) = Engine::new(&m)
                .with_threads(Threads::Fixed(1))
                .multiply(&a, &b)
                .unwrap();
            for workers in [2usize, 3, 4, 8] {
                let (c_par, t_par) = Engine::new(&m)
                    .with_threads(Threads::Fixed(workers))
                    .multiply(&a, &b)
                    .unwrap();
                assert_eq!(c_par, c_seq, "products, n = {n}, workers = {workers}");
                assert_eq!(t_par, t_seq, "trace, n = {n}, workers = {workers}");
                assert_eq!(
                    t_par.total().energy_pj.to_bits(),
                    t_seq.total().energy_pj.to_bits(),
                    "energy must match to the last bit, n = {n}, workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn batch_fused_matches_per_job_sequential() {
        for n in [64usize, 256] {
            let m = mapping(n);
            let q = m.params().q;
            let eng = Engine::new(&m).with_threads(Threads::Fixed(1));
            for batch in 1..=4usize {
                let a: Vec<u64> = (0..batch)
                    .flat_map(|j| rand_vec(n, q, 100 + j as u64))
                    .collect();
                let b: Vec<u64> = (0..batch)
                    .flat_map(|j| rand_vec(n, q, 200 + j as u64))
                    .collect();
                let mut fused = Vec::new();
                let trace = eng.multiply_batch_into(&a, &b, &mut fused).unwrap();
                let mut expect = EngineTrace::default();
                for j in 0..batch {
                    let (c, t) = eng
                        .multiply(&a[j * n..(j + 1) * n], &b[j * n..(j + 1) * n])
                        .unwrap();
                    assert_eq!(
                        &fused[j * n..(j + 1) * n],
                        &c[..],
                        "lane {j}, n = {n}, B = {batch}"
                    );
                    expect.merge(&t);
                }
                assert_eq!(trace, expect, "n = {n}, B = {batch}");
                assert_eq!(
                    trace.total().energy_pj.to_bits(),
                    expect.total().energy_pj.to_bits(),
                    "batch energy must match merged per-job energy to the bit"
                );
            }
        }
    }

    #[test]
    fn batch_parallel_is_bit_identical_to_batch_sequential() {
        let n = 256usize;
        let batch = 4usize;
        let m = mapping(n);
        let q = m.params().q;
        let a: Vec<u64> = (0..batch)
            .flat_map(|j| rand_vec(n, q, 41 + j as u64))
            .collect();
        let b: Vec<u64> = (0..batch)
            .flat_map(|j| rand_vec(n, q, 51 + j as u64))
            .collect();
        let mut seq = Vec::new();
        let t_seq = Engine::new(&m)
            .with_threads(Threads::Fixed(1))
            .multiply_batch_into(&a, &b, &mut seq)
            .unwrap();
        for workers in [2usize, 3, 4, 8] {
            let mut par_out = Vec::new();
            let t_par = Engine::new(&m)
                .with_threads(Threads::Fixed(workers))
                .multiply_batch_into(&a, &b, &mut par_out)
                .unwrap();
            assert_eq!(par_out, seq, "products, workers = {workers}");
            assert_eq!(t_par, t_seq, "trace, workers = {workers}");
        }
    }

    #[test]
    fn cached_hit_is_bit_identical_to_miss() {
        let n = 256usize;
        let m = mapping(n);
        let q = m.params().q;
        let eng = Engine::new(&m).with_threads(Threads::Fixed(1));
        let a = rand_vec(n, q, 61);
        let b = rand_vec(n, q, 62);
        let mut miss_out = Vec::new();
        let mut image = Vec::new();
        let t_miss = eng
            .multiply_batch_cached(&a, &b, &mut miss_out, &[], Some(&mut image))
            .unwrap();
        assert_eq!(image.len(), n, "miss lane must capture its image");
        let cached = [Some(image.as_slice())];
        let mut hit_out = Vec::new();
        let t_hit = eng
            .multiply_batch_cached(&a, &b, &mut hit_out, &cached, None)
            .unwrap();
        assert_eq!(hit_out, miss_out, "hit product must match miss product");
        assert!(
            t_hit.forward.cycles * 2 == t_miss.forward.cycles,
            "hit lane charges half the forward work"
        );
        assert!(t_hit.premul.cycles < t_miss.premul.cycles);
        assert_eq!(t_hit.pointwise, t_miss.pointwise);
        assert_eq!(t_hit.inverse, t_miss.inverse);
        assert_eq!(t_hit.postmul, t_miss.postmul);
    }

    #[test]
    fn mixed_hit_miss_batch_matches_per_job() {
        let n = 64usize;
        let m = mapping(n);
        let q = m.params().q;
        let eng = Engine::new(&m).with_threads(Threads::Fixed(1));
        let a0 = rand_vec(n, q, 71);
        let a1 = rand_vec(n, q, 72);
        let b: Vec<u64> = (0..2).flat_map(|j| rand_vec(n, q, 81 + j)).collect();
        // Capture lane-0's image from a solo run.
        let mut out = Vec::new();
        let mut image = Vec::new();
        eng.multiply_batch_cached(&a0, &b[..n], &mut out, &[], Some(&mut image))
            .unwrap();
        // Mixed batch: lane 0 hits, lane 1 misses (and captures).
        let a: Vec<u64> = a0.iter().chain(a1.iter()).copied().collect();
        let cached = [Some(image.as_slice()), None];
        let mut cap = Vec::new();
        let mut mixed = Vec::new();
        eng.multiply_batch_cached(&a, &b, &mut mixed, &cached, Some(&mut cap))
            .unwrap();
        for j in 0..2 {
            let (c, _) = eng
                .multiply(&a[j * n..(j + 1) * n], &b[j * n..(j + 1) * n])
                .unwrap();
            assert_eq!(&mixed[j * n..(j + 1) * n], &c[..], "lane {j}");
        }
        // Hit lane's capture slot is untouched (zeros); miss lane's holds
        // its forward image (usable as a future cache entry).
        assert!(cap[..n].iter().all(|&x| x == 0));
        let cached1 = [Some(&cap[n..])];
        let mut hit1 = Vec::new();
        eng.multiply_batch_cached(&a1, &b[n..], &mut hit1, &cached1, None)
            .unwrap();
        assert_eq!(&hit1[..], &mixed[n..], "captured image replays lane 1");
    }

    #[test]
    fn engine_forward_image_is_the_merged_spectrum() {
        // The engine's post-forward row image is the natural-order
        // canonical spectrum `X[k]`, while the merged software transform
        // stores `X[k]` (lazily) at index `rev(k)` — so normalizing and
        // bit-reverse permuting the merged output must reproduce the
        // image bit for bit (canonical representatives are unique). The
        // hot cache stores *one* image form for the engine splice, the
        // batch capture, and the checker's cached-transform path on the
        // strength of this property.
        for n in [64usize, 256, 1024] {
            let m = mapping(n);
            let q = m.params().q;
            let eng = Engine::new(&m).with_threads(Threads::Fixed(1));
            let a = rand_vec(n, q, 21);
            let b = rand_vec(n, q, 22);
            let mut out = Vec::new();
            let mut image = Vec::new();
            eng.multiply_batch_cached(&a, &b, &mut out, &[], Some(&mut image))
                .unwrap();
            let tables = modmath::roots::NttTables::for_degree_modulus(n, q).unwrap();
            let mut sw = a.clone();
            ntt::merged::forward_lazy_in_place(&mut sw, &tables);
            for v in &mut sw {
                if *v >= q {
                    *v -= q;
                }
            }
            modmath::bitrev::permute_in_place(&mut sw);
            assert_eq!(sw, image, "n = {n}");
        }
    }

    #[test]
    fn batch_rejects_bad_shapes() {
        let n = 64usize;
        let m = mapping(n);
        let q = m.params().q;
        let eng = Engine::new(&m);
        let a = rand_vec(2 * n, q, 91);
        let b = rand_vec(2 * n, q, 92);
        let mut out = Vec::new();
        // Length not a multiple of n / mismatched lengths / empty.
        assert!(eng
            .multiply_batch_into(&a[..n + 1], &b[..n + 1], &mut out)
            .is_err());
        assert!(eng.multiply_batch_into(&a, &b[..n], &mut out).is_err());
        assert!(eng.multiply_batch_into(&[], &[], &mut out).is_err());
        // `cached` must be one entry per job with n-word images.
        let img = vec![0u64; n];
        let one = [Some(img.as_slice())];
        assert!(eng
            .multiply_batch_cached(&a, &b, &mut out, &one, None)
            .is_err());
        let short = vec![0u64; n - 1];
        let bad = [Some(short.as_slice()), None];
        assert!(eng
            .multiply_batch_cached(&a, &b, &mut out, &bad, None)
            .is_err());
    }

    #[test]
    fn parallel_engine_rejects_wrong_length_inputs() {
        let m = mapping(256);
        let q = m.params().q;
        let eng = Engine::new(&m).with_threads(Threads::Fixed(4));
        let a = rand_vec(128, q, 1);
        let b = rand_vec(256, q, 2);
        assert!(eng.multiply(&a, &b).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_engine_matches_schoolbook(
            a in proptest::collection::vec(0u64..7681, 64),
            b in proptest::collection::vec(0u64..7681, 64),
        ) {
            let m = mapping(64);
            let eng = Engine::new(&m);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, 7681).unwrap();
            let pb = Polynomial::from_coeffs(b, 7681).unwrap();
            let expect = schoolbook::multiply(&pa, &pb).unwrap();
            prop_assert_eq!(c, expect.coeffs());
        }
    }

    /// Deterministic coefficient stream for the proptests below (the
    /// strategy drives only the seed, so shrinking stays fast even for
    /// `8·256`-word batches).
    fn seeded_flat(n: usize, q: u64, batch: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut state = seed | 1;
        let mut draw = |len: usize| -> Vec<u64> {
            (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 11) % q
                })
                .collect()
        };
        (draw(batch * n), draw(batch * n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// The batch-fused walk must be indistinguishable from `B`
        /// sequential engine runs — products, per-phase charge tallies,
        /// and the merged trace totals, bit for bit, for every batch
        /// width the serving layer forms and every paper modulus.
        #[test]
        fn prop_batch_fused_matches_sequential_across_moduli(
            batch in 1usize..=8,
            q_sel in 0usize..3,
            seed in 0u64..u64::MAX,
        ) {
            let n = 256usize;
            let q = [7681u64, 12289, 786433][q_sel];
            // Paper bitwidths: 16-bit datapath for the Kyber/NewHope
            // moduli, 32-bit for the SEAL modulus.
            let p = ParamSet::custom(n, q, if q < 1 << 16 { 16 } else { 32 }).unwrap();
            let m = NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap();
            let eng = Engine::new(&m).with_threads(Threads::Fixed(1));
            let (a, b) = seeded_flat(n, q, batch, seed);
            let mut fused = Vec::new();
            let trace = eng.multiply_batch_into(&a, &b, &mut fused).unwrap();
            let mut expect = EngineTrace::default();
            for j in 0..batch {
                let (c, t) = eng
                    .multiply(&a[j * n..(j + 1) * n], &b[j * n..(j + 1) * n])
                    .unwrap();
                prop_assert_eq!(
                    &fused[j * n..(j + 1) * n],
                    &c[..],
                    "lane {} of {}, q = {}",
                    j,
                    batch,
                    q
                );
                expect.merge(&t);
            }
            prop_assert_eq!(&trace, &expect, "trace, B = {}, q = {}", batch, q);
            prop_assert_eq!(
                trace.total().energy_pj.to_bits(),
                expect.total().energy_pj.to_bits(),
                "energy tally, B = {}, q = {}",
                batch,
                q
            );
        }

        /// A cache hit replays the captured image; the products must be
        /// bit-identical to the all-miss run for any batch shape and
        /// any subset of hit lanes.
        #[test]
        fn prop_cached_hits_match_misses(
            batch in 1usize..=6,
            hit_mask in 0u8..64,
            seed in 0u64..u64::MAX,
        ) {
            let n = 64usize;
            let m = mapping(n);
            let q = m.params().q;
            let eng = Engine::new(&m).with_threads(Threads::Fixed(1));
            let (a, b) = seeded_flat(n, q, batch, seed);
            // All-miss reference, capturing every lane's forward image.
            let mut miss_out = Vec::new();
            let mut images = Vec::new();
            eng.multiply_batch_cached(
                &a,
                &b,
                &mut miss_out,
                &vec![None; batch],
                Some(&mut images),
            )
            .unwrap();
            // Replay with an arbitrary subset of lanes served from the
            // captured images.
            let cached: Vec<Option<&[u64]>> = (0..batch)
                .map(|j| {
                    (hit_mask >> j & 1 == 1).then(|| &images[j * n..(j + 1) * n])
                })
                .collect();
            let mut mixed_out = Vec::new();
            eng.multiply_batch_cached(&a, &b, &mut mixed_out, &cached, None)
                .unwrap();
            prop_assert_eq!(mixed_out, miss_out, "hit mask {:#08b}", hit_mask);
        }
    }
}

//! The functional executor: a real polynomial multiplication driven
//! through PIM memory-block operations.
//!
//! Every vector-wide arithmetic step of Algorithm 1 is executed with
//! [`MemoryBlock`]-equivalent operations — producing the actual product
//! (verified against the software NTT in the test suite) *and* an honest
//! cycle/energy trace for exactly the operations the hardware performs.
//!
//! The steady state is allocation-free and spawn-free (DESIGN.md §10):
//! the charge schedule and index structure come from a cached
//! [`StagePlan`], the working vectors from a thread-local [`Scratch`]
//! arena, and multi-worker fan-out runs on the persistent pool behind
//! [`pim::par`]. Accounting is replayed from the plan in the exact
//! historical charge order, so traces — including the f64 energy sums —
//! stay bit-identical to the op-by-op charging they replace.
//!
//! A note on widths: the engine operates on full-length vectors. A
//! degree-`n` polynomial physically spans `⌈n/512⌉` parallel lanes
//! (banks) whose blocks all execute the same op in the same cycles, so
//! the virtual "block" here carries `n` rows: identical cycle counts,
//! and energy identical to summing the physical lanes. The physical
//! bank arithmetic is in [`crate::arch`].

use crate::mapping::NttMapping;
use crate::plan::StagePlan;
use crate::scratch::Scratch;
use pim::block::{MemoryBlock, MultiplierKind};
use pim::fault::{layout, WritePath};
use pim::par::{self, Threads};
use pim::reduce::Reducer;
use pim::stats::Tally;
use pim::{PimError, Result};

/// Per-phase operation tallies from one functional execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineTrace {
    /// ψ pre-multiply of both inputs.
    pub premul: Tally,
    /// Forward NTT stages (both inputs).
    pub forward: Tally,
    /// Point-wise multiplication.
    pub pointwise: Tally,
    /// Inverse NTT stages.
    pub inverse: Tally,
    /// ψ⁻¹·n⁻¹ post-multiply.
    pub postmul: Tally,
    /// Inter-block transfers (butterfly partner exchanges).
    pub transfers: Tally,
}

impl EngineTrace {
    /// Sum of all phases.
    pub fn total(&self) -> Tally {
        let mut t = Tally::new();
        for part in [
            &self.premul,
            &self.forward,
            &self.pointwise,
            &self.inverse,
            &self.postmul,
            &self.transfers,
        ] {
            t.absorb(part);
        }
        t
    }
}

/// The functional execution engine for one parameter set.
#[derive(Debug, Clone)]
pub struct Engine<'m> {
    mapping: &'m NttMapping,
    multiplier: MultiplierKind,
    threads: Threads,
    writes: Option<&'m dyn WritePath>,
}

impl<'m> Engine<'m> {
    /// Creates an engine over a mapping, using the given multiplier
    /// microprogram (CryptoPIM's by default; baselines pass \[35\]'s).
    pub fn new(mapping: &'m NttMapping) -> Self {
        Engine {
            mapping,
            multiplier: MultiplierKind::CryptoPim,
            threads: Threads::Auto,
            writes: None,
        }
    }

    /// Selects the multiplier microprogram.
    pub fn with_multiplier(mut self, kind: MultiplierKind) -> Self {
        self.multiplier = kind;
        self
    }

    /// Selects the host-thread fan-out policy for lane execution.
    ///
    /// Any worker count produces the same products and a bit-identical
    /// [`EngineTrace`] — the charge sequence is data-oblivious and is
    /// always replayed in sequential order (see [`pim::par`]).
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// Installs a (possibly faulty) block write path.
    ///
    /// Every phase write is routed through the hook while the path is
    /// armed, so injected faults become functional corruption of the
    /// product. With `None` (the default) or an unarmed path the
    /// datapath is byte-for-byte the fault-free hot path — the cost of
    /// the hook is one `Option` check per phase. An armed path forces
    /// the sequential datapath: per-word store order is part of the
    /// deterministic-replay contract, and wear-out epochs must not race
    /// host threads.
    pub fn with_write_path(mut self, writes: Option<&'m dyn WritePath>) -> Self {
        self.writes = writes;
        self
    }

    /// Runs `c = a · b` in `Z_q[x]/(x^n + 1)` through the PIM datapath.
    ///
    /// Inputs must be canonical coefficient vectors of length `n`; the
    /// output is the canonical product plus the execution trace.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::LengthMismatch`] when either input's length
    /// differs from the configured degree.
    ///
    /// # Panics
    ///
    /// Debug-panics if inputs are not canonical (`>= q`).
    pub fn multiply(&self, a: &[u64], b: &[u64]) -> Result<(Vec<u64>, EngineTrace)> {
        let mut out = Vec::new();
        let trace = self.multiply_into(a, b, &mut out)?;
        Ok((out, trace))
    }

    /// [`Engine::multiply`] into a caller-owned output vector.
    ///
    /// `out` is cleared and resized to `n`; reusing the same vector
    /// across calls makes the steady-state loop allocation-free (the
    /// plan is cached, the scratch slab pooled, and `out`'s capacity
    /// retained) — asserted by `tests/alloc_steady_state.rs`.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::multiply`].
    ///
    /// # Panics
    ///
    /// Debug-panics if inputs are not canonical (`>= q`).
    pub fn multiply_into(&self, a: &[u64], b: &[u64], out: &mut Vec<u64>) -> Result<EngineTrace> {
        let n = self.mapping.params().n;
        let q = self.mapping.params().q;
        if a.len() != n || b.len() != n {
            return Err(PimError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        debug_assert!(a.iter().all(|&x| x < q) && b.iter().all(|&x| x < q));
        let plan = StagePlan::cached(self.mapping, self.multiplier)?;
        let mut scratch = Scratch::checkout(n);
        out.clear();
        out.resize(n, 0);
        let faults = self.writes.filter(|w| w.armed());
        if let Some(w) = faults {
            w.begin_op();
        }
        let workers = if faults.is_some() {
            1
        } else {
            self.threads.resolve_for(n)
        };
        if workers > 1 {
            self.datapath_parallel(&plan, &mut scratch, a, b, out, workers);
        } else {
            self.datapath_sequential(&plan, &mut scratch, a, b, out, faults);
        }
        Ok(replay_trace(&plan))
    }

    /// The reference single-thread datapath (also the workers ≤ 1 path):
    /// bit-reversal folded into the ψ pre-multiply gather, then fused
    /// row-centric butterfly stages double-buffered through the scratch
    /// arena.
    fn datapath_sequential(
        &self,
        plan: &StagePlan,
        scratch: &mut Scratch,
        a: &[u64],
        b: &[u64],
        out: &mut [u64],
        faults: Option<&dyn WritePath>,
    ) {
        let n = plan.n();
        let log_n = plan.log_n();
        let q = self.mapping.params().q;
        let red = self.mapping.reducer();
        let rev = plan.rev();
        let (mut xa, mut xa2, mut xb, mut xb2) = scratch.buffers();

        // --- ψ pre-multiply, bit-reversed write folded in (free). ---
        let phi_a = self.mapping.phi_a();
        let phi_b = self.mapping.phi_b();
        for k in 0..n {
            let i = rev[k] as usize;
            xa[k] = red.montgomery(a[i] * phi_a[i]);
            xb[k] = red.montgomery(b[i] * phi_b[i]);
        }
        corrupt_writes(faults, q, layout::premul(), xa);

        // --- forward NTT stages (the two inputs in parallel banks). ---
        for stage in 0..log_n {
            let tw = self.mapping.twiddle_fwd_stage(stage);
            stage_rows(red, q, xa, xa2, stage, tw);
            stage_rows(red, q, xb, xb2, stage, tw);
            corrupt_writes(faults, q, layout::forward(stage), xa2);
            std::mem::swap(&mut xa, &mut xa2);
            std::mem::swap(&mut xb, &mut xb2);
        }

        // --- point-wise multiply, REDC(Â · B̂R) = Â·B̂; bit-reversed
        //     write into the inverse transform folded in (free). ---
        for k in 0..n {
            let i = rev[k] as usize;
            xa2[k] = red.montgomery(xa[i] * xb[i]);
        }
        corrupt_writes(faults, q, layout::pointwise(log_n), xa2);
        let (mut xc, mut xc2) = (xa2, xb2);

        // --- inverse NTT stages. ---
        for stage in 0..log_n {
            stage_rows(
                red,
                q,
                xc,
                xc2,
                stage,
                self.mapping.twiddle_inv_stage(stage),
            );
            corrupt_writes(faults, q, layout::inverse(log_n, stage), xc2);
            std::mem::swap(&mut xc, &mut xc2);
        }

        // --- ψ⁻¹ · n⁻¹ post-multiply. ---
        let phi_post = self.mapping.phi_post();
        for k in 0..n {
            out[k] = red.montgomery(xc[k] * phi_post[k]);
        }
        corrupt_writes(faults, q, layout::postmul(log_n), out);
    }

    /// Lane-parallel datapath: the same phase structure as
    /// [`Engine::datapath_sequential`], fanned out over the persistent
    /// worker pool. Every output element is a pure gather of its inputs,
    /// so chunking the index space across threads cannot reorder or
    /// change any value — products are identical for any worker count
    /// (and the trace is replayed from the plan either way).
    fn datapath_parallel(
        &self,
        plan: &StagePlan,
        scratch: &mut Scratch,
        a: &[u64],
        b: &[u64],
        out: &mut [u64],
        workers: usize,
    ) {
        let q = self.mapping.params().q;
        let red = self.mapping.reducer();
        let rev = plan.rev();
        let (mut xa, mut xa2, mut xb, mut xb2) = scratch.buffers();

        // --- ψ pre-multiply, bit-reversal folded into the gather. ---
        let phi_a = self.mapping.phi_a();
        let phi_b = self.mapping.phi_b();
        par::map_indexed_into(xa, workers, |k| {
            let i = rev[k] as usize;
            red.montgomery(a[i] * phi_a[i])
        });
        par::map_indexed_into(xb, workers, |k| {
            let i = rev[k] as usize;
            red.montgomery(b[i] * phi_b[i])
        });

        // --- forward NTT stages. ---
        for stage in 0..plan.log_n() {
            let tw = self.mapping.twiddle_fwd_stage(stage);
            stage_rows_par(red, q, xa, xa2, stage, tw, workers);
            stage_rows_par(red, q, xb, xb2, stage, tw, workers);
            std::mem::swap(&mut xa, &mut xa2);
            std::mem::swap(&mut xb, &mut xb2);
        }

        // --- point-wise multiply, bit-reversal folded into the gather. ---
        {
            let (src_a, src_b) = (&*xa, &*xb);
            par::map_indexed_into(xa2, workers, |k| {
                let i = rev[k] as usize;
                red.montgomery(src_a[i] * src_b[i])
            });
        }
        let (mut xc, mut xc2) = (xa2, xb2);

        // --- inverse NTT stages. ---
        for stage in 0..plan.log_n() {
            let tw = self.mapping.twiddle_inv_stage(stage);
            stage_rows_par(red, q, xc, xc2, stage, tw, workers);
            std::mem::swap(&mut xc, &mut xc2);
        }

        // --- ψ⁻¹ · n⁻¹ post-multiply. ---
        let phi_post = self.mapping.phi_post();
        {
            let src = &*xc;
            par::map_indexed_into(out, workers, |k| red.montgomery(src[k] * phi_post[k]));
        }
    }
}

/// Replays the plan's charge schedule in the exact historical order:
/// pre-multiply; per forward stage two stage tallies then two transfer
/// tallies (the two inputs travel in parallel banks — energy for both,
/// latency for one); point-wise scale; per inverse stage one of each;
/// post-multiply scale. Each absorbed tally was accumulated from zero by
/// the same charge twins the op-by-op engine called, so every f64 energy
/// sum reproduces the pre-plan trace bit-for-bit.
fn replay_trace(plan: &StagePlan) -> EngineTrace {
    let mut trace = EngineTrace::default();
    trace.premul.absorb(plan.premul());
    for _ in 0..plan.log_n() {
        trace.forward.absorb(plan.stage());
        trace.forward.absorb(plan.stage());
        trace.transfers.absorb(plan.transfer());
        trace.transfers.absorb(plan.transfer());
    }
    trace.pointwise.absorb(plan.scale());
    for _ in 0..plan.log_n() {
        trace.inverse.absorb(plan.stage());
        trace.transfers.absorb(plan.transfer());
    }
    trace.postmul.absorb(plan.scale());
    trace
}

/// Routes one phase's freshly written vector through the bank's write
/// path, materializing injected faults. A corrupted word is
/// re-canonicalized mod `q` before it re-enters the pipeline: the cell
/// array stores whatever bits the fault left, but the next phase's
/// sense amplifiers interpret them as a residue, and the engine's
/// reduction microprograms carry `< 2q` input contracts that physical
/// values must keep satisfying. Reduction never masks a fault — a flip
/// of bit `i` changes the residue by `±2^i mod q ≠ 0`.
fn corrupt_writes(faults: Option<&dyn WritePath>, q: u64, block: u32, data: &mut [u64]) {
    if let Some(w) = faults {
        for (row, v) in data.iter_mut().enumerate() {
            let stored = w.store(block, row as u32, *v);
            if stored != *v {
                *v = stored % q;
            }
        }
    }
}

/// One fused Gentleman–Sande stage in row-centric order: butterfly block
/// `b` spans rows `[b·2^{stage+1}, (b+1)·2^{stage+1})` and uses the
/// single twiddle factor `W_b`, so the old gather → vector-op → scatter
/// round trip collapses into one pass with no index tables:
/// `dst[j] = (t + u) mod q`, `dst[j+dist] = REDC(W_b · (t + q − u))`.
fn stage_rows(red: &Reducer, q: u64, src: &[u64], dst: &mut [u64], stage: u32, twiddle: &[u64]) {
    // Monomorphize on the paper moduli so the shift-add sequences fold
    // to immediate-constant shifts inside the loop. The const paths call
    // the exact functions `Reducer::{barrett, montgomery}` delegate to,
    // so results are identical; only unspecialized moduli (none today —
    // `Reducer::new` rejects them) would take the dynamic path.
    match q {
        7681 => stage_rows_const::<7681>(src, dst, stage, twiddle),
        12289 => stage_rows_const::<12289>(src, dst, stage, twiddle),
        786433 => stage_rows_const::<786433>(src, dst, stage, twiddle),
        _ => stage_rows_dyn(red, q, src, dst, stage, twiddle),
    }
}

fn stage_rows_const<const Q: u64>(src: &[u64], dst: &mut [u64], stage: u32, twiddle: &[u64]) {
    let dist = 1usize << stage;
    for ((s, d), &w) in src
        .chunks_exact(2 * dist)
        .zip(dst.chunks_exact_mut(2 * dist))
        .zip(twiddle)
    {
        let (s_lo, s_hi) = s.split_at(dist);
        let (d_lo, d_hi) = d.split_at_mut(dist);
        for ((&t, &u), (dl, dh)) in s_lo.iter().zip(s_hi).zip(d_lo.iter_mut().zip(d_hi)) {
            *dl = modmath::barrett::shift_add_reduce(t + u, Q).expect("paper modulus");
            *dh = modmath::montgomery::shift_add_redc((t + Q - u) * w, Q).expect("paper modulus");
        }
    }
}

fn stage_rows_dyn(
    red: &Reducer,
    q: u64,
    src: &[u64],
    dst: &mut [u64],
    stage: u32,
    twiddle: &[u64],
) {
    let dist = 1usize << stage;
    for ((s, d), &w) in src
        .chunks_exact(2 * dist)
        .zip(dst.chunks_exact_mut(2 * dist))
        .zip(twiddle)
    {
        let (s_lo, s_hi) = s.split_at(dist);
        let (d_lo, d_hi) = d.split_at_mut(dist);
        for ((&t, &u), (dl, dh)) in s_lo.iter().zip(s_hi).zip(d_lo.iter_mut().zip(d_hi)) {
            *dl = red.barrett(t + u);
            *dh = red.montgomery((t + q - u) * w);
        }
    }
}

/// [`stage_rows`] as an index-wise gather for pool fan-out: output `k`
/// with the stage bit clear is an add-side row, with it set a mul-side
/// row — elementwise identical to the sequential pass.
fn stage_rows_par(
    red: &Reducer,
    q: u64,
    src: &[u64],
    dst: &mut [u64],
    stage: u32,
    twiddle: &[u64],
    workers: usize,
) {
    let dist = 1usize << stage;
    par::map_indexed_into(dst, workers, |k| {
        if k & dist == 0 {
            red.barrett(src[k] + src[k + dist])
        } else {
            let j = k - dist;
            red.montgomery((src[j] + q - src[k]) * twiddle[j >> (stage + 1)])
        }
    });
}

/// One Gentleman–Sande stage, vector-wide:
/// `x[j] ← (T + x[j']) mod q`, `x[j'] ← REDC(W·(T + q − x[j']))`.
///
/// The butterfly partner arrives through the stage's fixed-function
/// switch (shift `s = 2^stage`); the add-side and mul-side each activate
/// `n/2` rows, charged through the block's cost-only twins (identical
/// tallies to the real vector ops they mirror). Used by the
/// [`crate::controller::Controller`]; the [`Engine`] replays the same
/// per-stage tally from its cached plan.
pub(crate) fn ntt_stage(
    mapping: &NttMapping,
    multiplier: MultiplierKind,
    x: &[u64],
    stage: u32,
    twiddle: &[u64],
) -> Result<(Vec<u64>, Tally)> {
    let n = x.len();
    let half = n / 2;
    let mut blk = MemoryBlock::with_rows(mapping.params().bitwidth, half)?;
    blk.charge_ntt_stage(half, multiplier, mapping.reducer());
    let mut out = vec![0u64; n];
    stage_rows(
        mapping.reducer(),
        mapping.params().q,
        x,
        &mut out,
        stage,
        twiddle,
    );
    Ok((out, blk.tally()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;
    use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
    use ntt::poly::Polynomial;
    use ntt::schoolbook;
    use pim::reduce::ReductionStyle;
    use proptest::prelude::*;

    fn mapping(n: usize) -> NttMapping {
        let p = ParamSet::for_degree(n).unwrap();
        NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap()
    }

    fn rand_vec(n: usize, q: u64, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % q
            })
            .collect()
    }

    #[test]
    fn engine_matches_schoolbook_small() {
        for n in [8usize, 16, 32, 64] {
            let m = mapping(n);
            let q = m.params().q;
            let eng = Engine::new(&m);
            let a = rand_vec(n, q, 1);
            let b = rand_vec(n, q, 2);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, q).unwrap();
            let pb = Polynomial::from_coeffs(b, q).unwrap();
            let expect = schoolbook::multiply(&pa, &pb).unwrap();
            assert_eq!(c, expect.coeffs(), "n = {n}");
        }
    }

    #[test]
    fn engine_matches_software_ntt_paper_degrees() {
        for n in [256usize, 512, 1024, 2048] {
            let p = ParamSet::for_degree(n).unwrap();
            let m = NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap();
            let eng = Engine::new(&m);
            let sw = NttMultiplier::new(&p).unwrap();
            let q = p.q;
            let a = rand_vec(n, q, 7);
            let b = rand_vec(n, q, 8);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, q).unwrap();
            let pb = Polynomial::from_coeffs(b, q).unwrap();
            let expect = sw.multiply(&pa, &pb).unwrap();
            assert_eq!(c, expect.coeffs(), "n = {n}");
        }
    }

    #[test]
    fn multiply_into_reuses_the_output_vector() {
        let m = mapping(256);
        let q = m.params().q;
        let eng = Engine::new(&m);
        let a = rand_vec(256, q, 31);
        let b = rand_vec(256, q, 32);
        let (expect, expect_trace) = eng.multiply(&a, &b).unwrap();
        let mut out = vec![0xFFFF_FFFFu64; 3]; // wrong size and junk data
        for _ in 0..3 {
            let trace = eng.multiply_into(&a, &b, &mut out).unwrap();
            assert_eq!(out, expect);
            assert_eq!(trace, expect_trace);
        }
    }

    #[test]
    fn baseline_multiplier_same_result_more_cycles() {
        let m = mapping(256);
        let q = m.params().q;
        let a = rand_vec(256, q, 3);
        let b = rand_vec(256, q, 4);
        let fast = Engine::new(&m);
        let slow = Engine::new(&m).with_multiplier(MultiplierKind::HajAli);
        let (cf, tf) = fast.multiply(&a, &b).unwrap();
        let (cs, ts) = slow.multiply(&a, &b).unwrap();
        assert_eq!(cf, cs, "multiplier choice cannot change results");
        assert!(ts.total().cycles > tf.total().cycles);
    }

    #[test]
    fn trace_phases_all_nonzero() {
        let m = mapping(256);
        let q = m.params().q;
        let eng = Engine::new(&m);
        let (_, tr) = eng
            .multiply(&rand_vec(256, q, 5), &rand_vec(256, q, 6))
            .unwrap();
        for (name, t) in [
            ("premul", &tr.premul),
            ("forward", &tr.forward),
            ("pointwise", &tr.pointwise),
            ("inverse", &tr.inverse),
            ("postmul", &tr.postmul),
            ("transfers", &tr.transfers),
        ] {
            assert!(t.cycles > 0, "{name} phase must cost cycles");
            assert!(t.energy_pj > 0.0, "{name} phase must cost energy");
        }
        // Forward covers two polynomials: about twice the inverse cost.
        let ratio = tr.forward.cycles as f64 / tr.inverse.cycles as f64;
        assert!((ratio - 2.0).abs() < 0.01, "fwd/inv cycle ratio {ratio}");
        assert_eq!(
            tr.total().cycles,
            tr.premul.cycles
                + tr.forward.cycles
                + tr.pointwise.cycles
                + tr.inverse.cycles
                + tr.postmul.cycles
                + tr.transfers.cycles
        );
    }

    #[test]
    fn trace_cycles_match_analytic_op_counts() {
        // premul: 2 (mul+REDC); per fwd stage ×2 sides and per inv stage:
        // add + barrett + sub + mul + REDC; pointwise & postmul: mul+REDC.
        let n = 512usize;
        let m = mapping(n);
        let q = m.params().q;
        let w = m.params().bitwidth;
        let red = m.reducer();
        let eng = Engine::new(&m);
        let (_, tr) = eng
            .multiply(&rand_vec(n, q, 9), &rand_vec(n, q, 10))
            .unwrap();
        let mul_redc = pim::cost::mul_cycles(w) + red.montgomery_cycles();
        let stage =
            pim::cost::add_cycles(w) + red.barrett_cycles() + pim::cost::sub_cycles(w) + mul_redc;
        let log_n = n.trailing_zeros() as u64;
        assert_eq!(tr.premul.cycles, 2 * mul_redc);
        assert_eq!(tr.forward.cycles, 2 * log_n * stage);
        assert_eq!(tr.inverse.cycles, log_n * stage);
        assert_eq!(tr.pointwise.cycles, mul_redc);
        assert_eq!(tr.postmul.cycles, mul_redc);
        assert_eq!(
            tr.transfers.cycles,
            3 * log_n * pim::cost::switch_transfer_cycles(w)
        );
    }

    #[test]
    fn parallel_engine_is_bit_identical_to_sequential() {
        for n in [64usize, 256, 512] {
            let m = mapping(n);
            let q = m.params().q;
            let a = rand_vec(n, q, 11);
            let b = rand_vec(n, q, 12);
            let (c_seq, t_seq) = Engine::new(&m)
                .with_threads(Threads::Fixed(1))
                .multiply(&a, &b)
                .unwrap();
            for workers in [2usize, 3, 4, 8] {
                let (c_par, t_par) = Engine::new(&m)
                    .with_threads(Threads::Fixed(workers))
                    .multiply(&a, &b)
                    .unwrap();
                assert_eq!(c_par, c_seq, "products, n = {n}, workers = {workers}");
                assert_eq!(t_par, t_seq, "trace, n = {n}, workers = {workers}");
                assert_eq!(
                    t_par.total().energy_pj.to_bits(),
                    t_seq.total().energy_pj.to_bits(),
                    "energy must match to the last bit, n = {n}, workers = {workers}"
                );
            }
        }
    }

    #[test]
    fn parallel_engine_rejects_wrong_length_inputs() {
        let m = mapping(256);
        let q = m.params().q;
        let eng = Engine::new(&m).with_threads(Threads::Fixed(4));
        let a = rand_vec(128, q, 1);
        let b = rand_vec(256, q, 2);
        assert!(eng.multiply(&a, &b).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn prop_engine_matches_schoolbook(
            a in proptest::collection::vec(0u64..7681, 64),
            b in proptest::collection::vec(0u64..7681, 64),
        ) {
            let m = mapping(64);
            let eng = Engine::new(&m);
            let (c, _) = eng.multiply(&a, &b).unwrap();
            let pa = Polynomial::from_coeffs(a, 7681).unwrap();
            let pb = Polynomial::from_coeffs(b, 7681).unwrap();
            let expect = schoolbook::multiply(&pa, &pb).unwrap();
            prop_assert_eq!(c, expect.coeffs());
        }
    }
}

//! The pipeline organizations of Fig. 4 and the analytic performance
//! model behind Fig. 5 / Table II.
//!
//! Each vector-wide operation lives in a memory block; blocks chain into
//! a pipeline. Three organizations are compared in the paper (16-bit,
//! n = 256 stage latencies in parentheses):
//!
//! * [`Organization::AreaEfficient`] (2700 cycles) — a whole butterfly
//!   and both of its reductions share one block.
//! * [`Organization::Naive`] (1756 cycles) — computation and modulo in
//!   separate blocks; the subtract feeding the multiplier handles the
//!   unreduced double-width intermediate, costing `7·(2N)+1`.
//! * [`Organization::CryptoPim`] (1643 cycles) — the paper's final
//!   design: `[sub → mul]` in one block and
//!   `[Montgomery → add/sub → Barrett]` combined in the next.
//!
//! Pipelined latency is `depth × stage`, where the critical stage is the
//! multiply block; throughput is one multiplication per stage time.
//! Non-pipelined execution runs the area-efficient chain sequentially
//! (fewest blocks and transfers — what one would build without
//! pipelining), which is what produces the paper's 29 % / 59.7 % latency
//! overheads and ≈ 1.6 % energy overhead of pipelining.
//!
//! This module is purely analytic — it never touches the worker pool or
//! the scratch arenas; those belong to the functional engine
//! (`crate::engine`, `pim::par`).

use crate::mapping::NttMapping;
use modmath::params::ParamSet;
use pim::block::MultiplierKind;
use pim::reduce::Reducer;
use pim::stats::Tally;
use pim::{cost, energy, Result, CYCLE_TIME_NS};

/// A pipeline organization from Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Organization {
    /// Fig. 4a: butterfly + reductions in one block per NTT stage.
    AreaEfficient,
    /// Fig. 4b: every operation in its own block, no stage fusion.
    Naive,
    /// Fig. 4c: the CryptoPIM organization (two blocks per NTT stage).
    CryptoPim,
}

impl std::fmt::Display for Organization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Organization::AreaEfficient => "area-efficient",
            Organization::Naive => "naive",
            Organization::CryptoPim => "CryptoPIM",
        };
        f.write_str(name)
    }
}

/// Latency/throughput/energy figures for one execution mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeReport {
    /// End-to-end latency for one polynomial multiplication, µs.
    pub latency_us: f64,
    /// Multiplications per second (one superbank).
    pub throughput: f64,
    /// Energy per multiplication, µJ.
    pub energy_uj: f64,
    /// Total cycles on the critical path.
    pub cycles: u64,
}

/// The analytic pipeline model for one parameter set.
#[derive(Debug, Clone)]
pub struct PipelineModel {
    params: ParamSet,
    reducer: Reducer,
    multiplier: MultiplierKind,
}

impl PipelineModel {
    /// Builds the model from a mapping (shares its reducer/cost style).
    pub fn new(mapping: &NttMapping) -> Self {
        PipelineModel {
            params: *mapping.params(),
            reducer: mapping.reducer().clone(),
            multiplier: MultiplierKind::CryptoPim,
        }
    }

    /// Selects the multiplier microprogram the model costs with (the
    /// BP-1 baseline uses \[35\]'s).
    pub fn with_multiplier(mut self, multiplier: MultiplierKind) -> Self {
        self.multiplier = multiplier;
        self
    }

    /// Builds the model directly from a parameter set with the standard
    /// CryptoPIM reduction style.
    ///
    /// # Errors
    ///
    /// Fails for moduli without a specialized reduction sequence.
    pub fn for_params(params: &ParamSet) -> Result<Self> {
        Ok(PipelineModel {
            params: *params,
            reducer: Reducer::new(params.q, pim::reduce::ReductionStyle::CryptoPim)?,
            multiplier: MultiplierKind::CryptoPim,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// The critical stage latency (cycles) under an organization.
    ///
    /// For the CryptoPIM organization this reproduces the paper's quoted
    /// 1643 (16-bit) and 6611 (32-bit) values: the multiply block plus
    /// the butterfly subtract (`7N`) and the switch transfer (`3N`).
    pub fn stage_latency(&self, org: Organization) -> u64 {
        let n = self.params.bitwidth;
        let mul = self.multiplier.cycles(n);
        match org {
            Organization::CryptoPim => mul + 10 * n as u64,
            Organization::Naive => {
                // Unfused: the subtract ahead of the multiplier works on
                // the unreduced 2N-bit intermediate.
                cost::sub_cycles(2 * n) + mul + cost::switch_transfer_cycles(n)
            }
            Organization::AreaEfficient => {
                cost::sub_cycles(n)
                    + mul
                    + self.reducer.montgomery_cycles_for(n)
                    + cost::add_cycles(n)
                    + self.reducer.barrett_cycles_for(n)
                    + cost::switch_transfer_cycles(n)
            }
        }
    }

    /// Pipeline depth (stages on the critical path) for degree `n` under
    /// an organization. In the CryptoPIM organization each NTT stage is
    /// two blocks and each scaling phase (ψ-pre, point-wise, ψ-post) is
    /// two blocks: `4·log2(n) + 6`. The area-efficient organization
    /// fuses each of those pairs: `2·log2(n) + 3`. The naive
    /// organization splits each NTT stage over five blocks
    /// (sub, mul, REDC, add, Barrett) and scaling over two:
    /// `10·log2(n) + 6`.
    pub fn depth(&self, org: Organization) -> u64 {
        let log_n = self.params.log2_n() as u64;
        match org {
            Organization::CryptoPim => 4 * log_n + 6,
            Organization::AreaEfficient => 2 * log_n + 3,
            Organization::Naive => 10 * log_n + 6,
        }
    }

    /// Blocks per bank (the paper's §III-D count: one bank carries one
    /// input polynomial's share of the chain — half the total blocks).
    pub fn blocks_per_bank(&self, org: Organization) -> u64 {
        // Total blocks: forward chains are duplicated per input.
        let log_n = self.params.log2_n() as u64;
        let total = match org {
            Organization::CryptoPim => 2 * (2 * log_n + 2) + 2 + (2 * log_n + 2),
            Organization::AreaEfficient => 2 * (log_n + 1) + 1 + (log_n + 1),
            Organization::Naive => 2 * (5 * log_n + 2) + 2 + (5 * log_n + 2),
        };
        total.div_ceil(2)
    }

    /// Total compute+reduce cycles of one full multiplication (the sum
    /// over every block's work — what the non-pipelined design executes
    /// sequentially and what both designs pay in energy).
    fn work_profile(&self) -> WorkProfile {
        let n = self.params.bitwidth;
        let log_n = self.params.log2_n() as u64;
        let mul_redc = self.multiplier.cycles(n) + self.reducer.montgomery_cycles_for(n);
        let stage = cost::add_cycles(n)
            + self.reducer.barrett_cycles_for(n)
            + cost::sub_cycles(n)
            + mul_redc;
        // Critical-path compute: premul (parallel banks → counted once),
        // forward stages (parallel), point-wise, inverse, post-multiply.
        let critical = mul_redc * 3 + stage * 2 * log_n;
        // Total work for energy: both forward chains count.
        let work_row_cycles = mul_redc * 4 + stage * 3 * log_n;
        WorkProfile {
            critical_compute: critical,
            total_work: work_row_cycles,
        }
    }

    /// Performance of the pipelined design (organization `org`): latency
    /// is depth × stage; throughput is one result per stage time.
    pub fn pipelined(&self, org: Organization) -> ModeReport {
        let stage = self.stage_latency(org);
        let depth = self.depth(org);
        let cycles = stage * depth;
        let latency_us = cycles as f64 * CYCLE_TIME_NS / 1000.0;
        let throughput = 1e9 / (stage as f64 * CYCLE_TIME_NS);
        ModeReport {
            latency_us,
            throughput,
            energy_uj: self.energy_uj(self.transfer_count(org)),
            cycles,
        }
    }

    /// Performance of the non-pipelined design: the area-efficient chain
    /// executed sequentially; one multiplication at a time.
    pub fn non_pipelined(&self) -> ModeReport {
        let n = self.params.bitwidth;
        let log_n = self.params.log2_n() as u64;
        let xfer = cost::switch_transfer_cycles(n);
        let scale_block = self.multiplier.cycles(n) + self.reducer.montgomery_cycles_for(n) + xfer;
        let stage_block = self.stage_latency(Organization::AreaEfficient);
        // Critical path: pre-scale, log n forward stages (two inputs in
        // parallel banks), point-wise, log n inverse stages, post-scale.
        let cycles = 3 * scale_block + 2 * log_n * stage_block;
        let latency_us = cycles as f64 * CYCLE_TIME_NS / 1000.0;
        ModeReport {
            latency_us,
            throughput: 1e6 / latency_us,
            energy_uj: self.energy_uj(self.transfer_count(Organization::AreaEfficient)),
            cycles,
        }
    }

    /// Inter-block transfers in one full multiplication under `org`
    /// (every block hands its result to the next through a switch).
    fn transfer_count(&self, org: Organization) -> u64 {
        let log_n = self.params.log2_n() as u64;
        match org {
            Organization::CryptoPim => 2 * (2 * log_n + 2) + 2 + (2 * log_n + 2),
            Organization::AreaEfficient => 2 * (log_n + 1) + 1 + (log_n + 1),
            Organization::Naive => 2 * (5 * log_n + 2) + 2 + (5 * log_n + 2),
        }
    }

    /// Energy of one multiplication: all compute work (identical across
    /// organizations — "the total amount of logic is the same") plus the
    /// organization's transfer energy (what makes pipelining ≈ 1.6 %
    /// more expensive).
    fn energy_uj(&self, transfers: u64) -> f64 {
        let n_rows = self.params.n;
        let wp = self.work_profile();
        // NTT-stage blocks activate n/2 rows per side; scale blocks
        // activate n rows. `total_work` already folds the per-phase op
        // cycles; row-weight them here.
        let n = self.params.bitwidth;
        let log_n = self.params.log2_n() as u64;
        let mul_redc = self.multiplier.cycles(n) + self.reducer.montgomery_cycles_for(n);
        let stage = cost::add_cycles(n)
            + self.reducer.barrett_cycles_for(n)
            + cost::sub_cycles(n)
            + mul_redc;
        let scale_energy = energy::compute_energy_pj(mul_redc * 4, n_rows);
        let stage_energy = energy::compute_energy_pj(stage * 3 * log_n, n_rows / 2);
        let xfer_energy =
            transfers as f64 * energy::transfer_energy_pj(n_rows, self.params.bitwidth);
        let _ = wp; // profile retained for the cross-check tests
        (scale_energy + stage_energy + xfer_energy) / 1e6
    }

    /// The engine-trace total for cross-checking the analytic model
    /// against the functional executor.
    pub fn expected_engine_compute_cycles(&self) -> u64 {
        self.work_profile().total_work
    }

    /// Energy/latency as a [`Tally`] for composition with other costs.
    pub fn pipelined_tally(&self, org: Organization) -> Tally {
        let r = self.pipelined(org);
        Tally {
            cycles: r.cycles,
            energy_pj: r.energy_uj * 1e6,
            ..Tally::default()
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct WorkProfile {
    #[allow(dead_code)]
    critical_compute: u64,
    total_work: u64,
}

/// Evaluates `(pipelined, non_pipelined)` reports for every degree,
/// fanning the independent model evaluations across host threads
/// (`threads`, see [`pim::par::Threads`]). Results are in input order
/// and identical to a sequential sweep for any worker count.
///
/// # Errors
///
/// Fails on the first degree without paper parameters or a specialized
/// reduction sequence.
pub fn sweep_reports(
    degrees: &[usize],
    org: Organization,
    threads: pim::par::Threads,
) -> Result<Vec<(ModeReport, ModeReport)>> {
    let workers = threads.resolve().min(degrees.len().max(1));
    pim::par::map_jobs(degrees, workers, |&n| {
        let params = ParamSet::for_degree(n)?;
        let model = PipelineModel::for_params(&params)?;
        Ok((model.pipelined(org), model.non_pipelined()))
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::NttMapping;
    use pim::reduce::ReductionStyle;

    fn model(n: usize) -> PipelineModel {
        let p = ParamSet::for_degree(n).unwrap();
        PipelineModel::for_params(&p).unwrap()
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        use pim::par::Threads;
        let degrees: Vec<usize> = modmath::params::PAPER_DEGREES.to_vec();
        let seq = sweep_reports(&degrees, Organization::CryptoPim, Threads::Fixed(1)).unwrap();
        let par = sweep_reports(&degrees, Organization::CryptoPim, Threads::Fixed(4)).unwrap();
        assert_eq!(par, seq);
        assert_eq!(seq.len(), degrees.len());
        // Spot-check ordering: entry i really is degree i's report.
        let direct = model(degrees[2]).pipelined(Organization::CryptoPim);
        assert_eq!(seq[2].0, direct);
    }

    #[test]
    fn sweep_propagates_bad_degree_errors() {
        use pim::par::Threads;
        assert!(sweep_reports(&[256, 300], Organization::CryptoPim, Threads::Fixed(2)).is_err());
    }

    #[test]
    fn paper_stage_latencies_fig4() {
        // 16-bit, n = 256 (q = 7681): the three quoted values.
        let m = model(256);
        assert_eq!(m.stage_latency(Organization::AreaEfficient), 2700);
        assert_eq!(m.stage_latency(Organization::Naive), 1756);
        assert_eq!(m.stage_latency(Organization::CryptoPim), 1643);
    }

    #[test]
    fn paper_stage_latency_32bit() {
        // Table II implies 6611 cycles for the 32-bit stage.
        let m = model(2048);
        assert_eq!(m.stage_latency(Organization::CryptoPim), 6611);
    }

    #[test]
    fn paper_pipelined_latencies_table2() {
        // (n, paper latency µs) — ours must land within 0.1 %.
        let cases = [
            (256usize, 68.67),
            (512, 75.90),
            (1024, 83.12),
            (2048, 363.60),
            (4096, 392.69),
            (8192, 421.78),
            (16384, 450.87),
            (32768, 479.95),
        ];
        for (n, paper) in cases {
            let got = model(n).pipelined(Organization::CryptoPim).latency_us;
            let err = (got - paper).abs() / paper;
            assert!(err < 1e-3, "n = {n}: got {got:.2}, paper {paper}");
        }
    }

    #[test]
    fn paper_pipelined_throughput_table2() {
        // 553311/s for 16-bit, 137511/s for 32-bit.
        for (n, paper) in [(256usize, 553311.0), (1024, 553311.0), (32768, 137511.0)] {
            let got = model(n).pipelined(Organization::CryptoPim).throughput;
            let err: f64 = (got - paper).abs() / paper;
            assert!(err < 1e-3, "n = {n}: got {got:.0}, paper {paper}");
        }
    }

    #[test]
    fn depth_formula() {
        assert_eq!(model(256).depth(Organization::CryptoPim), 38);
        assert_eq!(model(512).depth(Organization::CryptoPim), 42);
        assert_eq!(model(32768).depth(Organization::CryptoPim), 66);
        assert_eq!(model(256).depth(Organization::AreaEfficient), 19);
    }

    #[test]
    fn blocks_per_bank_32k_is_49() {
        // §III-D: "A 32k NTT pipeline has 49 blocks. Hence, each bank has
        // 49 memory blocks."
        assert_eq!(model(32768).blocks_per_bank(Organization::CryptoPim), 49);
    }

    #[test]
    fn pipelining_overhead_shape() {
        // Fig. 5: ≈29 % latency overhead for 16-bit degrees, ≈59.7 % for
        // 32-bit; large throughput gains in both.
        let mut small = Vec::new();
        let mut large = Vec::new();
        for n in modmath::params::PAPER_DEGREES {
            let m = model(n);
            let p = m.pipelined(Organization::CryptoPim);
            let np = m.non_pipelined();
            let overhead = p.latency_us / np.latency_us - 1.0;
            let gain = p.throughput / np.throughput;
            assert!(overhead > 0.0, "pipelining must cost latency at n = {n}");
            assert!(gain > 10.0, "pipelining must boost throughput at n = {n}");
            if n <= 1024 {
                small.push(overhead);
            } else {
                large.push(overhead);
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let s = avg(&small);
        let l = avg(&large);
        assert!(
            (0.15..0.45).contains(&s),
            "16-bit overhead ≈ 29 % (paper); got {s:.3}"
        );
        assert!(
            (0.45..0.75).contains(&l),
            "32-bit overhead ≈ 59.7 % (paper); got {l:.3}"
        );
        assert!(l > s, "32-bit pipelines are less balanced");
    }

    #[test]
    fn pipelining_energy_overhead_is_small() {
        // Fig. 5 discussion: pipelining costs ≈ 1.6 % more energy
        // (extra block-to-block transfers only).
        for n in modmath::params::PAPER_DEGREES {
            let m = model(n);
            let p = m.pipelined(Organization::CryptoPim).energy_uj;
            let np = m.non_pipelined().energy_uj;
            let overhead = p / np - 1.0;
            assert!(overhead > 0.0, "n = {n}");
            assert!(overhead < 0.05, "n = {n}: overhead {overhead:.4}");
        }
    }

    #[test]
    fn organization_ordering_matches_fig4() {
        for n in [256usize, 1024, 8192] {
            let m = model(n);
            let a = m.stage_latency(Organization::AreaEfficient);
            let b = m.stage_latency(Organization::Naive);
            let c = m.stage_latency(Organization::CryptoPim);
            assert!(a > b, "area-efficient slowest, n = {n}");
            assert!(b > c, "CryptoPIM fastest, n = {n}");
        }
    }

    #[test]
    fn throughput_constant_within_bitwidth() {
        let t16: Vec<f64> = [256usize, 512, 1024]
            .iter()
            .map(|&n| model(n).pipelined(Organization::CryptoPim).throughput)
            .collect();
        assert!(t16.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
        let t32: Vec<f64> = [2048usize, 32768]
            .iter()
            .map(|&n| model(n).pipelined(Organization::CryptoPim).throughput)
            .collect();
        assert!((t32[0] - t32[1]).abs() < 1e-6);
        assert!(t16[0] > t32[0], "16-bit pipelines are faster");
    }

    #[test]
    fn energy_grows_with_degree() {
        let mut last = 0.0;
        for n in modmath::params::PAPER_DEGREES {
            let e = model(n).pipelined(Organization::CryptoPim).energy_uj;
            assert!(e > last, "energy must grow with n (n = {n})");
            last = e;
        }
    }

    #[test]
    fn model_from_mapping_matches_for_params() {
        let p = ParamSet::for_degree(512).unwrap();
        let mapping = NttMapping::new(&p, ReductionStyle::CryptoPim).unwrap();
        let via_mapping = PipelineModel::new(&mapping);
        let direct = PipelineModel::for_params(&p).unwrap();
        assert_eq!(
            via_mapping.pipelined(Organization::CryptoPim).cycles,
            direct.pipelined(Organization::CryptoPim).cycles
        );
    }
}

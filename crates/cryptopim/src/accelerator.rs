//! The top-level accelerator: configuration, execution, reporting.
//!
//! [`CryptoPim`] ties the crate together: it owns the constant mapping,
//! the pipeline model and the architecture configuration, executes real
//! multiplications through the functional engine, and implements
//! [`PolyMultiplier`] so lattice schemes can use the accelerator as a
//! drop-in backend.
//!
//! Constructing an [`Engine`] per call is cheap: the stage plan
//! (bit-reversal table plus the full charge schedule) lives in the
//! process-wide cache keyed by engine configuration (`cryptopim::plan`),
//! so repeat multiplies skip straight to the datapath.

use crate::arch::{ArchConfig, MAX_NATIVE_DEGREE};
use crate::check::{self, CheckPolicy};
use crate::engine::{Engine, EngineTrace};
use crate::hotcache::HotCache;
use crate::mapping::NttMapping;
use crate::phase;
use crate::pipeline::{Organization, PipelineModel};
use crate::report::ExecutionReport;
use crate::scratch::BatchScratch;
use crate::Result;
use modmath::params::ParamSet;
use ntt::negacyclic::{NttMultiplier, PolyMultiplier};
use ntt::poly::Polynomial;
use pim::block::MultiplierKind;
use pim::fault::{FaultReport, WritePath};
use pim::par::Threads;
use pim::reduce::ReductionStyle;
use pim::PimError;
use std::sync::Arc;
use std::time::Instant;

/// The CryptoPIM accelerator for one parameter set.
///
/// # Example
///
/// ```
/// use cryptopim::accelerator::CryptoPim;
/// use modmath::params::ParamSet;
/// use ntt::negacyclic::PolyMultiplier;
/// use ntt::poly::Polynomial;
///
/// # fn main() -> Result<(), cryptopim::PimError> {
/// let params = ParamSet::for_degree(512)?;
/// let acc = CryptoPim::new(&params)?;
/// let mut x = vec![0u64; 512];
/// x[1] = 1;
/// let x = Polynomial::from_coeffs(x, params.q)?;
/// let x2 = acc.multiply(&x, &x)?;
/// assert_eq!(x2.coeff(2), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CryptoPim {
    mapping: NttMapping,
    model: PipelineModel,
    organization: Organization,
    multiplier: MultiplierKind,
    threads: Threads,
    writes: Option<Arc<dyn WritePath>>,
    check: CheckPolicy,
    /// Independent software-NTT datapath backing
    /// [`CheckPolicy::Recompute`]; built by [`CryptoPim::with_check`].
    referee: Option<Arc<NttMultiplier>>,
    /// Shared hot-operand transform cache (see [`crate::hotcache`]);
    /// consulted by the batch paths for the `a` operand.
    hot: Option<Arc<HotCache>>,
}

impl CryptoPim {
    /// Builds the accelerator with the paper's final design choices:
    /// the CryptoPIM pipeline organization, optimized multiplier, and
    /// Table I reduction sequences.
    ///
    /// # Errors
    ///
    /// Fails when the parameter set has no NTT or no specialized
    /// reduction sequence.
    pub fn new(params: &ParamSet) -> Result<Self> {
        Self::with_configuration(
            params,
            Organization::CryptoPim,
            MultiplierKind::CryptoPim,
            ReductionStyle::CryptoPim,
        )
    }

    /// Builds an accelerator with explicit design choices (used by the
    /// baseline and ablation studies).
    ///
    /// # Errors
    ///
    /// Same as [`CryptoPim::new`].
    pub fn with_configuration(
        params: &ParamSet,
        organization: Organization,
        multiplier: MultiplierKind,
        reduction: ReductionStyle,
    ) -> Result<Self> {
        let mapping = NttMapping::new(params, reduction)?;
        let model = PipelineModel::new(&mapping);
        Ok(CryptoPim {
            mapping,
            model,
            organization,
            multiplier,
            threads: Threads::Auto,
            writes: None,
            check: CheckPolicy::Disabled,
            referee: None,
            hot: None,
        })
    }

    /// Selects the host-thread fan-out policy for functional execution
    /// (`--threads N` / `CRYPTOPIM_THREADS`). Worker count never changes
    /// products, reports, or traces — only wall-clock simulation time.
    pub fn with_threads(mut self, threads: Threads) -> Self {
        self.threads = threads;
        self
    }

    /// The configured thread policy.
    pub fn threads(&self) -> Threads {
        self.threads
    }

    /// Installs a bank write path (fault injection). Every multiply on
    /// this accelerator routes its phase writes through the hook; with
    /// `None` (the default) the datapath is the unchanged fault-free
    /// hot path. See [`pim::fault::WritePath`].
    pub fn with_write_path(mut self, writes: Option<Arc<dyn WritePath>>) -> Self {
        self.writes = writes;
        self
    }

    /// Selects the result-integrity policy for
    /// [`CryptoPim::multiply_product`]. [`CheckPolicy::Disabled`] (the
    /// default) keeps the historical unchecked hot path;
    /// [`CheckPolicy::Recompute`] also builds the independent software
    /// referee datapath here, once, so multiplies only pay the compare.
    pub fn with_check(mut self, check: CheckPolicy) -> Self {
        self.referee = match check {
            CheckPolicy::Recompute => Some(Arc::new(
                NttMultiplier::new(self.params()).expect("params already validated by the mapping"),
            )),
            _ => None,
        };
        self.check = check;
        self
    }

    /// The configured result-integrity policy.
    pub fn check_policy(&self) -> CheckPolicy {
        self.check
    }

    /// Attaches a shared hot-operand transform cache. Batch multiplies
    /// look up the `a` operand's forward-NTT image here and skip its
    /// forward transform on a hit — on both the engine datapath and the
    /// `Recompute` referee path. `None` (the default) disables caching.
    pub fn with_hot_cache(mut self, hot: Option<Arc<HotCache>>) -> Self {
        self.hot = hot;
        self
    }

    /// The attached hot-operand cache, if any.
    pub fn hot_cache(&self) -> Option<&Arc<HotCache>> {
        self.hot.as_ref()
    }

    /// Whether an installed write path is currently injecting faults.
    /// The batch paths refuse to insert engine-captured transforms into
    /// the hot cache while armed (a possibly-faulted image must never
    /// become the trusted copy both datapaths reuse).
    pub(crate) fn faults_armed(&self) -> bool {
        self.writes.as_ref().is_some_and(|w| w.armed())
    }

    /// The software referee datapath, when [`CheckPolicy::Recompute`]
    /// is configured (the batch path fuses referee transforms across
    /// whole chunks instead of going job by job).
    pub(crate) fn referee(&self) -> Option<&NttMultiplier> {
        self.referee.as_deref()
    }

    /// The functional engine for this configuration, with the write
    /// path (if any) attached.
    pub(crate) fn engine(&self) -> Engine<'_> {
        Engine::new(&self.mapping)
            .with_multiplier(self.multiplier)
            .with_threads(self.threads)
            .with_write_path(self.writes.as_deref())
    }

    /// The parameter set.
    pub fn params(&self) -> &ParamSet {
        self.mapping.params()
    }

    /// The pipeline organization in use.
    pub fn organization(&self) -> Organization {
        self.organization
    }

    /// The analytic pipeline model.
    pub fn model(&self) -> &PipelineModel {
        &self.model
    }

    /// The constant mapping.
    pub fn mapping(&self) -> &NttMapping {
        &self.mapping
    }

    /// The performance/energy/architecture report for this configuration
    /// (no functional execution needed — the model is analytic).
    ///
    /// Degrees above the 32k-provisioned hardware are processed in
    /// segments (§III-D: "iteratively uses the hardware"); the report
    /// scales latency by the pass count and throughput by its inverse.
    ///
    /// # Errors
    ///
    /// Propagates architecture-derivation failures for invalid degrees.
    pub fn report(&self) -> Result<ExecutionReport> {
        let arch = ArchConfig::for_degree(self.params().n, &self.model, self.organization)?;
        let mut pipelined = self.model.pipelined(self.organization);
        let mut non_pipelined = self.model.non_pipelined();
        if arch.passes > 1 {
            let k = arch.passes as f64;
            for mode in [&mut pipelined, &mut non_pipelined] {
                mode.latency_us *= k;
                mode.throughput /= k;
                mode.cycles *= arch.passes as u64;
            }
        }
        Ok(ExecutionReport {
            params: *self.params(),
            pipelined,
            non_pipelined,
            arch,
        })
    }

    /// Multiplies two polynomials through the PIM datapath, returning
    /// the product, the report, and the functional engine trace.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::LengthMismatch`] when operand degrees differ
    /// from the configured degree, plus any engine-level failure.
    pub fn multiply_with_trace(
        &self,
        a: &Polynomial,
        b: &Polynomial,
    ) -> Result<(Polynomial, ExecutionReport, EngineTrace)> {
        let n = self.params().n;
        if a.degree_bound() != n || b.degree_bound() != n {
            return Err(PimError::LengthMismatch {
                left: a.degree_bound(),
                right: b.degree_bound(),
            });
        }
        let (coeffs, trace) = self.engine().multiply(a.coeffs(), b.coeffs())?;
        let product = Polynomial::from_coeffs(coeffs, self.params().q)?;
        Ok((product, self.report()?, trace))
    }

    /// Multiplies two polynomials, returning only the product.
    ///
    /// The hot-path variant for batched serving: per-call report
    /// construction (architecture derivation plus pipeline-model math)
    /// and the functional trace are skipped entirely, because a batch
    /// prices its timing once at burst level, not per job. Engine
    /// output is canonical by construction — also under an armed write
    /// path, which re-canonicalizes faulted words — so the product also
    /// skips the `from_coeffs` reduction sweep.
    ///
    /// When a [`CheckPolicy::Residue`] policy is configured
    /// ([`CryptoPim::with_check`]), the product is verified at the
    /// seeded evaluation points before it is returned; under
    /// [`CheckPolicy::Recompute`] it is instead compared bit for bit
    /// against the independent software-NTT referee. A disagreement
    /// fails with [`PimError::CorruptResult`] localizing the fault to
    /// this accelerator's bank (and suspect block, when a write path is
    /// installed). A checked corrupt product is **never** returned —
    /// with certainty under `Recompute`, probabilistically under
    /// `Residue` (see [`crate::check`] for the coverage analysis).
    ///
    /// # Errors
    ///
    /// Same as [`CryptoPim::multiply_with_trace`], plus
    /// [`PimError::CorruptResult`] under a failing check.
    pub fn multiply_product(&self, a: &Polynomial, b: &Polynomial) -> Result<Polynomial> {
        let n = self.params().n;
        if a.degree_bound() != n || b.degree_bound() != n {
            return Err(PimError::LengthMismatch {
                left: a.degree_bound(),
                right: b.degree_bound(),
            });
        }
        let engine_start = Instant::now();
        let (coeffs, _) = self.engine().multiply(a.coeffs(), b.coeffs())?;
        phase::record_engine(engine_start.elapsed());
        match self.check {
            CheckPolicy::Disabled => {}
            CheckPolicy::Residue { points, seed } => {
                let compare_start = Instant::now();
                let verdict = check::verify_product(
                    &self.mapping,
                    a.coeffs(),
                    b.coeffs(),
                    &coeffs,
                    points,
                    seed,
                );
                phase::record_check(0, 0, compare_start.elapsed().as_nanos() as u64);
                if let Err((failed, checked)) = verdict {
                    return Err(PimError::CorruptResult(self.fault_report(failed, checked)));
                }
            }
            CheckPolicy::Recompute => {
                let referee = self
                    .referee
                    .as_ref()
                    .expect("with_check builds the referee");
                // The single-job case of the batch-fused referee: same
                // kernels (bit-identical to `NttMultiplier::multiply`),
                // pooled scratch, and a per-phase timing split.
                let mut scratch = BatchScratch::checkout(n, 1);
                let (fa, fb, out) = scratch.buffers();
                fa.copy_from_slice(a.coeffs());
                fb.copy_from_slice(b.coeffs());
                let timing = referee.multiply_batch_into(fa, fb, out)?;
                let compare_start = Instant::now();
                let failed = coeffs
                    .iter()
                    .zip(out.iter())
                    .filter(|(got, want)| got != want)
                    .count();
                phase::record_check(
                    timing.transform_ns,
                    timing.pointwise_ns,
                    compare_start.elapsed().as_nanos() as u64,
                );
                if failed > 0 {
                    return Err(PimError::CorruptResult(
                        self.fault_report(failed as u32, n as u32),
                    ));
                }
            }
        }
        Ok(Polynomial::from_canonical_coeffs(coeffs, self.params().q)?)
    }

    /// A [`FaultReport`] blaming this accelerator's bank (and the write
    /// path's suspect block, when one is installed).
    pub(crate) fn fault_report(&self, failed_points: u32, checked_points: u32) -> FaultReport {
        FaultReport {
            bank: self.writes.as_ref().map_or(0, |w| w.bank()),
            block: self.writes.as_ref().and_then(|w| w.suspect_block()),
            failed_points,
            checked_points,
        }
    }

    /// Multiplies two polynomials, returning the product and the report.
    ///
    /// # Errors
    ///
    /// Same as [`CryptoPim::multiply_with_trace`].
    pub fn multiply_with_report(
        &self,
        a: &Polynomial,
        b: &Polynomial,
    ) -> Result<(Polynomial, ExecutionReport)> {
        let (p, r, _) = self.multiply_with_trace(a, b)?;
        Ok((p, r))
    }

    /// Largest degree a single pass supports; larger inputs segment.
    pub fn max_native_degree() -> usize {
        MAX_NATIVE_DEGREE
    }
}

impl PolyMultiplier for CryptoPim {
    fn degree(&self) -> usize {
        self.params().n
    }

    fn modulus(&self) -> u64 {
        self.params().q
    }

    fn multiply(&self, a: &Polynomial, b: &Polynomial) -> ntt::Result<Polynomial> {
        self.multiply_with_report(a, b)
            .map(|(p, _)| p)
            .map_err(|e| match e {
                PimError::LengthMismatch { left, .. } => modmath::Error::InvalidDegree { n: left },
                PimError::Math(m) => m,
                other => modmath::Error::InvalidDegree {
                    n: {
                        // Non-degree PIM failures cannot occur for
                        // validated parameter sets; surface the degree.
                        let _ = other;
                        self.params().n
                    },
                },
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntt::negacyclic::NttMultiplier;
    use ntt::schoolbook;

    fn rand_poly(n: usize, q: u64, seed: u64) -> Polynomial {
        let mut state = seed;
        let coeffs: Vec<u64> = (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 16) % q
            })
            .collect();
        Polynomial::from_coeffs(coeffs, q).unwrap()
    }

    #[test]
    fn accelerator_matches_software_reference() {
        for n in [256usize, 1024, 4096] {
            let p = ParamSet::for_degree(n).unwrap();
            let acc = CryptoPim::new(&p).unwrap();
            let sw = NttMultiplier::new(&p).unwrap();
            let a = rand_poly(n, p.q, 21);
            let b = rand_poly(n, p.q, 22);
            assert_eq!(
                acc.multiply(&a, &b).unwrap(),
                sw.multiply(&a, &b).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn accelerator_matches_schoolbook_small() {
        let p = ParamSet::for_degree(32).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let a = rand_poly(32, p.q, 1);
        let b = rand_poly(32, p.q, 2);
        assert_eq!(
            acc.multiply(&a, &b).unwrap(),
            schoolbook::multiply(&a, &b).unwrap()
        );
    }

    #[test]
    fn report_matches_paper_headline_row() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let r = acc.report().unwrap();
        assert!((r.pipelined.latency_us - 68.67).abs() < 0.1);
        assert!((r.pipelined.throughput - 553311.0).abs() / 553311.0 < 1e-3);
        assert!((r.pipelined.energy_uj - 2.58).abs() < 0.13, "within 5 %");
    }

    #[test]
    fn degree_mismatch_is_an_error() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let a = rand_poly(128, p.q, 1);
        let b = rand_poly(256, p.q, 2);
        assert!(acc.multiply_with_report(&a, &b).is_err());
        assert!(acc.multiply(&a, &b).is_err());
    }

    #[test]
    fn trace_and_report_are_consistent() {
        let p = ParamSet::for_degree(512).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let a = rand_poly(512, p.q, 3);
        let b = rand_poly(512, p.q, 4);
        let (_, report, trace) = acc.multiply_with_trace(&a, &b).unwrap();
        // The engine's total compute matches the analytic work profile.
        let compute = trace.total().compute_cycles + trace.total().reduce_cycles;
        assert_eq!(compute, acc.model().expected_engine_compute_cycles());
        // Pipelined latency exceeds any single phase.
        assert!(report.pipelined.cycles > trace.pointwise.cycles);
    }

    #[test]
    fn product_only_path_matches_full_path() {
        let p = ParamSet::for_degree(512).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let a = rand_poly(512, p.q, 5);
        let b = rand_poly(512, p.q, 6);
        let (full, _, _) = acc.multiply_with_trace(&a, &b).unwrap();
        assert_eq!(acc.multiply_product(&a, &b).unwrap(), full);
        let short = rand_poly(256, p.q, 7);
        assert!(acc.multiply_product(&short, &b).is_err());
    }

    /// Transform-domain fault: ORs bit 15 into row 0 of one block. For
    /// `q = 7681 < 2^13` the bit is never set in a canonical word, so
    /// every operation corrupts — but only a single NTT bin, the class
    /// of fault a few-point residue screen is likely to miss.
    #[derive(Debug)]
    struct PointwiseBitPath {
        block: u32,
    }

    impl WritePath for PointwiseBitPath {
        fn armed(&self) -> bool {
            true
        }
        fn begin_op(&self) {}
        fn store(&self, block: u32, row: u32, value: u64) -> u64 {
            if block == self.block && row == 0 {
                value | (1 << 15)
            } else {
                value
            }
        }
        fn bank(&self) -> u32 {
            4
        }
        fn suspect_block(&self) -> Option<u32> {
            Some(self.block)
        }
    }

    #[test]
    fn recompute_referee_catches_transform_domain_fault() {
        let p = ParamSet::for_degree(256).unwrap();
        let block = pim::fault::layout::pointwise(8);
        let a = rand_poly(256, p.q, 31);
        let b = rand_poly(256, p.q, 32);
        // The fault really corrupts the product…
        let unchecked = CryptoPim::new(&p)
            .unwrap()
            .with_write_path(Some(Arc::new(PointwiseBitPath { block })));
        let clean = CryptoPim::new(&p).unwrap();
        assert_ne!(
            unchecked.multiply_product(&a, &b).unwrap(),
            clean.multiply_product(&a, &b).unwrap()
        );
        // …and the referee refuses to serve it, localizing the fault.
        let checked = CryptoPim::new(&p)
            .unwrap()
            .with_write_path(Some(Arc::new(PointwiseBitPath { block })))
            .with_check(CheckPolicy::Recompute);
        match checked.multiply_product(&a, &b) {
            Err(PimError::CorruptResult(report)) => {
                assert_eq!(report.bank, 4);
                assert_eq!(report.block, Some(block));
                assert!(report.failed_points >= 1);
                assert_eq!(report.checked_points, 256);
            }
            other => panic!("expected CorruptResult, got {other:?}"),
        }
    }

    #[test]
    fn recompute_clean_path_is_bit_exact() {
        let p = ParamSet::for_degree(256).unwrap();
        let checked = CryptoPim::new(&p)
            .unwrap()
            .with_check(CheckPolicy::Recompute);
        let clean = CryptoPim::new(&p).unwrap();
        let a = rand_poly(256, p.q, 33);
        let b = rand_poly(256, p.q, 34);
        assert_eq!(
            checked.multiply_product(&a, &b).unwrap(),
            clean.multiply_product(&a, &b).unwrap()
        );
    }

    #[test]
    fn trait_object_backend() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let backend: Box<dyn PolyMultiplier> = Box::new(acc);
        assert_eq!(backend.degree(), 256);
        assert_eq!(backend.modulus(), 7681);
    }
}

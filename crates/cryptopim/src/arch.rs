//! The configurable architecture of §III-D: banks, softbanks, superbanks.
//!
//! A memory **bank** is a cascade of memory blocks implementing one input
//! polynomial's share of the pipeline (49 blocks for the 32k design). A
//! bank's blocks process 512-element vector slices, so one polynomial of
//! degree `n` needs `⌈n/512⌉` parallel banks — a **softbank**. Two
//! softbanks form a **superbank**, which processes one complete
//! polynomial multiplication.
//!
//! The chip is provisioned for 32k-degree polynomials (64 banks per
//! softbank, 128 per superbank). Smaller degrees leave banks idle, which
//! the architecture reclaims by packing several independent
//! multiplications side by side; degrees above 32k are processed in 32k
//! segments, iterating over the same hardware.

use crate::pipeline::{Organization, PipelineModel};
use pim::{PimError, Result, BLOCK_DIM};

/// The largest degree the hardware natively supports in one pass.
pub const MAX_NATIVE_DEGREE: usize = 32_768;

/// Banks per softbank in the full-size (32k) configuration.
pub const BANKS_PER_SOFTBANK: usize = MAX_NATIVE_DEGREE / BLOCK_DIM;

/// A concrete hardware configuration for one parameter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchConfig {
    /// Degree being processed.
    pub n: usize,
    /// Vector lanes (banks) each softbank uses: `⌈min(n, 32k)/512⌉`.
    pub banks_per_softbank: usize,
    /// Memory blocks per bank (depends on pipeline organization).
    pub blocks_per_bank: u64,
    /// Independent multiplications that fit in the chip at once
    /// (degrees < 32k pack multiple pairs; ≥ 32k packs one).
    pub parallel_multiplications: usize,
    /// Sequential passes needed per multiplication (degrees > 32k
    /// segment the inputs; otherwise 1).
    pub passes: usize,
}

impl ArchConfig {
    /// Independent multiplications a 32k-provisioned chip packs side by
    /// side at degree `n` — the `32k/n` packing capacity of §III-D,
    /// derived purely from the bank geometry (no pipeline model needed,
    /// so batch formers can size batches without building one).
    ///
    /// # Errors
    ///
    /// Returns [`PimError::VectorTooLong`] when `n` is not a power of two
    /// of at least 4 (there is no valid NTT mapping to configure for).
    pub fn packed_lanes(n: usize) -> Result<usize> {
        if !n.is_power_of_two() || n < 4 {
            return Err(PimError::VectorTooLong {
                len: n,
                rows: BLOCK_DIM,
            });
        }
        let native = n.min(MAX_NATIVE_DEGREE);
        let banks = native.div_ceil(BLOCK_DIM).max(1);
        Ok((BANKS_PER_SOFTBANK / banks).max(1))
    }

    /// Derives the configuration for a degree under an organization.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::VectorTooLong`] when `n` is not a power of two
    /// of at least 4 (there is no valid NTT mapping to configure for).
    pub fn for_degree(n: usize, model: &PipelineModel, org: Organization) -> Result<Self> {
        let parallel = Self::packed_lanes(n)?;
        let native = n.min(MAX_NATIVE_DEGREE);
        let banks = native.div_ceil(BLOCK_DIM).max(1);
        let passes = n.div_ceil(MAX_NATIVE_DEGREE);
        Ok(ArchConfig {
            n,
            banks_per_softbank: banks,
            blocks_per_bank: model.blocks_per_bank(org),
            parallel_multiplications: parallel,
            passes,
        })
    }

    /// Total memory blocks in one superbank under this configuration.
    pub fn total_blocks(&self) -> u64 {
        2 * self.banks_per_softbank as u64 * self.blocks_per_bank
    }

    /// Aggregate chip throughput (multiplications/s) when every idle bank
    /// is reclaimed for packing — the architecture-level extension of the
    /// per-pipeline Table II figure.
    pub fn packed_throughput(&self, per_pipeline: f64) -> f64 {
        per_pipeline * self.parallel_multiplications as f64 / self.passes as f64
    }
}

/// How a degree-`n` vector maps onto 512-row lanes.
///
/// Lane `l` holds elements `[l·512, (l+1)·512)`; returns the per-lane
/// ranges so callers can drive per-bank block simulations.
pub fn lane_ranges(n: usize) -> Vec<std::ops::Range<usize>> {
    (0..n.div_ceil(BLOCK_DIM))
        .map(|l| l * BLOCK_DIM..((l + 1) * BLOCK_DIM).min(n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::params::ParamSet;

    fn config(n: usize) -> ArchConfig {
        let p = ParamSet::for_degree(n.min(MAX_NATIVE_DEGREE)).unwrap();
        let model = PipelineModel::for_params(&p).unwrap();
        ArchConfig::for_degree(n, &model, Organization::CryptoPim).unwrap()
    }

    #[test]
    fn paper_32k_configuration() {
        let c = config(32768);
        // §III-D: 49 blocks per bank, 64 banks per polynomial,
        // 128 banks per multiplication.
        assert_eq!(c.blocks_per_bank, 49);
        assert_eq!(c.banks_per_softbank, 64);
        assert_eq!(c.total_blocks(), 2 * 64 * 49);
        assert_eq!(c.parallel_multiplications, 1);
        assert_eq!(c.passes, 1);
    }

    #[test]
    fn small_degrees_pack_multiple_pairs() {
        let c = config(512);
        assert_eq!(c.banks_per_softbank, 1);
        assert_eq!(c.parallel_multiplications, 64);
        let c = config(4096);
        assert_eq!(c.banks_per_softbank, 8);
        assert_eq!(c.parallel_multiplications, 8);
    }

    #[test]
    fn degrees_above_native_segment() {
        let c = config(65536);
        assert_eq!(c.passes, 2);
        assert_eq!(c.banks_per_softbank, 64, "hardware stays 32k-sized");
        let c = config(131072);
        assert_eq!(c.passes, 4);
    }

    #[test]
    fn sub_block_degree_uses_one_bank() {
        let c = config(256);
        assert_eq!(c.banks_per_softbank, 1);
        assert!(c.parallel_multiplications >= 64);
    }

    #[test]
    fn packed_throughput_scales() {
        let c = config(512);
        let per = 553311.0;
        assert!((c.packed_throughput(per) - per * 64.0).abs() < 1e-6);
        let c = config(65536);
        assert!((c.packed_throughput(137511.0) - 137511.0 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn lane_ranges_cover_exactly() {
        for n in [256usize, 512, 1000, 2048, 32768] {
            let lanes = lane_ranges(n);
            let mut covered = 0;
            for (i, r) in lanes.iter().enumerate() {
                assert_eq!(r.start, i * BLOCK_DIM);
                covered += r.len();
                assert!(r.len() <= BLOCK_DIM);
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn packed_lanes_matches_full_configuration() {
        for n in [256usize, 512, 1024, 4096, 32768, 65536] {
            assert_eq!(
                ArchConfig::packed_lanes(n).unwrap(),
                config(n).parallel_multiplications,
                "n = {n}"
            );
        }
        assert!(ArchConfig::packed_lanes(100).is_err());
    }

    #[test]
    fn invalid_degree_rejected() {
        let p = ParamSet::for_degree(256).unwrap();
        let model = PipelineModel::for_params(&p).unwrap();
        assert!(ArchConfig::for_degree(100, &model, Organization::CryptoPim).is_err());
        assert!(ArchConfig::for_degree(2, &model, Organization::CryptoPim).is_err());
    }
}

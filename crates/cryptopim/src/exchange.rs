//! Butterfly partner exchange through fixed-function switches.
//!
//! §III-C's claim is that three hard-wired connection kinds per row
//! (A→A, A→A+s, A→A−s) suffice for the NTT's inter-stage communication.
//! This module makes that claim executable: [`stage_connections`] derives
//! the per-row connection selection for a Gentleman–Sande stage, and
//! [`exchange_partners`] routes a vector through a
//! [`FixedFunctionSwitch`] with the stage's hard-wired shift `s = 2^i`,
//! delivering every row its butterfly partner.
//!
//! The stage rule: at stage `i` row `j` pairs with row `j XOR 2^i`.
//! Rows whose bit `i` is 0 take the **UpShift** connection (their value
//! travels to the partner `s` above); rows with bit `i` set take
//! **DownShift**. One routed transfer therefore hands every row exactly
//! its partner's value — which is what the engine's butterfly needs —
//! using only the three fixed connections.
//!
//! The test suite pins the routed exchange to the index arithmetic the
//! execution engine uses, for every stage of every paper degree.

use pim::switch::{Connection, FixedFunctionSwitch};
use pim::{PimError, Result};

/// The per-row connection selections for stage `i` of a length-`n` GS
/// NTT (shift `s = 2^i`).
///
/// # Panics
///
/// Panics if `n` is not a power of two or the stage shift reaches `n`.
pub fn stage_connections(n: usize, stage: u32) -> Vec<Connection> {
    assert!(n.is_power_of_two(), "vector length must be a power of two");
    let s = 1usize << stage;
    assert!(s < n, "stage shift must stay inside the vector");
    (0..n)
        .map(|j| {
            if j & s == 0 {
                Connection::UpShift
            } else {
                Connection::DownShift
            }
        })
        .collect()
}

/// Routes `x` through the stage's fixed-function switch, returning the
/// partner vector: `out[j] = x[j XOR 2^stage]`.
///
/// # Errors
///
/// Propagates switch routing failures (cannot occur for power-of-two
/// lengths with in-range stages).
pub fn exchange_partners(x: &[u64], stage: u32) -> Result<Vec<u64>> {
    let n = x.len();
    let conns = stage_connections(n, stage);
    let switch = FixedFunctionSwitch::new(1 << stage, n);
    let outcome = switch.route(x, &conns, 1)?;
    outcome
        .values
        .into_iter()
        .enumerate()
        .map(|(row, v)| {
            v.ok_or(PimError::RowOutOfRange {
                row: row as isize,
                rows: n,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchange_is_xor_partner() {
        for n in [4usize, 16, 256] {
            let x: Vec<u64> = (0..n as u64).map(|i| i * 10).collect();
            for stage in 0..n.trailing_zeros() {
                let partners = exchange_partners(&x, stage).unwrap();
                for j in 0..n {
                    assert_eq!(
                        partners[j],
                        x[j ^ (1 << stage)],
                        "n = {n}, stage = {stage}, row = {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn exchange_covers_every_row() {
        // Every destination row receives exactly one value: the routing
        // is a permutation, so no None survives `exchange_partners`.
        let x: Vec<u64> = (0..512).collect();
        for stage in [0u32, 3, 8] {
            let p = exchange_partners(&x, stage).unwrap();
            assert_eq!(p.len(), 512);
        }
    }

    #[test]
    fn exchange_is_involution() {
        let x: Vec<u64> = (0..64u64).map(|i| i * i).collect();
        for stage in 0..6 {
            let once = exchange_partners(&x, stage).unwrap();
            let twice = exchange_partners(&once, stage).unwrap();
            assert_eq!(twice, x, "stage {stage}");
        }
    }

    #[test]
    fn connections_use_only_three_kinds() {
        // The §III-C economy: no row needs anything beyond the three
        // hard-wired connections.
        let conns = stage_connections(256, 4);
        assert!(conns
            .iter()
            .all(|c| matches!(c, Connection::UpShift | Connection::DownShift)));
        // Half the rows shift each way.
        let ups = conns
            .iter()
            .filter(|c| matches!(c, Connection::UpShift))
            .count();
        assert_eq!(ups, 128);
    }

    /// The routed exchange delivers exactly the operands the engine's
    /// index arithmetic gathers: for the low row `j` of every butterfly
    /// pair, partner[j] is `x[j + 2^stage]`, and vice versa.
    #[test]
    fn matches_engine_gather_pattern() {
        let n = 128usize;
        let x: Vec<u64> = (0..n as u64).map(|i| 1000 + i).collect();
        for stage in 0..n.trailing_zeros() {
            let dist = 1usize << stage;
            let partners = exchange_partners(&x, stage).unwrap();
            for idx in 0..n / 2 {
                let st = idx & (dist - 1);
                let j = ((idx & !(dist - 1)) << 1) | st;
                let jp = j + dist;
                // Engine gathers (t, u) = (x[j], x[jp]).
                assert_eq!(partners[j], x[jp], "stage {stage}, pair {idx}");
                assert_eq!(partners[jp], x[j], "stage {stage}, pair {idx}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "inside the vector")]
    fn oversized_stage_panics() {
        stage_connections(16, 4);
    }
}

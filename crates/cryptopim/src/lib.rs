//! CryptoPIM: the paper's contribution — an NTT-based polynomial
//! multiplier mapped onto ReRAM processing-in-memory hardware.
//!
//! The crate layers four concerns:
//!
//! * [`mapping`] — how Algorithm 1's data and constants are laid out in
//!   memory blocks: bit-reversal as a free write permutation, twiddles in
//!   bit-reversed order pre-scaled into Montgomery form so every
//!   in-memory multiplication can be followed by a plain REDC.
//! * [`engine`] — the functional executor: runs a real polynomial
//!   multiplication through [`pim::block::MemoryBlock`] operations,
//!   producing both the product (verified against the software NTT) and
//!   an operation-level cycle/energy trace.
//! * [`pipeline`] — the three pipeline organizations of Fig. 4
//!   (area-efficient, naive, CryptoPIM) and the analytic latency /
//!   throughput / energy model for pipelined and non-pipelined execution.
//! * [`arch`] — the configurable architecture of §III-D: banks,
//!   softbanks, superbanks, multi-pair packing for small degrees and
//!   iterative segmentation above 32k.
//!
//! The top-level entry point is [`accelerator::CryptoPim`], which
//! implements [`ntt::negacyclic::PolyMultiplier`] so RLWE schemes can use
//! the accelerator as a drop-in backend.
//!
//! # Example
//!
//! ```
//! use cryptopim::accelerator::CryptoPim;
//! use modmath::params::ParamSet;
//! use ntt::negacyclic::PolyMultiplier;
//! use ntt::poly::Polynomial;
//!
//! # fn main() -> Result<(), cryptopim::PimError> {
//! let params = ParamSet::for_degree(256)?;
//! let acc = CryptoPim::new(&params)?;
//! let a = Polynomial::from_coeffs(vec![1; 256], params.q)?;
//! let b = Polynomial::from_coeffs(vec![2; 256], params.q)?;
//! let (product, report) = acc.multiply_with_report(&a, &b)?;
//! assert_eq!(product.degree_bound(), 256);
//! assert!(report.pipelined.latency_us > 0.0);
//! # Ok(())
//! # }
//! ```

pub mod accelerator;
pub mod arch;
pub mod area;
pub mod batch;
pub mod check;
pub mod controller;
pub mod engine;
pub mod exchange;
pub mod hotcache;
pub mod mapping;
pub mod phase;
pub mod pipeline;
pub mod plan;
pub mod report;
pub mod schedule;
pub mod scratch;

pub use pim::PimError;

/// Convenience result alias (shared with the `pim` substrate).
pub type Result<T> = std::result::Result<T, PimError>;

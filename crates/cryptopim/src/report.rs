//! Execution reports: the latency / energy / throughput triple of
//! Table II, for both execution modes, plus architecture details.

use crate::arch::ArchConfig;
use crate::pipeline::ModeReport;
use modmath::params::ParamSet;

/// Full report for one polynomial multiplication on CryptoPIM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionReport {
    /// The parameter set executed.
    pub params: ParamSet,
    /// Pipelined-mode figures (the headline Table II row).
    pub pipelined: ModeReport,
    /// Non-pipelined figures (Fig. 5's NP series).
    pub non_pipelined: ModeReport,
    /// The hardware configuration used.
    pub arch: ArchConfig,
}

impl ExecutionReport {
    /// Average power of the pipelined design while streaming at full
    /// throughput, in watts: energy per multiplication × rate.
    pub fn pipelined_average_power_w(&self) -> f64 {
        self.pipelined.energy_uj * 1e-6 * self.pipelined.throughput
    }

    /// Latency overhead of pipelining (`> 0`; Fig. 5 discussion).
    pub fn pipelining_latency_overhead(&self) -> f64 {
        self.pipelined.latency_us / self.non_pipelined.latency_us - 1.0
    }

    /// Throughput gain of pipelining (Fig. 5: 27.8× / 36.3×).
    pub fn pipelining_throughput_gain(&self) -> f64 {
        self.pipelined.throughput / self.non_pipelined.throughput
    }

    /// Energy overhead of pipelining (Fig. 5: ≈ 1.6 %).
    pub fn pipelining_energy_overhead(&self) -> f64 {
        self.pipelined.energy_uj / self.non_pipelined.energy_uj - 1.0
    }
}

impl std::fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "CryptoPIM execution report — {}", self.params)?;
        writeln!(
            f,
            "  pipelined:     {:>10.2} µs  {:>12.2} µJ  {:>10.0} mult/s",
            self.pipelined.latency_us, self.pipelined.energy_uj, self.pipelined.throughput
        )?;
        writeln!(
            f,
            "  non-pipelined: {:>10.2} µs  {:>12.2} µJ  {:>10.0} mult/s",
            self.non_pipelined.latency_us,
            self.non_pipelined.energy_uj,
            self.non_pipelined.throughput
        )?;
        write!(
            f,
            "  arch: {} banks/softbank × {} blocks/bank, {} parallel mult(s), {} pass(es)",
            self.arch.banks_per_softbank,
            self.arch.blocks_per_bank,
            self.arch.parallel_multiplications,
            self.arch.passes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::CryptoPim;

    #[test]
    fn report_is_printable_and_consistent() {
        let p = ParamSet::for_degree(256).unwrap();
        let acc = CryptoPim::new(&p).unwrap();
        let report = acc.report().unwrap();
        let text = format!("{report}");
        assert!(text.contains("pipelined"));
        assert!(text.contains("banks/softbank"));
        assert!(report.pipelining_latency_overhead() > 0.0);
        assert!(report.pipelining_throughput_gain() > 10.0);
        let e = report.pipelining_energy_overhead();
        assert!(e > 0.0 && e < 0.05);
    }

    #[test]
    fn streaming_power_is_plausible() {
        // 2.58 µJ × 553k/s ≈ 1.4 W — a sane figure for a memory chip
        // computing flat out; it should grow with the degree (more
        // active rows) but stay in the single-digit-watt range the
        // energy model implies.
        let mut last = 0.0;
        for n in [256usize, 1024, 32768] {
            let p = ParamSet::for_degree(n).unwrap();
            let r = CryptoPim::new(&p).unwrap().report().unwrap();
            let watts = r.pipelined_average_power_w();
            assert!(watts > last, "power grows with degree (n = {n})");
            assert!(watts < 300.0, "n = {n}: {watts} W");
            last = watts;
        }
    }
}

//! In-memory modular reduction engines.
//!
//! CryptoPIM follows every in-memory addition with a Barrett reduction
//! and every multiplication with a Montgomery reduction, both converted
//! to shift-and-add sequences (Algorithm 3). This module binds together:
//!
//! * the **functional** behaviour (delegated to `modmath`'s verified
//!   shift-add implementations), and
//! * the **cycle cost**, at three fidelity levels:
//!   - [`ReductionStyle::CryptoPim`] — the paper's Table I values
//!     (the "necessary bits only" optimized sequences);
//!   - [`ReductionStyle::ShiftAdd`] — our trace-derived cost for a
//!     straightforward shift-add sequence without the bit-pruning
//!     (this is what the BP-3 baseline pays);
//!   - [`ReductionStyle::MulBased`] — reduction via two in-memory
//!     multiplications by precomputed constants (BP-1/BP-2).
//!
//! Functionally all three styles produce identical results; they differ
//! only in accounted cycles, which is exactly the paper's §IV-C claim
//! being reproduced.

use crate::cost;
use crate::{PimError, Result};
use modmath::barrett::ShiftAddBarrett;
use modmath::montgomery::{MontgomeryReducer, ShiftAddMontgomery};

/// How a reduction is executed in memory (→ what it costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionStyle {
    /// The paper's optimized shift-add sequences (Table I costs).
    CryptoPim,
    /// Plain shift-add without bit-level pruning (BP-3's cost).
    ShiftAdd,
    /// Multiplication-based reduction (BP-1 / BP-2's cost). The field
    /// selects the in-memory multiplier the constants are multiplied
    /// with: `true` = CryptoPIM's multiplier, `false` = \[35\]'s.
    MulBased {
        /// Whether the optimized (CryptoPIM) multiplier is available.
        optimized_mul: bool,
    },
}

/// A modular-reduction engine for one modulus, usable from memory blocks.
///
/// # Example
///
/// ```
/// use pim::reduce::{Reducer, ReductionStyle};
///
/// # fn main() -> Result<(), pim::PimError> {
/// let red = Reducer::new(12289, ReductionStyle::CryptoPim)?;
/// // Post-addition Barrett: canonicalizes a value below 2q.
/// assert_eq!(red.barrett(12289 + 5), 5);
/// assert_eq!(red.barrett_cycles(), 239); // Table I
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Reducer {
    q: u64,
    style: ReductionStyle,
    barrett: ShiftAddBarrett,
    montgomery: ShiftAddMontgomery,
    /// Word-level Montgomery used to express REDC functionally.
    generic_mont: MontgomeryReducer,
}

impl Reducer {
    /// Builds a reducer for modulus `q`.
    ///
    /// The paper's three moduli carry their hand-derived shift-add
    /// sequences and Table I costs; any other odd modulus `2 < q < 2^31`
    /// (RNS residue primes in particular) gets NAF-derived traces, with
    /// cycle costs computed from those traces.
    ///
    /// # Errors
    ///
    /// Propagates the trace builders' rejection of even or out-of-range
    /// moduli.
    pub fn new(q: u64, style: ReductionStyle) -> Result<Self> {
        let barrett = ShiftAddBarrett::new(q).map_err(PimError::from)?;
        let montgomery = ShiftAddMontgomery::new(q).map_err(PimError::from)?;
        let generic_mont = MontgomeryReducer::with_r_exponent(q, montgomery.r_exponent())
            .map_err(PimError::from)?;
        Ok(Reducer {
            q,
            style,
            barrett,
            montgomery,
            generic_mont,
        })
    }

    /// The modulus.
    #[inline]
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// The accounting style.
    #[inline]
    pub fn style(&self) -> ReductionStyle {
        self.style
    }

    /// The exponent of the Montgomery radix `R = 2^k` for this modulus.
    #[inline]
    pub fn r_exponent(&self) -> u32 {
        self.montgomery.r_exponent()
    }

    /// The precomputed REDC constant `−q⁻¹ mod R`, for callers that
    /// inline the mul-based Montgomery form with runtime constants
    /// (the engine's dynamic butterfly path).
    #[inline]
    pub fn q_prime(&self) -> u64 {
        self.montgomery.q_prime()
    }

    /// Post-addition reduction (Barrett position): canonicalizes `a < 2q`.
    ///
    /// # Panics
    ///
    /// Debug-panics when `a >= 2q`.
    #[inline]
    pub fn barrett(&self, a: u64) -> u64 {
        self.barrett.reduce(a)
    }

    /// Post-multiplication reduction (Montgomery position): REDC of a
    /// product `a < q·R`, returning `a·R⁻¹ mod q`.
    #[inline]
    pub fn montgomery(&self, a: u64) -> u64 {
        self.montgomery.reduce(a)
    }

    /// Converts a canonical residue into Montgomery form (`a·R mod q`).
    #[inline]
    pub fn to_mont(&self, a: u64) -> u64 {
        self.generic_mont.to_mont(a)
    }

    /// Converts a Montgomery-form residue back to canonical form.
    #[inline]
    pub fn from_mont(&self, a: u64) -> u64 {
        self.generic_mont.from_mont(a)
    }

    /// Cycle cost of one vector-wide Barrett (post-addition) reduction,
    /// for a datapath of `bitwidth` bits, under this style.
    pub fn barrett_cycles_for(&self, bitwidth: u32) -> u64 {
        match self.style {
            // Table I covers only the paper's moduli; other moduli fall
            // back to the cost of their NAF-derived trace (which for the
            // paper's moduli reproduces Table I's structure anyway).
            ReductionStyle::CryptoPim => cost::barrett_cycles(self.q)
                .unwrap_or_else(|_| cost::shift_add_trace_cycles(self.barrett.trace())),
            ReductionStyle::ShiftAdd => cost::shift_add_trace_cycles(self.barrett.trace()),
            ReductionStyle::MulBased { optimized_mul } => {
                let mul = if optimized_mul {
                    cost::mul_cycles as fn(u32) -> u64
                } else {
                    cost::mul_cycles_baseline as fn(u32) -> u64
                };
                // Post-addition operand is N(+1) bits wide.
                cost::mul_based_reduction_cycles(bitwidth, mul)
            }
        }
    }

    /// Cycle cost of one vector-wide Barrett reduction at the modulus's
    /// native width (16-bit for the small moduli, 32-bit for SEAL's).
    pub fn barrett_cycles(&self) -> u64 {
        self.barrett_cycles_for(self.native_bitwidth())
    }

    /// Cycle cost of one vector-wide Montgomery (post-multiplication)
    /// reduction for a `bitwidth`-bit datapath. The operand is the 2N-bit
    /// product, so the multiplication-based style pays double-width
    /// multiplies.
    pub fn montgomery_cycles_for(&self, bitwidth: u32) -> u64 {
        match self.style {
            ReductionStyle::CryptoPim => cost::montgomery_cycles(self.q)
                .unwrap_or_else(|_| cost::shift_add_trace_cycles(self.montgomery.trace())),
            ReductionStyle::ShiftAdd => cost::shift_add_trace_cycles(self.montgomery.trace()),
            ReductionStyle::MulBased { optimized_mul } => {
                let mul = if optimized_mul {
                    cost::mul_cycles as fn(u32) -> u64
                } else {
                    cost::mul_cycles_baseline as fn(u32) -> u64
                };
                cost::mul_based_reduction_cycles(2 * bitwidth, mul)
            }
        }
    }

    /// Montgomery cost at the modulus's native datapath width.
    pub fn montgomery_cycles(&self) -> u64 {
        self.montgomery_cycles_for(self.native_bitwidth())
    }

    /// The datapath width the paper pairs with this modulus: 16-bit for
    /// moduli that fit a halfword (7681, 12289), 32-bit otherwise
    /// (786433 and the RNS residue primes).
    pub fn native_bitwidth(&self) -> u32 {
        if self.q < 1 << 16 {
            16
        } else {
            32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_equivalence_across_styles() {
        for q in [7681u64, 12289, 786433] {
            let styles = [
                ReductionStyle::CryptoPim,
                ReductionStyle::ShiftAdd,
                ReductionStyle::MulBased {
                    optimized_mul: true,
                },
            ];
            let reducers: Vec<Reducer> = styles
                .iter()
                .map(|&s| Reducer::new(q, s).unwrap())
                .collect();
            for a in (0..2 * q).step_by(97) {
                let expect = a % q;
                for r in &reducers {
                    assert_eq!(r.barrett(a), expect, "q={q} a={a}");
                }
            }
            for a in (0..q * 16).step_by(1013) {
                let expect = reducers[0].montgomery(a);
                for r in &reducers[1..] {
                    assert_eq!(r.montgomery(a), expect, "q={q} a={a}");
                }
            }
        }
    }

    #[test]
    fn cryptopim_costs_are_table1() {
        let r = Reducer::new(12289, ReductionStyle::CryptoPim).unwrap();
        assert_eq!(r.barrett_cycles(), 239);
        assert_eq!(r.montgomery_cycles(), 461);
        let r = Reducer::new(786433, ReductionStyle::CryptoPim).unwrap();
        assert_eq!(r.barrett_cycles(), 429);
        assert_eq!(r.montgomery_cycles(), 1083);
        let r = Reducer::new(7681, ReductionStyle::CryptoPim).unwrap();
        assert_eq!(r.montgomery_cycles(), 683);
        assert_eq!(r.barrett_cycles(), 276, "recovered illegible cell");
    }

    #[test]
    fn style_cost_ordering() {
        // mul-based > plain shift-add > optimized, for every modulus.
        for q in [7681u64, 12289, 786433] {
            let opt = Reducer::new(q, ReductionStyle::CryptoPim).unwrap();
            let sa = Reducer::new(q, ReductionStyle::ShiftAdd).unwrap();
            let mb = Reducer::new(
                q,
                ReductionStyle::MulBased {
                    optimized_mul: true,
                },
            )
            .unwrap();
            assert!(opt.montgomery_cycles() < sa.montgomery_cycles(), "q={q}");
            assert!(sa.montgomery_cycles() < mb.montgomery_cycles(), "q={q}");
            assert!(opt.barrett_cycles() < sa.barrett_cycles(), "q={q}");
            assert!(sa.barrett_cycles() < mb.barrett_cycles(), "q={q}");
        }
    }

    #[test]
    fn mul_based_with_slow_multiplier_costs_more() {
        let fast = Reducer::new(
            12289,
            ReductionStyle::MulBased {
                optimized_mul: true,
            },
        )
        .unwrap();
        let slow = Reducer::new(
            12289,
            ReductionStyle::MulBased {
                optimized_mul: false,
            },
        )
        .unwrap();
        assert!(slow.montgomery_cycles() > fast.montgomery_cycles());
        assert!(slow.barrett_cycles() > fast.barrett_cycles());
    }

    #[test]
    fn montgomery_form_roundtrip() {
        let r = Reducer::new(12289, ReductionStyle::CryptoPim).unwrap();
        for a in (0..12289).step_by(7) {
            assert_eq!(r.from_mont(r.to_mont(a)), a);
        }
    }

    #[test]
    fn mont_mul_through_reducer() {
        // montgomery(to_mont(a) · to_mont(b)) == to_mont(a·b)
        let r = Reducer::new(7681, ReductionStyle::CryptoPim).unwrap();
        let q = 7681u64;
        for (a, b) in [(5u64, 7u64), (1234, 4321), (7680, 7680), (0, 55)] {
            let prod_m = r.montgomery(r.to_mont(a) * r.to_mont(b));
            assert_eq!(r.from_mont(prod_m), a * b % q);
        }
    }

    #[test]
    fn unsupported_modulus() {
        // Even, zero, and ≥ 2^31 moduli have no shift-add REDC.
        assert!(Reducer::new(0, ReductionStyle::CryptoPim).is_err());
        assert!(Reducer::new(40962, ReductionStyle::CryptoPim).is_err());
        assert!(Reducer::new(1 << 31, ReductionStyle::CryptoPim).is_err());
    }

    #[test]
    fn generic_modulus_reducer_works_with_trace_costs() {
        // An NTT-friendly residue prime outside the paper's table: the
        // reducer is functional and its CryptoPim-style cost falls back
        // to the NAF-trace cost (identical to the ShiftAdd style).
        let q = 1073479681u64; // 2^30-ish prime, 8192 | q − 1
        let opt = Reducer::new(q, ReductionStyle::CryptoPim).unwrap();
        let sa = Reducer::new(q, ReductionStyle::ShiftAdd).unwrap();
        for a in (0..2 * q).step_by(10_000_019) {
            assert_eq!(opt.barrett(a), a % q);
        }
        for a in (0..q * 8).step_by(100_000_007) {
            assert_eq!(opt.montgomery(a), sa.montgomery(a));
            assert_eq!(opt.from_mont(opt.to_mont(a % q)), a % q);
        }
        assert_eq!(opt.barrett_cycles(), sa.barrett_cycles());
        assert_eq!(opt.montgomery_cycles(), sa.montgomery_cycles());
        assert_eq!(opt.native_bitwidth(), 32);
        assert!(opt.barrett_cycles() > 0);
        assert!(opt.montgomery_cycles() > 0);
    }

    #[test]
    fn native_widths() {
        assert_eq!(
            Reducer::new(7681, ReductionStyle::CryptoPim)
                .unwrap()
                .native_bitwidth(),
            16
        );
        assert_eq!(
            Reducer::new(786433, ReductionStyle::CryptoPim)
                .unwrap()
                .native_bitwidth(),
            32
        );
    }
}

//! Cycle-accurate ReRAM processing-in-memory (PIM) simulator.
//!
//! This crate is the substrate the paper's evaluation ran on: the authors
//! used an in-house cycle-accurate C++ simulator plus HSPICE device
//! characterization; we rebuild the same stack in Rust (see DESIGN.md §2
//! for the substitution table).
//!
//! The simulator has two levels, cross-validated against each other:
//!
//! * **Gate level** ([`logic`]) — bitwise in-memory operations (MAGIC /
//!   FELIX style) executed literally on bit vectors, one cycle per
//!   primitive. The adder/subtractor microprograms built from them are
//!   bit-exact and their measured cycle counts equal the closed forms
//!   the paper quotes (`6N+1`, `7N+1`).
//! * **Word level** ([`block`]) — vector-wide operations on whole memory
//!   blocks. Results are computed with ordinary word arithmetic, while
//!   cycles and energy are accounted with the validated closed forms
//!   ([`cost`]). This is what makes 32k-degree simulations tractable.
//!
//! Modules:
//!
//! * [`device`] — VTEAM-style RRAM device model (Ron/Roff, thresholds,
//!   1.1 ns switching delay = the CryptoPIM cycle time).
//! * [`logic`] — gate-level bitwise primitives and the full-adder
//!   microprogram.
//! * [`cost`] — the closed-form cycle costs of every CryptoPIM operation
//!   (paper §III-B and Table I).
//! * [`reduce`] — in-memory shift-add Barrett/Montgomery reduction
//!   microprograms, plus the multiplication-based reduction the BP-1/BP-2
//!   baselines use.
//! * [`switch`] — fixed-function inter-block switches (A→A, A→A±s) and
//!   the full-crossbar comparator.
//! * [`block`] — the 512×512 PIM-enabled memory block with vector-wide
//!   operations and cycle/energy accounting.
//! * [`energy`] — the calibrated energy model.
//! * [`stats`] — cycle/energy tallies.
//! * [`variation`] — Monte Carlo process-variation analysis (§IV-A).

pub mod alu;
pub mod bank;
pub mod block;
pub mod cost;
pub mod crossbar;
pub mod device;
pub mod energy;
pub mod fault;
pub mod logic;
pub mod par;
pub(crate) mod pool;
pub mod reduce;
pub mod reduce_gate;
pub mod stats;
pub mod switch;
pub mod variation;

mod error;

pub use error::PimError;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PimError>;

/// The CryptoPIM clock period: the RRAM switching delay of the adopted
/// device (paper §IV-A), in nanoseconds.
pub const CYCLE_TIME_NS: f64 = 1.1;

/// Rows/columns of one PIM-enabled memory block (paper §III-C).
pub const BLOCK_DIM: usize = 512;

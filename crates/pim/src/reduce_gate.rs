//! Gate-level execution of the shift-add reduction sequences
//! (Algorithm 3), completing the bit-exact validation chain: the
//! adder/subtractor microprograms are validated in [`crate::logic`], the
//! multiplier in [`crate::alu`], and here the full Barrett/Montgomery
//! sequences run literally on the gate engine — shifts as free column
//! re-selection, masks as free column truncation, and the final
//! conditional subtraction as an explicit borrow-controlled multiplexer.
//!
//! The measured cycle counts are those of a *straightforward* gate
//! implementation (no "necessary bits only" pruning), so they sit above
//! the paper's Table I values; the `word level ≡ gate level` equality is
//! the point, the cycles are reported for the ablation.

use crate::logic::{from_columns, to_columns, BitColumn, GateEngine};
use crate::{PimError, Result};

/// A row-parallel multi-bit value held as LSB-first bit columns.
///
/// Shifts and truncations re-label columns and cost **zero** cycles
/// (paper §III-B: "shifting operation is translated to selecting
/// appropriate columns of the memory block").
#[derive(Debug, Clone)]
pub struct GateWord {
    cols: Vec<BitColumn>,
    rows: usize,
}

impl GateWord {
    /// Packs row values into columns at the given width.
    pub fn from_values(values: &[u64], width: usize) -> Self {
        GateWord {
            cols: to_columns(values, width),
            rows: values.len(),
        }
    }

    /// Unpacks back to row values.
    pub fn to_values(&self) -> Vec<u64> {
        from_columns(&self.cols)
    }

    /// Current width in bits.
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Left shift by `k` (free: prepend zero columns).
    pub fn shl(&self, k: usize) -> GateWord {
        let mut cols = vec![vec![false; self.rows]; k];
        cols.extend(self.cols.iter().cloned());
        GateWord {
            cols,
            rows: self.rows,
        }
    }

    /// Right shift by `k` (free: drop low columns).
    pub fn shr(&self, k: usize) -> GateWord {
        GateWord {
            cols: self.cols.iter().skip(k).cloned().collect(),
            rows: self.rows,
        }
    }

    /// Mask to the low `w` bits (free: drop high columns).
    pub fn truncate(&self, w: usize) -> GateWord {
        GateWord {
            cols: self.cols.iter().take(w).cloned().collect(),
            rows: self.rows,
        }
    }

    /// Zero-extends to width `w` (free).
    pub fn extend_to(&self, w: usize) -> GateWord {
        let mut cols = self.cols.clone();
        while cols.len() < w {
            cols.push(vec![false; self.rows]);
        }
        GateWord {
            cols,
            rows: self.rows,
        }
    }

    /// Gate-level addition at the wider operand's width (plus carry).
    pub fn add(&self, other: &GateWord, eng: &mut GateEngine) -> GateWord {
        let w = self.width().max(other.width());
        let a = self.extend_to(w);
        let b = other.extend_to(w);
        GateWord {
            cols: eng.add_words(&a.cols, &b.cols, w),
            rows: self.rows,
        }
    }

    /// Gate-level subtraction modulo `2^w` at the wider width.
    pub fn sub(&self, other: &GateWord, eng: &mut GateEngine) -> GateWord {
        let w = self.width().max(other.width());
        let a = self.extend_to(w);
        let b = other.extend_to(w);
        GateWord {
            cols: eng.sub_words(&a.cols, &b.cols, w),
            rows: self.rows,
        }
    }

    /// Conditional subtraction to canonical range: returns
    /// `self − q` where that is non-negative, else `self`, using a
    /// borrow-controlled column multiplexer (`3` gates per bit plus one
    /// shared inversion).
    pub fn cond_sub_const(&self, q: u64, eng: &mut GateEngine) -> GateWord {
        // Work one bit wider so the sign of (self − q) is visible.
        let w = self.width() + 1;
        let a = self.extend_to(w);
        let qw = GateWord::from_values(&vec![q; self.rows], w);
        let d = a.sub(&qw, eng);
        // Top bit set ⇔ self < q ⇔ keep self.
        let keep = d.cols[w - 1].clone();
        let take = eng.not(&keep);
        let mut cols = Vec::with_capacity(w - 1);
        for bit in 0..w - 1 {
            let from_self = eng.and2(&keep, &a.cols[bit]);
            let from_diff = eng.and2(&take, &d.cols[bit]);
            cols.push(eng.or2(&from_self, &from_diff));
        }
        GateWord {
            cols,
            rows: self.rows,
        }
    }
}

/// Outcome of a gate-level reduction run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateReduceOutcome {
    /// Canonical residues, one per row.
    pub values: Vec<u64>,
    /// Gate cycles executed.
    pub cycles: u64,
}

/// Runs the shift-add **Barrett** sequence of Algorithm 3 at gate level
/// on post-addition inputs (`a < 2q`).
///
/// # Errors
///
/// [`PimError::UnsupportedModulus`] for unspecialized moduli.
pub fn gate_barrett(values: &[u64], q: u64) -> Result<GateReduceOutcome> {
    debug_assert!(values.iter().all(|&a| a < 2 * q));
    let mut eng = GateEngine::new();
    let out = match q {
        12289 => {
            // a < 2q fits 15 bits; (a<<2)+a is 17 bits.
            let a = GateWord::from_values(values, 15);
            let s = a.shl(2).add(&a, &mut eng);
            let u = s.shr(16); // ≤ 1 bit of quotient estimate
            let uq = u.shl(13).add(&u.shl(12), &mut eng).add(&u, &mut eng);
            let r = a.sub(&uq.truncate(15), &mut eng);
            r.cond_sub_const(q, &mut eng)
        }
        7681 => {
            let a = GateWord::from_values(values, 14);
            let u = a.shr(13);
            // u·q = (u<<13) − (u<<9) + u (erratum-corrected constant).
            let uq = u.shl(13).sub(&u.shl(9), &mut eng).add(&u, &mut eng);
            let r = a.sub(&uq.truncate(14), &mut eng);
            r.cond_sub_const(q, &mut eng)
        }
        786433 => {
            let a = GateWord::from_values(values, 21);
            let u = a.shr(20);
            let uq = u.shl(19).add(&u.shl(18), &mut eng).add(&u, &mut eng);
            let r = a.sub(&uq.truncate(21), &mut eng);
            r.cond_sub_const(q, &mut eng)
        }
        _ => return Err(PimError::UnsupportedModulus { q }),
    };
    Ok(GateReduceOutcome {
        values: out.to_values(),
        cycles: eng.trace().cycles(),
    })
}

/// Runs the shift-add **Montgomery** (REDC) sequence at gate level for
/// inputs `a < q·R`, returning `a·R⁻¹ mod q`.
///
/// # Errors
///
/// [`PimError::UnsupportedModulus`] for unspecialized moduli.
pub fn gate_montgomery(values: &[u64], q: u64) -> Result<GateReduceOutcome> {
    let mut eng = GateEngine::new();
    let out = match q {
        12289 => {
            // a < q·2^18 fits 32 bits; m = a·12287 mod 2^18.
            let a = GateWord::from_values(values, 32);
            let m = a
                .shl(13)
                .truncate(18)
                .add(&a.shl(12).truncate(18), &mut eng)
                .truncate(18)
                .sub(&a.truncate(18), &mut eng);
            // t = (a + m·q) >> 18, a 15-bit result (≤ 2q).
            let mq = m.shl(13).add(&m.shl(12), &mut eng).add(&m, &mut eng);
            let t = mq.add(&a, &mut eng).shr(18).truncate(15);
            t.cond_sub_const(q, &mut eng)
        }
        7681 => {
            let a = GateWord::from_values(values, 31);
            // m = a·7679 mod 2^18 = ((a<<13) − (a<<9) − a) mod 2^18.
            let m = a
                .shl(13)
                .truncate(18)
                .sub(&a.shl(9).truncate(18), &mut eng)
                .sub(&a.truncate(18), &mut eng);
            // m·q = (m<<13) − (m<<9) + m (erratum-corrected order).
            let mq = m.shl(13).sub(&m.shl(9), &mut eng).add(&m, &mut eng);
            let t = mq.add(&a, &mut eng).shr(18).truncate(14);
            t.cond_sub_const(q, &mut eng)
        }
        786433 => {
            let a = GateWord::from_values(values, 52);
            // m = a·786431 mod 2^32 = ((a<<19) + (a<<18) − a) mod 2^32.
            let m = a
                .shl(19)
                .truncate(32)
                .add(&a.shl(18).truncate(32), &mut eng)
                .truncate(32)
                .sub(&a.truncate(32), &mut eng);
            let mq = m.shl(19).add(&m.shl(18), &mut eng).add(&m, &mut eng);
            let t = mq.add(&a, &mut eng).shr(32).truncate(21);
            t.cond_sub_const(q, &mut eng)
        }
        _ => return Err(PimError::UnsupportedModulus { q }),
    };
    Ok(GateReduceOutcome {
        values: out.to_values(),
        cycles: eng.trace().cycles(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modmath::barrett::shift_add_reduce;
    use modmath::montgomery::{paper_r_exponent, shift_add_redc};

    fn spread(limit: u64, count: usize, seed: u64) -> Vec<u64> {
        let mut state = seed;
        (0..count)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state % limit
            })
            .collect()
    }

    #[test]
    fn gate_barrett_matches_word_level() {
        for q in [7681u64, 12289, 786433] {
            let inputs = spread(2 * q, 128, q);
            let out = gate_barrett(&inputs, q).unwrap();
            for (i, &a) in inputs.iter().enumerate() {
                assert_eq!(
                    out.values[i],
                    shift_add_reduce(a, q).unwrap(),
                    "q = {q}, a = {a}"
                );
                assert_eq!(out.values[i], a % q, "q = {q}, a = {a}");
            }
            assert!(out.cycles > 0);
        }
    }

    #[test]
    fn gate_barrett_edge_values() {
        for q in [7681u64, 12289, 786433] {
            let edges = [0, 1, q - 1, q, q + 1, 2 * q - 1];
            let out = gate_barrett(&edges, q).unwrap();
            for (i, &a) in edges.iter().enumerate() {
                assert_eq!(out.values[i], a % q, "q = {q}, a = {a}");
            }
        }
    }

    #[test]
    fn gate_montgomery_matches_word_level() {
        for q in [7681u64, 12289, 786433] {
            let k = paper_r_exponent(q).unwrap();
            let limit = ((q as u128) << k).min(u64::MAX as u128) as u64;
            let inputs = spread(limit, 96, q + 3);
            let out = gate_montgomery(&inputs, q).unwrap();
            for (i, &a) in inputs.iter().enumerate() {
                assert_eq!(
                    out.values[i],
                    shift_add_redc(a, q).unwrap(),
                    "q = {q}, a = {a}"
                );
            }
        }
    }

    #[test]
    fn gate_montgomery_edge_values() {
        for q in [7681u64, 12289] {
            let k = paper_r_exponent(q).unwrap();
            let edges = [0u64, 1, q, (q << k) - 1];
            let out = gate_montgomery(&edges, q).unwrap();
            for (i, &a) in edges.iter().enumerate() {
                assert_eq!(out.values[i], shift_add_redc(a, q).unwrap());
            }
        }
    }

    #[test]
    fn unsupported_modulus_rejected() {
        assert!(gate_barrett(&[1], 17).is_err());
        assert!(gate_montgomery(&[1], 17).is_err());
    }

    #[test]
    fn gate_cycles_exceed_pruned_table1() {
        // The unpruned gate implementation must cost at least the
        // paper's optimized (bit-pruned) Table I values — otherwise the
        // paper's claimed optimization would be meaningless.
        for q in [7681u64, 12289, 786433] {
            let b = gate_barrett(&[q - 1], q).unwrap().cycles;
            let m = gate_montgomery(&[q - 1], q).unwrap().cycles;
            let tb = crate::cost::barrett_cycles(q).unwrap();
            let tm = crate::cost::montgomery_cycles(q).unwrap();
            assert!(b >= tb, "q = {q}: gate Barrett {b} < Table I {tb}");
            assert!(m >= tm, "q = {q}: gate Montgomery {m} < Table I {tm}");
        }
    }

    #[test]
    fn gateword_shift_semantics() {
        let mut eng = GateEngine::new();
        let w = GateWord::from_values(&[5, 9], 4);
        assert_eq!(w.shl(2).to_values(), vec![20, 36]);
        assert_eq!(w.shr(1).to_values(), vec![2, 4]);
        assert_eq!(w.truncate(2).to_values(), vec![1, 1]);
        assert_eq!(eng.trace().cycles(), 0, "shifts are free");
        let sum = w.add(&w, &mut eng);
        assert_eq!(sum.to_values(), vec![10, 18]);
        assert!(eng.trace().cycles() > 0);
    }

    #[test]
    fn cond_sub_both_branches() {
        let mut eng = GateEngine::new();
        let w = GateWord::from_values(&[3, 7, 10, 13], 4);
        let out = w.cond_sub_const(7, &mut eng);
        assert_eq!(out.to_values(), vec![3, 0, 3, 6]);
    }
}

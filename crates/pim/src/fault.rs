//! Functional fault injection on the block write path.
//!
//! The paper's robustness analysis (§IV-A) is analytic — a Monte Carlo
//! sweep of sensing margins in [`crate::variation`] — but never makes a
//! fault *happen*. This module defines the hook through which faults
//! become functional: every vector-wide write a datapath phase performs
//! can be routed through a [`WritePath`], which returns the word as the
//! (possibly corrupted) memory array would actually hold it.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The engine consults the hook with a
//!    single `Option`/`armed()` check per phase; when no write path is
//!    installed (the default everywhere) the datapath is untouched and
//!    the steady state stays allocation-free and branch-predictable.
//! 2. **Determinism.** Implementations must derive every fault decision
//!    from their seed and the *logical* write address/epoch — never from
//!    wall-clock time or global RNG — so a seeded campaign replays
//!    bit-identically.
//! 3. **Addressability.** Faults name `(bank, block, row, bit)` cells
//!    ([`CellAddr`]), with the block index taken from the fixed
//!    per-phase [`layout`] below, so campaigns can target the ψ
//!    pre-multiply block, one butterfly stage, or the post-multiply
//!    output specifically.
//!
//! The trait lives in `pim` (the substrate owns the write path); the
//! concrete seeded fault-plan implementation lives in the
//! `cryptopim-reliability` crate.

use std::fmt;
use std::sync::Arc;

/// Address of a single memory cell in the fleet.
///
/// `bank` is the virtual superbank a service worker drives, `block` a
/// pipeline block from [`layout`], `row` the coefficient index within
/// the vector-wide write (lane-stacked: physical row `row % 512` of
/// lane `row / 512`), and `bit` the cell's bit position in the word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellAddr {
    /// Virtual superbank index.
    pub bank: u32,
    /// Pipeline block index (see [`layout`]).
    pub block: u32,
    /// Coefficient row within the vector-wide write.
    pub row: u32,
    /// Bit position within the stored word.
    pub bit: u8,
}

/// One bank's view of the (possibly faulty) block write path.
///
/// The engine calls [`WritePath::store`] for every word of every phase
/// write while [`WritePath::armed`] is true; an implementation returns
/// the word as the array would hold it after the write. A returned word
/// may exceed the canonical range `[0, q)` — the engine re-canonicalizes
/// before the value re-enters the arithmetic pipeline, mirroring the
/// sense-amplifier re-interpreting whatever charge the cells hold.
pub trait WritePath: fmt::Debug + Send + Sync {
    /// Whether any fault can fire on this bank. When false the engine
    /// skips the per-word hook entirely (the zero-cost-when-disabled
    /// contract).
    fn armed(&self) -> bool;

    /// Marks the start of one multiply operation on this bank.
    /// Implementations advance their write-epoch counter here; epochs
    /// drive endurance wear-out and transient-fault sampling.
    fn begin_op(&self);

    /// Stores one word at `(block, row)` and returns what the cells
    /// actually hold afterwards.
    fn store(&self, block: u32, row: u32, value: u64) -> u64;

    /// The bank this view addresses (for fault localization).
    fn bank(&self) -> u32;

    /// The lowest faulted block on this bank, if any — the best a
    /// residue check can localize a detected corruption to without a
    /// per-block readback pass.
    fn suspect_block(&self) -> Option<u32>;
}

/// A fleet-level fault injector: hands each virtual superbank worker its
/// own [`WritePath`] view. Implementations must be cheap to share
/// (`Arc`) and must keep per-bank state (write epochs) inside the
/// returned view so banks age independently.
pub trait Injector: fmt::Debug + Send + Sync {
    /// The write-path view for one bank.
    fn bank_writes(&self, bank: u32) -> Arc<dyn WritePath>;
}

/// Localization of a detected result corruption, carried by
/// [`crate::PimError::CorruptResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Bank the corrupt product was computed on.
    pub bank: u32,
    /// Faulted block the corruption localizes to, when the bank's write
    /// path knows one (`None` when the check fired without an installed
    /// injector — a genuine hardware fault would land here).
    pub block: Option<u32>,
    /// Residue evaluation points that disagreed.
    pub failed_points: u32,
    /// Residue evaluation points checked in total.
    pub checked_points: u32,
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bank {} ({}), {}/{} residue points failed",
            self.bank,
            match self.block {
                Some(b) => format!("block {b}"),
                None => "block unknown".to_string(),
            },
            self.failed_points,
            self.checked_points
        )
    }
}

/// The fixed block index of each datapath phase, as a function of the
/// transform size `log_n = log2(n)`.
///
/// The engine pipelines a multiply through `2·log_n + 3` logical blocks:
/// the ψ pre-multiply block, `log_n` forward-stage blocks, the
/// point-wise block, `log_n` inverse-stage blocks, and the ψ⁻¹·n⁻¹
/// post-multiply block. The two operand pipelines travel mirrored
/// softbanks; fault addresses cover the A-operand pipeline plus the
/// shared product blocks (point-wise onward) — the mirror adds no new
/// failure modes, only a second copy of the same blocks.
pub mod layout {
    /// ψ pre-multiply block.
    #[inline]
    pub fn premul() -> u32 {
        0
    }

    /// Forward NTT stage `stage ∈ [0, log_n)`.
    #[inline]
    pub fn forward(stage: u32) -> u32 {
        1 + stage
    }

    /// Point-wise multiplication block.
    #[inline]
    pub fn pointwise(log_n: u32) -> u32 {
        1 + log_n
    }

    /// Inverse NTT stage `stage ∈ [0, log_n)`.
    #[inline]
    pub fn inverse(log_n: u32, stage: u32) -> u32 {
        2 + log_n + stage
    }

    /// ψ⁻¹·n⁻¹ post-multiply (output) block.
    #[inline]
    pub fn postmul(log_n: u32) -> u32 {
        2 + 2 * log_n
    }

    /// Total pipeline blocks a degree-`2^log_n` multiply writes.
    #[inline]
    pub fn blocks(log_n: u32) -> u32 {
        3 + 2 * log_n
    }
}

/// SplitMix64 finalizer: the deterministic hash every fault decision in
/// the workspace derives from (site sampling, transient firing, residue
/// evaluation points). Pure, allocation-free, and stable across
/// platforms — the backbone of the replayable-campaign contract.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_blocks_are_distinct_and_dense() {
        for log_n in [3u32, 8, 15] {
            let mut seen = vec![false; layout::blocks(log_n) as usize];
            let mut mark = |b: u32| {
                assert!(!seen[b as usize], "block {b} assigned twice");
                seen[b as usize] = true;
            };
            mark(layout::premul());
            for s in 0..log_n {
                mark(layout::forward(s));
            }
            mark(layout::pointwise(log_n));
            for s in 0..log_n {
                mark(layout::inverse(log_n, s));
            }
            mark(layout::postmul(log_n));
            assert!(seen.iter().all(|&s| s), "every block index covered");
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), splitmix64(2));
        // A weak avalanche sanity check: flipping one input bit flips
        // many output bits.
        let d = (splitmix64(42) ^ splitmix64(43)).count_ones();
        assert!(d > 16, "avalanche too weak: {d} bits");
    }

    #[test]
    fn fault_report_displays_localization() {
        let r = FaultReport {
            bank: 3,
            block: Some(7),
            failed_points: 2,
            checked_points: 3,
        };
        assert!(r.to_string().contains("bank 3"));
        assert!(r.to_string().contains("block 7"));
        let unknown = FaultReport { block: None, ..r };
        assert!(unknown.to_string().contains("block unknown"));
    }
}

//! The calibrated energy model.
//!
//! The paper derives per-operation energies from HSPICE simulation of a
//! 45 nm design; those netlists are not published, so we substitute a
//! transparent two-constant model (DESIGN.md §2):
//!
//! * every gate cycle dissipates [`ROW_GATE_ENERGY_PJ`] per active row
//!   (device switching + wordline drive), and
//! * every inter-block transfer dissipates [`TRANSFER_BIT_ROW_ENERGY_PJ`]
//!   per moved bit per row (switch + bitline).
//!
//! **Calibration.** `ROW_GATE_ENERGY_PJ` is fitted once so the pipelined
//! n = 256 polynomial multiplication matches Table II's 2.58 µJ;
//! `TRANSFER_BIT_ROW_ENERGY_PJ` is ≈ 1.75× the gate constant (a transfer
//! is a read + switch route + write per bit, i.e. roughly two device
//! operations) — this ratio is what yields the paper's ≈ 1.6 %
//! pipelining energy overhead. Every other energy number in
//! EXPERIMENTS.md is a *prediction* of this model, compared against the
//! paper's values (they land within ≈ 2 % across Table II).
//!
//! The fitted 0.24 pJ/row·cycle sits comfortably in the published range
//! for ReRAM logic (≈ 0.1 – 1 pJ per bitwise operation).

/// Energy per gate cycle per active row, in picojoules (fitted).
pub const ROW_GATE_ENERGY_PJ: f64 = 0.2396;

/// Energy per transferred bit per row through an inter-block switch,
/// in picojoules (read + route + write).
pub const TRANSFER_BIT_ROW_ENERGY_PJ: f64 = 0.419;

/// Energy of `cycles` of row-parallel compute over `rows` active rows.
#[inline]
pub fn compute_energy_pj(cycles: u64, rows: usize) -> f64 {
    cycles as f64 * rows as f64 * ROW_GATE_ENERGY_PJ
}

/// Energy of one vector transfer of `rows` values of `bitwidth` bits.
#[inline]
pub fn transfer_energy_pj(rows: usize, bitwidth: u32) -> f64 {
    rows as f64 * bitwidth as f64 * TRANSFER_BIT_ROW_ENERGY_PJ
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_energy_scales_linearly() {
        let e1 = compute_energy_pj(100, 256);
        let e2 = compute_energy_pj(200, 256);
        let e3 = compute_energy_pj(100, 512);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert!((e3 - 2.0 * e1).abs() < 1e-9);
        assert_eq!(compute_energy_pj(0, 512), 0.0);
    }

    #[test]
    fn transfer_energy_scales_with_width() {
        let e16 = transfer_energy_pj(512, 16);
        let e32 = transfer_energy_pj(512, 32);
        assert!((e32 - 2.0 * e16).abs() < 1e-9);
    }

    #[test]
    fn transfers_are_cheap_relative_to_compute() {
        // One 16-bit transfer of a full block costs less than one 16-bit
        // vector add (97 cycles over the same rows) — transfers stay a
        // small slice of total energy.
        let add = compute_energy_pj(97, 512);
        let xfer = transfer_energy_pj(512, 16);
        assert!(xfer < add);
    }
}

//! Closed-form cycle costs of CryptoPIM operations (paper §III-B/C).
//!
//! These formulas are the paper's stated latencies; the gate-level engine
//! in [`crate::logic`] validates the linear ones by construction, and the
//! ablation bench compares the two multiplier formulas.
//!
//! | operation                            | cycles                  |
//! |--------------------------------------|-------------------------|
//! | N-bit addition \[10\]                  | `6N + 1`                |
//! | N-bit subtraction                    | `7N + 1`                |
//! | N-bit multiplication (CryptoPIM)     | `6.5N² − 11.5N + 3`     |
//! | N-bit multiplication (Haj-Ali \[35\])  | `13N² − 14N + 6`        |
//! | block-to-block switch transfer       | `3 × bitwidth`          |

use modmath::barrett::ShiftAddOp;

/// Cycles for an N-bit in-memory addition: `6N + 1`.
#[inline]
pub fn add_cycles(n: u32) -> u64 {
    6 * n as u64 + 1
}

/// Cycles for an N-bit in-memory subtraction: `7N + 1`.
#[inline]
pub fn sub_cycles(n: u32) -> u64 {
    7 * n as u64 + 1
}

/// Cycles for CryptoPIM's N-bit in-memory multiplication:
/// `6.5N² − 11.5N + 3` (the paper's optimized multiplier, combining the
/// partial-product algorithm of \[35\] with the low-latency bitwise
/// operations of \[10\]).
///
/// # Panics
///
/// Panics if `n` is odd (the formula is specified for the paper's even
/// datapath widths, where it is integral).
#[inline]
pub fn mul_cycles(n: u32) -> u64 {
    assert!(
        n.is_multiple_of(2),
        "multiplier cost specified for even widths"
    );
    let n = n as u64;
    (13 * n * n) / 2 - (23 * n) / 2 + 3
}

/// Cycles for the baseline N-bit multiplication of Haj-Ali et al. \[35\]:
/// `13N² − 14N + 6`. Used by the BP-1 PIM baseline.
#[inline]
pub fn mul_cycles_baseline(n: u32) -> u64 {
    let n = n as u64;
    13 * n * n - 14 * n + 6
}

/// Cycles to move one vector between adjacent blocks through a
/// fixed-function switch: one column read/write per data bit for each of
/// the three connection kinds (A→A, A→A+s, A→A−s): `3 × bitwidth`.
#[inline]
pub fn switch_transfer_cycles(bitwidth: u32) -> u64 {
    3 * bitwidth as u64
}

/// Cycles for a shift-add reduction sequence given its operation trace:
/// shifts are free (column selection), each add costs `6w + 1` and each
/// subtract `7w + 1` at its actual width `w`.
pub fn shift_add_trace_cycles(trace: &[ShiftAddOp]) -> u64 {
    trace
        .iter()
        .map(|op| match *op {
            ShiftAddOp::Add { width } => add_cycles(width),
            ShiftAddOp::Sub { width } => sub_cycles(width),
        })
        .sum()
}

/// The paper's Table I: reduction latencies in cycles.
///
/// The Barrett entry for q = 7681 is illegible in the published table;
/// [`table1_paper_barrett`] returns `None` there and the bench prints our
/// model's value alongside.
pub fn table1_paper_barrett(q: u64) -> Option<u64> {
    match q {
        7681 => None, // illegible in the source scan
        12289 => Some(239),
        786433 => Some(429),
        _ => None,
    }
}

/// The paper's Table I Montgomery latencies.
pub fn table1_paper_montgomery(q: u64) -> Option<u64> {
    match q {
        7681 => Some(683),
        12289 => Some(461),
        786433 => Some(1083),
        _ => None,
    }
}

/// Authoritative in-memory Barrett reduction cost used by the simulator.
///
/// For q ∈ {12289, 786433} these are the published Table I values. The
/// q = 7681 cell is illegible in the source; 276 is recovered from the
/// paper's own Fig. 4a arithmetic — the area-efficient stage latency of
/// 2700 cycles (16-bit, n = 256, q = 7681) decomposes as
/// `sub(113) + mul(1483) + montgomery(683) + add(97) + barrett + xfer(48)`,
/// which pins `barrett = 276`.
///
/// # Errors
///
/// Returns [`crate::PimError::UnsupportedModulus`] for other moduli.
pub fn barrett_cycles(q: u64) -> crate::Result<u64> {
    match q {
        7681 => Ok(276),
        12289 => Ok(239),
        786433 => Ok(429),
        _ => Err(crate::PimError::UnsupportedModulus { q }),
    }
}

/// Authoritative in-memory Montgomery reduction cost (Table I).
///
/// # Errors
///
/// Returns [`crate::PimError::UnsupportedModulus`] for other moduli.
pub fn montgomery_cycles(q: u64) -> crate::Result<u64> {
    match q {
        7681 => Ok(683),
        12289 => Ok(461),
        786433 => Ok(1083),
        _ => Err(crate::PimError::UnsupportedModulus { q }),
    }
}

/// Cost of a *multiplication-based* modular reduction, as the BP-1/BP-2
/// baselines use before the paper converts reductions to shift-and-add
/// (§IV-C): a Barrett-style reduction computed with two in-memory
/// multiplications by precomputed constants plus the final subtract.
///
/// `mul` selects the multiplier the baseline uses (CryptoPIM's or \[35\]'s).
pub fn mul_based_reduction_cycles(bitwidth: u32, mul: fn(u32) -> u64) -> u64 {
    // q·floor(a·m / 2^k): one N-bit multiply for the quotient estimate,
    // one for quotient·q, one subtract of the product tail.
    2 * mul(bitwidth) + sub_cycles(bitwidth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quoted_values() {
        // §III-D quotes 16-bit figures; Table II implies the 32-bit ones.
        assert_eq!(add_cycles(16), 97);
        assert_eq!(sub_cycles(16), 113);
        assert_eq!(mul_cycles(16), 1483);
        assert_eq!(mul_cycles(32), 6291);
        assert_eq!(mul_cycles_baseline(16), 3110);
        assert_eq!(mul_cycles_baseline(32), 12870);
        assert_eq!(switch_transfer_cycles(16), 48);
        assert_eq!(switch_transfer_cycles(32), 96);
    }

    #[test]
    fn optimized_multiplier_beats_baseline_everywhere() {
        for n in (2..=64).step_by(2) {
            assert!(
                mul_cycles(n) < mul_cycles_baseline(n),
                "optimized must win at N = {n}"
            );
        }
        // Asymptotic ratio approaches 2×.
        let ratio = mul_cycles_baseline(64) as f64 / mul_cycles(64) as f64;
        assert!(ratio > 1.9 && ratio < 2.1, "ratio {ratio}");
    }

    #[test]
    fn mul_formula_matches_float_form() {
        for n in (2u32..=64).step_by(2) {
            let float = 6.5 * (n as f64) * (n as f64) - 11.5 * (n as f64) + 3.0;
            assert_eq!(mul_cycles(n), float as u64);
        }
    }

    #[test]
    #[should_panic(expected = "even widths")]
    fn mul_rejects_odd_width() {
        mul_cycles(15);
    }

    #[test]
    fn trace_costing() {
        use modmath::barrett::ShiftAddOp;
        let trace = [ShiftAddOp::Add { width: 16 }, ShiftAddOp::Sub { width: 16 }];
        assert_eq!(shift_add_trace_cycles(&trace), 97 + 113);
        assert_eq!(shift_add_trace_cycles(&[]), 0);
    }

    #[test]
    fn table1_reference_data() {
        assert_eq!(table1_paper_barrett(12289), Some(239));
        assert_eq!(table1_paper_barrett(786433), Some(429));
        assert_eq!(table1_paper_barrett(7681), None);
        assert_eq!(table1_paper_montgomery(7681), Some(683));
        assert_eq!(table1_paper_montgomery(12289), Some(461));
        assert_eq!(table1_paper_montgomery(786433), Some(1083));
        assert_eq!(table1_paper_montgomery(17), None);
    }
}

//! Deterministic lane fan-out across a persistent worker pool.
//!
//! A CryptoPIM chip is massively parallel: a degree-`n` vector spans
//! `⌈n/512⌉` independent lanes whose blocks execute the same microcode
//! in lock-step, and a superbank packs many independent multiplications
//! side by side. The *simulator* can exploit exactly that independence:
//! each output element (or each batched job) is a pure function of the
//! inputs, so the data path parallelizes trivially while the cycle and
//! energy accounting — which is data-oblivious (cycles depend only on
//! the datapath width, energy on cycles × active rows) — is replayed in
//! the sequential charge order. The result is a wall-clock speedup with
//! **bit-identical** tallies and traces.
//!
//! Execution runs on the lazily-initialized persistent pool in
//! [`crate::pool`]: the first parallel region spawns its workers, every
//! later region reuses them, so `Threads::Fixed(k)` no longer pays an OS
//! thread spawn per NTT stage (the pre-pool [`std::thread::scope`]
//! design did, tens of µs per scope). Still `std`-only — no external
//! thread-pool dependency — and a panicking worker propagates to the
//! caller instead of deadlocking. Worker counts come from [`Threads`],
//! which reads `CRYPTOPIM_THREADS` (or the machine's available
//! parallelism) unless a caller pins an explicit count.

use std::thread;

pub use crate::pool::pool_threads;

/// Environment variable overriding the auto-detected worker count.
pub const THREADS_ENV: &str = "CRYPTOPIM_THREADS";

/// Worker-count policy for parallel lane execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// `CRYPTOPIM_THREADS` if set (and ≥ 1), else the machine's
    /// available parallelism — then gated by problem size so tiny
    /// transforms never pay fan-out latency.
    #[default]
    Auto,
    /// Exactly this many workers (clamped to ≥ 1), regardless of
    /// problem size. Used by the determinism tests and `--threads N`.
    Fixed(usize),
}

impl Threads {
    /// The raw worker count before any size gating.
    pub fn resolve(self) -> usize {
        match self {
            Threads::Fixed(k) => k.max(1),
            Threads::Auto => std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&k| k >= 1)
                .unwrap_or_else(|| thread::available_parallelism().map_or(1, |p| p.get())),
        }
    }

    /// Workers to use for a problem with `lanes` independent elements.
    ///
    /// `Fixed(k)` is honored (capped at `lanes`); `Auto` additionally
    /// gates on size — one worker per 8192 lanes — so that per-stage
    /// dispatch overhead never dominates. Coarser-grained units (whole
    /// batched multiplications) bypass this gate via
    /// [`Threads::resolve`].
    pub fn resolve_for(self, lanes: usize) -> usize {
        let k = self.resolve().min(lanes.max(1));
        match self {
            Threads::Fixed(_) => k,
            Threads::Auto => k.min((lanes / 8192).max(1)),
        }
    }
}

/// Raw-pointer wrapper that lets disjoint chunk writers share one output
/// buffer across pool threads.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Core fan-out: writes `f(i)` into `out + i` for `i in 0..len`, split
/// into `workers` contiguous chunks (chunk 0 on the calling thread,
/// chunks 1.. on the persistent pool).
///
/// # Safety
///
/// `out` must be valid for writes of `len` elements, and the written
/// slots must be safe to overwrite with `ptr::write` (uninitialized, or
/// holding `Copy` values). On panic some slots may be left unwritten.
unsafe fn fill_indexed<T, F>(out: *mut T, len: usize, workers: usize, f: &F)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(len);
    let chunk = len.div_ceil(workers);
    let base = SendPtr(out);
    let base = &base;
    crate::pool::scope_run(workers, &move |w| {
        let start = w * chunk;
        let end = ((w + 1) * chunk).min(len);
        for i in start..end {
            // SAFETY: chunks are disjoint; every slot is written once.
            unsafe { base.0.add(i).write(f(i)) };
        }
    });
}

/// Computes `(0..len).map(f)` with `workers` pool threads, returning
/// results in index order.
///
/// The index range is split into `workers` contiguous chunks; chunk 0
/// runs on the calling thread while chunks 1.. run on pool workers, and
/// every chunk writes directly into its disjoint span of the output — so
/// the result is identical to the sequential map for any worker count.
/// `workers <= 1` short-circuits to a plain loop with zero dispatch.
///
/// # Panics
///
/// Propagates a panic from any worker (produced elements are leaked,
/// never double-dropped).
pub fn map_indexed<T, F>(len: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    let mut out: Vec<T> = Vec::with_capacity(len);
    // SAFETY: the buffer has capacity for `len` writes; on success every
    // slot is initialized before set_len; on panic set_len never runs.
    unsafe {
        fill_indexed(out.as_mut_ptr(), len, workers, &f);
        out.set_len(len);
    }
    out
}

/// In-place variant of [`map_indexed`]: overwrites `out[i] = f(i)` with
/// zero allocations, for hot paths that reuse scratch buffers.
///
/// Restricted to `Copy` elements so overwriting needs no drops.
///
/// # Panics
///
/// Propagates a panic from any worker; `out` is then partially updated.
pub fn map_indexed_into<T, F>(out: &mut [T], workers: usize, f: F)
where
    T: Copy + Send,
    F: Fn(usize) -> T + Sync,
{
    let len = out.len();
    if workers <= 1 || len <= 1 {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    // SAFETY: slice is valid for `len` writes; `T: Copy` has no drop.
    unsafe { fill_indexed(out.as_mut_ptr(), len, workers, &f) };
}

/// Maps `f` over a slice of independent jobs with `workers` pool
/// threads, returning results in input order.
///
/// The batched-multiplication analogue of [`map_indexed`]: each job is
/// a packed superbank slot, fanned out across host threads.
pub fn map_jobs<T, R, F>(jobs: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_indexed(jobs.len(), workers, |i| f(&jobs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_matches_sequential_for_any_worker_count() {
        let reference: Vec<u64> = (0..1000).map(|i| (i as u64) * 17 + 3).collect();
        for workers in [1usize, 2, 3, 4, 7, 8, 16, 1000, 2000] {
            let got = map_indexed(1000, workers, |i| (i as u64) * 17 + 3);
            assert_eq!(got, reference, "workers = {workers}");
        }
    }

    #[test]
    fn map_indexed_handles_tiny_and_empty_inputs() {
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| i + 10), vec![10]);
        assert_eq!(map_indexed(3, 8, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_indexed_into_matches_map_indexed() {
        let reference = map_indexed(513, 1, |i| (i as u64) ^ 0xABCD);
        for workers in [1usize, 2, 3, 8, 513] {
            let mut out = vec![0u64; 513];
            map_indexed_into(&mut out, workers, |i| (i as u64) ^ 0xABCD);
            assert_eq!(out, reference, "workers = {workers}");
        }
    }

    #[test]
    fn map_indexed_into_is_allocation_free_shape() {
        // Zero-length and single-element shapes take the inline path.
        let mut empty: [u64; 0] = [];
        map_indexed_into(&mut empty, 8, |_| 1);
        let mut one = [0u64; 1];
        map_indexed_into(&mut one, 8, |i| i as u64 + 41);
        assert_eq!(one, [41]);
    }

    #[test]
    fn map_jobs_preserves_input_order() {
        let jobs: Vec<String> = (0..57).map(|i| format!("job{i}")).collect();
        let out = map_jobs(&jobs, 4, |j| format!("{j}!"));
        let expect: Vec<String> = (0..57).map(|i| format!("job{i}!")).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn fixed_threads_resolve_clamped() {
        assert_eq!(Threads::Fixed(0).resolve(), 1);
        assert_eq!(Threads::Fixed(6).resolve(), 6);
        assert_eq!(Threads::Fixed(8).resolve_for(4), 4, "capped at lanes");
        assert_eq!(Threads::Fixed(2).resolve_for(4096), 2);
    }

    #[test]
    fn auto_threads_gate_on_problem_size() {
        // Small transforms must never fan out regardless of core count.
        assert_eq!(Threads::Auto.resolve_for(256), 1);
        assert_eq!(Threads::Auto.resolve_for(4096), 1);
        // Large ones are capped by one worker per 8192 lanes.
        assert!(Threads::Auto.resolve_for(32768) <= 4);
        assert!(Threads::Auto.resolve() >= 1);
    }

    #[test]
    fn workers_beyond_len_are_harmless() {
        let got = map_indexed(5, 64, |i| i * i);
        assert_eq!(got, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(100, 4, |i| {
                assert!(i != 77, "deliberate worker panic");
                i
            })
        });
        assert!(result.is_err());
    }
}

//! VTEAM-style RRAM device model.
//!
//! The paper adopts an RRAM device with the VTEAM model \[38\], parameters
//! chosen per \[9\] to fit the practical devices of \[39\], with a switching
//! delay of 1.1 ns (which becomes the CryptoPIM cycle time). We model the
//! quantities the evaluation actually uses: the resistance states, the
//! switching thresholds, and the sensing margins that the Monte Carlo
//! robustness study perturbs.

/// Nominal RRAM device parameters.
///
/// Defaults follow the MAGIC/FELIX literature: `R_on = 10 kΩ`,
/// `R_off = 10 MΩ` (so `R_off/R_on = 1000`, the "high R_OFF/R_ON" the
/// paper credits for robustness), `v_on/v_off` switching thresholds and a
/// 1 V operating voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Low-resistance (logic-1) state, in ohms.
    pub r_on: f64,
    /// High-resistance (logic-0) state, in ohms.
    pub r_off: f64,
    /// Magnitude of the SET threshold voltage, in volts.
    pub v_th: f64,
    /// Operating voltage applied on the wordlines during gate execution.
    pub v_0: f64,
    /// Switching delay in nanoseconds (the cycle time).
    pub switching_delay_ns: f64,
}

impl DeviceParams {
    /// The nominal device used throughout the reproduction.
    pub fn nominal() -> Self {
        DeviceParams {
            r_on: 10e3,
            r_off: 10e6,
            // One active input drives the output node to ≈ v_0/2, so the
            // RESET threshold sits well below that to leave switching
            // margin, and well above the all-off divider output (≈ 2 mV).
            v_th: 0.3,
            v_0: 1.0,
            switching_delay_ns: crate::CYCLE_TIME_NS,
        }
    }

    /// The resistance ratio `R_off / R_on`.
    pub fn resistance_ratio(&self) -> f64 {
        self.r_off / self.r_on
    }

    /// Voltage across the output device of a MAGIC-style 2-input NOR gate
    /// when the inputs are in the given resistance states and the output
    /// device currently holds `R_on` (its initialized state).
    ///
    /// The two input devices appear in parallel between the driven
    /// wordline (`v_0`) and the output node; the output device connects
    /// the output node to ground. The output flips (RESET) only when the
    /// voltage across it exceeds `v_th`.
    pub fn nor_output_voltage(&self, input_states: &[bool]) -> f64 {
        assert!(
            !input_states.is_empty(),
            "NOR gate needs at least one input"
        );
        // Parallel resistance of the input devices.
        let mut conductance = 0.0;
        for &s in input_states {
            let r = if s { self.r_on } else { self.r_off };
            conductance += 1.0 / r;
        }
        let r_in = 1.0 / conductance;
        let r_out = self.r_on; // output initialized to logic 1
        self.v_0 * r_out / (r_in + r_out)
    }

    /// The sensing noise margin of a 2-input MAGIC NOR, normalized to the
    /// threshold voltage. Two conditions must hold:
    ///
    /// * **switch**: with at least one input at logic 1 the output voltage
    ///   must exceed `v_th` — margin `(v_sw − v_th) / v_th`;
    /// * **keep**: with all inputs at logic 0 it must stay below `v_th` —
    ///   margin `(v_th − v_keep) / v_th`.
    ///
    /// The gate margin is the smaller of the two. The Monte Carlo study
    /// perturbs the device parameters and reports how much this margin
    /// degrades (paper: ≤ 25.6 % at 10 % variation).
    pub fn nor_noise_margin(&self) -> f64 {
        let v_switch = self.nor_output_voltage(&[true, false]);
        let v_keep = self.nor_output_voltage(&[false, false]);
        let switch_margin = (v_switch - self.v_th) / self.v_th;
        let keep_margin = (self.v_th - v_keep) / self.v_th;
        switch_margin.min(keep_margin)
    }

    /// `true` when both the switch and keep conditions hold, i.e. the
    /// gate computes correctly with these parameters.
    pub fn gate_functional(&self) -> bool {
        self.nor_noise_margin() > 0.0
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        DeviceParams::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_ratio_is_high() {
        let d = DeviceParams::nominal();
        assert!((d.resistance_ratio() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn nominal_gate_is_functional() {
        let d = DeviceParams::nominal();
        assert!(d.gate_functional());
        assert!(d.nor_noise_margin() > 0.3, "comfortable nominal margin");
    }

    #[test]
    fn switch_voltage_above_keep_voltage() {
        let d = DeviceParams::nominal();
        let v_sw = d.nor_output_voltage(&[true, true]);
        let v_sw1 = d.nor_output_voltage(&[true, false]);
        let v_keep = d.nor_output_voltage(&[false, false]);
        assert!(v_sw > v_sw1, "two on-inputs drive harder than one");
        assert!(v_sw1 > v_keep);
        assert!(v_sw1 > d.v_th, "switch condition");
        assert!(v_keep < d.v_th, "keep condition");
    }

    #[test]
    fn low_ratio_destroys_margin() {
        // With R_off/R_on close to 1 the gate cannot distinguish states.
        let d = DeviceParams {
            r_off: 15e3,
            ..DeviceParams::nominal()
        };
        assert!(d.nor_noise_margin() < DeviceParams::nominal().nor_noise_margin());
        let d2 = DeviceParams {
            r_off: 10e3,
            ..DeviceParams::nominal()
        };
        assert!(!d2.gate_functional());
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_inputs_panic() {
        DeviceParams::nominal().nor_output_voltage(&[]);
    }
}

//! Gate-level in-memory bitwise logic (MAGIC / FELIX style).
//!
//! Digital PIM executes one bitwise operation per device switching cycle,
//! in parallel across every row of a block (Fig. 1). This module provides
//! those primitives on plain bit vectors (one `bool` per row) and builds
//! the ripple microprograms for N-bit addition and subtraction from them.
//!
//! The point of this module is **validation**: the microprograms are
//! executed gate by gate, counting one cycle per primitive, and the test
//! suite asserts that
//!
//! * the results are bit-exact against word arithmetic, and
//! * the measured cycle counts equal the closed forms the paper quotes —
//!   `6N + 1` for addition and `7N + 1` for subtraction \[10\].
//!
//! The vector-wide word-level engine ([`crate::block`]) then uses those
//! validated closed forms ([`crate::cost`]) instead of re-simulating
//! every gate, which keeps 32k-element runs fast without losing cycle
//! accuracy.
//!
//! The full-adder decomposition used here (6 single-cycle ops per bit):
//!
//! ```text
//! carry_n = MIN3(a, b, cin)                 // minority = NOT majority
//! t_or    = OR3(a, b, cin)
//! t_and   = AND3(a, b, cin)
//! t_mix   = OR2(carry_n, t_and)
//! sum     = AND2(t_or, t_mix)
//! cout    = NOT(carry_n)
//! ```
//!
//! plus one initialization cycle for the whole word (clearing the carry
//! row), giving exactly `6N + 1`. Subtraction complements the subtrahend
//! bit first (`NOT`, one extra op per bit) and seeds the carry with 1:
//! `7N + 1`.

/// A gate-level execution trace: counts primitive operations (= cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GateTrace {
    /// Primitive gate operations executed (one cycle each).
    pub gate_ops: u64,
    /// Initialization cycles (row resets) executed.
    pub init_ops: u64,
}

impl GateTrace {
    /// Total cycles: every primitive and every init costs one cycle.
    pub fn cycles(&self) -> u64 {
        self.gate_ops + self.init_ops
    }
}

/// A row-parallel bit column: element `r` belongs to row `r` of the block.
pub type BitColumn = Vec<bool>;

/// The gate-level engine. All primitives operate element-wise across rows
/// and cost exactly one cycle regardless of the number of rows — that is
/// the PIM parallelism the paper exploits.
#[derive(Debug, Default)]
pub struct GateEngine {
    trace: GateTrace,
}

impl GateEngine {
    /// A fresh engine with an empty trace.
    pub fn new() -> Self {
        GateEngine::default()
    }

    /// The accumulated trace.
    pub fn trace(&self) -> GateTrace {
        self.trace
    }

    /// Resets the trace.
    pub fn reset(&mut self) {
        self.trace = GateTrace::default();
    }

    fn tick(&mut self) {
        self.trace.gate_ops += 1;
    }

    /// One-cycle initialization (e.g. presetting a processing column).
    pub fn init(&mut self, len: usize) -> BitColumn {
        self.trace.init_ops += 1;
        vec![false; len]
    }

    /// Row-parallel NOT.
    pub fn not(&mut self, a: &BitColumn) -> BitColumn {
        self.tick();
        a.iter().map(|&x| !x).collect()
    }

    /// Row-parallel 2-input OR.
    pub fn or2(&mut self, a: &BitColumn, b: &BitColumn) -> BitColumn {
        self.tick();
        a.iter().zip(b).map(|(&x, &y)| x | y).collect()
    }

    /// Row-parallel 2-input AND.
    pub fn and2(&mut self, a: &BitColumn, b: &BitColumn) -> BitColumn {
        self.tick();
        a.iter().zip(b).map(|(&x, &y)| x & y).collect()
    }

    /// Row-parallel 2-input NOR (the MAGIC primitive).
    pub fn nor2(&mut self, a: &BitColumn, b: &BitColumn) -> BitColumn {
        self.tick();
        a.iter().zip(b).map(|(&x, &y)| !(x | y)).collect()
    }

    /// Row-parallel 3-input OR.
    pub fn or3(&mut self, a: &BitColumn, b: &BitColumn, c: &BitColumn) -> BitColumn {
        self.tick();
        (0..a.len()).map(|i| a[i] | b[i] | c[i]).collect()
    }

    /// Row-parallel 3-input AND.
    pub fn and3(&mut self, a: &BitColumn, b: &BitColumn, c: &BitColumn) -> BitColumn {
        self.tick();
        (0..a.len()).map(|i| a[i] & b[i] & c[i]).collect()
    }

    /// Row-parallel 3-input minority (complement of majority) — the
    /// single-cycle FELIX workhorse.
    pub fn min3(&mut self, a: &BitColumn, b: &BitColumn, c: &BitColumn) -> BitColumn {
        self.tick();
        (0..a.len())
            .map(|i| {
                let count = a[i] as u8 + b[i] as u8 + c[i] as u8;
                count < 2
            })
            .collect()
    }

    /// One full-adder step across all rows: returns `(sum, carry_out)`.
    /// Costs exactly 6 gate cycles.
    pub fn full_adder(
        &mut self,
        a: &BitColumn,
        b: &BitColumn,
        cin: &BitColumn,
    ) -> (BitColumn, BitColumn) {
        let carry_n = self.min3(a, b, cin);
        let t_or = self.or3(a, b, cin);
        let t_and = self.and3(a, b, cin);
        let t_mix = self.or2(&carry_n, &t_and);
        let sum = self.and2(&t_or, &t_mix);
        let cout = self.not(&carry_n);
        (sum, cout)
    }

    /// N-bit row-parallel addition: `a + b` over `width`-bit lanes,
    /// producing `width + 1` output columns (the extra one is the final
    /// carry). Bit index 0 is the LSB. Costs `6·width + 1` cycles.
    pub fn add_words(&mut self, a: &[BitColumn], b: &[BitColumn], width: usize) -> Vec<BitColumn> {
        assert_eq!(a.len(), width);
        assert_eq!(b.len(), width);
        let rows = a[0].len();
        let mut carry = self.init(rows); // the +1 cycle
        let mut out = Vec::with_capacity(width + 1);
        for bit in 0..width {
            let (sum, cout) = self.full_adder(&a[bit], &b[bit], &carry);
            out.push(sum);
            carry = cout;
        }
        out.push(carry);
        out
    }

    /// N-bit row-parallel subtraction `a − b` (mod 2^width) via 2's
    /// complement: complement each subtrahend bit (one extra gate per
    /// bit) and seed the carry with 1. Costs `7·width + 1` cycles.
    pub fn sub_words(&mut self, a: &[BitColumn], b: &[BitColumn], width: usize) -> Vec<BitColumn> {
        assert_eq!(a.len(), width);
        assert_eq!(b.len(), width);
        let rows = a[0].len();
        // Init carry column then set to 1: modeled as the single init
        // cycle writing the preset value.
        self.trace.init_ops += 1;
        let mut carry = vec![true; rows];
        let mut out = Vec::with_capacity(width);
        for bit in 0..width {
            let nb = self.not(&b[bit]);
            let (sum, cout) = self.full_adder(&a[bit], &nb, &carry);
            out.push(sum);
            carry = cout;
        }
        out
    }
}

/// Packs a slice of words into bit columns (LSB first).
pub fn to_columns(values: &[u64], width: usize) -> Vec<BitColumn> {
    (0..width)
        .map(|bit| values.iter().map(|&v| (v >> bit) & 1 == 1).collect())
        .collect()
}

/// Unpacks bit columns back into words (LSB first).
pub fn from_columns(columns: &[BitColumn]) -> Vec<u64> {
    if columns.is_empty() {
        return Vec::new();
    }
    let rows = columns[0].len();
    (0..rows)
        .map(|r| {
            columns
                .iter()
                .enumerate()
                .fold(0u64, |acc, (bit, col)| acc | ((col[r] as u64) << bit))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use proptest::prelude::*;

    #[test]
    fn full_adder_truth_table() {
        let mut eng = GateEngine::new();
        // All eight input combinations, one per row.
        let a = vec![false, false, false, false, true, true, true, true];
        let b = vec![false, false, true, true, false, false, true, true];
        let c = vec![false, true, false, true, false, true, false, true];
        let (sum, cout) = eng.full_adder(&a, &b, &c);
        for i in 0..8 {
            let total = a[i] as u8 + b[i] as u8 + c[i] as u8;
            assert_eq!(sum[i], total & 1 == 1, "sum row {i}");
            assert_eq!(cout[i], total >= 2, "carry row {i}");
        }
        assert_eq!(eng.trace().gate_ops, 6, "full adder is 6 gates");
    }

    #[test]
    fn add_words_bit_exact_and_cycle_exact() {
        for width in [4usize, 8, 16, 32] {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let a_vals: Vec<u64> = (0..64u64).map(|i| (i * 2654435761) & mask).collect();
            let b_vals: Vec<u64> = (0..64u64).map(|i| (i * 40503 + 99) & mask).collect();
            let mut eng = GateEngine::new();
            let out = eng.add_words(
                &to_columns(&a_vals, width),
                &to_columns(&b_vals, width),
                width,
            );
            let sums = from_columns(&out);
            for i in 0..a_vals.len() {
                assert_eq!(sums[i], a_vals[i] + b_vals[i], "width {width} row {i}");
            }
            assert_eq!(
                eng.trace().cycles(),
                cost::add_cycles(width as u32),
                "addition must cost 6N+1 at width {width}"
            );
        }
    }

    #[test]
    fn sub_words_bit_exact_and_cycle_exact() {
        for width in [4usize, 8, 16, 32] {
            let mask: u64 = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let a_vals: Vec<u64> = (0..64u64).map(|i| (i * 2654435761) & mask).collect();
            let b_vals: Vec<u64> = (0..64u64).map(|i| (i * 40503 + 99) & mask).collect();
            let mut eng = GateEngine::new();
            let out = eng.sub_words(
                &to_columns(&a_vals, width),
                &to_columns(&b_vals, width),
                width,
            );
            let diffs = from_columns(&out);
            for i in 0..a_vals.len() {
                assert_eq!(
                    diffs[i],
                    a_vals[i].wrapping_sub(b_vals[i]) & mask,
                    "width {width} row {i}"
                );
            }
            assert_eq!(
                eng.trace().cycles(),
                cost::sub_cycles(width as u32),
                "subtraction must cost 7N+1 at width {width}"
            );
        }
    }

    #[test]
    fn columns_roundtrip() {
        let vals = vec![0u64, 1, 5, 255, 256, 65535];
        let cols = to_columns(&vals, 17);
        assert_eq!(cols.len(), 17);
        assert_eq!(from_columns(&cols), vals);
        assert!(from_columns(&[]).is_empty());
    }

    #[test]
    fn primitives_cost_one_cycle_each() {
        let mut eng = GateEngine::new();
        let a = vec![true, false];
        let b = vec![false, false];
        let _ = eng.not(&a);
        let _ = eng.or2(&a, &b);
        let _ = eng.and2(&a, &b);
        let _ = eng.nor2(&a, &b);
        let _ = eng.or3(&a, &b, &a);
        let _ = eng.and3(&a, &b, &a);
        let _ = eng.min3(&a, &b, &a);
        assert_eq!(eng.trace().gate_ops, 7);
        eng.reset();
        assert_eq!(eng.trace().cycles(), 0);
    }

    #[test]
    fn nor_is_nor() {
        let mut eng = GateEngine::new();
        let a = vec![false, false, true, true];
        let b = vec![false, true, false, true];
        assert_eq!(eng.nor2(&a, &b), vec![true, false, false, false]);
    }

    #[test]
    fn min3_is_minority() {
        let mut eng = GateEngine::new();
        let a = vec![false, true, true, true];
        let b = vec![false, false, true, true];
        let c = vec![false, false, false, true];
        assert_eq!(eng.min3(&a, &b, &c), vec![true, true, false, false]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_gate_adder_matches_words(
            a in proptest::collection::vec(0u64..(1 << 16), 1..32),
            b in proptest::collection::vec(0u64..(1 << 16), 1..32),
        ) {
            let len = a.len().min(b.len());
            let a = &a[..len];
            let b = &b[..len];
            let mut eng = GateEngine::new();
            let out = eng.add_words(&to_columns(a, 16), &to_columns(b, 16), 16);
            let sums = from_columns(&out);
            for i in 0..len {
                prop_assert_eq!(sums[i], a[i] + b[i]);
            }
        }
    }
}

//! Monte Carlo process-variation analysis (paper §IV-A).
//!
//! The paper verifies circuit robustness with 5000 Monte Carlo samples at
//! 10 % process variation on device size and threshold voltage, observing
//! a maximum 25.6 % reduction in the RRAM resistance noise margin —
//! without functional failures, thanks to the high `R_off/R_on` ratio.
//!
//! We reproduce the experiment on our device model: each sample perturbs
//! `R_on`, `R_off` and `V_th` with independent Gaussian noise
//! (σ = variation/3, i.e. "10 % variation" spans ±10 % at 3σ — the usual
//! foundry convention), evaluates the MAGIC NOR sensing margin, and
//! reports the worst observed degradation and the failure count.

use crate::device::DeviceParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a standard-normal sample via the Box–Muller transform (keeps the
/// dependency set to plain `rand`).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Configuration of one Monte Carlo robustness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Number of samples (paper: 5000).
    pub samples: usize,
    /// Total relative variation at 3σ (paper: 0.10 = 10 %).
    pub variation: f64,
    /// RNG seed, so runs are reproducible.
    pub seed: u64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            samples: 5000,
            variation: 0.10,
            seed: 0xC0FFEE,
        }
    }
}

/// Results of a Monte Carlo robustness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloReport {
    /// The nominal (unperturbed) noise margin.
    pub nominal_margin: f64,
    /// The worst margin observed over all samples.
    pub worst_margin: f64,
    /// Mean margin over all samples.
    pub mean_margin: f64,
    /// Maximum relative margin reduction: `1 − worst/nominal`
    /// (paper: 0.256 at 10 % variation).
    pub max_margin_reduction: f64,
    /// Samples whose gate stopped functioning (margin ≤ 0).
    pub failures: usize,
    /// Samples evaluated.
    pub samples: usize,
}

/// Runs the Monte Carlo study on the given nominal device.
///
/// # Panics
///
/// Panics if `config.samples == 0` or `config.variation` is negative.
pub fn run_monte_carlo(nominal: &DeviceParams, config: &MonteCarloConfig) -> MonteCarloReport {
    assert!(config.samples > 0, "need at least one sample");
    assert!(config.variation >= 0.0, "variation must be non-negative");
    let sigma = config.variation / 3.0;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let noise = move |rng: &mut StdRng| 1.0 + sigma * standard_normal(rng);

    let nominal_margin = nominal.nor_noise_margin();
    let mut worst: f64 = f64::INFINITY;
    let mut sum = 0.0;
    let mut failures = 0usize;

    for _ in 0..config.samples {
        let sample = DeviceParams {
            r_on: nominal.r_on * noise(&mut rng).max(0.01),
            r_off: nominal.r_off * noise(&mut rng).max(0.01),
            v_th: nominal.v_th * noise(&mut rng).max(0.01),
            ..*nominal
        };
        let margin = sample.nor_noise_margin();
        worst = worst.min(margin);
        sum += margin;
        if margin <= 0.0 {
            failures += 1;
        }
    }

    MonteCarloReport {
        nominal_margin,
        worst_margin: worst,
        mean_margin: sum / config.samples as f64,
        max_margin_reduction: 1.0 - worst / nominal_margin,
        failures,
        samples: config.samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_stays_functional() {
        // The reproduced §IV-A claim: at 10 % variation over 5000
        // samples, margins degrade but no gate fails.
        let report = run_monte_carlo(&DeviceParams::nominal(), &MonteCarloConfig::default());
        assert_eq!(report.samples, 5000);
        assert_eq!(report.failures, 0, "high R_off/R_on keeps gates working");
        assert!(report.max_margin_reduction > 0.0, "variation must bite");
        assert!(
            report.max_margin_reduction < 0.6,
            "degradation bounded well away from failure (paper: 0.256); got {}",
            report.max_margin_reduction
        );
        assert!(report.worst_margin > 0.0);
        assert!(report.mean_margin < report.nominal_margin * 1.05);
    }

    #[test]
    fn zero_variation_is_exact() {
        let cfg = MonteCarloConfig {
            variation: 0.0,
            samples: 100,
            seed: 1,
        };
        let report = run_monte_carlo(&DeviceParams::nominal(), &cfg);
        assert!((report.max_margin_reduction).abs() < 1e-12);
        assert_eq!(report.failures, 0);
    }

    #[test]
    fn more_variation_more_degradation() {
        let base = MonteCarloConfig {
            samples: 2000,
            seed: 7,
            variation: 0.05,
        };
        let low = run_monte_carlo(&DeviceParams::nominal(), &base);
        let high = run_monte_carlo(
            &DeviceParams::nominal(),
            &MonteCarloConfig {
                variation: 0.20,
                ..base
            },
        );
        assert!(high.max_margin_reduction > low.max_margin_reduction);
    }

    #[test]
    fn reproducible_with_same_seed() {
        let cfg = MonteCarloConfig::default();
        let a = run_monte_carlo(&DeviceParams::nominal(), &cfg);
        let b = run_monte_carlo(&DeviceParams::nominal(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_monte_carlo(&DeviceParams::nominal(), &MonteCarloConfig::default());
        let b = run_monte_carlo(
            &DeviceParams::nominal(),
            &MonteCarloConfig {
                seed: 42,
                ..MonteCarloConfig::default()
            },
        );
        assert_ne!(a.worst_margin, b.worst_margin);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_panics() {
        run_monte_carlo(
            &DeviceParams::nominal(),
            &MonteCarloConfig {
                samples: 0,
                ..MonteCarloConfig::default()
            },
        );
    }
}

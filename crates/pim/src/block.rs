//! The PIM-enabled memory block: a 512×512 ReRAM crossbar executing
//! vector-wide arithmetic (paper §III-B/C, Fig. 2).
//!
//! A block stores one `N`-bit value per row (data columns) and uses the
//! remaining columns as processing scratch. Every operation is
//! row-parallel: its cycle count is independent of how many rows
//! participate, while its energy scales with the active rows.
//!
//! Functional results are computed with word arithmetic; cycles come
//! from the gate-validated closed forms in [`crate::cost`] and energy
//! from [`crate::energy`]. The gate-level engine ([`crate::logic`])
//! cross-validates this in the test suite.

use crate::reduce::Reducer;
use crate::stats::Tally;
use crate::{cost, energy, PimError, Result, BLOCK_DIM};

/// Which multiplier microprogram a block uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiplierKind {
    /// CryptoPIM's optimized multiplier: `6.5N² − 11.5N + 3` cycles.
    CryptoPim,
    /// The baseline multiplier of Haj-Ali et al. \[35\]:
    /// `13N² − 14N + 6` cycles.
    HajAli,
}

impl MultiplierKind {
    /// Cycle cost of one vector-wide multiplication at width `n`.
    pub fn cycles(self, n: u32) -> u64 {
        match self {
            MultiplierKind::CryptoPim => cost::mul_cycles(n),
            MultiplierKind::HajAli => cost::mul_cycles_baseline(n),
        }
    }
}

/// One PIM-enabled memory block.
///
/// # Example
///
/// ```
/// use pim::block::MemoryBlock;
///
/// # fn main() -> Result<(), pim::PimError> {
/// let mut block = MemoryBlock::new(16)?;
/// let sums = block.add(&[1, 2, 3], &[10, 20, 30])?;
/// assert_eq!(sums, vec![11, 22, 33]);
/// assert_eq!(block.tally().cycles, 6 * 16 + 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBlock {
    bitwidth: u32,
    rows: usize,
    tally: Tally,
}

impl MemoryBlock {
    /// Creates a standard 512-row block with an `N`-bit datapath.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::UnsupportedBitwidth`] unless `2 ≤ N ≤ 32` and
    /// `N` is even (products must fit the 64-bit word engine and the
    /// multiplier formula is specified for even widths).
    pub fn new(bitwidth: u32) -> Result<Self> {
        Self::with_rows(bitwidth, BLOCK_DIM)
    }

    /// Creates a block with a custom row count (used in tests and by the
    /// tail lane of a softbank when `n` is not a multiple of 512).
    ///
    /// # Errors
    ///
    /// Same as [`MemoryBlock::new`].
    pub fn with_rows(bitwidth: u32, rows: usize) -> Result<Self> {
        if !(2..=32).contains(&bitwidth) || !bitwidth.is_multiple_of(2) {
            return Err(PimError::UnsupportedBitwidth { width: bitwidth });
        }
        Ok(MemoryBlock {
            bitwidth,
            rows,
            tally: Tally::new(),
        })
    }

    /// The datapath width `N`.
    #[inline]
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }

    /// Rows in this block (vector capacity).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The accumulated cycle/energy tally of this block.
    #[inline]
    pub fn tally(&self) -> Tally {
        self.tally
    }

    /// Resets the tally.
    pub fn reset_tally(&mut self) {
        self.tally = Tally::new();
    }

    fn check_operands(&self, a: &[u64], b: &[u64]) -> Result<()> {
        if a.len() != b.len() {
            return Err(PimError::LengthMismatch {
                left: a.len(),
                right: b.len(),
            });
        }
        self.check_vector(a)
    }

    fn check_vector(&self, a: &[u64]) -> Result<()> {
        if a.len() > self.rows {
            return Err(PimError::VectorTooLong {
                len: a.len(),
                rows: self.rows,
            });
        }
        Ok(())
    }

    fn charge_compute(&mut self, cycles: u64, rows: usize) {
        self.tally.cycles += cycles;
        self.tally.compute_cycles += cycles;
        self.tally.energy_pj += energy::compute_energy_pj(cycles, rows);
    }

    fn charge_reduce(&mut self, cycles: u64, rows: usize) {
        self.tally.cycles += cycles;
        self.tally.reduce_cycles += cycles;
        self.tally.energy_pj += energy::compute_energy_pj(cycles, rows);
    }

    /// Charges the cycle/energy cost of a vector addition on `rows`
    /// rows without computing data. Cost-only twin of
    /// [`MemoryBlock::add`], for executions whose data path runs
    /// elsewhere (e.g. the parallel lane engine): charging the same op
    /// sequence in the same order reproduces the sequential tally
    /// bit-for-bit, because every charge depends only on the datapath
    /// width and the active row count — never on operand values.
    pub fn charge_add(&mut self, rows: usize) {
        self.charge_compute(cost::add_cycles(self.bitwidth), rows);
    }

    /// Cost-only twin of [`MemoryBlock::sub_plus_q`].
    pub fn charge_sub_plus_q(&mut self, rows: usize) {
        self.charge_compute(cost::sub_cycles(self.bitwidth), rows);
    }

    /// Cost-only twin of [`MemoryBlock::mul`].
    pub fn charge_mul(&mut self, rows: usize, kind: MultiplierKind) {
        self.charge_compute(kind.cycles(self.bitwidth), rows);
    }

    /// Cost-only twin of [`MemoryBlock::barrett`].
    pub fn charge_barrett(&mut self, rows: usize, reducer: &Reducer) {
        self.charge_reduce(reducer.barrett_cycles_for(self.bitwidth), rows);
    }

    /// Cost-only twin of [`MemoryBlock::montgomery`].
    pub fn charge_montgomery(&mut self, rows: usize, reducer: &Reducer) {
        self.charge_reduce(reducer.montgomery_cycles_for(self.bitwidth), rows);
    }

    /// Cost-only twin of [`MemoryBlock::mul_montgomery`].
    pub fn charge_mul_montgomery(&mut self, rows: usize, kind: MultiplierKind, reducer: &Reducer) {
        self.charge_mul(rows, kind);
        self.charge_montgomery(rows, reducer);
    }

    /// Charges one full Gentleman–Sande NTT stage: add + Barrett on the
    /// low side, sub + mul + REDC on the high side, each on `rows` rows
    /// (`n/2` for a degree-`n` transform). The charge order matches the
    /// engine's historical op sequence, so replaying this tally
    /// reproduces per-stage energy bit-for-bit.
    pub fn charge_ntt_stage(&mut self, rows: usize, kind: MultiplierKind, reducer: &Reducer) {
        self.charge_add(rows);
        self.charge_barrett(rows, reducer);
        self.charge_sub_plus_q(rows);
        self.charge_mul(rows, kind);
        self.charge_montgomery(rows, reducer);
    }

    /// Raw vector addition (no reduction): `a[i] + b[i]`, an `N+1`-bit
    /// result. Costs `6N + 1` cycles.
    ///
    /// # Errors
    ///
    /// Length mismatch or capacity overflow.
    pub fn add(&mut self, a: &[u64], b: &[u64]) -> Result<Vec<u64>> {
        self.check_operands(a, b)?;
        self.charge_add(a.len());
        Ok(a.iter().zip(b).map(|(&x, &y)| x + y).collect())
    }

    /// Butterfly subtraction: `a[i] + q − b[i]` (adding `q` keeps the
    /// result non-negative, as the 2's-complement hardware path does).
    /// Costs `7N + 1` cycles.
    ///
    /// # Errors
    ///
    /// Length mismatch or capacity overflow.
    pub fn sub_plus_q(&mut self, a: &[u64], b: &[u64], q: u64) -> Result<Vec<u64>> {
        self.check_operands(a, b)?;
        self.charge_sub_plus_q(a.len());
        Ok(a.iter().zip(b).map(|(&x, &y)| x + q - y).collect())
    }

    /// Raw vector multiplication: `a[i] · b[i]`, a `2N`-bit result.
    /// Costs `6.5N² − 11.5N + 3` or `13N² − 14N + 6` cycles depending on
    /// the multiplier kind.
    ///
    /// # Errors
    ///
    /// Length mismatch or capacity overflow.
    pub fn mul(&mut self, a: &[u64], b: &[u64], kind: MultiplierKind) -> Result<Vec<u64>> {
        self.check_operands(a, b)?;
        self.charge_mul(a.len(), kind);
        Ok(a.iter().zip(b).map(|(&x, &y)| x * y).collect())
    }

    /// Post-addition Barrett reduction of every element (input `< 2q`).
    /// Cost comes from the reducer's style (Table I for CryptoPIM).
    ///
    /// # Errors
    ///
    /// Capacity overflow.
    pub fn barrett(&mut self, a: &[u64], reducer: &Reducer) -> Result<Vec<u64>> {
        self.check_vector(a)?;
        self.charge_barrett(a.len(), reducer);
        Ok(a.iter().map(|&x| reducer.barrett(x)).collect())
    }

    /// Post-multiplication Montgomery reduction: maps each `2N`-bit
    /// product `p` to `p · R⁻¹ mod q`.
    ///
    /// # Errors
    ///
    /// Capacity overflow.
    pub fn montgomery(&mut self, a: &[u64], reducer: &Reducer) -> Result<Vec<u64>> {
        self.check_vector(a)?;
        self.charge_montgomery(a.len(), reducer);
        Ok(a.iter().map(|&x| reducer.montgomery(x)).collect())
    }

    /// Fused multiply-by-constants + Montgomery reduce, the workhorse of
    /// the twiddle/φ-scaling blocks: returns `REDC(a[i] · c[i])`.
    ///
    /// # Errors
    ///
    /// Length mismatch or capacity overflow.
    pub fn mul_montgomery(
        &mut self,
        a: &[u64],
        c: &[u64],
        kind: MultiplierKind,
        reducer: &Reducer,
    ) -> Result<Vec<u64>> {
        let prod = self.mul(a, c, kind)?;
        self.montgomery(&prod, reducer)
    }

    /// Absorbs an external tally (e.g. a switch transfer) into this
    /// block's accounting.
    pub fn absorb(&mut self, t: &Tally) {
        self.tally.absorb(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReductionStyle;

    fn reducer(q: u64) -> Reducer {
        Reducer::new(q, ReductionStyle::CryptoPim).unwrap()
    }

    #[test]
    fn add_then_barrett_is_modular_addition() {
        let q = 12289;
        let red = reducer(q);
        let mut blk = MemoryBlock::new(16).unwrap();
        let a = vec![12288, 5000, 0, 12288];
        let b = vec![12288, 9000, 0, 1];
        let raw = blk.add(&a, &b).unwrap();
        let reduced = blk.barrett(&raw, &red).unwrap();
        for i in 0..a.len() {
            assert_eq!(reduced[i], (a[i] + b[i]) % q);
        }
        assert_eq!(
            blk.tally().cycles,
            cost::add_cycles(16) + cost::barrett_cycles(q).unwrap()
        );
    }

    #[test]
    fn sub_plus_q_then_barrett_is_modular_subtraction() {
        let q = 7681;
        let red = reducer(q);
        let mut blk = MemoryBlock::new(16).unwrap();
        let a = vec![0, 5, 7680, 1000];
        let b = vec![1, 5, 0, 7000];
        let raw = blk.sub_plus_q(&a, &b, q).unwrap();
        let reduced = blk.barrett(&raw, &red).unwrap();
        for i in 0..a.len() {
            assert_eq!(reduced[i], (a[i] + q - b[i]) % q);
        }
    }

    #[test]
    fn mul_montgomery_with_prescaled_constant() {
        // Constants are stored pre-scaled by R, so REDC(a · cR) = a·c.
        let q = 12289u64;
        let red = reducer(q);
        let mut blk = MemoryBlock::new(16).unwrap();
        let a = vec![1u64, 2, 7000, 12288];
        let c = [3u64, 5, 11, 12288];
        let c_scaled: Vec<u64> = c.iter().map(|&x| red.to_mont(x)).collect();
        let out = blk
            .mul_montgomery(&a, &c_scaled, MultiplierKind::CryptoPim, &red)
            .unwrap();
        for i in 0..a.len() {
            assert_eq!(out[i], a[i] * c[i] % q, "i = {i}");
        }
    }

    #[test]
    fn cycle_accounting_matches_cost_model() {
        let q = 786433;
        let red = reducer(q);
        let mut blk = MemoryBlock::new(32).unwrap();
        let a = vec![1u64; 100];
        let _ = blk.mul(&a, &a, MultiplierKind::CryptoPim).unwrap();
        assert_eq!(blk.tally().compute_cycles, cost::mul_cycles(32));
        let _ = blk.montgomery(&a, &red).unwrap();
        assert_eq!(
            blk.tally().reduce_cycles,
            cost::montgomery_cycles(q).unwrap()
        );
        let before = blk.tally().cycles;
        let _ = blk.mul(&a, &a, MultiplierKind::HajAli).unwrap();
        assert_eq!(blk.tally().cycles - before, cost::mul_cycles_baseline(32));
    }

    #[test]
    fn energy_scales_with_rows_not_cycles_alone() {
        let mut small = MemoryBlock::new(16).unwrap();
        let mut large = MemoryBlock::new(16).unwrap();
        let _ = small.add(&[1; 10], &[2; 10]).unwrap();
        let _ = large.add(&[1; 100], &[2; 100]).unwrap();
        // Same cycles (row-parallel), 10× the energy.
        assert_eq!(small.tally().cycles, large.tally().cycles);
        assert!((large.tally().energy_pj / small.tally().energy_pj - 10.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_and_length_checks() {
        let mut blk = MemoryBlock::with_rows(16, 4).unwrap();
        assert!(matches!(
            blk.add(&[1; 5], &[1; 5]),
            Err(PimError::VectorTooLong { .. })
        ));
        assert!(matches!(
            blk.add(&[1; 2], &[1; 3]),
            Err(PimError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn bitwidth_validation() {
        assert!(MemoryBlock::new(16).is_ok());
        assert!(MemoryBlock::new(32).is_ok());
        assert!(matches!(
            MemoryBlock::new(0),
            Err(PimError::UnsupportedBitwidth { .. })
        ));
        assert!(MemoryBlock::new(33).is_err());
        assert!(MemoryBlock::new(15).is_err(), "odd widths unsupported");
        assert!(MemoryBlock::new(64).is_err());
    }

    #[test]
    fn default_block_is_512_rows() {
        let blk = MemoryBlock::new(16).unwrap();
        assert_eq!(blk.rows(), 512);
        assert_eq!(blk.bitwidth(), 16);
    }

    #[test]
    fn reset_tally() {
        let mut blk = MemoryBlock::new(16).unwrap();
        let _ = blk.add(&[1], &[2]).unwrap();
        assert!(blk.tally().cycles > 0);
        blk.reset_tally();
        assert_eq!(blk.tally(), Tally::new());
    }

    #[test]
    fn charge_twins_match_real_ops_bit_for_bit() {
        let q = 12289;
        let red = reducer(q);
        let a = vec![7u64; 96];
        let mut real = MemoryBlock::new(16).unwrap();
        let _ = real.add(&a, &a).unwrap();
        let _ = real.barrett(&a, &red).unwrap();
        let _ = real.sub_plus_q(&a, &a, q).unwrap();
        let _ = real
            .mul_montgomery(&a, &a, MultiplierKind::CryptoPim, &red)
            .unwrap();
        let mut ghost = MemoryBlock::new(16).unwrap();
        ghost.charge_add(96);
        ghost.charge_barrett(96, &red);
        ghost.charge_sub_plus_q(96);
        ghost.charge_mul_montgomery(96, MultiplierKind::CryptoPim, &red);
        assert_eq!(real.tally(), ghost.tally());
        // f64 energy must match to the last bit, not just approximately:
        // the parallel engine's determinism contract depends on it.
        assert_eq!(
            real.tally().energy_pj.to_bits(),
            ghost.tally().energy_pj.to_bits()
        );
    }

    /// Cross-validation: the word-level block op agrees bit-for-bit with
    /// the gate-level engine, and both match the closed-form cycle count.
    #[test]
    fn word_level_matches_gate_level() {
        use crate::logic::{from_columns, to_columns, GateEngine};
        let width = 16u32;
        let a: Vec<u64> = (0..256u64).map(|i| (i * 37) & 0xFFFF).collect();
        let b: Vec<u64> = (0..256u64).map(|i| (i * 91 + 5) & 0xFFFF).collect();

        let mut blk = MemoryBlock::new(width).unwrap();
        let word_sums = blk.add(&a, &b).unwrap();

        let mut eng = GateEngine::new();
        let cols = eng.add_words(
            &to_columns(&a, width as usize),
            &to_columns(&b, width as usize),
            width as usize,
        );
        let gate_sums = from_columns(&cols);

        assert_eq!(word_sums, gate_sums);
        assert_eq!(blk.tally().cycles, eng.trace().cycles());
    }
}

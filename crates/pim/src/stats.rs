//! Cycle and energy tallies.

use crate::CYCLE_TIME_NS;

/// Accumulated cost of a sequence of PIM operations.
///
/// `cycles` counts device switching cycles (1.1 ns each); `energy_pj`
/// accumulates the calibrated energy model's output in picojoules;
/// the per-category counters feed the ablation benches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Tally {
    /// Total device cycles.
    pub cycles: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Cycles spent in vector arithmetic (add/sub/mul).
    pub compute_cycles: u64,
    /// Cycles spent in modular reductions.
    pub reduce_cycles: u64,
    /// Cycles spent in inter-block transfers.
    pub transfer_cycles: u64,
}

impl Tally {
    /// A zeroed tally.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Adds another tally into this one.
    pub fn absorb(&mut self, other: &Tally) {
        self.cycles += other.cycles;
        self.energy_pj += other.energy_pj;
        self.compute_cycles += other.compute_cycles;
        self.reduce_cycles += other.reduce_cycles;
        self.transfer_cycles += other.transfer_cycles;
    }

    /// Wall-clock time at the CryptoPIM cycle period, in nanoseconds.
    pub fn time_ns(&self) -> f64 {
        self.cycles as f64 * CYCLE_TIME_NS
    }

    /// Wall-clock time in microseconds.
    pub fn time_us(&self) -> f64 {
        self.time_ns() / 1_000.0
    }

    /// Energy in microjoules.
    pub fn energy_uj(&self) -> f64 {
        self.energy_pj / 1e6
    }
}

impl std::ops::Add for Tally {
    type Output = Tally;

    fn add(mut self, rhs: Tally) -> Tally {
        self.absorb(&rhs);
        self
    }
}

impl std::iter::Sum for Tally {
    fn sum<I: Iterator<Item = Tally>>(iter: I) -> Tally {
        iter.fold(Tally::new(), |acc, t| acc + t)
    }
}

impl std::fmt::Display for Tally {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} cycles ({:.3} µs), {:.3} µJ",
            self.cycles,
            self.time_us(),
            self.energy_uj()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let mut a = Tally {
            cycles: 10,
            energy_pj: 1.5,
            compute_cycles: 6,
            reduce_cycles: 4,
            transfer_cycles: 0,
        };
        let b = Tally {
            cycles: 5,
            energy_pj: 0.5,
            compute_cycles: 0,
            reduce_cycles: 0,
            transfer_cycles: 5,
        };
        a.absorb(&b);
        assert_eq!(a.cycles, 15);
        assert_eq!(a.compute_cycles, 6);
        assert_eq!(a.transfer_cycles, 5);
        assert!((a.energy_pj - 2.0).abs() < 1e-12);
    }

    #[test]
    fn time_uses_cycle_period() {
        let t = Tally {
            cycles: 1000,
            ..Tally::default()
        };
        assert!((t.time_ns() - 1100.0).abs() < 1e-9);
        assert!((t.time_us() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn sum_and_add() {
        let parts = vec![
            Tally {
                cycles: 1,
                ..Tally::default()
            },
            Tally {
                cycles: 2,
                ..Tally::default()
            },
            Tally {
                cycles: 3,
                ..Tally::default()
            },
        ];
        let total: Tally = parts.into_iter().sum();
        assert_eq!(total.cycles, 6);
    }

    #[test]
    fn display_mentions_units() {
        let t = Tally::new();
        let s = format!("{t}");
        assert!(s.contains("µs") && s.contains("µJ"));
    }
}

//! Inter-block switches: CryptoPIM's fixed-function switch vs a full
//! crossbar (paper §III-C, Fig. 3).
//!
//! The NTT's only inter-stage communication pattern is strided: stage `i`
//! sends row `A` of one block to rows `A`, `A+s`, `A−s` of the next
//! (`s` = the butterfly distance). A general crossbar scales its logic
//! with the number of ports; CryptoPIM hard-wires the three connection
//! kinds, needing just **3 logic switches per row** regardless of block
//! size. A transfer of one vector costs `3 × bitwidth` cycles (a column
//! per bit, once per connection kind).

use crate::cost;
use crate::stats::Tally;
use crate::{energy, PimError, Result};

/// How one row of the destination block receives data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Connection {
    /// Row `A` → row `A`.
    Direct,
    /// Row `A` → row `A + s`.
    UpShift,
    /// Row `A` → row `A − s`.
    DownShift,
}

/// A fixed-function switch between two adjacent memory blocks, with a
/// hard-wired shift amount `s`.
///
/// # Example
///
/// ```
/// use pim::switch::{Connection, FixedFunctionSwitch};
///
/// # fn main() -> Result<(), pim::PimError> {
/// let sw = FixedFunctionSwitch::new(2, 8);
/// let data = vec![10, 11, 12, 13];
/// let out = sw.route(&data, &[Connection::UpShift; 4], 16)?;
/// assert_eq!(out.values[2], Some(10)); // row 0 → row 0+2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedFunctionSwitch {
    s: usize,
    rows: usize,
}

/// The result of routing a vector through a switch: the value landing on
/// each destination row (rows no source routed to hold `None`), plus the
/// transfer cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// Destination rows; `values[r]` is the value written to row `r`.
    pub values: Vec<Option<u64>>,
    /// Cycle/energy cost of the transfer.
    pub tally: Tally,
}

impl FixedFunctionSwitch {
    /// Creates a switch with hard-wired shift `s` between blocks of
    /// `rows` rows.
    pub fn new(s: usize, rows: usize) -> Self {
        FixedFunctionSwitch { s, rows }
    }

    /// The hard-wired shift factor.
    #[inline]
    pub fn shift(&self) -> usize {
        self.s
    }

    /// Logic switches required per row: always 3, independent of block
    /// size (the paper's headline claim for this component).
    #[inline]
    pub fn switches_per_row(&self) -> usize {
        3
    }

    /// Routes `data[r]` (row `r` of the source block) to the destination
    /// block according to each row's selected connection. A full
    /// vector transfer costs `3 × bitwidth` cycles (paper §III-C).
    ///
    /// # Errors
    ///
    /// * [`PimError::LengthMismatch`] when `data` and `conns` differ in
    ///   length or exceed the block rows.
    /// * [`PimError::RowOutOfRange`] when a shift lands outside the block.
    pub fn route(&self, data: &[u64], conns: &[Connection], bitwidth: u32) -> Result<RouteOutcome> {
        if data.len() != conns.len() {
            return Err(PimError::LengthMismatch {
                left: data.len(),
                right: conns.len(),
            });
        }
        if data.len() > self.rows {
            return Err(PimError::VectorTooLong {
                len: data.len(),
                rows: self.rows,
            });
        }
        let mut values = vec![None; self.rows];
        for (row, (&v, &c)) in data.iter().zip(conns).enumerate() {
            let dest = match c {
                Connection::Direct => row as isize,
                Connection::UpShift => row as isize + self.s as isize,
                Connection::DownShift => row as isize - self.s as isize,
            };
            if dest < 0 || dest as usize >= self.rows {
                return Err(PimError::RowOutOfRange {
                    row: dest,
                    rows: self.rows,
                });
            }
            values[dest as usize] = Some(v);
        }
        let cycles = cost::switch_transfer_cycles(bitwidth);
        let tally = Tally {
            cycles,
            energy_pj: energy::transfer_energy_pj(data.len(), bitwidth),
            transfer_cycles: cycles,
            ..Tally::default()
        };
        Ok(RouteOutcome { values, tally })
    }
}

/// A conventional crossbar switch model, kept only for the ablation
/// comparison: any input row can reach any output row, at the cost of one
/// logic switch per (input, output) pair — `rows` switches per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossbarSwitch {
    rows: usize,
}

impl CrossbarSwitch {
    /// Creates a full crossbar between blocks of `rows` rows.
    pub fn new(rows: usize) -> Self {
        CrossbarSwitch { rows }
    }

    /// Logic switches per row: one per destination — grows linearly with
    /// block size (and the total switch count quadratically), which is
    /// why the paper rejects this design.
    #[inline]
    pub fn switches_per_row(&self) -> usize {
        self.rows
    }

    /// Routes through an arbitrary permutation. Cost model: the crossbar
    /// can also move a vector in `3 × bitwidth` cycles (it is a superset
    /// of the fixed-function switch) — its penalty is area, not latency.
    ///
    /// # Errors
    ///
    /// [`PimError::RowOutOfRange`] when the permutation addresses a row
    /// outside the block, [`PimError::LengthMismatch`] on length skew.
    pub fn route(&self, data: &[u64], dests: &[usize], bitwidth: u32) -> Result<RouteOutcome> {
        if data.len() != dests.len() {
            return Err(PimError::LengthMismatch {
                left: data.len(),
                right: dests.len(),
            });
        }
        let mut values = vec![None; self.rows];
        for (&v, &d) in data.iter().zip(dests) {
            if d >= self.rows {
                return Err(PimError::RowOutOfRange {
                    row: d as isize,
                    rows: self.rows,
                });
            }
            values[d] = Some(v);
        }
        let cycles = cost::switch_transfer_cycles(bitwidth);
        let tally = Tally {
            cycles,
            energy_pj: energy::transfer_energy_pj(data.len(), bitwidth),
            transfer_cycles: cycles,
            ..Tally::default()
        };
        Ok(RouteOutcome { values, tally })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_routing_is_identity() {
        let sw = FixedFunctionSwitch::new(4, 8);
        let data: Vec<u64> = (0..8).collect();
        let out = sw.route(&data, &[Connection::Direct; 8], 16).unwrap();
        for r in 0..8 {
            assert_eq!(out.values[r], Some(r as u64));
        }
        assert_eq!(out.tally.cycles, 48);
    }

    #[test]
    fn shifts_move_by_s() {
        let sw = FixedFunctionSwitch::new(2, 8);
        let data: Vec<u64> = (0..4).collect(); // rows 0..4
        let out = sw.route(&data, &[Connection::UpShift; 4], 16).unwrap();
        assert_eq!(out.values[2], Some(0));
        assert_eq!(out.values[5], Some(3));
        assert_eq!(out.values[0], None);

        let out = sw
            .route(&[7, 8], &[Connection::DownShift, Connection::Direct], 16)
            .unwrap_err();
        // Row 0 − 2 = −2 is out of range.
        assert!(matches!(out, PimError::RowOutOfRange { row: -2, .. }));
    }

    #[test]
    fn butterfly_exchange_pattern() {
        // The NTT use-case: rows [0, s) shift up while rows [s, 2s)
        // shift down, exchanging butterfly partners.
        let s = 2;
        let sw = FixedFunctionSwitch::new(s, 4);
        let data = vec![100, 101, 102, 103];
        let conns = vec![
            Connection::UpShift,
            Connection::UpShift,
            Connection::DownShift,
            Connection::DownShift,
        ];
        let out = sw.route(&data, &conns, 16).unwrap();
        assert_eq!(out.values, vec![Some(102), Some(103), Some(100), Some(101)]);
    }

    #[test]
    fn cost_is_three_bitwidth() {
        let sw = FixedFunctionSwitch::new(1, 512);
        let data = vec![0u64; 512];
        for w in [16u32, 32] {
            let out = sw.route(&data, &[Connection::Direct; 512], w).unwrap();
            assert_eq!(out.tally.cycles, 3 * w as u64);
            assert_eq!(out.tally.transfer_cycles, out.tally.cycles);
        }
    }

    #[test]
    fn switch_complexity_comparison() {
        // The ablation claim: fixed-function is O(1) per row, crossbar O(rows).
        let ff = FixedFunctionSwitch::new(7, 512);
        let xb = CrossbarSwitch::new(512);
        assert_eq!(ff.switches_per_row(), 3);
        assert_eq!(xb.switches_per_row(), 512);
    }

    #[test]
    fn crossbar_arbitrary_permutation() {
        let xb = CrossbarSwitch::new(4);
        let out = xb.route(&[9, 8, 7, 6], &[3, 2, 1, 0], 16).unwrap();
        assert_eq!(out.values, vec![Some(6), Some(7), Some(8), Some(9)]);
        assert!(xb.route(&[1], &[9], 16).is_err());
        assert!(xb.route(&[1, 2], &[0], 16).is_err());
    }

    #[test]
    fn length_validation() {
        let sw = FixedFunctionSwitch::new(1, 4);
        assert!(matches!(
            sw.route(&[1, 2, 3], &[Connection::Direct; 2], 16),
            Err(PimError::LengthMismatch { .. })
        ));
        assert!(matches!(
            sw.route(&[0; 9], &[Connection::Direct; 9], 16),
            Err(PimError::VectorTooLong { .. })
        ));
    }
}

//! A memory **bank**: a physical cascade of PIM blocks joined by
//! fixed-function switches (paper §III-C/D).
//!
//! [`crate::block::MemoryBlock`] models one compute site and
//! [`crate::switch::FixedFunctionSwitch`] one inter-block link; a
//! [`Bank`] assembles them into the chain the paper provisions (49
//! blocks for the 32k design), each link with its own hard-wired shift
//! `s`. The accelerator crate drives banks through whole NTT runs; the
//! structural test suite there checks a bank-executed multiplication
//! against the software reference.

use crate::block::MemoryBlock;
use crate::stats::Tally;
use crate::switch::{Connection, FixedFunctionSwitch};
use crate::{PimError, Result, BLOCK_DIM};

/// A chain of memory blocks with a switch between each adjacent pair.
#[derive(Debug, Clone)]
pub struct Bank {
    blocks: Vec<MemoryBlock>,
    switches: Vec<FixedFunctionSwitch>,
    bitwidth: u32,
}

impl Bank {
    /// Builds a bank of `block_count` standard blocks; `shifts[i]` is
    /// the hard-wired shift of the switch between blocks `i` and `i+1`.
    ///
    /// # Errors
    ///
    /// * [`PimError::UnsupportedBitwidth`] from block construction.
    /// * [`PimError::LengthMismatch`] when `shifts.len() + 1 !=
    ///   block_count`.
    pub fn new(bitwidth: u32, block_count: usize, shifts: &[usize]) -> Result<Self> {
        if shifts.len() + 1 != block_count {
            return Err(PimError::LengthMismatch {
                left: block_count,
                right: shifts.len() + 1,
            });
        }
        let blocks = (0..block_count)
            .map(|_| MemoryBlock::new(bitwidth))
            .collect::<Result<Vec<_>>>()?;
        let switches = shifts
            .iter()
            .map(|&s| FixedFunctionSwitch::new(s, BLOCK_DIM))
            .collect();
        Ok(Bank {
            blocks,
            switches,
            bitwidth,
        })
    }

    /// Number of blocks in the chain.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the bank has no blocks (never constructible via
    /// [`Bank::new`], provided for completeness).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The datapath width.
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }

    /// Mutable access to block `i` for compute steps.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn block_mut(&mut self, i: usize) -> &mut MemoryBlock {
        &mut self.blocks[i]
    }

    /// The switch after block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len() - 1`.
    pub fn switch(&self, i: usize) -> &FixedFunctionSwitch {
        &self.switches[i]
    }

    /// Moves a vector from block `i` to block `i+1` through the
    /// interposed switch, each row taking its selected connection.
    /// Returns the values as they land on the destination rows (rows no
    /// source routed to read as 0, like unwritten cells).
    ///
    /// # Errors
    ///
    /// Routing failures (out-of-range rows, length mismatches).
    pub fn transfer(&mut self, i: usize, data: &[u64], conns: &[Connection]) -> Result<Vec<u64>> {
        if i + 1 >= self.blocks.len() {
            return Err(PimError::RowOutOfRange {
                row: i as isize + 1,
                rows: self.blocks.len(),
            });
        }
        let outcome = self.switches[i].route(data, conns, self.bitwidth)?;
        self.blocks[i + 1].absorb(&outcome.tally);
        Ok(outcome.values.into_iter().map(|v| v.unwrap_or(0)).collect())
    }

    /// Aggregate tally over every block (compute + absorbed transfers).
    pub fn total_tally(&self) -> Tally {
        self.blocks.iter().map(|b| b.tally()).sum()
    }

    /// Resets every block's tally.
    pub fn reset_tallies(&mut self) {
        for b in &mut self.blocks {
            b.reset_tally();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_shift_count() {
        assert!(Bank::new(16, 4, &[1, 2, 4]).is_ok());
        assert!(matches!(
            Bank::new(16, 4, &[1, 2]),
            Err(PimError::LengthMismatch { .. })
        ));
        assert!(Bank::new(15, 2, &[1]).is_err(), "odd width rejected");
    }

    #[test]
    fn paper_bank_shape() {
        // The 32k bank: 49 blocks, hence 48 switches.
        let shifts: Vec<usize> = (0..48).map(|i| 1 << (i % 9)).collect();
        let bank = Bank::new(32, 49, &shifts).unwrap();
        assert_eq!(bank.len(), 49);
        assert!(!bank.is_empty());
        assert_eq!(bank.switch(0).shift(), 1);
        assert_eq!(bank.bitwidth(), 32);
    }

    #[test]
    fn transfer_moves_and_charges_next_block() {
        let mut bank = Bank::new(16, 3, &[2, 4]).unwrap();
        let data = vec![10u64, 11, 12, 13];
        let conns = vec![
            Connection::UpShift,
            Connection::UpShift,
            Connection::DownShift,
            Connection::DownShift,
        ];
        let landed = bank.transfer(0, &data, &conns).unwrap();
        assert_eq!(&landed[..4], &[12, 13, 10, 11]);
        // The destination block absorbed the transfer cost.
        assert_eq!(bank.blocks[1].tally().transfer_cycles, 48);
        assert_eq!(bank.blocks[0].tally().cycles, 0);
        assert_eq!(bank.total_tally().transfer_cycles, 48);
    }

    #[test]
    fn transfer_past_the_end_errors() {
        let mut bank = Bank::new(16, 2, &[1]).unwrap();
        assert!(bank.transfer(1, &[1], &[Connection::Direct]).is_err());
    }

    #[test]
    fn compute_on_blocks_accumulates() {
        let mut bank = Bank::new(16, 2, &[1]).unwrap();
        let sums = bank.block_mut(0).add(&[1, 2], &[3, 4]).unwrap();
        assert_eq!(sums, vec![4, 6]);
        assert!(bank.total_tally().compute_cycles > 0);
        bank.reset_tallies();
        assert_eq!(bank.total_tally(), Tally::new());
    }
}

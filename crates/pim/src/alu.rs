//! Gate-level multiplier microprograms.
//!
//! §III-B describes the in-memory multiplication as partial-product
//! generation (bitwise ANDs — shifts are free column selections)
//! followed by an accumulation of shifted partial products. This module
//! executes that microprogram literally on the gate engine, serving two
//! purposes:
//!
//! * **functional validation** — the bit-level product equals word
//!   multiplication for every tested width;
//! * **an honest second opinion on cycles** — the naive accumulation
//!   measures `≈ 7N² + O(N)` cycles; the paper's optimized multiplier
//!   claims `6.5N² − 11.5N + 3` (it prunes half-width partial sums and
//!   fuses the AND into the first adder stage). The ablation bench
//!   prints both so the claimed constant-factor win is visible against
//!   a reconstructed baseline rather than taken on faith.

use crate::logic::{from_columns, to_columns, BitColumn, GateEngine};

/// Result of a gate-level multiplication run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateMulOutcome {
    /// The `2N`-bit products, one per row.
    pub products: Vec<u64>,
    /// Gate cycles actually executed by the microprogram.
    pub cycles: u64,
}

/// Multiplies two row-parallel vectors of `width`-bit values at gate
/// level: `width` AND passes generate the partial products (one per
/// multiplier bit; the shift is a free column selection), then
/// `width − 1` ripple additions of increasing significance accumulate
/// them into the `2·width`-bit product.
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or `width` is 0 or
/// `> 32` (the product must fit `u64`).
pub fn gate_multiply(a: &[u64], b: &[u64], width: usize) -> GateMulOutcome {
    assert!(
        !a.is_empty() && a.len() == b.len(),
        "matching nonempty operands"
    );
    assert!(width > 0 && width <= 32, "width must be in 1..=32");
    let mut eng = GateEngine::new();
    let a_cols = to_columns(a, width);
    let b_cols = to_columns(b, width);

    // Partial product for multiplier bit k: pp_k[j] = a[j] AND b_k.
    // One row-parallel AND per (k, j) pair — width² single-cycle ops.
    let partials: Vec<Vec<BitColumn>> = (0..width)
        .map(|k| {
            (0..width)
                .map(|j| eng.and2(&a_cols[j], &b_cols[k]))
                .collect()
        })
        .collect();

    // Accumulate: acc holds the running sum, LSB-first, growing as
    // partial products of higher significance join. Low bits below the
    // current shift are already final and skip the adder entirely
    // (the "free shift" of the paper: alignment is column selection).
    let rows = a.len();
    let mut acc: Vec<BitColumn> = partials[0].clone();
    for (k, pp) in partials.iter().enumerate().skip(1) {
        // Bits [0, k) of acc are final. Add pp (width bits) to
        // acc[k ..], which currently has `acc.len() - k` bits.
        let high: Vec<BitColumn> = acc[k..].to_vec();
        let mut a_op = high;
        let mut b_op = pp.clone();
        // Pad the shorter operand with zero columns (free: unwritten
        // processing columns read as 0).
        let add_width = a_op.len().max(b_op.len());
        while a_op.len() < add_width {
            a_op.push(vec![false; rows]);
        }
        while b_op.len() < add_width {
            b_op.push(vec![false; rows]);
        }
        let sum = eng.add_words(&a_op, &b_op, add_width);
        acc.truncate(k);
        acc.extend(sum);
        let _ = k;
    }
    acc.truncate(2 * width);

    GateMulOutcome {
        products: from_columns(&acc),
        cycles: eng.trace().cycles(),
    }
}

/// The measured cycle count of the naive gate-level microprogram for a
/// given width (operand values do not affect it — the datapath is
/// data-oblivious).
pub fn gate_multiply_cycles(width: usize) -> u64 {
    gate_multiply(&[0], &[0], width).cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use proptest::prelude::*;

    #[test]
    fn products_bit_exact() {
        for width in [2usize, 4, 8, 16, 24, 32] {
            let mask: u64 = if width == 64 {
                u64::MAX
            } else {
                (1 << width) - 1
            };
            let a: Vec<u64> = (0..32u64).map(|i| (i * 2654435761) & mask).collect();
            let b: Vec<u64> = (0..32u64).map(|i| (i * 40503 + 77) & mask).collect();
            let out = gate_multiply(&a, &b, width);
            for i in 0..a.len() {
                assert_eq!(out.products[i], a[i] * b[i], "width {width} row {i}");
            }
        }
    }

    #[test]
    fn extreme_values() {
        let width = 16;
        let m = (1u64 << width) - 1;
        let out = gate_multiply(&[m, m, 0, 1], &[m, 0, m, 1], width);
        assert_eq!(out.products, vec![m * m, 0, 0, 1]);
    }

    #[test]
    fn cycles_data_oblivious() {
        let w = 8;
        let c1 = gate_multiply(&[0, 0], &[0, 0], w).cycles;
        let c2 = gate_multiply(&[255, 1], &[255, 73], w).cycles;
        assert_eq!(c1, c2);
    }

    #[test]
    fn naive_cost_brackets_the_papers_claims() {
        // The reconstructed naive microprogram must land between the
        // paper's optimized multiplier and [35]'s baseline: the paper's
        // optimization claims are meaningful only if a straightforward
        // implementation sits in between.
        for width in [8usize, 16, 32] {
            let naive = gate_multiply_cycles(width);
            let optimized = cost::mul_cycles(width as u32);
            let baseline = cost::mul_cycles_baseline(width as u32);
            assert!(
                optimized < naive,
                "width {width}: optimized {optimized} !< naive {naive}"
            );
            assert!(
                naive < baseline,
                "width {width}: naive {naive} !< baseline {baseline}"
            );
        }
    }

    #[test]
    fn naive_cost_is_quadratic() {
        let c8 = gate_multiply_cycles(8) as f64;
        let c16 = gate_multiply_cycles(16) as f64;
        let c32 = gate_multiply_cycles(32) as f64;
        // Doubling the width should roughly quadruple the cycles.
        assert!((3.0..5.0).contains(&(c16 / c8)), "c16/c8 = {}", c16 / c8);
        assert!((3.0..5.0).contains(&(c32 / c16)), "c32/c16 = {}", c32 / c16);
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn width_zero_panics() {
        gate_multiply(&[1], &[1], 0);
    }

    #[test]
    #[should_panic(expected = "matching nonempty")]
    fn mismatched_lengths_panic() {
        gate_multiply(&[1, 2], &[1], 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn prop_gate_multiply_matches_words(
            a in proptest::collection::vec(0u64..(1 << 12), 1..16),
            b in proptest::collection::vec(0u64..(1 << 12), 1..16),
        ) {
            let len = a.len().min(b.len());
            let out = gate_multiply(&a[..len], &b[..len], 12);
            for i in 0..len {
                prop_assert_eq!(out.products[i], a[i] * b[i]);
            }
        }
    }
}

//! Lazily-initialized persistent worker pool.
//!
//! The first parallel region spawns its helper threads; every later
//! region reuses them, so steady-state fan-out costs a queue push and a
//! wake-up instead of an OS thread spawn (tens of µs per
//! [`std::thread::scope`], paid once per NTT stage before this pool
//! existed). Workers park on a condvar-guarded [`VecDeque`] work queue;
//! the queue is plain `std` — no external dependencies.
//!
//! Contracts (relied on by [`crate::par`] and documented in DESIGN.md):
//!
//! * **Lifetime safety** — tasks borrow the caller's stack. [`scope_run`]
//!   does not return (and does not finish unwinding) until every task it
//!   enqueued has completed, so those borrows never dangle even though
//!   the pool threads are `'static`.
//! * **Panic propagation** — a panicking task is caught on the worker,
//!   its payload is carried back through the completion latch, and
//!   [`scope_run`] re-raises it on the calling thread after all sibling
//!   tasks have drained. A panic never deadlocks the pool and never
//!   kills a worker thread.
//! * **Nested regions cannot deadlock** — a thread waiting on its latch
//!   *helps*: it drains queued tasks (its own or another region's)
//!   instead of blocking while work is pending, so progress is always
//!   made even when every pool thread is itself inside a region.
//! * **Shutdown** — workers are detached and live for the process; they
//!   hold no resources beyond a parked stack, so process exit is the
//!   shutdown protocol. There is deliberately no drop-based teardown.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// Hard cap on spawned workers (a safety valve, far above any sensible
/// `--threads` setting; excess requests queue instead of spawning).
const POOL_MAX_THREADS: usize = 256;

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// One queued unit of work: run `f(index)`, then count down `latch`.
///
/// The `'static` lifetimes are a fiction maintained by [`scope_run`],
/// which blocks until the latch drains before its frame (holding the
/// real referents) can die.
#[derive(Clone, Copy)]
struct Task {
    f: &'static (dyn Fn(usize) + Sync),
    index: usize,
    latch: &'static Latch,
}

struct LatchState {
    remaining: usize,
    panic: Option<PanicPayload>,
}

/// Countdown latch with panic-payload transport.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<PanicPayload>) {
        let mut st = self.state.lock().expect("latch poisoned");
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Task>>,
    work: Condvar,
    spawned: Mutex<usize>,
}

fn shared() -> &'static PoolShared {
    static SHARED: OnceLock<PoolShared> = OnceLock::new();
    SHARED.get_or_init(|| PoolShared {
        queue: Mutex::new(VecDeque::new()),
        work: Condvar::new(),
        spawned: Mutex::new(0),
    })
}

fn run_task(task: Task) {
    let result = catch_unwind(AssertUnwindSafe(|| (task.f)(task.index)));
    task.latch.complete(result.err());
}

fn worker_loop() {
    let s = shared();
    loop {
        let task = {
            let mut q = s.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(t) = q.pop_front() {
                    break t;
                }
                q = s.work.wait(q).expect("pool queue poisoned");
            }
        };
        run_task(task);
    }
}

/// Spawns workers until `wanted` exist (capped at [`POOL_MAX_THREADS`]).
fn ensure_threads(wanted: usize) {
    let s = shared();
    let mut spawned = s.spawned.lock().expect("pool spawn count poisoned");
    let target = wanted.min(POOL_MAX_THREADS);
    while *spawned < target {
        thread::Builder::new()
            .name(format!("cryptopim-pool-{spawned}"))
            .spawn(worker_loop)
            .expect("spawn pool worker");
        *spawned += 1;
    }
}

/// Number of persistent workers spawned so far (diagnostics; the pool
/// reuse tests assert this stays flat across thousands of regions).
pub fn pool_threads() -> usize {
    *shared().spawned.lock().expect("pool spawn count poisoned")
}

/// Waits for `latch` to drain, helping with queued work (ours or another
/// region's) instead of blocking while any task is runnable.
fn wait_help(latch: &Latch) {
    let s = shared();
    loop {
        {
            let st = latch.state.lock().expect("latch poisoned");
            if st.remaining == 0 {
                return;
            }
        }
        let task = s.queue.lock().expect("pool queue poisoned").pop_front();
        match task {
            Some(t) => run_task(t),
            None => {
                // Queue empty: our outstanding tasks are running on other
                // threads; their completions will signal `done`.
                let mut st = latch.state.lock().expect("latch poisoned");
                while st.remaining > 0 {
                    st = latch.done.wait(st).expect("latch poisoned");
                }
                return;
            }
        }
    }
}

/// Waits for the latch even when the caller's own chunk panics, so
/// borrowed stack data outlives every queued task.
struct WaitGuard<'a>(&'a Latch);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        wait_help(self.0);
    }
}

/// Runs `f(0) ... f(count-1)`, `f(0)` on the calling thread and the rest
/// on the persistent pool, returning once every call has finished.
///
/// `f` may borrow from the caller's stack: the function does not return
/// (or finish unwinding) before all queued calls complete.
///
/// # Panics
///
/// Re-raises the first panic observed among the calls, after all of them
/// have drained.
pub(crate) fn scope_run(count: usize, f: &(dyn Fn(usize) + Sync)) {
    match count {
        0 => return,
        1 => {
            f(0);
            return;
        }
        _ => {}
    }
    let helpers = count - 1;
    ensure_threads(helpers);
    let latch = Latch::new(helpers);
    // SAFETY: the WaitGuard below (armed before any task is queued)
    // blocks this frame — on return *and* on unwind — until every task
    // referencing `f` and `latch` has completed.
    let f_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
    let latch_static: &'static Latch = unsafe { &*std::ptr::from_ref(&latch) };
    let guard = WaitGuard(&latch);
    {
        let s = shared();
        let mut q = s.queue.lock().expect("pool queue poisoned");
        for index in 1..count {
            q.push_back(Task {
                f: f_static,
                index,
                latch: latch_static,
            });
        }
        drop(q);
        if helpers == 1 {
            s.work.notify_one();
        } else {
            s.work.notify_all();
        }
    }
    f(0);
    drop(guard); // waits for the helpers
    let payload = latch.state.lock().expect("latch poisoned").panic.take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_run_covers_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        scope_run(64, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn pool_threads_do_not_grow_with_reuse() {
        scope_run(4, &|_| {});
        let after_first = pool_threads();
        for _ in 0..500 {
            scope_run(4, &|_| {});
        }
        assert_eq!(pool_threads(), after_first, "regions must reuse workers");
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            scope_run(4, &|i| {
                if i == 2 {
                    panic!("boom from worker chunk");
                }
            });
        });
        assert!(result.is_err(), "panic must reach the caller");
        // The pool must still work afterwards.
        let count = AtomicUsize::new(0);
        scope_run(4, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_chunk_panic_still_drains_helpers() {
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope_run(3, &|i| {
                if i == 0 {
                    panic!("caller chunk panics");
                }
                finished.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err());
        assert_eq!(
            finished.load(Ordering::SeqCst),
            2,
            "helper chunks must have drained before the unwind finished"
        );
    }

    #[test]
    fn nested_regions_complete() {
        let total = AtomicUsize::new(0);
        scope_run(4, &|_| {
            scope_run(4, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }
}

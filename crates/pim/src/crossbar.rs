//! Bit-level crossbar memory model (Fig. 1 / Fig. 2 of the paper).
//!
//! A [`Crossbar`] is the physical substrate under a
//! [`crate::block::MemoryBlock`]: an `rows × cols` array of ReRAM cells,
//! one bit each. Values are stored one per row, MSB first (§III-B.1:
//! "N continuous memory cells in a row represent an N-bit number, with
//! the first cell storing the Most Significant Bit"); the columns to the
//! right of the data field serve as processing columns for intermediate
//! results.
//!
//! The crossbar also tracks per-cell write counts — ReRAM endurance is
//! finite, and a released PIM simulator must expose wear so kernels can
//! be compared on write pressure, not just cycles.
//!
//! The word-level [`crate::block`] engine is the fast path; this model
//! exists to (a) validate layouts and microprograms bit-exactly and
//! (b) provide wear/occupancy statistics for the architecture study.

use crate::logic::{BitColumn, GateEngine};
use crate::{PimError, Result};

/// A field of columns allocated inside a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnField {
    /// First column of the field.
    pub start: usize,
    /// Width in columns (= bits).
    pub width: usize,
}

impl ColumnField {
    /// The half-open column range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.width
    }
}

/// An `rows × cols` array of single-bit ReRAM cells.
#[derive(Debug, Clone)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    /// Cell states, row-major.
    cells: Vec<bool>,
    /// Per-cell write counts (endurance tracking).
    writes: Vec<u32>,
    /// Next free column for allocation.
    next_col: usize,
}

impl Crossbar {
    /// Creates a zeroed crossbar. The paper's block is 512 × 512
    /// ([`crate::BLOCK_DIM`]), but tests use smaller arrays.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "crossbar dimensions must be nonzero");
        Crossbar {
            rows,
            cols,
            cells: vec![false; rows * cols],
            writes: vec![0; rows * cols],
            next_col: 0,
        }
    }

    /// Rows in the array.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns in the array.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Columns not yet allocated to any field.
    #[inline]
    pub fn free_cols(&self) -> usize {
        self.cols - self.next_col
    }

    #[inline]
    fn idx(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Reads one cell.
    #[inline]
    pub fn read_bit(&self, row: usize, col: usize) -> bool {
        self.cells[self.idx(row, col)]
    }

    /// Writes one cell, counting wear only on actual state changes
    /// (ReRAM cells age on switching, not on reads or same-state
    /// writes).
    #[inline]
    pub fn write_bit(&mut self, row: usize, col: usize, value: bool) {
        let i = self.idx(row, col);
        if self.cells[i] != value {
            self.cells[i] = value;
            self.writes[i] += 1;
        }
    }

    /// Allocates the next `width` columns as a field.
    ///
    /// # Errors
    ///
    /// Returns [`PimError::VectorTooLong`] when fewer than `width`
    /// columns remain (the block is out of processing space).
    pub fn allocate(&mut self, width: usize) -> Result<ColumnField> {
        if self.next_col + width > self.cols {
            return Err(PimError::VectorTooLong {
                len: width,
                rows: self.free_cols(),
            });
        }
        let field = ColumnField {
            start: self.next_col,
            width,
        };
        self.next_col += width;
        Ok(field)
    }

    /// Releases all allocations (processing columns are reclaimed
    /// between operations; cell contents are left as-is, like hardware).
    pub fn reset_allocations(&mut self) {
        self.next_col = 0;
    }

    /// Stores a vector into a field, one value per row, **MSB first**
    /// (the paper's layout). `row_map` gives the destination row for
    /// each value — the free bit-reversal write permutation; pass
    /// `None` for identity.
    ///
    /// # Errors
    ///
    /// * [`PimError::VectorTooLong`] — more values than rows.
    /// * [`PimError::ValueOverflow`] — a value wider than the field.
    /// * [`PimError::RowOutOfRange`] — a mapped row outside the array.
    pub fn store_vector(
        &mut self,
        field: ColumnField,
        values: &[u64],
        row_map: Option<&[usize]>,
    ) -> Result<()> {
        if values.len() > self.rows {
            return Err(PimError::VectorTooLong {
                len: values.len(),
                rows: self.rows,
            });
        }
        if let Some(map) = row_map {
            if map.len() != values.len() {
                return Err(PimError::LengthMismatch {
                    left: values.len(),
                    right: map.len(),
                });
            }
        }
        for (i, &v) in values.iter().enumerate() {
            if field.width < 64 && v >> field.width != 0 {
                return Err(PimError::ValueOverflow {
                    value: v,
                    width: field.width as u32,
                });
            }
            let row = row_map.map_or(i, |m| m[i]);
            if row >= self.rows {
                return Err(PimError::RowOutOfRange {
                    row: row as isize,
                    rows: self.rows,
                });
            }
            // MSB in the first (leftmost) cell of the field.
            for bit in 0..field.width {
                let cell_value = (v >> (field.width - 1 - bit)) & 1 == 1;
                self.write_bit(row, field.start + bit, cell_value);
            }
        }
        Ok(())
    }

    /// Loads `count` values back out of a field (identity row order).
    pub fn load_vector(&self, field: ColumnField, count: usize) -> Vec<u64> {
        (0..count.min(self.rows))
            .map(|row| {
                (0..field.width).fold(0u64, |acc, bit| {
                    (acc << 1) | self.read_bit(row, field.start + bit) as u64
                })
            })
            .collect()
    }

    /// Reads a column as a row-parallel bit vector (LSB-agnostic — the
    /// caller knows the field layout).
    pub fn read_column(&self, col: usize, count: usize) -> BitColumn {
        (0..count.min(self.rows))
            .map(|row| self.read_bit(row, col))
            .collect()
    }

    /// Writes a bit vector into a column.
    ///
    /// # Errors
    ///
    /// [`PimError::VectorTooLong`] when the vector exceeds the rows.
    pub fn write_column(&mut self, col: usize, bits: &BitColumn) -> Result<()> {
        if bits.len() > self.rows {
            return Err(PimError::VectorTooLong {
                len: bits.len(),
                rows: self.rows,
            });
        }
        for (row, &b) in bits.iter().enumerate() {
            self.write_bit(row, col, b);
        }
        Ok(())
    }

    /// Executes an in-place row-parallel addition between two fields,
    /// writing the `width + 1`-bit sum into a freshly allocated result
    /// field, using the gate-level engine. Returns the result field and
    /// the gate cycles spent (= `6·width + 1`, validated in tests).
    ///
    /// Fields are MSB-first; the gate engine works LSB-first, so columns
    /// are presented in reversed order — a pure wiring choice with no
    /// cycle cost.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    pub fn add_fields(
        &mut self,
        a: ColumnField,
        b: ColumnField,
        count: usize,
    ) -> Result<(ColumnField, u64)> {
        assert_eq!(a.width, b.width, "operand fields must match in width");
        let out = self.allocate(a.width + 1)?;
        let mut eng = GateEngine::new();
        let read_lsb_first = |xb: &Crossbar, f: ColumnField| -> Vec<BitColumn> {
            (0..f.width)
                .map(|bit| xb.read_column(f.start + f.width - 1 - bit, count))
                .collect()
        };
        let av = read_lsb_first(self, a);
        let bv = read_lsb_first(self, b);
        let sum = eng.add_words(&av, &bv, a.width);
        // sum[bit] is LSB-first with width+1 entries.
        for (bit, column) in sum.iter().enumerate() {
            self.write_column(out.start + out.width - 1 - bit, column)?;
        }
        Ok((out, eng.trace().cycles()))
    }

    /// Total cell writes so far (wear).
    pub fn total_writes(&self) -> u64 {
        self.writes.iter().map(|&w| w as u64).sum()
    }

    /// The most-written cell's write count (endurance hot spot).
    pub fn max_cell_writes(&self) -> u32 {
        self.writes.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost;
    use modmath::bitrev;

    #[test]
    fn store_load_roundtrip_msb_first() {
        let mut xb = Crossbar::new(8, 32);
        let field = xb.allocate(8).unwrap();
        let values = vec![0u64, 1, 0x80, 0xFF, 0x5A];
        xb.store_vector(field, &values, None).unwrap();
        assert_eq!(xb.load_vector(field, 5), values);
        // MSB-first: 0x80 puts its single set bit in the FIRST cell.
        assert!(xb.read_bit(2, field.start));
        assert!(!xb.read_bit(2, field.start + 7));
        // 1 puts its bit in the LAST cell.
        assert!(xb.read_bit(1, field.start + 7));
    }

    #[test]
    fn bitrev_write_permutation() {
        // The paper's free bit-reversal: apply it as the row map.
        let n = 8;
        let mut xb = Crossbar::new(n, 16);
        let field = xb.allocate(8).unwrap();
        let values: Vec<u64> = (0..n as u64).collect();
        let map = bitrev::permutation_table(n);
        xb.store_vector(field, &values, Some(&map)).unwrap();
        let loaded = xb.load_vector(field, n);
        for i in 0..n {
            assert_eq!(loaded[map[i]], values[i]);
        }
    }

    #[test]
    fn allocation_exhaustion() {
        let mut xb = Crossbar::new(4, 20);
        let _ = xb.allocate(16).unwrap();
        assert_eq!(xb.free_cols(), 4);
        assert!(xb.allocate(5).is_err());
        let _ = xb.allocate(4).unwrap();
        assert_eq!(xb.free_cols(), 0);
        xb.reset_allocations();
        assert_eq!(xb.free_cols(), 20);
    }

    #[test]
    fn value_overflow_rejected() {
        let mut xb = Crossbar::new(4, 16);
        let field = xb.allocate(4).unwrap();
        assert!(matches!(
            xb.store_vector(field, &[16], None),
            Err(PimError::ValueOverflow { .. })
        ));
        assert!(xb.store_vector(field, &[15], None).is_ok());
    }

    #[test]
    fn too_many_values_rejected() {
        let mut xb = Crossbar::new(2, 16);
        let field = xb.allocate(4).unwrap();
        assert!(matches!(
            xb.store_vector(field, &[1, 2, 3], None),
            Err(PimError::VectorTooLong { .. })
        ));
    }

    #[test]
    fn bad_row_map_rejected() {
        let mut xb = Crossbar::new(4, 16);
        let field = xb.allocate(4).unwrap();
        assert!(matches!(
            xb.store_vector(field, &[1, 2], Some(&[0])),
            Err(PimError::LengthMismatch { .. })
        ));
        assert!(matches!(
            xb.store_vector(field, &[1, 2], Some(&[0, 9])),
            Err(PimError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn in_array_addition_bit_exact_and_cycle_exact() {
        let mut xb = Crossbar::new(64, 64);
        let width = 12;
        let a = xb.allocate(width).unwrap();
        let b = xb.allocate(width).unwrap();
        let av: Vec<u64> = (0..64u64).map(|i| (i * 37) & 0xFFF).collect();
        let bv: Vec<u64> = (0..64u64).map(|i| (i * 91 + 3) & 0xFFF).collect();
        xb.store_vector(a, &av, None).unwrap();
        xb.store_vector(b, &bv, None).unwrap();
        let (out, cycles) = xb.add_fields(a, b, 64).unwrap();
        assert_eq!(cycles, cost::add_cycles(width as u32));
        let sums = xb.load_vector(out, 64);
        for i in 0..64 {
            assert_eq!(sums[i], av[i] + bv[i], "row {i}");
        }
    }

    #[test]
    fn wear_tracking_counts_switches_only() {
        let mut xb = Crossbar::new(2, 8);
        let field = xb.allocate(4).unwrap();
        xb.store_vector(field, &[0b1010], None).unwrap();
        let w1 = xb.total_writes();
        assert_eq!(w1, 2, "only the two set bits switched");
        // Rewriting the same value switches nothing.
        xb.store_vector(field, &[0b1010], None).unwrap();
        assert_eq!(xb.total_writes(), w1);
        // Flipping all four bits switches four cells.
        xb.store_vector(field, &[0b0101], None).unwrap();
        assert_eq!(xb.total_writes(), w1 + 4);
        assert!(xb.max_cell_writes() >= 2);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dimension_panics() {
        Crossbar::new(0, 8);
    }
}

use crate::fault::FaultReport;
use std::fmt;

/// Errors produced by the PIM simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PimError {
    /// More vector elements than the block has rows.
    VectorTooLong {
        /// Requested vector length.
        len: usize,
        /// Rows available in the block.
        rows: usize,
    },
    /// The datapath bit-width is outside the supported range (1..=64 for
    /// the word-level engine; products need `2N <= 64`).
    UnsupportedBitwidth {
        /// Offending width.
        width: u32,
    },
    /// Two blocks involved in one operation hold vectors of different
    /// lengths.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// A value does not fit in the configured bit-width.
    ValueOverflow {
        /// The oversized value.
        value: u64,
        /// The configured width.
        width: u32,
    },
    /// A switch transfer addressed a row outside the destination block.
    RowOutOfRange {
        /// The out-of-range row.
        row: isize,
        /// Rows in the block.
        rows: usize,
    },
    /// The operation needs a reduction sequence that is not defined for
    /// this modulus (only q ∈ {7681, 12289, 786433} are specialized).
    UnsupportedModulus {
        /// The modulus.
        q: u64,
    },
    /// A batched operation was invoked with zero jobs. Batch entry
    /// points (`cryptopim::batch::multiply_batch`, the service batch
    /// former) have no meaningful occupancy or timing for an empty
    /// batch, so they refuse it explicitly instead of reporting a
    /// bogus length mismatch.
    EmptyBatch,
    /// A result-integrity check rejected a computed product: it is not
    /// the ring product of its operands. Raised by the opt-in residue
    /// spot check (`cryptopim::check`); the report localizes the
    /// corruption to a bank (and block, when a fault injector is
    /// installed). The *caller* decides what to do — the serving layer
    /// retries on a different attempt or quarantines the bank.
    CorruptResult(FaultReport),
    /// An underlying modular-arithmetic error (bad degree, composite
    /// modulus, …) surfaced through the PIM layer.
    Math(modmath::Error),
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::VectorTooLong { len, rows } => {
                write!(f, "vector of {len} elements exceeds {rows} block rows")
            }
            PimError::UnsupportedBitwidth { width } => {
                write!(f, "bit-width {width} is outside the supported range")
            }
            PimError::LengthMismatch { left, right } => {
                write!(f, "operand lengths differ: {left} vs {right}")
            }
            PimError::ValueOverflow { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
            PimError::RowOutOfRange { row, rows } => {
                write!(f, "row {row} outside block of {rows} rows")
            }
            PimError::UnsupportedModulus { q } => {
                write!(f, "no in-memory reduction sequence for modulus {q}")
            }
            PimError::EmptyBatch => {
                write!(f, "batched operation invoked with zero jobs")
            }
            PimError::CorruptResult(report) => {
                write!(f, "corrupt product detected: {report}")
            }
            PimError::Math(e) => write!(f, "modular arithmetic error: {e}"),
        }
    }
}

impl std::error::Error for PimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PimError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<modmath::Error> for PimError {
    fn from(e: modmath::Error) -> Self {
        match e {
            modmath::Error::UnsupportedModulus { q } => PimError::UnsupportedModulus { q },
            other => PimError::Math(other),
        }
    }
}

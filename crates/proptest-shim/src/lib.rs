//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of the proptest API its test suites use: range
//! and `any::<T>()` strategies, `collection::vec`, the `proptest!`
//! macro (with optional `#![proptest_config(..)]` header), and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Sampling is purely
//! random-search: each test case draws fresh values from a generator
//! seeded deterministically from the test name, so failures reproduce
//! across runs. There is no shrinking — a failing case panics with the
//! drawn values visible in the assertion message instead.

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps debug-mode runs of
        // the gate-level simulator properties fast while still giving
        // broad coverage.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic test-case source.
pub mod test_runner {
    /// SplitMix64 generator seeded from the property's name, so every
    /// run of a given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary label (the test name).
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

/// Strategy trait and the combinators this workspace needs.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategies compose by reference too (needed when a strategy is
    /// reused across several generated arguments).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// Strategy producing any value of `T` (see [`super::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    /// Full-domain sampling for [`Any`].
    pub trait Arbitrary: Sized {
        /// Draws a uniform value over the whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`vec` only).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed `usize` or a
    /// `Range<usize>` sampled per case.
    pub trait IntoLenRange {
        /// Draws a concrete length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLenRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLenRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing `Vec`s whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `Vec` strategy: elements from `element`, length from `len`.
    pub fn vec<S: Strategy, L: IntoLenRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: IntoLenRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Any, Arbitrary, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{any, ProptestConfig};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property-based test harness macro. Supports the two shapes used in
/// this workspace: with and without a `#![proptest_config(..)]`
/// header, each followed by one or more `fn name(arg in strategy, ..)`
/// items carrying optional outer attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut proptest_rng =
                    $crate::test_runner::TestRng::deterministic(concat!(
                        module_path!(),
                        "::",
                        stringify!($name)
                    ));
                for proptest_case in 0..config.cases {
                    let _ = proptest_case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Boolean property assertion (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u64> {
        0u64..100
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0usize..3) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u64..7, 4usize)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(v.iter().all(|&x| x < 7));
        }

        #[test]
        fn vec_range_lengths(v in collection::vec(any::<u8>(), 1usize..16)) {
            prop_assert!(!v.is_empty() && v.len() < 16);
        }

        #[test]
        fn custom_strategy_fn(x in evens()) {
            prop_assert!(x < 100);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_accepted(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::deterministic("label");
        let mut b = TestRng::deterministic("label");
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}

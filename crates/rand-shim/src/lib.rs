//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment for this reproduction has no access to a
//! package registry, so the workspace vendors the thin slice of the
//! `rand 0.8` API it actually uses: [`Rng::gen`], [`Rng::gen_range`],
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which the test suite and Monte Carlo studies rely on.
//! Nothing here is cryptographically secure; the RLWE samplers in this
//! repo are reproduction artifacts, not production key generators.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u64 as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard the half-open contract against rounding at the top end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// Draws a uniform value over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a uniform value from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; same API, different — but stable — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A generator seeded from the system clock (stand-in for
/// `rand::thread_rng`; not thread-local, just fresh).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_gen_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

//! `cryptopim-service` — a multi-tenant, batch-forming job scheduler
//! that turns the CryptoPIM accelerator into a long-running server.
//!
//! The paper's throughput story (§III-D) is that a 32k-provisioned chip
//! packs `32k/n` independent degree-`n` multiplications side by side
//! and streams jobs back-to-back through the pipeline. The core crate
//! exposes that as the one-shot, caller-assembles-the-batch
//! [`cryptopim::batch::multiply_batch`]; this crate supplies the
//! serving discipline around it:
//!
//! * [`Service::submit`] — continuous job admission behind a bounded
//!   queue with a configurable [`Backpressure`] policy (`Block` or
//!   `Reject`), so overload degrades gracefully instead of OOMing;
//! * a **batch former** that groups pending jobs by `(n, q)` parameter
//!   key and flushes when a group reaches the packed-lane capacity
//!   (`32k/n`, from [`cryptopim::arch::ArchConfig`]) *or* a max-linger
//!   deadline expires — the latency/occupancy trade-off of the paper's
//!   packing model, made explicit as [`ServiceConfig::linger`];
//! * a fleet of virtual **superbank workers** draining formed batches
//!   through the verified engine path, so every product is bit-identical
//!   to a direct `CryptoPim::multiply`;
//! * graceful [`Service::shutdown`] that drains every admitted job;
//! * [`Service::stats`] — queue depth, admission counters, realized
//!   packed-lane occupancy, and p50/p95/p99 job latency from a
//!   fixed-bucket histogram.
//!
//! The [`loadgen`] module drives all of it with a seeded, deterministic
//! open-/closed-loop workload (exposed as the `cli serve-loadgen`
//! subcommand) and bit-verifies against the direct path.
//!
//! # Example
//!
//! ```
//! use service::{Service, ServiceConfig};
//! use modmath::params::ParamSet;
//! use ntt::poly::Polynomial;
//!
//! let svc = Service::start(ServiceConfig::default());
//! let q = ParamSet::for_degree(256).unwrap().q;
//! let a = Polynomial::from_coeffs(vec![1; 256], q).unwrap();
//! let b = Polynomial::from_coeffs(vec![2; 256], q).unwrap();
//! let ticket = svc.submit(a, b).unwrap();
//! let done = ticket.wait().unwrap();
//! assert_eq!(done.product.degree_bound(), 256);
//! let stats = svc.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

pub mod error;
pub mod graph;
pub mod loadgen;
pub mod protoload;
pub mod scheduler;
pub mod stats;

pub use error::ServiceError;
pub use graph::{ProtocolCompleted, ProtocolJob, ProtocolKind, ProtocolOutput, ProtocolTicket};
pub use protoload::{
    run_protocols, ProtoKindReport, ProtoLoadgenConfig, ProtoLoadgenReport, ProtocolMix,
};
pub use scheduler::{
    Backpressure, CompletedJob, JobTicket, Service, ServiceConfig, WideCompletedJob, WideTicket,
};
pub use stats::{LatencyHistogram, ProtocolLaneStats, ServiceStats};

/// Convenience result alias for service operations.
pub type Result<T> = std::result::Result<T, ServiceError>;

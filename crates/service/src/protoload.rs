//! Mixed-protocol load generation against the job-graph layer, with
//! bit-exact verification against the direct host path.
//!
//! Where [`crate::loadgen`] drives raw multiply streams, this module
//! drives a weighted **mix of protocol ops** (KEM handshakes,
//! signatures, homomorphic multiplies, raw products) through
//! [`crate::Service::submit_protocol`]. The stream is deterministic in
//! its configuration, and — the part a raw-multiply stream cannot
//! express — it separates **key lifetime** from **per-op randomness**:
//! a pool of long-lived key material (public keys, signing keys,
//! evaluation operands) is reused across many ops with fresh
//! randomness each time, exactly the shape that makes the hot-operand
//! transform cache pay. The [`ProtoLoadgenConfig::key_churn`] knob
//! rotates that key material every K ops, so one generator measures
//! the cache under realistic reuse *and* under adversarial churn.

use crate::graph::{ProtocolJob, ProtocolKind, ProtocolOutput};
use crate::scheduler::{Service, ServiceConfig};
use crate::stats::ServiceStats;
use modmath::crt::RnsBasis;
use modmath::params::ParamSet;
use ntt::negacyclic::NttMultiplier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlwe::kem::{self, KemKeyPair};
use rlwe::pke::KeyPair;
use rlwe::sampling;
use rlwe::signature::SigningKey;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// A weighted mix of protocol families, parsed from specs like
/// `"kem:40,sign:30,she:20,mul:10"`.
///
/// Family names expand to kinds: `kem` → Encaps + Decaps, `pke` →
/// PKE-Enc + PKE-Dec, `sign` → Sign + Verify (a signing service
/// verifies what it signs), `she` → SHE-Mul, `mul` → raw Mul, `wide` →
/// wide RNS Mul, `keygen` → KeyGen. Exact kind names
/// (`encaps`, `decaps`, `pke_enc`, `pke_dec`, `she_mul`, `wide_mul`,
/// `verify`) address a single kind. Weights are relative integers.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolMix {
    entries: Vec<(String, Vec<ProtocolKind>, u32)>,
    total: u64,
}

impl ProtocolMix {
    /// Parses a `name:weight,name:weight,...` spec.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending token (unknown
    /// family, non-numeric or zero weight, empty spec).
    pub fn parse(spec: &str) -> Result<ProtocolMix, String> {
        let mut entries: Vec<(String, Vec<ProtocolKind>, u32)> = Vec::new();
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (name, weight) = token
                .split_once(':')
                .ok_or_else(|| format!("mix token {token:?} is not name:weight"))?;
            let kinds = Self::family(name.trim())
                .ok_or_else(|| format!("unknown protocol family {:?}", name.trim()))?;
            let weight: u32 = weight
                .trim()
                .parse()
                .map_err(|_| format!("weight in {token:?} is not an integer"))?;
            if weight == 0 {
                return Err(format!("weight in {token:?} must be positive"));
            }
            if entries.iter().any(|(n, _, _)| n == name.trim()) {
                return Err(format!("family {:?} listed twice", name.trim()));
            }
            entries.push((name.trim().to_string(), kinds, weight));
        }
        if entries.is_empty() {
            return Err("empty protocol mix".to_string());
        }
        let total = entries.iter().map(|(_, _, w)| u64::from(*w)).sum();
        Ok(ProtocolMix { entries, total })
    }

    /// The issue's canonical mix: `kem:40,sign:30,she:20,mul:10`.
    pub fn standard() -> ProtocolMix {
        ProtocolMix::parse("kem:40,sign:30,she:20,mul:10").expect("canonical mix parses")
    }

    fn family(name: &str) -> Option<Vec<ProtocolKind>> {
        Some(match name {
            "kem" => vec![ProtocolKind::Encaps, ProtocolKind::Decaps],
            "pke" => vec![ProtocolKind::PkeEncrypt, ProtocolKind::PkeDecrypt],
            "sign" => vec![ProtocolKind::Sign, ProtocolKind::Verify],
            "she" | "she_mul" => vec![ProtocolKind::SheMul],
            "mul" => vec![ProtocolKind::Mul],
            "wide" | "wide_mul" => vec![ProtocolKind::WideMul],
            "keygen" => vec![ProtocolKind::KeyGen],
            "encaps" => vec![ProtocolKind::Encaps],
            "decaps" => vec![ProtocolKind::Decaps],
            "pke_enc" => vec![ProtocolKind::PkeEncrypt],
            "pke_dec" => vec![ProtocolKind::PkeDecrypt],
            "verify" => vec![ProtocolKind::Verify],
            _ => return None,
        })
    }

    /// Draws one kind: the family by weight, then a uniform member.
    fn draw(&self, rng: &mut StdRng) -> ProtocolKind {
        let mut roll = rng.gen_range(0..self.total);
        for (_, kinds, weight) in &self.entries {
            if roll < u64::from(*weight) {
                return kinds[rng.gen_range(0..kinds.len())];
            }
            roll -= u64::from(*weight);
        }
        unreachable!("weights sum to total")
    }

    /// Every kind the mix can emit (for reporting).
    pub fn kinds(&self) -> Vec<ProtocolKind> {
        let mut out: Vec<ProtocolKind> = Vec::new();
        for (_, kinds, _) in &self.entries {
            for &k in kinds {
                if !out.contains(&k) {
                    out.push(k);
                }
            }
        }
        out
    }
}

/// Protocol load-generator configuration.
#[derive(Debug, Clone)]
pub struct ProtoLoadgenConfig {
    /// Seed for the deterministic op stream (kinds, degrees, keys,
    /// per-op randomness).
    pub seed: u64,
    /// Total protocol ops to generate.
    pub ops: usize,
    /// Degree mix; each op draws uniformly from this set.
    pub degrees: Vec<usize>,
    /// The weighted kind mix.
    pub mix: ProtocolMix,
    /// Key lifetime: `0` reuses one key pool for the whole run
    /// (maximum reuse); `K > 0` regenerates every pool after K ops
    /// (`1` = fresh keys for every op, maximum churn).
    pub key_churn: usize,
    /// Closed-loop client threads, each keeping one op outstanding.
    pub clients: usize,
    /// Service under test.
    pub service: ServiceConfig,
    /// Bit-compare every served output against
    /// [`ProtocolJob::run_direct`].
    pub verify_direct: bool,
}

impl Default for ProtoLoadgenConfig {
    fn default() -> Self {
        ProtoLoadgenConfig {
            seed: 7,
            ops: 64,
            degrees: vec![256],
            mix: ProtocolMix::standard(),
            key_churn: 0,
            clients: 4,
            service: ServiceConfig::default(),
            verify_direct: true,
        }
    }
}

/// Client-side per-kind outcome counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoKindReport {
    /// The kind these counters describe.
    pub kind: ProtocolKind,
    /// Ops of this kind in the stream.
    pub ops: usize,
    /// Ops whose ticket resolved to an output.
    pub ok: usize,
    /// Ops refused at admission or resolved to an error.
    pub failed: usize,
    /// Served outputs that differed from the direct host execution
    /// (must be 0; counted only under `verify_direct`).
    pub mismatches: usize,
}

/// Outcome of one protocol load-generation run.
///
/// Per-kind latency percentiles live in
/// [`ServiceStats::protocol`] on the embedded `stats` — the service's
/// own histogram is the single source of truth; this report adds the
/// client-side verification verdicts the service cannot know.
#[derive(Debug, Clone)]
pub struct ProtoLoadgenReport {
    /// Ops generated.
    pub ops: usize,
    /// Ops that resolved to an output.
    pub ok: usize,
    /// Ops refused at admission or resolved to an error.
    pub failed: usize,
    /// Served outputs differing from the direct path (must be 0).
    pub mismatches: usize,
    /// Wall-clock of the serving run, seconds.
    pub wall_s: f64,
    /// Completed protocol ops per second.
    pub throughput: f64,
    /// Per-kind outcome counters (only kinds present in the stream).
    pub per_kind: Vec<ProtoKindReport>,
    /// Final service statistics (post-drain), including per-kind
    /// latency lanes and hot-cache counters.
    pub stats: ServiceStats,
}

impl ProtoLoadgenReport {
    /// True when every op completed with the direct path's exact output.
    pub fn is_clean(&self) -> bool {
        self.failed == 0 && self.mismatches == 0 && self.ok == self.ops
    }

    /// Hot-operand cache hit rate over the run (0.0 with no lookups).
    pub fn hot_hit_rate(&self) -> f64 {
        let looked = self.stats.hot_hits + self.stats.hot_misses;
        if looked == 0 {
            0.0
        } else {
            self.stats.hot_hits as f64 / looked as f64
        }
    }
}

/// Long-lived key material, regenerated per churn epoch.
enum Material {
    Pke(KeyPair),
    Kem(KemKeyPair),
    Sig(SigningKey),
}

/// splitmix64 — derives independent key-epoch seeds from the run seed.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Generates the deterministic protocol-op stream.
///
/// Key material (PKE/KEM key pairs, signing keys, the SHE evaluation
/// operand, the hot raw-`a` operand) lives in per-`(family, degree,
/// epoch)` pools, where the epoch advances every `key_churn` ops
/// (never, when 0). Everything else — messages, encryption randomness,
/// entropy, signatures under test — is fresh per op. Deterministic in
/// all arguments.
///
/// # Panics
///
/// Panics when `degrees` is empty, a degree has no paper parameter
/// set, or (with a `wide` family in the mix) no RNS basis is
/// discoverable at a requested degree.
pub fn generate_protocol_ops(
    seed: u64,
    ops: usize,
    degrees: &[usize],
    mix: &ProtocolMix,
    key_churn: usize,
) -> Vec<ProtocolJob> {
    assert!(!degrees.is_empty(), "need at least one degree");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ntts: HashMap<usize, (ParamSet, NttMultiplier)> = HashMap::new();
    for &n in degrees {
        let params = ParamSet::for_degree(n).expect("paper degree");
        let ntt = NttMultiplier::new(&params).expect("paper parameters");
        ntts.insert(n, (params, ntt));
    }
    let mut bases: HashMap<usize, RnsBasis> = HashMap::new();
    // family code → Material pools; separate maps keep borrows simple.
    let mut pools: HashMap<(u8, usize, u64), Material> = HashMap::new();
    let mut hot_a: HashMap<(usize, u64), ntt::poly::Polynomial> = HashMap::new();
    let mut she_plain: HashMap<(usize, u64), ntt::poly::Polynomial> = HashMap::new();

    (0..ops)
        .map(|i| {
            let epoch = i.checked_div(key_churn).unwrap_or(0) as u64;
            let kind = mix.draw(&mut rng);
            let n = degrees[rng.gen_range(0..degrees.len())];
            let (params, ntt) = &ntts[&n];
            let fresh: u64 = rng.gen();
            let fresh_bits =
                |rng: &mut StdRng| -> Vec<u8> { (0..n).map(|_| rng.gen_range(0..2u8)).collect() };
            let key_seed = |family: u8| -> u64 {
                mix64(seed ^ mix64(epoch ^ (u64::from(family) << 40) ^ ((n as u64) << 8)))
            };
            let pke = |pools: &mut HashMap<(u8, usize, u64), Material>| -> KeyPair {
                let m = pools.entry((0, n, epoch)).or_insert_with(|| {
                    Material::Pke(KeyPair::generate(params, ntt, key_seed(0)).expect("pke keygen"))
                });
                match m {
                    Material::Pke(kp) => kp.clone(),
                    _ => unreachable!("family 0 holds PKE pairs"),
                }
            };
            match kind {
                ProtocolKind::Mul => {
                    let a = hot_a
                        .entry((n, epoch))
                        .or_insert_with(|| {
                            let mut kr = sampling::seeded_rng(key_seed(3));
                            sampling::uniform(params, &mut kr)
                        })
                        .clone();
                    let b = sampling::uniform(params, &mut rng);
                    ProtocolJob::Mul { a, b }
                }
                ProtocolKind::WideMul => {
                    let basis = bases
                        .entry(n)
                        .or_insert_with(|| {
                            RnsBasis::discover(n, 2, 1 << 20).expect("discoverable basis")
                        })
                        .clone();
                    let big_q = basis.modulus();
                    let draw = |rng: &mut StdRng| -> Vec<u128> {
                        (0..n).map(|_| rng.gen::<u128>() % big_q).collect()
                    };
                    let a = draw(&mut rng);
                    let b = draw(&mut rng);
                    ProtocolJob::WideMul { a, b, basis }
                }
                ProtocolKind::KeyGen => ProtocolJob::KeyGen {
                    params: *params,
                    seed: fresh,
                },
                ProtocolKind::PkeEncrypt => ProtocolJob::PkeEncrypt {
                    pk: pke(&mut pools).public().clone(),
                    bits: fresh_bits(&mut rng),
                    seed: fresh,
                },
                ProtocolKind::PkeDecrypt => {
                    let kp = pke(&mut pools);
                    let ct = kp
                        .public()
                        .encrypt_bits(&fresh_bits(&mut rng), ntt, fresh)
                        .expect("host encrypt");
                    ProtocolJob::PkeDecrypt {
                        sk: kp.secret().clone(),
                        ct,
                    }
                }
                ProtocolKind::Encaps | ProtocolKind::Decaps => {
                    let m = pools.entry((1, n, epoch)).or_insert_with(|| {
                        Material::Kem(
                            KemKeyPair::generate(params, ntt, key_seed(1)).expect("kem keygen"),
                        )
                    });
                    let keys = match m {
                        Material::Kem(kp) => kp.clone(),
                        _ => unreachable!("family 1 holds KEM pairs"),
                    };
                    if kind == ProtocolKind::Encaps {
                        ProtocolJob::Encaps {
                            pk: keys.public().clone(),
                            entropy: fresh,
                        }
                    } else {
                        let enc =
                            kem::encapsulate(keys.public(), ntt, fresh).expect("host encapsulate");
                        ProtocolJob::Decaps {
                            keys: Box::new(keys),
                            ct: enc.ciphertext,
                        }
                    }
                }
                ProtocolKind::SheMul => {
                    let kp = pke(&mut pools);
                    let ct = rlwe::she::encrypt(&kp, &fresh_bits(&mut rng), ntt, fresh)
                        .expect("host she encrypt");
                    let plain = she_plain
                        .entry((n, epoch))
                        .or_insert_with(|| {
                            let mut kr = sampling::seeded_rng(key_seed(4));
                            sampling::uniform(params, &mut kr)
                        })
                        .clone();
                    ProtocolJob::SheMul { ct, plain }
                }
                ProtocolKind::Sign | ProtocolKind::Verify => {
                    let m = pools.entry((2, n, epoch)).or_insert_with(|| {
                        Material::Sig(
                            SigningKey::generate(params, ntt, key_seed(2)).expect("sig keygen"),
                        )
                    });
                    let key = match m {
                        Material::Sig(k) => k.clone(),
                        _ => unreachable!("family 2 holds signing keys"),
                    };
                    let message: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
                    if kind == ProtocolKind::Sign {
                        ProtocolJob::Sign {
                            key: Box::new(key),
                            message,
                            seed: fresh,
                        }
                    } else {
                        let (signature, _) = key.sign(&message, ntt, fresh).expect("host sign");
                        ProtocolJob::Verify {
                            key: key.verify_key(),
                            message,
                            signature,
                        }
                    }
                }
            }
        })
        .collect()
}

/// Runs the protocol load generator: generates the seeded op stream,
/// serves it closed-loop through [`Service::submit_protocol`], drains
/// the service, and (optionally) bit-compares every output against
/// [`ProtocolJob::run_direct`].
pub fn run_protocols(config: &ProtoLoadgenConfig) -> ProtoLoadgenReport {
    let jobs = generate_protocol_ops(
        config.seed,
        config.ops,
        &config.degrees,
        &config.mix,
        config.key_churn,
    );
    let kinds: Vec<ProtocolKind> = jobs.iter().map(ProtocolJob::kind).collect();
    let expected: Vec<Option<ProtocolOutput>> = if config.verify_direct {
        jobs.iter()
            .map(|j| Some(j.run_direct().expect("direct execution")))
            .collect()
    } else {
        vec![None; jobs.len()]
    };

    let service = Service::start(config.service.clone());
    let results: Mutex<Vec<Option<ProtocolOutput>>> = Mutex::new(vec![None; jobs.len()]);
    let failed = Mutex::new(vec![false; jobs.len()]);
    let clients = config.clients.max(1);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let jobs = &jobs;
            let service = &service;
            let results = &results;
            let failed = &failed;
            scope.spawn(move || {
                let mut local: Vec<(usize, Option<ProtocolOutput>)> = Vec::new();
                for (i, job) in jobs.iter().enumerate().skip(c).step_by(clients) {
                    let outcome = service
                        .submit_protocol(job.clone())
                        .ok()
                        .and_then(|t| t.wait().ok())
                        .map(|done| done.output);
                    local.push((i, outcome));
                }
                let mut results = results.lock().expect("results");
                let mut failed = failed.lock().expect("failed flags");
                for (i, outcome) in local {
                    match outcome {
                        Some(out) => results[i] = Some(out),
                        None => failed[i] = true,
                    }
                }
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let stats = service.shutdown();

    let results = results.into_inner().expect("results");
    let failed_flags = failed.into_inner().expect("failed flags");
    let mut per_kind: Vec<ProtoKindReport> = Vec::new();
    fn lane(per_kind: &mut Vec<ProtoKindReport>, k: ProtocolKind) -> &mut ProtoKindReport {
        if let Some(pos) = per_kind.iter().position(|r| r.kind == k) {
            return &mut per_kind[pos];
        }
        per_kind.push(ProtoKindReport {
            kind: k,
            ops: 0,
            ok: 0,
            failed: 0,
            mismatches: 0,
        });
        per_kind.last_mut().expect("just pushed")
    }
    for (i, kind) in kinds.iter().enumerate() {
        let r = lane(&mut per_kind, *kind);
        r.ops += 1;
        if failed_flags[i] {
            r.failed += 1;
        } else if let Some(out) = &results[i] {
            r.ok += 1;
            if let Some(want) = &expected[i] {
                if out != want {
                    r.mismatches += 1;
                }
            }
        }
    }
    per_kind.sort_by_key(|r| r.kind as u8);
    let (ok, failed, mismatches) = per_kind.iter().fold((0, 0, 0), |acc, r| {
        (acc.0 + r.ok, acc.1 + r.failed, acc.2 + r.mismatches)
    });
    ProtoLoadgenReport {
        ops: jobs.len(),
        ok,
        failed,
        mismatches,
        wall_s,
        throughput: if wall_s > 0.0 {
            ok as f64 / wall_s
        } else {
            0.0
        },
        per_kind,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mix_parses_families_and_rejects_garbage() {
        let mix = ProtocolMix::parse("kem:40,sign:30,she:20,mul:10").expect("canonical");
        assert_eq!(mix, ProtocolMix::standard());
        let kinds = mix.kinds();
        for k in [
            ProtocolKind::Encaps,
            ProtocolKind::Decaps,
            ProtocolKind::Sign,
            ProtocolKind::Verify,
            ProtocolKind::SheMul,
            ProtocolKind::Mul,
        ] {
            assert!(kinds.contains(&k), "{k} in canonical mix");
        }
        assert!(!kinds.contains(&ProtocolKind::KeyGen));
        // Exact kind names address single kinds.
        let narrow = ProtocolMix::parse("encaps:1").expect("single kind");
        assert_eq!(narrow.kinds(), vec![ProtocolKind::Encaps]);
        for bad in ["", "kem", "kem:0", "kem:x", "dilithium:3", "kem:1,kem:2"] {
            assert!(ProtocolMix::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn op_stream_is_deterministic_and_churn_rotates_keys() {
        let mix = ProtocolMix::parse("encaps:1").expect("mix");
        let a = generate_protocol_ops(9, 12, &[256], &mix, 0);
        let b = generate_protocol_ops(9, 12, &[256], &mix, 0);
        assert_eq!(a.len(), 12);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.kind(), y.kind());
            assert_eq!(
                x.run_direct().expect("direct"),
                y.run_direct().expect("direct"),
                "same config, same stream"
            );
        }
        let pk_of = |j: &ProtocolJob| match j {
            ProtocolJob::Encaps { pk, .. } => pk.clone(),
            _ => panic!("encaps-only mix"),
        };
        // churn 0: one public key for the whole run; fresh entropy only.
        let first = pk_of(&a[0]);
        assert!(a.iter().all(|j| pk_of(j) == first), "keys reused");
        let entropies: std::collections::HashSet<u64> = a
            .iter()
            .map(|j| match j {
                ProtocolJob::Encaps { entropy, .. } => *entropy,
                _ => unreachable!(),
            })
            .collect();
        assert!(entropies.len() > 1, "per-op randomness stays fresh");
        // churn 4: a new key every 4 ops.
        let churned = generate_protocol_ops(9, 12, &[256], &mix, 4);
        let distinct: Vec<_> = churned.iter().map(pk_of).fold(Vec::new(), |mut acc, pk| {
            if !acc.contains(&pk) {
                acc.push(pk);
            }
            acc
        });
        assert_eq!(distinct.len(), 3, "12 ops / churn 4 = 3 key epochs");
    }

    #[test]
    fn mixed_run_is_clean_and_reused_keys_hit_the_cache() {
        let reuse = run_protocols(&ProtoLoadgenConfig {
            seed: 21,
            ops: 32,
            degrees: vec![256],
            mix: ProtocolMix::standard(),
            key_churn: 0,
            clients: 3,
            service: ServiceConfig {
                workers: 2,
                linger: Duration::from_micros(200),
                hot_capacity: 32,
                ..ServiceConfig::default()
            },
            verify_direct: true,
        });
        assert!(reuse.is_clean(), "{reuse:?}");
        assert_eq!(reuse.ok, 32);
        assert!(
            reuse.stats.hot_hits > 0,
            "reused keys hit: {:?}",
            reuse.stats
        );
        let lanes: Vec<&str> = reuse
            .stats
            .protocol
            .iter()
            .filter(|l| l.submitted > 0)
            .map(|l| l.kind)
            .collect();
        for kind in ["encaps", "sign", "she_mul", "mul"] {
            assert!(lanes.contains(&kind), "kind {kind} served; lanes {lanes:?}");
        }
        for lane in &reuse.stats.protocol {
            assert_eq!(
                lane.completed + lane.failed,
                lane.submitted,
                "{}",
                lane.kind
            );
            if lane.completed > 0 {
                assert!(lane.p50_us > 0.0, "{} latency recorded", lane.kind);
            }
        }
        // Same stream shape under full key churn: still clean, but the
        // cache hit rate collapses relative to reuse.
        let churn = run_protocols(&ProtoLoadgenConfig {
            seed: 21,
            ops: 32,
            degrees: vec![256],
            mix: ProtocolMix::standard(),
            key_churn: 1,
            clients: 3,
            service: ServiceConfig {
                workers: 2,
                linger: Duration::from_micros(200),
                hot_capacity: 32,
                ..ServiceConfig::default()
            },
            verify_direct: true,
        });
        assert!(churn.is_clean(), "{churn:?}");
        assert!(
            reuse.hot_hit_rate() > churn.hot_hit_rate(),
            "reuse {:.3} must beat churn {:.3}",
            reuse.hot_hit_rate(),
            churn.hot_hit_rate()
        );
    }
}

//! Typed failures of the serving layer.
//!
//! Admission failures ([`ServiceError::Overloaded`],
//! [`ServiceError::ShuttingDown`], [`ServiceError::UnsupportedJob`]) are
//! returned synchronously from [`crate::Service::submit`]; execution
//! failures surface asynchronously through
//! [`crate::JobTicket::wait`] wrapped as [`ServiceError::Pim`].

use pim::PimError;
use std::fmt;

/// Errors produced by the job scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded admission queue is full and the service runs the
    /// [`crate::Backpressure::Reject`] policy. The job was **not**
    /// admitted; the caller may retry later.
    Overloaded {
        /// Configured admission-queue capacity (jobs).
        capacity: usize,
    },
    /// The service is draining for shutdown and admits no new jobs.
    ShuttingDown,
    /// The job's `(n, q)` pair has no accelerator configuration (the
    /// degree is outside the paper table, or the modulus does not match
    /// the paper's assignment for that degree).
    UnsupportedJob {
        /// Degree of the submitted pair.
        n: usize,
        /// Modulus of the submitted pair.
        q: u64,
    },
    /// The operands of one submitted pair disagree in degree.
    PairMismatch {
        /// Degree of the left operand.
        left: usize,
        /// Degree of the right operand.
        right: usize,
    },
    /// An accelerator-level failure while executing the formed batch.
    Pim(PimError),
    /// [`crate::JobTicket::wait_timeout`] gave up before the job
    /// completed. The job is still queued or executing — the ticket
    /// stays valid and a later wait can still collect the result. This
    /// is what lets a network front end bound how long one job may
    /// occupy a connection-handler thread.
    WaitTimeout {
        /// The timeout that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// Residue checking flagged the job's product as corrupt on every
    /// one of its execution attempts
    /// ([`crate::ServiceConfig::max_attempts`]). The corrupt products
    /// were discarded — a wrong answer is never returned — and the
    /// faulting bank is a quarantine candidate. Note that a fully
    /// quarantined fleet surfaces as [`ServiceError::Overloaded`], not
    /// as this variant: the job was refused, not executed.
    FaultUnrecovered {
        /// Bank that executed (and corrupted) the final attempt.
        bank: u32,
        /// Attempts consumed before giving up.
        attempts: u32,
    },
    /// One residue lane of a wide (RNS-decomposed) job failed; the
    /// parent ticket fails as a whole but the error names the lane so
    /// callers can see *which* residue channel broke. Sibling lanes are
    /// unaffected — a corrupt lane retries or fails alone.
    WideLane {
        /// Index of the failed residue lane (basis order).
        lane: usize,
        /// The lane's residue modulus.
        q: u64,
        /// The lane's underlying failure.
        error: Box<ServiceError>,
    },
    /// One NTT-multiply node of a protocol job graph failed; the parent
    /// [`crate::ProtocolTicket`] fails as a whole but the error names
    /// the node (in the op's multiply order) so callers can see *which*
    /// inner product broke. A detected fault in a node retries that
    /// node alone through the ordinary batch machinery — this variant
    /// surfaces only when the node itself failed terminally.
    ProtocolNode {
        /// Index of the failed multiply node within the protocol op.
        node: usize,
        /// The node's coefficient modulus.
        q: u64,
        /// The node's underlying failure.
        error: Box<ServiceError>,
    },
    /// A host-side step of a protocol op failed (rejection-sampling
    /// exhaustion, a ring too small for the KEM message, an operand
    /// mismatch inside the op) — nothing was wrong with the accelerator
    /// path.
    ProtocolHost {
        /// Human-readable description of the host-op failure.
        detail: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded { capacity } => {
                write!(f, "admission queue full ({capacity} jobs); job rejected")
            }
            ServiceError::ShuttingDown => {
                write!(f, "service is shutting down; job rejected")
            }
            ServiceError::UnsupportedJob { n, q } => {
                write!(f, "no accelerator configuration for n = {n}, q = {q}")
            }
            ServiceError::PairMismatch { left, right } => {
                write!(f, "pair operand degrees differ: {left} vs {right}")
            }
            ServiceError::Pim(e) => write!(f, "accelerator failure: {e}"),
            ServiceError::WaitTimeout { timeout_ms } => {
                write!(
                    f,
                    "job not complete within {timeout_ms} ms; ticket still valid"
                )
            }
            ServiceError::FaultUnrecovered { bank, attempts } => {
                write!(
                    f,
                    "corrupt product on bank {bank} persisted through {attempts} attempts; result discarded"
                )
            }
            ServiceError::WideLane { lane, q, error } => {
                write!(f, "wide job residue lane {lane} (q = {q}) failed: {error}")
            }
            ServiceError::ProtocolNode { node, q, error } => {
                write!(f, "protocol graph node {node} (q = {q}) failed: {error}")
            }
            ServiceError::ProtocolHost { detail } => {
                write!(f, "protocol host op failed: {detail}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Pim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PimError> for ServiceError {
    fn from(e: PimError) -> Self {
        ServiceError::Pim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(ServiceError::Overloaded { capacity: 8 }
            .to_string()
            .contains("8 jobs"));
        assert!(ServiceError::ShuttingDown.to_string().contains("shutting"));
        assert!(ServiceError::UnsupportedJob { n: 100, q: 17 }
            .to_string()
            .contains("n = 100"));
        assert!(ServiceError::PairMismatch { left: 4, right: 8 }
            .to_string()
            .contains("4 vs 8"));
        assert!(ServiceError::Pim(PimError::EmptyBatch)
            .to_string()
            .contains("zero jobs"));
        assert!(ServiceError::WaitTimeout { timeout_ms: 250 }
            .to_string()
            .contains("250 ms"));
        assert!(ServiceError::FaultUnrecovered {
            bank: 3,
            attempts: 2
        }
        .to_string()
        .contains("bank 3"));
        let wide = ServiceError::WideLane {
            lane: 2,
            q: 40961,
            error: Box::new(ServiceError::ShuttingDown),
        };
        assert!(wide.to_string().contains("lane 2"));
        assert!(wide.to_string().contains("40961"));
        let node = ServiceError::ProtocolNode {
            node: 1,
            q: 12289,
            error: Box::new(ServiceError::FaultUnrecovered {
                bank: 0,
                attempts: 3,
            }),
        };
        assert!(node.to_string().contains("node 1"));
        assert!(node.to_string().contains("12289"));
        assert!(node.to_string().contains("bank 0"));
        assert!(ServiceError::ProtocolHost {
            detail: "rejection sampling exhausted".into()
        }
        .to_string()
        .contains("rejection sampling"));
    }

    #[test]
    fn pim_source_is_chained() {
        use std::error::Error;
        let e = ServiceError::Pim(PimError::EmptyBatch);
        assert!(e.source().is_some());
        assert!(ServiceError::ShuttingDown.source().is_none());
    }
}

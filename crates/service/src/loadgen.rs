//! Deterministic open- and closed-loop load generation against a
//! [`Service`], with bit-exact verification against the direct engine
//! path.
//!
//! The job stream is derived entirely from a seed (degrees drawn from a
//! configured mix, coefficients from the workspace's deterministic
//! `rand` shim), so two runs with the same seed submit identical work —
//! the wall-clock numbers vary with the host, the products never do.
//! [`run`] optionally replays the same jobs one-at-a-time through
//! [`CryptoPim::multiply`] to (a) verify every service product
//! bit-for-bit and (b) measure the serving layer's throughput win over
//! unbatched, unscheduled submission.

use crate::scheduler::{Service, ServiceConfig};
use crate::stats::ServiceStats;
use cryptopim::accelerator::CryptoPim;
use cryptopim::phase::{self, PhaseSnapshot};
use modmath::crt::RnsBasis;
use modmath::params::ParamSet;
use ntt::poly::Polynomial;
use ntt::rns::RnsMultiplier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How jobs arrive at the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// `clients` threads each keep exactly one job outstanding
    /// (submit → wait → repeat): throughput-oriented, never overloads.
    Closed {
        /// Concurrent client threads.
        clients: usize,
    },
    /// One submitter paces jobs at a fixed arrival rate regardless of
    /// completions: latency/overload-oriented (pair with
    /// [`crate::Backpressure::Reject`] to measure shed load).
    Open {
        /// Target arrivals per second.
        rate_per_s: f64,
    },
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Seed for the deterministic job stream.
    pub seed: u64,
    /// Total jobs to generate.
    pub jobs: usize,
    /// Degree mix; each job draws uniformly from this set.
    pub degrees: Vec<usize>,
    /// When non-zero, every job's `a` operand is drawn from a pool of
    /// this many reused seeded keys (a protocol-shaped workload: many
    /// ciphertexts against few public/evaluation keys) instead of being
    /// freshly random. Pair with [`ServiceConfig::hot_capacity`] to
    /// exercise the hot-operand transform cache; `b` stays fresh per
    /// job either way.
    pub hot_keys: usize,
    /// Arrival process.
    pub mode: LoadMode,
    /// Service under test.
    pub service: ServiceConfig,
    /// Also run the direct one-at-a-time baseline and bit-compare every
    /// product against it.
    pub verify_direct: bool,
    /// Fraction of the job stream submitted as **wide** RNS-decomposed
    /// jobs (`0.0..=1.0`). Wide jobs multiply under the product of
    /// [`LoadgenConfig::wide_channels`] discovered NTT-friendly primes
    /// and flow through [`Service::submit_wide`], so their residue
    /// lanes batch alongside the narrow traffic. `0.0` disables the
    /// blend and preserves the legacy narrow-only stream byte-for-byte.
    pub wide: f64,
    /// Residue channels (`k`) for wide jobs; 2..=4.
    pub wide_channels: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            seed: 7,
            jobs: 256,
            degrees: vec![256, 512, 1024],
            hot_keys: 0,
            mode: LoadMode::Closed { clients: 4 },
            service: ServiceConfig::default(),
            verify_direct: true,
            wide: 0.0,
            wide_channels: 2,
        }
    }
}

/// Outcome of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Jobs generated.
    pub jobs: usize,
    /// How many of them were wide (RNS-decomposed) jobs.
    pub wide_jobs: usize,
    /// Tickets that resolved to a product.
    pub ok: usize,
    /// Jobs refused at admission (Reject backpressure).
    pub rejected: usize,
    /// Tickets that resolved to an execution error.
    pub failed: usize,
    /// Service products that differed from the direct engine path
    /// (must be 0; checked only when `verify_direct`).
    pub mismatches: usize,
    /// Admitted jobs that never completed (must be 0 after drain).
    pub dropped: u64,
    /// Wall-clock of the service run, seconds.
    pub wall_s: f64,
    /// Completed multiplications per second through the service.
    pub throughput: f64,
    /// Wall-clock of the direct one-at-a-time baseline, seconds
    /// (0 when not measured).
    pub direct_wall_s: f64,
    /// Multiplications per second issuing jobs one-at-a-time through
    /// `CryptoPim::multiply` (0 when not measured).
    pub direct_throughput: f64,
    /// `throughput / direct_throughput` (0 when not measured).
    pub speedup: f64,
    /// Final service statistics (post-drain).
    pub stats: ServiceStats,
    /// Per-phase time accumulated inside the service measurement
    /// windows: simulated engine vs referee transform / pointwise /
    /// compare (all zero under `CheckPolicy::Disabled` except the
    /// engine).
    pub phase: PhaseSnapshot,
    /// The same split for the direct one-at-a-time baseline windows
    /// (zero when the baseline is not measured).
    pub direct_phase: PhaseSnapshot,
}

impl LoadgenReport {
    /// True when no product mismatched and no admitted job was dropped.
    pub fn is_clean(&self) -> bool {
        self.mismatches == 0 && self.dropped == 0 && self.failed == 0
    }
}

/// Generates the deterministic job stream for `(seed, jobs, degrees)`.
pub fn generate_jobs(seed: u64, jobs: usize, degrees: &[usize]) -> Vec<(Polynomial, Polynomial)> {
    assert!(!degrees.is_empty(), "need at least one degree");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..jobs)
        .map(|_| {
            let n = degrees[rng.gen_range(0..degrees.len())];
            let q = ParamSet::for_degree(n).expect("paper degree").q;
            let mut draw = || -> Vec<u64> { (0..n).map(|_| rng.gen_range(0..q)).collect() };
            let (ca, cb) = (draw(), draw());
            let a = Polynomial::from_coeffs(ca, q).expect("in-range coeffs");
            let b = Polynomial::from_coeffs(cb, q).expect("in-range coeffs");
            (a, b)
        })
        .collect()
}

/// Generates a job stream whose `a` operands are drawn from a pool of
/// `hot_keys` reused seeded keys (each pool entry fixes its degree when
/// drawn); `b` is fresh per job. Deterministic in `(seed, jobs,
/// degrees, hot_keys)` like [`generate_jobs`].
pub fn generate_hot_jobs(
    seed: u64,
    jobs: usize,
    degrees: &[usize],
    hot_keys: usize,
) -> Vec<(Polynomial, Polynomial)> {
    assert!(!degrees.is_empty(), "need at least one degree");
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<Polynomial> = (0..hot_keys.max(1))
        .map(|_| {
            let n = degrees[rng.gen_range(0..degrees.len())];
            let q = ParamSet::for_degree(n).expect("paper degree").q;
            let coeffs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            Polynomial::from_coeffs(coeffs, q).expect("in-range coeffs")
        })
        .collect();
    (0..jobs)
        .map(|_| {
            let a = pool[rng.gen_range(0..pool.len())].clone();
            let (n, q) = (a.degree_bound(), a.modulus());
            let coeffs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            let b = Polynomial::from_coeffs(coeffs, q).expect("in-range coeffs");
            (a, b)
        })
        .collect()
}

/// One job of a mixed narrow/wide stream.
#[derive(Debug, Clone, PartialEq)]
pub enum GenJob {
    /// A single-modulus pair served by [`Service::submit`].
    Narrow(Polynomial, Polynomial),
    /// A wide-modulus pair served by [`Service::submit_wide`];
    /// coefficients are canonical residues modulo the run's
    /// [`RnsBasis::modulus`].
    Wide(Vec<u128>, Vec<u128>),
}

/// A resolved product of either stream half.
#[derive(Debug, Clone, PartialEq)]
enum ProductVal {
    Narrow(Polynomial),
    Wide(Vec<u128>),
}

/// Generates a mixed narrow/wide stream: each job first rolls whether
/// it is wide (probability `wide`, seeded), then draws its degree and
/// coefficients. Deterministic in every argument; `wide = 0.0` yields
/// exactly the legacy [`generate_jobs`] / [`generate_hot_jobs`] stream.
pub fn generate_mixed_jobs(
    seed: u64,
    jobs: usize,
    degrees: &[usize],
    hot_keys: usize,
    wide: f64,
    basis: &RnsBasis,
) -> Vec<GenJob> {
    if wide <= 0.0 {
        let narrow = if hot_keys > 0 {
            generate_hot_jobs(seed, jobs, degrees, hot_keys)
        } else {
            generate_jobs(seed, jobs, degrees)
        };
        return narrow
            .into_iter()
            .map(|(a, b)| GenJob::Narrow(a, b))
            .collect();
    }
    assert!(!degrees.is_empty(), "need at least one degree");
    let wide_permille = (wide.clamp(0.0, 1.0) * 1000.0).round() as u64;
    let q_wide = basis.modulus();
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<Polynomial> = (0..hot_keys)
        .map(|_| {
            let n = degrees[rng.gen_range(0..degrees.len())];
            let q = ParamSet::for_degree(n).expect("paper degree").q;
            let coeffs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
            Polynomial::from_coeffs(coeffs, q).expect("in-range coeffs")
        })
        .collect();
    (0..jobs)
        .map(|_| {
            if rng.gen_range(0..1000u64) < wide_permille {
                let n = degrees[rng.gen_range(0..degrees.len())];
                let mut draw = |_: usize| -> Vec<u128> {
                    (0..n).map(|_| rng.gen::<u128>() % q_wide).collect()
                };
                GenJob::Wide(draw(0), draw(1))
            } else if !pool.is_empty() {
                let a = pool[rng.gen_range(0..pool.len())].clone();
                let (n, q) = (a.degree_bound(), a.modulus());
                let coeffs: Vec<u64> = (0..n).map(|_| rng.gen_range(0..q)).collect();
                GenJob::Narrow(a, Polynomial::from_coeffs(coeffs, q).expect("in-range"))
            } else {
                let n = degrees[rng.gen_range(0..degrees.len())];
                let q = ParamSet::for_degree(n).expect("paper degree").q;
                let mut draw = || -> Vec<u64> { (0..n).map(|_| rng.gen_range(0..q)).collect() };
                let (ca, cb) = (draw(), draw());
                GenJob::Narrow(
                    Polynomial::from_coeffs(ca, q).expect("in-range"),
                    Polynomial::from_coeffs(cb, q).expect("in-range"),
                )
            }
        })
        .collect()
}

/// Chunks the stream is split into when racing the direct baseline:
/// service and direct alternate per chunk so slow host-speed drift
/// (frequency ramp, neighbour steal) lands evenly on both sides.
const MEASURE_CHUNKS: usize = 4;

/// Runs the load generator: submits the seeded job stream under the
/// configured arrival process, drains the service, and (optionally)
/// verifies and races the direct path.
///
/// When the direct baseline is enabled the two sides are measured as
/// alternating chunks over the same stream — a service chunk, then the
/// identical chunk one-at-a-time — rather than as two back-to-back
/// phases, so neither side systematically collects the warmer half of
/// the run.
pub fn run(config: &LoadgenConfig) -> LoadgenReport {
    let basis = if config.wide > 0.0 {
        // One basis serves every degree in the mix: primes found
        // NTT-friendly at the largest degree satisfy `2n | q - 1` at
        // every smaller power of two too.
        let n_max = config.degrees.iter().copied().max().expect("degrees");
        RnsBasis::discover(n_max, config.wide_channels, 1 << 20).expect("discoverable basis")
    } else {
        RnsBasis::new(&[7681, 12289]).expect("static basis")
    };
    let jobs = generate_mixed_jobs(
        config.seed,
        config.jobs,
        &config.degrees,
        config.hot_keys,
        config.wide,
        &basis,
    );
    let wide_jobs = jobs
        .iter()
        .filter(|j| matches!(j, GenJob::Wide(..)))
        .count();
    let service = Service::start(config.service.clone());
    let results: Mutex<Vec<Option<Result<ProductVal, ()>>>> = Mutex::new(vec![None; jobs.len()]);
    let rejected = Mutex::new(0usize);

    let serve_one = |job: &GenJob| -> Option<Result<ProductVal, ()>> {
        match job {
            GenJob::Narrow(a, b) => match service.submit(a.clone(), b.clone()) {
                Ok(ticket) => Some(match ticket.wait() {
                    Ok(done) => Ok(ProductVal::Narrow(done.product)),
                    Err(_) => Err(()),
                }),
                Err(_) => None,
            },
            GenJob::Wide(a, b) => match service.submit_wide(a, b, &basis) {
                Ok(ticket) => Some(match ticket.wait() {
                    Ok(done) => Ok(ProductVal::Wide(done.product)),
                    Err(_) => Err(()),
                }),
                Err(_) => None,
            },
        }
    };

    let serve_slice = |lo: usize, hi: usize| match config.mode {
        LoadMode::Closed { clients } => {
            let clients = clients.max(1);
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let slice = &jobs[lo..hi];
                    let results = &results;
                    let rejected = &rejected;
                    let serve_one = &serve_one;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        let mut shed = 0usize;
                        for (j, job) in slice.iter().enumerate().skip(c).step_by(clients) {
                            let outcome = serve_one(job);
                            if outcome.is_none() {
                                shed += 1;
                            }
                            local.push((lo + j, outcome));
                        }
                        // One lock per client per slice keeps result
                        // bookkeeping off the per-job timed path.
                        let mut results = results.lock().expect("results");
                        for (i, outcome) in local {
                            results[i] = outcome;
                        }
                        *rejected.lock().expect("rejected count") += shed;
                    });
                }
            });
        }
        LoadMode::Open { rate_per_s } => {
            let interval = Duration::from_secs_f64(1.0 / rate_per_s.max(1e-3));
            let slice_start = Instant::now();
            enum Pending {
                Narrow(crate::scheduler::JobTicket),
                Wide(crate::scheduler::WideTicket),
            }
            let mut tickets = Vec::with_capacity(hi - lo);
            for (j, job) in jobs[lo..hi].iter().enumerate() {
                let target = slice_start + interval * j as u32;
                if let Some(sleep) = target.checked_duration_since(Instant::now()) {
                    std::thread::sleep(sleep);
                }
                let admitted = match job {
                    GenJob::Narrow(a, b) => service
                        .submit(a.clone(), b.clone())
                        .map(Pending::Narrow)
                        .ok(),
                    GenJob::Wide(a, b) => service.submit_wide(a, b, &basis).map(Pending::Wide).ok(),
                };
                match admitted {
                    Some(t) => tickets.push((lo + j, t)),
                    None => *rejected.lock().expect("rejected count") += 1,
                }
            }
            let mut results = results.lock().expect("results");
            for (i, ticket) in tickets {
                let outcome = match ticket {
                    Pending::Narrow(t) => match t.wait() {
                        Ok(done) => Ok(ProductVal::Narrow(done.product)),
                        Err(_) => Err(()),
                    },
                    Pending::Wide(t) => match t.wait() {
                        Ok(done) => Ok(ProductVal::Wide(done.product)),
                        Err(_) => Err(()),
                    },
                };
                results[i] = Some(outcome);
            }
        }
    };

    let mut wall_s = 0.0;
    let (mut direct_wall_s, mut direct_throughput) = (0.0, 0.0);
    let mut service_phase = PhaseSnapshot::default();
    let mut direct_phase = PhaseSnapshot::default();
    let mut direct: Vec<ProductVal> = Vec::new();
    if config.verify_direct {
        // The baseline runs under the *same* check policy as the
        // service, so the speedup compares like with like (a checked
        // service against an unchecked baseline would fold the referee
        // cost into the scheduling comparison). Wide jobs baseline
        // against the sequential residue loop — one lane after another
        // through the same basis — which is exactly the fleet-sharding
        // comparison the RNS pipeline exists to win.
        let mut accelerators: HashMap<usize, CryptoPim> = HashMap::new();
        let mut sequential: HashMap<usize, RnsMultiplier> = HashMap::new();
        for &n in &config.degrees {
            let p = ParamSet::for_degree(n).expect("paper degree");
            accelerators.insert(
                n,
                CryptoPim::new(&p)
                    .expect("paper parameters")
                    .with_check(config.service.check),
            );
            if wide_jobs > 0 {
                sequential.insert(
                    n,
                    RnsMultiplier::with_basis(n, basis.clone()).expect("basis fits degree"),
                );
            }
        }
        let chunk = jobs.len().div_ceil(MEASURE_CHUNKS).max(1);
        let mut lo = 0;
        while lo < jobs.len() {
            let hi = (lo + chunk).min(jobs.len());
            let before = phase::snapshot();
            let t = Instant::now();
            serve_slice(lo, hi);
            wall_s += t.elapsed().as_secs_f64();
            service_phase.add(&phase::snapshot().since(&before));
            let before = phase::snapshot();
            let t = Instant::now();
            direct.extend(jobs[lo..hi].iter().map(|job| {
                match job {
                    GenJob::Narrow(a, b) => ProductVal::Narrow(
                        accelerators[&a.degree_bound()]
                            .multiply_product(a, b)
                            .expect("direct multiply"),
                    ),
                    GenJob::Wide(a, b) => ProductVal::Wide(
                        sequential[&a.len()]
                            .multiply(a, b)
                            .expect("sequential residue loop"),
                    ),
                }
            }));
            direct_wall_s += t.elapsed().as_secs_f64();
            direct_phase.add(&phase::snapshot().since(&before));
            lo = hi;
        }
        direct_throughput = jobs.len() as f64 / direct_wall_s;
    } else {
        let before = phase::snapshot();
        let t = Instant::now();
        serve_slice(0, jobs.len());
        wall_s = t.elapsed().as_secs_f64();
        service_phase.add(&phase::snapshot().since(&before));
    }
    let stats = service.shutdown();

    let results = results.into_inner().expect("results");
    let rejected = rejected.into_inner().expect("rejected count");
    let ok = results.iter().filter(|r| matches!(r, Some(Ok(_)))).count();
    let failed = results
        .iter()
        .filter(|r| matches!(r, Some(Err(()))))
        .count();

    let mut mismatches = 0;
    for (r, d) in results.iter().zip(&direct) {
        if let Some(Ok(p)) = r {
            if p != d {
                mismatches += 1;
            }
        }
    }

    let throughput = ok as f64 / wall_s;
    LoadgenReport {
        jobs: jobs.len(),
        wide_jobs,
        ok,
        rejected,
        failed,
        mismatches,
        dropped: stats.admitted - stats.completed,
        wall_s,
        throughput,
        direct_wall_s,
        direct_throughput,
        speedup: if direct_throughput > 0.0 {
            throughput / direct_throughput
        } else {
            0.0
        },
        stats,
        phase: service_phase,
        direct_phase,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::Backpressure;

    #[test]
    fn job_stream_is_deterministic() {
        let a = generate_jobs(42, 20, &[256, 512]);
        let b = generate_jobs(42, 20, &[256, 512]);
        assert_eq!(a, b);
        let c = generate_jobs(43, 20, &[256, 512]);
        assert_ne!(a, c, "different seed, different stream");
        for (x, y) in &a {
            assert_eq!(x.degree_bound(), y.degree_bound());
            assert!([256, 512].contains(&x.degree_bound()));
        }
    }

    #[test]
    fn closed_loop_run_is_clean() {
        let report = run(&LoadgenConfig {
            seed: 11,
            jobs: 24,
            degrees: vec![256, 512],
            hot_keys: 0,
            mode: LoadMode::Closed { clients: 3 },
            service: ServiceConfig {
                workers: 2,
                linger: Duration::from_micros(200),
                ..ServiceConfig::default()
            },
            verify_direct: true,
            ..LoadgenConfig::default()
        });
        assert_eq!(report.ok, 24);
        assert!(report.is_clean(), "{report:?}");
        assert!(report.speedup > 0.0);
        assert_eq!(report.stats.admitted, 24);
        assert!(report.phase.engine_ns > 0, "service engine phase recorded");
        assert!(
            report.direct_phase.engine_ns > 0,
            "direct engine phase recorded"
        );
        // (No zero-assertions on the referee phases here: the counters
        // are process-wide, and a checked run in a sibling test thread
        // may legitimately bump them inside this window.)
    }

    #[test]
    fn mixed_stream_is_deterministic_and_blends_wide_jobs() {
        let basis = RnsBasis::discover(512, 3, 1 << 20).unwrap();
        let a = generate_mixed_jobs(42, 64, &[256, 512], 0, 0.5, &basis);
        assert_eq!(a, generate_mixed_jobs(42, 64, &[256, 512], 0, 0.5, &basis));
        let wide = a.iter().filter(|j| matches!(j, GenJob::Wide(..))).count();
        assert!(wide > 0 && wide < 64, "a genuine blend, got {wide}/64 wide");
        for job in &a {
            if let GenJob::Wide(x, y) = job {
                assert_eq!(x.len(), y.len());
                assert!(x.iter().all(|&c| c < basis.modulus()));
            }
        }
        // wide = 0.0 degenerates to the legacy narrow stream exactly.
        let legacy = generate_jobs(42, 20, &[256, 512]);
        let mixed = generate_mixed_jobs(42, 20, &[256, 512], 0, 0.0, &basis);
        for (old, new) in legacy.iter().zip(&mixed) {
            assert_eq!(GenJob::Narrow(old.0.clone(), old.1.clone()), *new);
        }
    }

    #[test]
    fn wide_blend_run_is_clean_and_bit_exact() {
        let report = run(&LoadgenConfig {
            seed: 23,
            jobs: 24,
            degrees: vec![256],
            hot_keys: 0,
            mode: LoadMode::Closed { clients: 3 },
            service: ServiceConfig {
                workers: 2,
                linger: Duration::from_micros(200),
                ..ServiceConfig::default()
            },
            verify_direct: true,
            wide: 0.4,
            wide_channels: 3,
        });
        assert_eq!(report.ok, 24);
        assert!(report.is_clean(), "{report:?}");
        assert!(report.wide_jobs > 0, "blend produced wide jobs");
        assert_eq!(report.stats.wide_submitted, report.wide_jobs as u64);
        assert_eq!(report.stats.wide_completed, report.wide_jobs as u64);
        assert_eq!(report.stats.wide_failed, 0);
        assert_eq!(
            report.stats.wide_latency_samples, report.wide_jobs as u64,
            "every wide job lands in the wide histogram"
        );
        assert!(report.stats.wide_p50_us > 0.0);
        // Each wide job admits 3 residue-lane jobs; narrow jobs admit 1.
        assert_eq!(
            report.stats.admitted as usize,
            (24 - report.wide_jobs) + 3 * report.wide_jobs
        );
    }

    #[test]
    fn recompute_checked_run_records_referee_phases() {
        let report = run(&LoadgenConfig {
            seed: 19,
            jobs: 16,
            degrees: vec![256],
            hot_keys: 0,
            mode: LoadMode::Closed { clients: 2 },
            service: ServiceConfig {
                workers: 2,
                linger: Duration::from_micros(200),
                check: cryptopim::check::CheckPolicy::Recompute,
                ..ServiceConfig::default()
            },
            verify_direct: true,
            ..LoadgenConfig::default()
        });
        assert!(report.is_clean(), "{report:?}");
        for (side, split) in [("service", &report.phase), ("direct", &report.direct_phase)] {
            assert!(split.engine_ns > 0, "{side}: engine phase");
            assert!(split.check_transform_ns > 0, "{side}: transform phase");
            assert!(split.check_pointwise_ns > 0, "{side}: pointwise phase");
            assert!(split.check_compare_ns > 0, "{side}: compare phase");
        }
    }

    #[test]
    fn hot_key_stream_reuses_operands_and_hits_the_cache() {
        let jobs = generate_hot_jobs(13, 32, &[256], 4);
        assert_eq!(jobs, generate_hot_jobs(13, 32, &[256], 4), "deterministic");
        let distinct: std::collections::HashSet<&[u64]> =
            jobs.iter().map(|(a, _)| a.coeffs()).collect();
        assert!(distinct.len() <= 4, "a drawn from a 4-key pool");

        let report = run(&LoadgenConfig {
            seed: 13,
            jobs: 32,
            degrees: vec![256],
            hot_keys: 4,
            mode: LoadMode::Closed { clients: 2 },
            service: ServiceConfig {
                workers: 1,
                linger: Duration::from_micros(200),
                check: cryptopim::check::CheckPolicy::Recompute,
                hot_capacity: 8,
                ..ServiceConfig::default()
            },
            verify_direct: true,
            ..LoadgenConfig::default()
        });
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.ok, 32);
        assert_eq!(report.mismatches, 0, "cached products stay bit-exact");
        assert!(
            report.stats.hot_hits > 0,
            "reused keys must hit the cache: {:?}",
            report.stats
        );
    }

    #[test]
    fn open_loop_reject_sheds_load_without_drops() {
        // Arrival rate far above what tiny queue + one worker can take:
        // some jobs must be rejected, but every admitted one completes.
        let report = run(&LoadgenConfig {
            seed: 5,
            jobs: 60,
            degrees: vec![256],
            hot_keys: 0,
            mode: LoadMode::Open { rate_per_s: 1e6 },
            service: ServiceConfig {
                workers: 1,
                queue_capacity: 4,
                backpressure: Backpressure::Reject,
                linger: Duration::from_millis(2),
                ..ServiceConfig::default()
            },
            verify_direct: false,
            ..LoadgenConfig::default()
        });
        assert_eq!(report.ok + report.rejected + report.failed, 60);
        assert_eq!(report.dropped, 0, "admitted jobs never vanish");
        assert_eq!(report.stats.rejected as usize, report.rejected);
    }
}

//! Service observability: counters, occupancy, and a fixed-bucket
//! latency histogram.
//!
//! The histogram uses power-of-two microsecond buckets (bucket `i`
//! covers `[2^i, 2^{i+1})` µs, with bucket 0 absorbing sub-µs jobs and
//! the last bucket absorbing everything past ~2147 s). Fixed buckets
//! keep recording O(1) and allocation-free on the worker hot path; the
//! price is that a reported percentile is the *upper bound* of its
//! bucket, i.e. conservative by at most 2×. That resolution is plenty
//! for the linger/occupancy trade-off the scheduler exposes, where the
//! interesting differences are order-of-magnitude.

/// Number of power-of-two buckets (covers 1 µs .. ~2147 s).
const BUCKETS: usize = 32;

/// Fixed-bucket latency histogram (microsecond resolution).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample, in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing it, in microseconds. Returns `None` with no samples —
    /// an empty histogram has no quantiles, and folding that case into
    /// `0.0` would read as "instantaneous" in dashboards.
    pub fn quantile_us(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = (p.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((1u64 << (i + 1).min(63)) as f64);
            }
        }
        Some((1u64 << 63) as f64)
    }
}

/// A point-in-time snapshot of the service's health, returned by
/// [`crate::Service::stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Jobs admitted but not yet handed to a superbank worker
    /// (pending in the batch former plus formed-but-unclaimed).
    pub queue_depth: usize,
    /// Jobs currently executing on the worker fleet.
    pub in_flight: usize,
    /// Jobs accepted by `submit` since startup.
    pub admitted: u64,
    /// Jobs turned away by the `Reject` backpressure policy.
    pub rejected: u64,
    /// Jobs whose tickets have been fulfilled (success or failure).
    pub completed: u64,
    /// Batches flushed to the fleet.
    pub batches: u64,
    /// Batches flushed because they reached the packed-lane capacity.
    pub full_batches: u64,
    /// Batches flushed by the max-linger deadline (partial occupancy,
    /// fleet saturated).
    pub lingered_batches: u64,
    /// Partial batches flushed immediately because a worker was idle
    /// with nothing queued (the work-conserving path).
    pub eager_batches: u64,
    /// Mean jobs per flushed batch — the realized packed-lane occupancy
    /// (1.0 means no packing; the `32k/n` capacity is the ceiling).
    pub mean_occupancy: f64,
    /// Corrupt products flagged by residue checking (each is either
    /// retried or surfaced as `FaultUnrecovered`, never returned).
    pub faults_detected: u64,
    /// Jobs requeued for another attempt after a detected fault.
    pub retries: u64,
    /// Jobs that succeeded on a retry attempt (detected fault, then a
    /// verified product — the recover half of recover-or-quarantine).
    pub recovered: u64,
    /// Banks removed from the fleet by the quarantine policy.
    pub quarantined_banks: usize,
    /// Workers still serving (configured fleet minus quarantined).
    pub active_workers: usize,
    /// Hot-operand transform cache lookups that found the operand's
    /// forward NTT (0 when the cache is disabled).
    pub hot_hits: u64,
    /// Hot-operand cache lookups that missed (0 when disabled).
    pub hot_misses: u64,
    /// Latency samples behind the percentiles below. When 0 the
    /// percentile fields read 0.0 — that means *no data*, not
    /// instantaneous service.
    pub latency_samples: u64,
    /// Median end-to-end job latency (submit → ticket fulfilled), µs.
    /// 0.0 when [`ServiceStats::latency_samples`] is 0.
    pub p50_us: f64,
    /// 95th-percentile end-to-end job latency, µs. 0.0 when
    /// [`ServiceStats::latency_samples`] is 0.
    pub p95_us: f64,
    /// 99th-percentile end-to-end job latency, µs. 0.0 when
    /// [`ServiceStats::latency_samples`] is 0.
    pub p99_us: f64,
    /// Wide (RNS-decomposed) jobs accepted by `submit_wide`.
    pub wide_submitted: u64,
    /// Wide jobs whose every residue lane landed and recombined.
    pub wide_completed: u64,
    /// Wide jobs that failed (a lane refused at admission or failed in
    /// execution).
    pub wide_failed: u64,
    /// Samples behind the wide percentiles below (one per recombined
    /// wide job).
    pub wide_latency_samples: u64,
    /// Median wide-job latency (submit → recombined product), µs. 0.0
    /// when [`ServiceStats::wide_latency_samples`] is 0.
    pub wide_p50_us: f64,
    /// 95th-percentile wide-job latency, µs. 0.0 without samples.
    pub wide_p95_us: f64,
    /// 99th-percentile wide-job latency, µs. 0.0 without samples.
    pub wide_p99_us: f64,
    /// Per-kind protocol lane counters and percentiles, one entry per
    /// [`crate::ProtocolKind`] in declaration order (kinds that never
    /// saw a submission carry all-zero counters and are omitted from
    /// the JSON form).
    pub protocol: Vec<ProtocolLaneStats>,
}

/// Counters and latency percentiles for one protocol kind served
/// through [`crate::Service::submit_protocol`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolLaneStats {
    /// The kind's stable snake_case name (e.g. `"keygen"`, `"encaps"`),
    /// also the key prefix in the JSON form (`proto_<kind>_*`).
    pub kind: &'static str,
    /// Protocol ops of this kind accepted by `submit_protocol`.
    pub submitted: u64,
    /// Ops whose ticket resolved successfully.
    pub completed: u64,
    /// Ops whose ticket resolved with an error.
    pub failed: u64,
    /// Samples behind the percentiles below (one per completed op).
    pub latency_samples: u64,
    /// Median end-to-end op latency (submit → ticket fulfilled), µs.
    pub p50_us: f64,
    /// 95th-percentile end-to-end op latency, µs.
    pub p95_us: f64,
    /// 99th-percentile end-to-end op latency, µs.
    pub p99_us: f64,
}

impl ProtocolLaneStats {
    /// An all-zero lane for `kind` (nothing submitted yet).
    pub fn empty(kind: &'static str) -> ProtocolLaneStats {
        ProtocolLaneStats {
            kind,
            submitted: 0,
            completed: 0,
            failed: 0,
            latency_samples: 0,
            p50_us: 0.0,
            p95_us: 0.0,
            p99_us: 0.0,
        }
    }
}

/// Scans `text` for `"key": <number>` and returns the raw number
/// token. Shared by [`ServiceStats::from_json`]; first occurrence
/// wins, so embedders must not reuse these field names earlier in the
/// same document (the net layer's `Stats` verb keeps its own counters
/// under distinct keys for exactly this reason).
fn json_number<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)?;
    let rest = text[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

impl ServiceStats {
    /// Serializes the snapshot as one flat JSON object — the single
    /// source of truth for every emitter (`serve-loadgen --json`,
    /// `fault-campaign --json`, the net layer's `Stats` verb) instead
    /// of three hand-formatted copies. Dependency-free: the workspace
    /// vendors no JSON crate. Integers print exactly and floats use
    /// Rust's shortest-round-trip `Display`, so
    /// [`ServiceStats::from_json`] reconstructs a bit-identical value.
    ///
    /// Empty sections are *omitted consistently*: the narrow percentile
    /// triple disappears when [`ServiceStats::latency_samples`] is 0,
    /// the whole wide lane when [`ServiceStats::wide_submitted`] is 0
    /// (its percentiles additionally require wide samples), and a
    /// protocol kind's `proto_<kind>_*` block when that kind was never
    /// submitted. [`ServiceStats::from_json`] defaults every omitted
    /// section to zeros, so the round trip is still bit-exact.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"queue_depth\": {}, \"in_flight\": {}, \"admitted\": {}, ",
                "\"rejected\": {}, \"completed\": {}, \"batches\": {}, ",
                "\"full_batches\": {}, \"lingered_batches\": {}, \"eager_batches\": {}, ",
                "\"mean_occupancy\": {}, \"faults_detected\": {}, \"retries\": {}, ",
                "\"recovered\": {}, \"quarantined_banks\": {}, \"active_workers\": {}, ",
                "\"hot_hits\": {}, \"hot_misses\": {}, \"latency_samples\": {}"
            ),
            self.queue_depth,
            self.in_flight,
            self.admitted,
            self.rejected,
            self.completed,
            self.batches,
            self.full_batches,
            self.lingered_batches,
            self.eager_batches,
            self.mean_occupancy,
            self.faults_detected,
            self.retries,
            self.recovered,
            self.quarantined_banks,
            self.active_workers,
            self.hot_hits,
            self.hot_misses,
            self.latency_samples,
        );
        if self.latency_samples > 0 {
            out.push_str(&format!(
                ", \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}",
                self.p50_us, self.p95_us, self.p99_us
            ));
        }
        if self.wide_submitted > 0 {
            out.push_str(&format!(
                concat!(
                    ", \"wide_submitted\": {}, \"wide_completed\": {}, ",
                    "\"wide_failed\": {}, \"wide_latency_samples\": {}"
                ),
                self.wide_submitted,
                self.wide_completed,
                self.wide_failed,
                self.wide_latency_samples,
            ));
            if self.wide_latency_samples > 0 {
                out.push_str(&format!(
                    ", \"wide_p50_us\": {}, \"wide_p95_us\": {}, \"wide_p99_us\": {}",
                    self.wide_p50_us, self.wide_p95_us, self.wide_p99_us
                ));
            }
        }
        for lane in &self.protocol {
            if lane.submitted == 0 {
                continue;
            }
            let k = lane.kind;
            out.push_str(&format!(
                ", \"proto_{0}_submitted\": {1}, \"proto_{0}_completed\": {2}, \"proto_{0}_failed\": {3}, \"proto_{0}_latency_samples\": {4}",
                k, lane.submitted, lane.completed, lane.failed, lane.latency_samples
            ));
            if lane.latency_samples > 0 {
                out.push_str(&format!(
                    ", \"proto_{0}_p50_us\": {1}, \"proto_{0}_p95_us\": {2}, \"proto_{0}_p99_us\": {3}",
                    k, lane.p50_us, lane.p95_us, lane.p99_us
                ));
            }
        }
        out.push('}');
        out
    }

    /// Parses a snapshot out of a [`to_json`](ServiceStats::to_json)
    /// document (or any JSON text embedding one, provided no earlier
    /// sibling reuses these field names). The core counters are
    /// required — a truncated or foreign document never yields a
    /// half-filled snapshot — while the omit-when-empty sections
    /// (narrow percentiles, the wide lane, per-kind protocol blocks)
    /// default to zeros when absent.
    pub fn from_json(text: &str) -> Option<ServiceStats> {
        fn u64_field(text: &str, key: &str) -> Option<u64> {
            json_number(text, key)?.parse().ok()
        }
        fn usize_field(text: &str, key: &str) -> Option<usize> {
            json_number(text, key)?.parse().ok()
        }
        fn f64_field(text: &str, key: &str) -> Option<f64> {
            json_number(text, key)?.parse().ok()
        }
        let protocol = crate::graph::ProtocolKind::ALL
            .iter()
            .map(|kind| {
                let k = kind.as_str();
                let mut lane = ProtocolLaneStats::empty(k);
                if let Some(submitted) = u64_field(text, &format!("proto_{k}_submitted")) {
                    lane.submitted = submitted;
                    lane.completed = u64_field(text, &format!("proto_{k}_completed")).unwrap_or(0);
                    lane.failed = u64_field(text, &format!("proto_{k}_failed")).unwrap_or(0);
                    lane.latency_samples =
                        u64_field(text, &format!("proto_{k}_latency_samples")).unwrap_or(0);
                    lane.p50_us = f64_field(text, &format!("proto_{k}_p50_us")).unwrap_or(0.0);
                    lane.p95_us = f64_field(text, &format!("proto_{k}_p95_us")).unwrap_or(0.0);
                    lane.p99_us = f64_field(text, &format!("proto_{k}_p99_us")).unwrap_or(0.0);
                }
                lane
            })
            .collect();
        let latency_samples = u64_field(text, "latency_samples")?;
        Some(ServiceStats {
            queue_depth: usize_field(text, "queue_depth")?,
            in_flight: usize_field(text, "in_flight")?,
            admitted: u64_field(text, "admitted")?,
            rejected: u64_field(text, "rejected")?,
            completed: u64_field(text, "completed")?,
            batches: u64_field(text, "batches")?,
            full_batches: u64_field(text, "full_batches")?,
            lingered_batches: u64_field(text, "lingered_batches")?,
            eager_batches: u64_field(text, "eager_batches")?,
            mean_occupancy: f64_field(text, "mean_occupancy")?,
            faults_detected: u64_field(text, "faults_detected")?,
            retries: u64_field(text, "retries")?,
            recovered: u64_field(text, "recovered")?,
            quarantined_banks: usize_field(text, "quarantined_banks")?,
            active_workers: usize_field(text, "active_workers")?,
            hot_hits: u64_field(text, "hot_hits")?,
            hot_misses: u64_field(text, "hot_misses")?,
            latency_samples,
            p50_us: f64_field(text, "p50_us").unwrap_or(0.0),
            p95_us: f64_field(text, "p95_us").unwrap_or(0.0),
            p99_us: f64_field(text, "p99_us").unwrap_or(0.0),
            wide_submitted: u64_field(text, "wide_submitted").unwrap_or(0),
            wide_completed: u64_field(text, "wide_completed").unwrap_or(0),
            wide_failed: u64_field(text, "wide_failed").unwrap_or(0),
            wide_latency_samples: u64_field(text, "wide_latency_samples").unwrap_or(0),
            wide_p50_us: f64_field(text, "wide_p50_us").unwrap_or(0.0),
            wide_p95_us: f64_field(text, "wide_p95_us").unwrap_or(0.0),
            wide_p99_us: f64_field(text, "wide_p99_us").unwrap_or(0.0),
            protocol,
        })
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queue depth {} (+{} in flight) | admitted {} rejected {} completed {}",
            self.queue_depth, self.in_flight, self.admitted, self.rejected, self.completed
        )?;
        writeln!(
            f,
            "batches {} ({} full, {} lingered, {} eager) | mean occupancy {:.2} jobs/batch",
            self.batches,
            self.full_batches,
            self.lingered_batches,
            self.eager_batches,
            self.mean_occupancy
        )?;
        writeln!(
            f,
            "faults detected {} | retries {} recovered {} | quarantined {} ({} active workers)",
            self.faults_detected,
            self.retries,
            self.recovered,
            self.quarantined_banks,
            self.active_workers
        )?;
        if self.hot_hits + self.hot_misses > 0 {
            writeln!(
                f,
                "hot cache: {} hits / {} misses ({:.1}% hit rate)",
                self.hot_hits,
                self.hot_misses,
                100.0 * self.hot_hits as f64 / (self.hot_hits + self.hot_misses) as f64
            )?;
        }
        if self.wide_submitted > 0 {
            writeln!(
                f,
                "wide jobs: {} submitted, {} completed, {} failed",
                self.wide_submitted, self.wide_completed, self.wide_failed
            )?;
            if self.wide_latency_samples > 0 {
                writeln!(
                    f,
                    "wide latency p50 ≤ {:.0} µs, p95 ≤ {:.0} µs, p99 ≤ {:.0} µs ({} samples)",
                    self.wide_p50_us, self.wide_p95_us, self.wide_p99_us, self.wide_latency_samples
                )?;
            }
        }
        for lane in &self.protocol {
            if lane.submitted == 0 {
                continue;
            }
            write!(
                f,
                "proto {}: {} submitted, {} completed, {} failed",
                lane.kind, lane.submitted, lane.completed, lane.failed
            )?;
            if lane.latency_samples > 0 {
                write!(
                    f,
                    " | p50 ≤ {:.0} µs, p95 ≤ {:.0} µs, p99 ≤ {:.0} µs",
                    lane.p50_us, lane.p95_us, lane.p99_us
                )?;
            }
            writeln!(f)?;
        }
        if self.latency_samples == 0 {
            write!(f, "latency: no samples")
        } else {
            write!(
                f,
                "latency p50 ≤ {:.0} µs, p95 ≤ {:.0} µs, p99 ≤ {:.0} µs ({} samples)",
                self.p50_us, self.p95_us, self.p99_us, self.latency_samples
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.quantile_us(1.0), None);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_us(3); // bucket [2, 4)
        }
        h.record_us(1000); // bucket [512, 1024)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), Some(4.0));
        assert_eq!(h.quantile_us(0.95), Some(4.0));
        assert_eq!(h.quantile_us(1.0), Some(1024.0));
    }

    #[test]
    fn sub_microsecond_and_huge_samples_clamp() {
        let mut h = LatencyHistogram::default();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.0), Some(2.0));
        assert_eq!(h.quantile_us(1.0), Some((1u64 << 32) as f64));
    }

    fn empty_protocol() -> Vec<ProtocolLaneStats> {
        crate::graph::ProtocolKind::ALL
            .iter()
            .map(|k| ProtocolLaneStats::empty(k.as_str()))
            .collect()
    }

    fn fixture_stats() -> ServiceStats {
        let mut protocol = empty_protocol();
        protocol[2] = ProtocolLaneStats {
            kind: protocol[2].kind,
            submitted: 12,
            completed: 11,
            failed: 1,
            latency_samples: 11,
            p50_us: 2048.0,
            p95_us: 8192.0,
            p99_us: 32768.0,
        };
        ServiceStats {
            queue_depth: 3,
            in_flight: 2,
            admitted: 1000,
            rejected: 17,
            completed: 995,
            batches: 120,
            full_batches: 80,
            lingered_batches: 10,
            eager_batches: 30,
            mean_occupancy: 1.0 / 3.0, // not exactly representable in decimal
            faults_detected: 5,
            retries: 4,
            recovered: 3,
            quarantined_banks: 1,
            active_workers: 7,
            hot_hits: 640,
            hot_misses: 16,
            latency_samples: 995,
            p50_us: 512.0,
            p95_us: 2048.0,
            p99_us: 8192.0,
            wide_submitted: 40,
            wide_completed: 38,
            wide_failed: 2,
            wide_latency_samples: 38,
            wide_p50_us: 1024.0,
            wide_p95_us: 4096.0,
            wide_p99_us: 16384.0,
            protocol,
        }
    }

    #[test]
    fn stats_json_round_trips_bit_exact() {
        let stats = fixture_stats();
        let json = stats.to_json();
        let back = ServiceStats::from_json(&json).expect("own output parses");
        assert_eq!(back, stats, "shortest-round-trip floats must survive");
        // Embedded in a larger document (the Stats verb shape) it still
        // parses, as long as no earlier sibling reuses the field names.
        let wrapped = format!("{{\"proto\": 1, \"service\": {json}}}");
        assert_eq!(ServiceStats::from_json(&wrapped), Some(stats));
    }

    #[test]
    fn stats_json_omits_empty_sections_consistently() {
        // Nothing submitted on any lane: the narrow percentile triple,
        // the wide lane, and every protocol block must all be absent —
        // and the document must still round-trip bit-exactly.
        let mut stats = fixture_stats();
        stats.latency_samples = 0;
        stats.p50_us = 0.0;
        stats.p95_us = 0.0;
        stats.p99_us = 0.0;
        stats.wide_submitted = 0;
        stats.wide_completed = 0;
        stats.wide_failed = 0;
        stats.wide_latency_samples = 0;
        stats.wide_p50_us = 0.0;
        stats.wide_p95_us = 0.0;
        stats.wide_p99_us = 0.0;
        stats.protocol = empty_protocol();
        let json = stats.to_json();
        assert!(
            !json.contains("p50_us"),
            "empty narrow lane must be omitted"
        );
        assert!(!json.contains("wide_"), "empty wide lane must be omitted");
        assert!(
            !json.contains("proto_"),
            "empty protocol lanes must be omitted"
        );
        assert_eq!(ServiceStats::from_json(&json), Some(stats));
        // A populated wide lane without samples keeps its counters but
        // omits its percentile triple.
        let mut partial = fixture_stats();
        partial.wide_latency_samples = 0;
        partial.wide_p50_us = 0.0;
        partial.wide_p95_us = 0.0;
        partial.wide_p99_us = 0.0;
        let json = partial.to_json();
        assert!(json.contains("wide_submitted"));
        assert!(!json.contains("wide_p50_us"));
        assert_eq!(ServiceStats::from_json(&json), Some(partial));
    }

    #[test]
    fn stats_from_json_rejects_truncation_and_noise() {
        let json = fixture_stats().to_json();
        // Truncation that loses a core counter must yield None, never a
        // half-filled snapshot.
        assert_eq!(ServiceStats::from_json(&json[..json.len() / 4]), None);
        assert_eq!(ServiceStats::from_json("{}"), None);
        assert_eq!(ServiceStats::from_json("not json at all"), None);
        let mangled = json.replace("\"admitted\": 1000", "\"admitted\": oops");
        assert_eq!(ServiceStats::from_json(&mangled), None);
    }

    #[test]
    fn quantiles_monotone_in_p() {
        let mut h = LatencyHistogram::default();
        for us in [1u64, 5, 9, 33, 70, 200, 900, 5000, 40000] {
            h.record_us(us);
        }
        let mut last = 0.0;
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let q = h.quantile_us(p).expect("non-empty");
            assert!(q >= last, "p = {p}");
            last = q;
        }
    }
}

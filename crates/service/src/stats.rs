//! Service observability: counters, occupancy, and a fixed-bucket
//! latency histogram.
//!
//! The histogram uses power-of-two microsecond buckets (bucket `i`
//! covers `[2^i, 2^{i+1})` µs, with bucket 0 absorbing sub-µs jobs and
//! the last bucket absorbing everything past ~2147 s). Fixed buckets
//! keep recording O(1) and allocation-free on the worker hot path; the
//! price is that a reported percentile is the *upper bound* of its
//! bucket, i.e. conservative by at most 2×. That resolution is plenty
//! for the linger/occupancy trade-off the scheduler exposes, where the
//! interesting differences are order-of-magnitude.

/// Number of power-of-two buckets (covers 1 µs .. ~2147 s).
const BUCKETS: usize = 32;

/// Fixed-bucket latency histogram (microsecond resolution).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }
}

impl LatencyHistogram {
    /// Records one latency sample, in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let idx = (63 - us.max(1).leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `p`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// containing it, in microseconds. Returns `None` with no samples —
    /// an empty histogram has no quantiles, and folding that case into
    /// `0.0` would read as "instantaneous" in dashboards.
    pub fn quantile_us(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = (p.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some((1u64 << (i + 1).min(63)) as f64);
            }
        }
        Some((1u64 << 63) as f64)
    }
}

/// A point-in-time snapshot of the service's health, returned by
/// [`crate::Service::stats`].
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// Jobs admitted but not yet handed to a superbank worker
    /// (pending in the batch former plus formed-but-unclaimed).
    pub queue_depth: usize,
    /// Jobs currently executing on the worker fleet.
    pub in_flight: usize,
    /// Jobs accepted by `submit` since startup.
    pub admitted: u64,
    /// Jobs turned away by the `Reject` backpressure policy.
    pub rejected: u64,
    /// Jobs whose tickets have been fulfilled (success or failure).
    pub completed: u64,
    /// Batches flushed to the fleet.
    pub batches: u64,
    /// Batches flushed because they reached the packed-lane capacity.
    pub full_batches: u64,
    /// Batches flushed by the max-linger deadline (partial occupancy,
    /// fleet saturated).
    pub lingered_batches: u64,
    /// Partial batches flushed immediately because a worker was idle
    /// with nothing queued (the work-conserving path).
    pub eager_batches: u64,
    /// Mean jobs per flushed batch — the realized packed-lane occupancy
    /// (1.0 means no packing; the `32k/n` capacity is the ceiling).
    pub mean_occupancy: f64,
    /// Corrupt products flagged by residue checking (each is either
    /// retried or surfaced as `FaultUnrecovered`, never returned).
    pub faults_detected: u64,
    /// Jobs requeued for another attempt after a detected fault.
    pub retries: u64,
    /// Jobs that succeeded on a retry attempt (detected fault, then a
    /// verified product — the recover half of recover-or-quarantine).
    pub recovered: u64,
    /// Banks removed from the fleet by the quarantine policy.
    pub quarantined_banks: usize,
    /// Workers still serving (configured fleet minus quarantined).
    pub active_workers: usize,
    /// Hot-operand transform cache lookups that found the operand's
    /// forward NTT (0 when the cache is disabled).
    pub hot_hits: u64,
    /// Hot-operand cache lookups that missed (0 when disabled).
    pub hot_misses: u64,
    /// Latency samples behind the percentiles below. When 0 the
    /// percentile fields read 0.0 — that means *no data*, not
    /// instantaneous service.
    pub latency_samples: u64,
    /// Median end-to-end job latency (submit → ticket fulfilled), µs.
    /// 0.0 when [`ServiceStats::latency_samples`] is 0.
    pub p50_us: f64,
    /// 95th-percentile end-to-end job latency, µs. 0.0 when
    /// [`ServiceStats::latency_samples`] is 0.
    pub p95_us: f64,
    /// 99th-percentile end-to-end job latency, µs. 0.0 when
    /// [`ServiceStats::latency_samples`] is 0.
    pub p99_us: f64,
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queue depth {} (+{} in flight) | admitted {} rejected {} completed {}",
            self.queue_depth, self.in_flight, self.admitted, self.rejected, self.completed
        )?;
        writeln!(
            f,
            "batches {} ({} full, {} lingered, {} eager) | mean occupancy {:.2} jobs/batch",
            self.batches,
            self.full_batches,
            self.lingered_batches,
            self.eager_batches,
            self.mean_occupancy
        )?;
        writeln!(
            f,
            "faults detected {} | retries {} recovered {} | quarantined {} ({} active workers)",
            self.faults_detected,
            self.retries,
            self.recovered,
            self.quarantined_banks,
            self.active_workers
        )?;
        if self.hot_hits + self.hot_misses > 0 {
            writeln!(
                f,
                "hot cache: {} hits / {} misses ({:.1}% hit rate)",
                self.hot_hits,
                self.hot_misses,
                100.0 * self.hot_hits as f64 / (self.hot_hits + self.hot_misses) as f64
            )?;
        }
        if self.latency_samples == 0 {
            write!(f, "latency: no samples")
        } else {
            write!(
                f,
                "latency p50 ≤ {:.0} µs, p95 ≤ {:.0} µs, p99 ≤ {:.0} µs ({} samples)",
                self.p50_us, self.p95_us, self.p99_us, self.latency_samples
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.quantile_us(1.0), None);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let mut h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record_us(3); // bucket [2, 4)
        }
        h.record_us(1000); // bucket [512, 1024)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), Some(4.0));
        assert_eq!(h.quantile_us(0.95), Some(4.0));
        assert_eq!(h.quantile_us(1.0), Some(1024.0));
    }

    #[test]
    fn sub_microsecond_and_huge_samples_clamp() {
        let mut h = LatencyHistogram::default();
        h.record_us(0);
        h.record_us(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile_us(0.0), Some(2.0));
        assert_eq!(h.quantile_us(1.0), Some((1u64 << 32) as f64));
    }

    #[test]
    fn quantiles_monotone_in_p() {
        let mut h = LatencyHistogram::default();
        for us in [1u64, 5, 9, 33, 70, 200, 900, 5000, 40000] {
            h.record_us(us);
        }
        let mut last = 0.0;
        for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let q = h.quantile_us(p).expect("non-empty");
            assert!(q >= last, "p = {p}");
            last = q;
        }
    }
}
